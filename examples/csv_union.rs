//! Sampling the union of joins over external CSV data.
//!
//! The decentralized setting (§4's data-market scenario) usually means
//! delimited files rather than indexed databases. This example loads
//! two normalized "shops" from CSV, builds the union workload, and
//! samples it — end to end with no hand-built relations and no ground
//! truth consulted: the builder's histogram estimator supplies the
//! parameters.
//!
//! Run with: `cargo run --release --example csv_union`

use sample_union_joins::prelude::*;
use std::sync::Arc;
use suj_storage::read_csv;

const SHOP_A_ITEMS: &str = "\
sku,category
1,coffee
2,coffee
3,tea
4,cocoa
";

const SHOP_A_SALES: &str = "\
sale,sku,amount
100,1,250
101,1,125
102,2,300
103,3,80
";

const SHOP_B_ITEMS: &str = "\
sku,category
1,coffee
3,tea
5,juice
";

const SHOP_B_SALES: &str = "\
sale,sku,amount
100,1,250
200,5,90
201,3,80
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Load the four relations straight from CSV.
    let a_items = Arc::new(read_csv("a_items", SHOP_A_ITEMS.as_bytes())?);
    let a_sales = Arc::new(read_csv("a_sales", SHOP_A_SALES.as_bytes())?);
    let b_items = Arc::new(read_csv("b_items", SHOP_B_ITEMS.as_bytes())?);
    let b_sales = Arc::new(read_csv("b_sales", SHOP_B_SALES.as_bytes())?);

    // One join per shop: items ⋈ sales on sku.
    let shop_a = Arc::new(JoinSpec::chain("shop_a", vec![a_items, a_sales])?);
    let shop_b = Arc::new(JoinSpec::chain("shop_b", vec![b_items, b_sales])?);

    // Histogram estimation (no full join) + Algorithm 1, in one place.
    let mut sampler = SamplerBuilder::for_joins(vec![shop_a, shop_b])?
        .estimator(Estimator::Histogram(HistogramOptions::default()))
        .strategy(Strategy::Rejection)
        .build()?;
    let workload = sampler.workload().clone();
    println!("canonical schema: {}", workload.canonical_schema());

    let mut rng = SujRng::seed_from_u64(5);
    let (samples, report) = sampler.sample(8, &mut rng)?;
    println!("\n8 uniform samples from shop_a ∪ shop_b:");
    for t in &samples {
        println!("  {t}");
    }
    println!("\n{}", report.summary());

    // Cross-check against ground truth.
    let exact = full_join_union(&workload)?;
    println!(
        "\ntruth: |shop_a| = {}, |shop_b| = {}, |union| = {} (sale 100 of sku 1 appears in both)",
        exact.join_size(0),
        exact.join_size(1),
        exact.union_size()
    );
    Ok(())
}
