//! Sampling the union of joins over external CSV data.
//!
//! The decentralized setting (§4's data-market scenario) usually means
//! delimited files rather than indexed databases. This example loads
//! two normalized "shops" from CSV straight into a `Catalog`, declares
//! the union with `UnionQuery`, and lets the `Engine` plan estimation
//! and sampling — end to end with no hand-built relations, no manual
//! strategy, and no ground truth consulted.
//!
//! Run with: `cargo run --release --example csv_union`

use sample_union_joins::prelude::*;

const SHOP_A_ITEMS: &str = "\
sku,category
1,coffee
2,coffee
3,tea
4,cocoa
";

const SHOP_A_SALES: &str = "\
sale,sku,amount
100,1,250
101,1,125
102,2,300
103,3,80
";

const SHOP_B_ITEMS: &str = "\
sku,category
1,coffee
3,tea
5,juice
";

const SHOP_B_SALES: &str = "\
sale,sku,amount
100,1,250
200,5,90
201,3,80
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Load the four relations straight from CSV into the catalog.
    let mut catalog = Catalog::new();
    catalog.register_csv("a_items", SHOP_A_ITEMS.as_bytes())?;
    catalog.register_csv("a_sales", SHOP_A_SALES.as_bytes())?;
    catalog.register_csv("b_items", SHOP_B_ITEMS.as_bytes())?;
    catalog.register_csv("b_sales", SHOP_B_SALES.as_bytes())?;

    // One join per shop: items ⋈ sales on sku — by relation name.
    let query = UnionQuery::set_union()
        .chain("shop_a", ["a_items", "a_sales"])?
        .chain("shop_b", ["b_items", "b_sales"])?;

    let engine = Engine::new(catalog);
    let prepared = engine.prepare(&query)?;
    println!("{}\n", prepared.explain());
    println!(
        "canonical schema: {}",
        prepared.workload().canonical_schema()
    );

    let mut rng = SujRng::seed_from_u64(5);
    let (samples, report) = prepared.run(8, &mut rng)?;
    println!("\n8 uniform samples from shop_a ∪ shop_b:");
    for t in &samples {
        println!("  {t}");
    }
    println!("\n{}", report.summary());

    // Cross-check against ground truth.
    let workload = prepared.workload().clone();
    let exact = full_join_union(&workload)?;
    println!(
        "\ntruth: |shop_a| = {}, |shop_b| = {}, |union| = {} (sale 100 of sku 1 appears in both)",
        exact.join_size(0),
        exact.join_size(1),
        exact.union_size()
    );
    Ok(())
}
