//! Incremental consumption with early stop: `SampleStream` turns any
//! built sampler into a lazy iterator, so Algorithm 2's online
//! refinement runs *while* the caller consumes samples — no batch size
//! declared anywhere.
//!
//! The scenario: an approximate-aggregation client keeps drawing union
//! samples until its running estimate of a mean is tight enough, then
//! simply stops pulling. With the batch API it would have to guess a
//! sample count up front; with the stream it pays only for what it
//! consumes.
//!
//! Run with: `cargo run --release --example streaming`

use sample_union_joins::prelude::*;
use std::sync::Arc;
use suj_core::walk_estimator::WalkEstimatorConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = UqOptions::new(2, 31, 0.3);
    let workload = Arc::new(uq1(&opts)?);
    println!(
        "UQ1 with {} joins; canonical schema: {}",
        workload.n_joins(),
        workload.canonical_schema()
    );

    // Algorithm 2 behind the trait object: estimation refines online as
    // the stream is consumed.
    let mut sampler: Box<dyn UnionSampler> = SamplerBuilder::for_workload(workload.clone())
        .strategy(Strategy::Online(OnlineConfig {
            warmup: WalkEstimatorConfig {
                max_walks_per_join: 300,
                ..Default::default()
            },
            // §7's reuse rate R = l/(p·|J|) emits pool-sized bursts of
            // one tuple on joins this small; cap it so the stream stays
            // diverse enough for a running-mean demo.
            reuse_burst_cap: 4,
            ..Default::default()
        }))
        .build()?;

    // Aggregate over the order-price column (falls back to the last
    // attribute if a different workload is substituted).
    let value_pos = workload
        .canonical_schema()
        .position("oprice")
        .unwrap_or(workload.canonical_schema().arity() - 1);

    let mut rng = SujRng::seed_from_u64(42);
    let mut stream = SampleStream::over(&mut sampler, &mut rng);
    let mut moments = RunningMoments::new();
    let target_rel_half_width = 0.05;
    let mut consumed = 0usize;

    for item in stream.by_ref() {
        let tuple = item?;
        let value = tuple.get(value_pos);
        if let Some(v) = value
            .as_int()
            .map(|i| i as f64)
            .or_else(|| value.as_float())
        {
            moments.push(v);
        }
        consumed += 1;
        // Early stop: a 95% CI on the mean, tight relative to the mean.
        if consumed >= 64 && consumed.is_multiple_of(16) {
            let half = 1.96 * (moments.variance_sample() / moments.count() as f64).sqrt();
            if half <= target_rel_half_width * moments.mean().abs().max(1e-9) {
                break;
            }
        }
        if consumed >= 100_000 {
            break; // safety stop for pathological variance
        }
    }

    println!(
        "\nstopped after {} samples (stream yielded {}, retracted {})",
        consumed,
        stream.yielded(),
        stream.retracted()
    );
    println!(
        "estimated mean of column #{value_pos}: {:.3} ± {:.3} (95% CI)",
        moments.mean(),
        1.96 * (moments.variance_sample() / moments.count() as f64).sqrt()
    );
    println!("\nsampler report: {}", sampler.report().summary());
    Ok(())
}
