//! Heterogeneous joins and the splitting method (§5.2, §8.1): UQ3's
//! three joins normalize the same logical data three different ways
//! (a star join and two chains of different lengths). The histogram
//! estimator rewrites them along a shared standard template of
//! two-attribute relations before bounding overlaps.
//!
//! Run with: `cargo run --release --example heterogeneous_schemas`

use sample_union_joins::prelude::*;
use std::sync::Arc;
use suj_join::graph::classify;
use suj_join::template::{build_template, split_join};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = UqOptions::new(2, 3, 0.4);
    let workload = Arc::new(uq3(&opts)?);

    println!("UQ3 joins and their shapes:");
    for j in workload.joins() {
        println!("  {:?}  {}", classify(j), j);
    }

    // --- Template selection (§8.1.1): a shared attribute ordering. ---
    let specs: Vec<&JoinSpec> = workload.joins().iter().map(|j| j.as_ref()).collect();
    let template = build_template(&specs, 0.0)?;
    println!(
        "\nstandard template (cost {:.1}): {}",
        template.cost,
        template
            .order
            .iter()
            .map(|a| a.as_ref())
            .collect::<Vec<_>>()
            .join(" — ")
    );

    // --- Split joins: chains of two-attribute relations. ---
    for spec in &specs {
        let split = split_join(spec, &template)?;
        println!("\nsplit of `{}`:", split.join_name);
        for (i, sr) in split.relations.iter().enumerate() {
            let kind = match sr.source {
                Some(r) => format!("base `{}`", spec.relation(r).name()),
                None => "derived (path pre-estimation)".to_string(),
            };
            let link = if i > 0 {
                if split.fake_links[i - 1] {
                    " ⋈' (fake)"
                } else {
                    " ⋈ (real)"
                }
            } else {
                ""
            };
            println!(
                "  {link} ({}, {})  size ≤ {:.0}  from {kind}",
                sr.x, sr.y, sr.size_bound
            );
        }
    }

    // --- Overlap bounds from the splits (Theorem 4). ---
    let sizes = workload.exact_join_sizes()?;
    let est = HistogramEstimator::new(&workload, DegreeMode::Max, sizes, 0.0)?;
    let exact = full_join_union(&workload)?;
    println!("\noverlap bounds vs truth:");
    for delta in [vec![0usize, 1], vec![0, 2], vec![1, 2], vec![0, 1, 2]] {
        let bound = est.estimate_overlap(&delta);
        let truth = exact.overlap.overlap(&delta);
        println!("  O{delta:?}: bound {bound:.0}, truth {truth:.0}");
    }
    println!(
        "\n|U|: histogram Eq.1 estimate {:.0}, truth {}",
        est.overlap_map()?.union_size(),
        exact.union_size()
    );

    // --- Sample across the heterogeneous schemas through the builder:
    // the hist+EW configuration in one fluent pipeline. ---
    let mut sampler = SamplerBuilder::for_workload(workload.clone())
        .estimator(Estimator::Histogram(HistogramOptions {
            exact_size_hints: true,
            ..Default::default()
        }))
        .strategy(Strategy::Rejection)
        .build()?;
    let mut rng = SujRng::seed_from_u64(3);
    let (samples, report) = sampler.sample(12, &mut rng)?;
    println!("\n12 uniform samples across the three schemas:");
    for t in &samples {
        println!("  {t}");
    }
    println!("\n{}", report.summary());
    Ok(())
}
