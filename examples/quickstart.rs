//! Quickstart: sample uniformly from the union of two joins without
//! materializing either join — and without picking an estimator or a
//! sampling algorithm.
//!
//! Two regional databases store customer orders under different
//! normalizations. We register the relations in a `Catalog`, describe
//! the union declaratively with `UnionQuery`, and let the `Engine`'s
//! planner choose the configuration (§9's estimator × algorithm
//! matrix) from cheap statistics.
//!
//! Run with: `cargo run --release --example quickstart`

use sample_union_joins::prelude::*;

fn relation(name: &str, attrs: &[&str], rows: &[&[i64]]) -> Relation {
    let schema = Schema::new(attrs.iter().copied()).expect("schema");
    let tuples = rows
        .iter()
        .map(|r| r.iter().map(|&v| Value::int(v)).collect())
        .collect();
    Relation::new(name, schema, tuples).expect("relation")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Register every relation once, by name. ---
    let mut catalog = Catalog::new();
    catalog.register(relation(
        "customers_w",
        &["custkey", "nationkey"],
        &[&[1, 10], &[2, 10], &[3, 20]],
    ))?;
    catalog.register(relation(
        "orders_w",
        &["orderkey", "custkey", "price"],
        &[&[100, 1, 99], &[101, 1, 25], &[102, 2, 42], &[103, 3, 7]],
    ))?;
    catalog.register(relation(
        "customers_e",
        &["custkey", "nationkey"],
        &[&[1, 10], &[4, 30]],
    ))?;
    catalog.register(relation(
        "orders_e",
        &["orderkey", "custkey", "price"],
        &[&[100, 1, 99], &[200, 4, 55]],
    ))?;

    // --- Describe the union: what to sample, not how. ---
    let query = UnionQuery::set_union()
        .chain("west", ["customers_w", "orders_w"])?
        .chain("east", ["customers_e", "orders_e"])?;

    // --- The engine plans estimator, strategy, and cover itself. ---
    let engine = Engine::new(catalog);
    let prepared = engine.prepare(&query)?;
    println!("{}\n", prepared.explain());
    println!(
        "canonical schema: {}",
        prepared.workload().canonical_schema()
    );

    let mut rng = SujRng::seed_from_u64(7);
    let (samples, report) = prepared.run(10, &mut rng)?;
    println!("\n10 uniform samples from west ∪ east:");
    for t in &samples {
        println!("  {t}");
    }
    println!("\nrun report: {}", report.summary());

    // Repeated runs reuse the estimator state paid at prepare() time.
    let (more, _) = prepared.run(5, &mut rng)?;
    println!("\n5 more (no re-estimation): {} tuples", more.len());
    Ok(())
}
