//! Quickstart: sample uniformly from the union of two joins without
//! materializing either join.
//!
//! Two regional databases store customer orders under different
//! normalizations; we draw 10 i.i.d. samples from the set union of the
//! two join results, assembling the whole pipeline with the fluent
//! `SamplerBuilder`.
//!
//! Run with: `cargo run --release --example quickstart`

use sample_union_joins::prelude::*;
use std::sync::Arc;

fn relation(name: &str, attrs: &[&str], rows: &[&[i64]]) -> Arc<Relation> {
    let schema = Schema::new(attrs.iter().copied()).expect("schema");
    let tuples = rows
        .iter()
        .map(|r| r.iter().map(|&v| Value::int(v)).collect())
        .collect();
    Arc::new(Relation::new(name, schema, tuples).expect("relation"))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Region "West": customers ⋈ orders, normalized classically. ---
    let customers_w = relation(
        "customers_w",
        &["custkey", "nationkey"],
        &[&[1, 10], &[2, 10], &[3, 20]],
    );
    let orders_w = relation(
        "orders_w",
        &["orderkey", "custkey", "price"],
        &[&[100, 1, 99], &[101, 1, 25], &[102, 2, 42], &[103, 3, 7]],
    );
    let join_west = Arc::new(JoinSpec::chain("west", vec![customers_w, orders_w])?);

    // --- Region "East": same schema, partially overlapping data. ---
    let customers_e = relation(
        "customers_e",
        &["custkey", "nationkey"],
        &[&[1, 10], &[4, 30]],
    );
    let orders_e = relation(
        "orders_e",
        &["orderkey", "custkey", "price"],
        &[&[100, 1, 99], &[200, 4, 55]],
    );
    let join_east = Arc::new(JoinSpec::chain("east", vec![customers_e, orders_e])?);

    // --- The union workload: same output schema, canonicalized. ---
    let workload = Arc::new(UnionWorkload::new(vec![join_west, join_east])?);
    println!("canonical schema: {}", workload.canonical_schema());

    // Ground truth for this tiny example (the real framework estimates
    // these; see the `tpch_union` example).
    let exact = full_join_union(&workload)?;
    println!(
        "|J_west| = {}, |J_east| = {}, |J_west ∪ J_east| = {}",
        exact.join_size(0),
        exact.join_size(1),
        exact.union_size()
    );

    // --- One pipeline: estimator → strategy → sampler (Algorithm 1). ---
    let mut sampler = SamplerBuilder::for_workload(workload)
        .estimator(Estimator::Exact)
        .strategy(Strategy::Rejection)
        .build()?;
    let mut rng = SujRng::seed_from_u64(7);
    let (samples, report) = sampler.sample(10, &mut rng)?;

    println!("\n10 uniform samples from the union:");
    for t in &samples {
        println!("  {t}");
    }
    println!("\nrun report: {}", report.summary());
    Ok(())
}
