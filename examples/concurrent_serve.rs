//! Concurrent serving: share one prepared plan across a worker pool.
//!
//! Demonstrates the serving workflow end to end:
//!
//! 1. register relations and `prepare()` a union query once
//!    (estimation is paid here, and only here),
//! 2. start a [`SamplingService`] worker pool,
//! 3. submit seed-addressed requests and collect responses,
//! 4. read the service counters (throughput, queue, p50/p99 draw
//!    latency),
//! 5. verify the determinism contract: re-serving the same request ids
//!    under the same root seed reproduces every sample bit for bit,
//!    regardless of worker count.
//!
//! Run with: `cargo run --release --example concurrent_serve`

use sample_union_joins::prelude::*;

fn serve_once(engine: &Engine, workers: usize) -> Vec<SampleResponse> {
    let prepared = engine
        .prepare(
            &UnionQuery::set_union()
                .chain("shop_a", ["a_items", "a_sales"])
                .unwrap()
                .chain("shop_b", ["b_items", "b_sales"])
                .unwrap(),
        )
        .expect("prepare");
    println!(
        "prepared once: estimations={} (plan: {})",
        prepared.estimations(),
        prepared.plan().summary()
    );

    let service = SamplingService::start(
        engine.clone(),
        ServiceConfig::with_workers(workers).root_seed(42),
    );
    let requests = (0..32u64)
        .map(|id| SampleRequest::prepared(id, 25, &prepared))
        .collect();
    let mut responses = service.run_batch(requests).expect("serve batch");
    responses.sort_by_key(|r| r.id);

    let stats = service.shutdown();
    println!("workers={workers}: {stats}");
    responses
}

fn main() {
    let mut catalog = Catalog::new();
    for (name, header, rows) in [
        ("a_items", "sku,cat", vec![(1, 7), (2, 7), (3, 9), (4, 9)]),
        (
            "a_sales",
            "sale,sku",
            vec![(100, 1), (101, 1), (102, 2), (103, 3)],
        ),
        ("b_items", "sku,cat", vec![(1, 7), (5, 9), (6, 9)]),
        ("b_sales", "sale,sku", vec![(100, 1), (200, 5), (201, 6)]),
    ] {
        let csv = std::iter::once(header.to_string())
            .chain(rows.iter().map(|(x, y)| format!("{x},{y}")))
            .collect::<Vec<_>>()
            .join("\n");
        catalog.register_csv(name, csv.as_bytes()).expect(name);
    }
    let engine = Engine::new(catalog);

    // Serve the same ids on one worker and on a full pool.
    let single = serve_once(&engine, 1);
    let pooled = serve_once(&engine, ServiceConfig::default().workers.max(2));

    // Determinism contract: same root seed + same request ids ⇒
    // identical per-request samples, whatever the interleaving.
    assert_eq!(single.len(), pooled.len());
    for (a, b) in single.iter().zip(&pooled) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.tuples, b.tuples, "request {} diverged", a.id);
    }
    println!(
        "determinism: {} requests bit-identical across worker counts ✓",
        single.len()
    );
    println!("sample of request 0: {:?}", single[0].tuples.first());
}
