//! Online union sampling (Algorithm 2, §7): start from cheap histogram
//! parameters, refine with random walks *while* sampling, reuse warm-up
//! tuples, and backtrack previously returned samples as estimates move.
//!
//! Run with: `cargo run --release --example online_sampling`

use sample_union_joins::prelude::*;
use std::sync::Arc;
use suj_core::walk_estimator::WalkEstimatorConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // UQ2: three predicate variants of the same five-relation chain —
    // the high-overlap workload where union machinery earns its keep.
    let opts = UqOptions::new(4, 7, 0.2);
    let workload = Arc::new(uq2(&opts)?);
    println!("UQ2 joins:");
    for j in workload.joins() {
        println!("  {j}");
    }

    let config = OnlineConfig {
        phi: 256,   // re-estimate every 256 recorded walks
        gamma: 0.9, // stop updating at 90% confidence
        warmup: WalkEstimatorConfig {
            max_walks_per_join: 500,
            ..Default::default()
        },
        ..Default::default()
    };

    for (label, reuse) in [("with sample reuse", true), ("without reuse", false)] {
        let mut sampler = SamplerBuilder::for_workload(workload.clone())
            .strategy(Strategy::Online(OnlineConfig { reuse, ..config }))
            .build()?;
        let mut rng = SujRng::seed_from_u64(99);
        let (samples, report) = sampler.sample(2000, &mut rng)?;
        println!("\n--- {label} ---");
        println!("returned {} samples", samples.len());
        println!(
            "reuse hits: {}, walks rejected: {}",
            report.reuse_accepted, report.rejected_join
        );
        println!(
            "parameter updates: {}, backtrack drops: {}",
            report.update_rounds, report.backtrack_dropped
        );
        println!(
            "phase times: warmup {:?}, accepted {:?}, rejected {:?}, reuse {:?}, updates {:?}",
            report.warmup_time,
            report.accepted_time,
            report.rejected_time,
            report.reuse_time,
            report.update_time
        );
    }
    Ok(())
}
