//! Network serving over the length-prefixed TCP protocol, plus
//! snapshot-restored replicas.
//!
//! One process plays both roles over loopback: it starts a
//! [`Server`] fronting an engine, talks to it with the blocking
//! [`Client`], then snapshots the engine, restores a cold replica,
//! serves the same requests from it, and shows the samples are
//! bit-identical — without the replica running a single estimation
//! pass.
//!
//! Run with: `cargo run --example tcp_serve`

use sample_union_joins::prelude::*;
use sample_union_joins::{Client, Server, ServiceConfig};

fn relation(name: &str, attrs: &[&str], rows: Vec<Vec<i64>>) -> Relation {
    let schema = Schema::new(attrs.iter().copied()).unwrap();
    let tuples = rows
        .into_iter()
        .map(|vals| vals.into_iter().map(Value::int).collect())
        .collect();
    Relation::new(name, schema, tuples).unwrap()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small catalog with two overlapping chain joins.
    let mut catalog = Catalog::new();
    catalog.register(relation(
        "ra",
        &["a", "b"],
        (0..64).map(|i| vec![i, i % 8]).collect(),
    ))?;
    catalog.register(relation(
        "rb",
        &["a", "b"],
        (0..48).map(|i| vec![i + 100, i % 8]).collect(),
    ))?;
    catalog.register(relation(
        "s",
        &["b", "c"],
        (0..8).map(|b| vec![b, 1000 + b]).collect(),
    ))?;
    let engine = Engine::new(catalog);

    let query = UnionQuery::set_union()
        .chain("j1", ["ra", "s"])?
        .chain("j2", ["rb", "s"])?;

    // --- Serve the engine over TCP -----------------------------------
    let server = Server::bind(
        engine.clone(),
        "127.0.0.1:0",
        ServiceConfig::with_workers(2),
    )?;
    println!("server listening on {}", server.addr());

    let mut client = Client::connect(server.addr())?;
    let remote = client.prepare(&query)?;
    println!(
        "prepared remote query #{} ({} estimation passes): {}",
        remote.id, remote.estimations, remote.summary
    );

    let batch = client.sample(&remote, 10, 42)?;
    println!("10 samples under seed 42 ({}):", batch.attrs.join(", "));
    for t in &batch.tuples {
        println!("  {t}");
    }
    let original = client.sample(&remote, 100, 7)?;
    println!("server stats: {:?}", client.stats()?);
    client.shutdown()?;
    server.join()?;

    // --- Snapshot, then serve a cold replica -------------------------
    let dir = std::env::temp_dir().join("suj_tcp_serve_example");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("engine.snap");
    let bytes = engine.save_snapshot(&path)?;
    println!("\nsnapshot written: {} bytes -> {}", bytes, path.display());

    let replica = Engine::load_snapshot(&path)?;
    let replica_server = Server::bind(replica, "127.0.0.1:0", ServiceConfig::with_workers(2))?;
    let mut replica_client = Client::connect(replica_server.addr())?;
    let replica_remote = replica_client.prepare(&query)?;
    println!(
        "replica prepared with {} estimation passes (restored, not re-estimated)",
        replica_remote.estimations
    );

    let replayed = replica_client.sample(&replica_remote, 100, 7)?;
    assert_eq!(
        original.tuples, replayed.tuples,
        "replica must replay the original samples bit-identically"
    );
    println!("replica replayed 100 samples under seed 7 bit-identically");
    println!("replica stats: {:?}", replica_client.stats()?);

    replica_client.shutdown()?;
    replica_server.join()?;
    std::fs::remove_file(&path).ok();
    Ok(())
}
