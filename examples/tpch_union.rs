//! End-to-end run on the paper's UQ1 workload: five overlapping TPC-H
//! chain joins, parameters estimated (no ground truth consulted), then
//! uniform union sampling with both estimator families — each pipeline
//! assembled by the `SamplerBuilder`.
//!
//! Run with: `cargo run --release --example tpch_union`

use sample_union_joins::prelude::*;
use std::sync::Arc;
use suj_core::walk_estimator::{walk_warmup, WalkEstimatorConfig};
use suj_join::WeightKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Five chain joins (nation ⋈ supplier ⋈ customer ⋈ orders ⋈
    // lineitem) over database variants sharing 20% of their rows.
    let opts = UqOptions::new(4, 2024, 0.2);
    let workload = Arc::new(uq1(&opts)?);
    println!("UQ1: {} joins over TPC-H variants", workload.n_joins());
    for j in workload.joins() {
        println!("  {j}");
    }

    // --- Histogram-based estimation (decentralized setting, §5). ---
    let hist = HistogramEstimator::with_olken(&workload, DegreeMode::Max)?;
    let hist_map = hist.overlap_map()?;
    println!(
        "\nhistogram-based estimate: |U| ≈ {:.0} (template cost {:.1})",
        hist_map.union_size(),
        hist.template().cost
    );

    // --- Random-walk estimation (centralized setting, §6). ---
    let mut rng = SujRng::seed_from_u64(1);
    let walk = walk_warmup(&workload, &WalkEstimatorConfig::default(), &mut rng)?;
    let walk_map = walk.overlap_map()?;
    println!(
        "random-walk estimate:     |U| ≈ {:.0} ({} walks total)",
        walk_map.union_size(),
        walk.walks_spent.iter().sum::<u64>()
    );

    // Ground truth for reference (expensive — the thing we avoid).
    let exact = full_join_union(&workload)?;
    println!("FullJoinUnion truth:      |U| = {}", exact.union_size());

    // --- Sample with random-walk parameters (EW subroutine): the
    // builder owns estimation, cover construction, and sampling. ---
    let mut sampler = SamplerBuilder::for_workload(workload.clone())
        .estimator(Estimator::Walk(WalkEstimatorConfig::default()))
        .estimation_seed(1)
        .weights(WeightKind::Exact)
        .build()?;
    let (samples, report) = sampler.sample(1000, &mut rng)?;
    println!("\nsampled {} tuples; {}", samples.len(), report.summary());

    // Sanity: every sample is a member of the true union.
    let members = samples
        .iter()
        .filter(|t| exact.union_set.contains(*t))
        .count();
    println!(
        "membership check: {members}/{} samples in the true union",
        samples.len()
    );
    Ok(())
}
