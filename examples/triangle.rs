//! Uniform triangle sampling from a graph edge list — the cyclic-join
//! path end to end (§8.2).
//!
//! A triangle query `e(a,b) ⋈ e(b,c) ⋈ e(c,a)` is the canonical
//! cyclic join: no spanning tree exists, so none of the tree-walk
//! samplers apply. The planner detects the cycle and routes to the
//! AGM-bound box-splitting sampler, whose accepted draws are exactly
//! uniform over the (ordered) triangles of the graph.
//!
//! Run with: `cargo run --release --example triangle`

use sample_union_joins::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A deterministic random graph on 24 vertices (edge prob. 1/4),
    // stored symmetrically so every triangle orientation is present.
    let mut graph_rng = SujRng::seed_from_u64(2023);
    let mut edges: Vec<(i64, i64)> = Vec::new();
    for u in 0..24i64 {
        for v in (u + 1)..24 {
            if graph_rng.bernoulli(0.25) {
                edges.push((u, v));
                edges.push((v, u));
            }
        }
    }
    println!("graph: 24 vertices, {} directed edges", edges.len());

    // One copy of the edge list per triangle side, renamed so the
    // natural join closes the cycle a → b → c → a — plus a "hub"
    // restriction of the closing side to the first 12 vertices, so the
    // query is a genuine union of two (overlapping) cyclic joins.
    let mut catalog = Catalog::new();
    let register = |catalog: &mut Catalog,
                    name: &str,
                    attrs: [&str; 2],
                    rows: &[(i64, i64)]|
     -> Result<(), Box<dyn std::error::Error>> {
        let schema = Schema::new(attrs)?;
        let tuples = rows
            .iter()
            .map(|&(u, v)| Tuple::new(vec![Value::int(u), Value::int(v)]))
            .collect();
        catalog.register(Relation::new(name, schema, tuples)?)?;
        Ok(())
    };
    register(&mut catalog, "e_ab", ["a", "b"], &edges)?;
    register(&mut catalog, "e_bc", ["b", "c"], &edges)?;
    register(&mut catalog, "e_ca", ["c", "a"], &edges)?;
    let hub: Vec<(i64, i64)> = edges
        .iter()
        .copied()
        .filter(|&(u, v)| u < 12 && v < 12)
        .collect();
    register(&mut catalog, "e_ca_hub", ["c", "a"], &hub)?;

    let query = UnionQuery::set_union()
        .join(JoinDef::natural("triangles", ["e_ab", "e_bc", "e_ca"]))?
        .join(JoinDef::natural(
            "hub_triangles",
            ["e_ab", "e_bc", "e_ca_hub"],
        ))?;
    let engine = Engine::new(catalog);

    // EXPLAIN: the planner names the cyclic-join rule and the bound.
    let prepared = engine.prepare(&query)?;
    println!("\n{}\n", prepared.explain());

    // Each triangle {u, v, w} appears as six ordered tuples, so a
    // uniform sample over the join is a uniform sample of triangles.
    let (samples, report) = prepared.sample(12, 7)?;
    println!("12 uniform ordered triangles (a, b, c):");
    for t in &samples {
        println!("  {t}");
    }
    println!("\n{}", report.summary());
    Ok(())
}
