//! The planner end to end: declarative TPC-H queries, `EXPLAIN`
//! output, and `Strategy::Auto` on the explicit builder.
//!
//! Registers the deterministic TPC-H style tables in a `Catalog`,
//! then shows three queries whose planned configurations differ —
//! overlapping chains (Algorithm 1), a single join (plain per-join
//! sampling), and disjoint-union semantics (Definition 1) — plus
//! `Strategy::Auto` picking a configuration for the paper's UQ1
//! workload through the plain `SamplerBuilder`.
//!
//! Run with: `cargo run --release --example auto_query`

use sample_union_joins::prelude::*;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut catalog = Catalog::new();
    catalog.register_tpch(&TpchConfig::new(1, 42))?;
    let engine = Engine::new(catalog);
    let mut rng = SujRng::seed_from_u64(11);

    // --- 1. Two overlapping chains over shared tables. ---
    let q1 = UnionQuery::set_union()
        .chain("geo_suppliers", ["region", "nation", "supplier"])?
        .chain("geo_customers", ["region", "nation", "customer"])?;
    // Those two joins have different output schemas, so the engine
    // rejects the query with a named error instead of sampling garbage:
    match engine.plan(&q1) {
        Ok(_) => unreachable!("schema mismatch must be rejected"),
        Err(e) => println!("rejected as expected: {e}\n"),
    }

    // A valid union: supplier chains from two predicate variants.
    let base = UnionQuery::set_union()
        .chain("suppliers_low", ["nation", "supplier"])?
        .predicate(Predicate::cmp("nationkey", CompareOp::Lt, Value::int(13)));
    let prepared = engine.prepare(&base)?;
    println!("--- single filtered chain ---\n{}\n", prepared.explain());
    let (samples, report) = prepared.run(5, &mut rng)?;
    println!("{} samples; {}\n", samples.len(), report.summary());

    // --- 2. Disjoint-union semantics force Definition 1 sampling. ---
    let q3 = UnionQuery::disjoint_union()
        .chain("ns_a", ["nation", "supplier"])?
        .chain("ns_b", ["nation", "supplier"])?;
    let plan = engine.plan(&q3)?;
    println!("--- disjoint union ---\n{}\n", plan.explain());

    // --- 3. Strategy::Auto through the explicit builder (UQ1). ---
    let workload = Arc::new(uq1(&UqOptions::new(1, 7, 0.3))?);
    let mut sampler = SamplerBuilder::for_workload(workload)
        .strategy(Strategy::Auto)
        .build()?;
    let (samples, report) = sampler.sample(50, &mut rng)?;
    println!("--- Strategy::Auto on UQ1 ---");
    println!("{} samples; {}", samples.len(), report.summary());
    Ok(())
}
