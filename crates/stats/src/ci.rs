//! Normal-approximation confidence intervals.
//!
//! The random-walk warm-up (§6) terminates when the half-width
//! `z_α · σ/√n` of the estimate's confidence interval falls below a
//! threshold. This module supplies `z` values via an inverse standard
//! normal CDF (Acklam's rational approximation, |rel err| < 1.15e-9),
//! so arbitrary confidence levels work, not just a lookup table.

/// A symmetric confidence interval `estimate ± half_width`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate at the interval center.
    pub estimate: f64,
    /// Half-width of the interval.
    pub half_width: f64,
    /// Confidence level in `(0, 1)`, e.g. `0.9`.
    pub confidence: f64,
}

impl ConfidenceInterval {
    /// Lower bound of the interval.
    pub fn lo(&self) -> f64 {
        self.estimate - self.half_width
    }

    /// Upper bound of the interval.
    pub fn hi(&self) -> f64 {
        self.estimate + self.half_width
    }

    /// Whether `x` falls inside the interval.
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo() && x <= self.hi()
    }

    /// Relative half-width; `∞` when the estimate is zero.
    pub fn relative(&self) -> f64 {
        if self.estimate == 0.0 {
            f64::INFINITY
        } else {
            (self.half_width / self.estimate).abs()
        }
    }
}

/// Inverse standard normal CDF (probit), Acklam's algorithm.
///
/// Valid for `p ∈ (0, 1)`; panics outside.
pub fn inverse_normal_cdf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "probit domain is (0,1), got {p}");

    // Coefficients for the rational approximations.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Two-sided z-value for a confidence level, e.g. `z_value(0.95) ≈ 1.96`.
pub fn z_value(confidence: f64) -> f64 {
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence level must be in (0,1), got {confidence}"
    );
    inverse_normal_cdf(0.5 + confidence / 2.0)
}

/// Half-width `z · σ / √n` of a normal-approximation CI.
pub fn half_width(confidence: f64, std_dev: f64, n: u64) -> f64 {
    if n == 0 {
        return f64::INFINITY;
    }
    z_value(confidence) * std_dev / (n as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_z_values() {
        assert!((z_value(0.90) - 1.6449).abs() < 1e-3);
        assert!((z_value(0.95) - 1.9600).abs() < 1e-3);
        assert!((z_value(0.99) - 2.5758).abs() < 1e-3);
    }

    #[test]
    fn probit_symmetry() {
        for &p in &[0.01, 0.1, 0.25, 0.4] {
            let lo = inverse_normal_cdf(p);
            let hi = inverse_normal_cdf(1.0 - p);
            assert!((lo + hi).abs() < 1e-8, "probit not symmetric at {p}");
        }
        assert!(inverse_normal_cdf(0.5).abs() < 1e-9);
    }

    #[test]
    fn probit_tail_values() {
        // Φ⁻¹(0.001) ≈ -3.0902
        assert!((inverse_normal_cdf(0.001) + 3.0902).abs() < 1e-3);
        // Φ⁻¹(0.999) ≈ 3.0902
        assert!((inverse_normal_cdf(0.999) - 3.0902).abs() < 1e-3);
    }

    #[test]
    fn half_width_scales_inverse_sqrt_n() {
        let w100 = half_width(0.95, 2.0, 100);
        let w400 = half_width(0.95, 2.0, 400);
        assert!((w100 / w400 - 2.0).abs() < 1e-9);
        assert!(half_width(0.95, 2.0, 0).is_infinite());
    }

    #[test]
    fn interval_accessors() {
        let ci = ConfidenceInterval {
            estimate: 10.0,
            half_width: 2.0,
            confidence: 0.9,
        };
        assert_eq!(ci.lo(), 8.0);
        assert_eq!(ci.hi(), 12.0);
        assert!(ci.contains(9.0));
        assert!(!ci.contains(12.5));
        assert!((ci.relative() - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "confidence level")]
    fn rejects_bad_confidence() {
        z_value(1.0);
    }
}
