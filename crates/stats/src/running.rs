//! Welford-style running moments.
//!
//! The wander-join estimators (§6.1) update a join-size estimate one random
//! walk at a time; [`RunningMoments`] provides numerically stable online
//! mean and variance for that purpose, matching the paper's
//! `|J|_{S∪t0} = |J|_S + (1/(m+1)) (1/p(t0) − |J|_S)` update rule.

/// Numerically stable running mean / variance accumulator (Welford).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunningMoments {
    count: u64,
    mean: f64,
    m2: f64,
}

impl RunningMoments {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (`m2 / n`); `0.0` for fewer than one observation.
    pub fn variance_population(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (`m2 / (n − 1)`); `0.0` for fewer than two
    /// observations. This is the `T_{n,2}` term of §6.2.
    pub fn variance_sample(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev_sample(&self) -> f64 {
        self.variance_sample().sqrt()
    }

    /// Standard error of the mean (`s / √n`).
    pub fn standard_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev_sample() / (self.count as f64).sqrt()
        }
    }

    /// Merges another accumulator into this one (parallel Welford / Chan).
    pub fn merge(&mut self, other: &RunningMoments) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_mean_var(xs: &[f64]) -> (f64, f64) {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        (mean, var)
    }

    #[test]
    fn matches_naive_computation() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0, 5.0, 3.5];
        let mut rm = RunningMoments::new();
        for &x in &xs {
            rm.push(x);
        }
        let (mean, var) = naive_mean_var(&xs);
        assert!((rm.mean() - mean).abs() < 1e-12);
        assert!((rm.variance_sample() - var).abs() < 1e-12);
    }

    #[test]
    fn empty_and_single_are_safe() {
        let mut rm = RunningMoments::new();
        assert_eq!(rm.mean(), 0.0);
        assert_eq!(rm.variance_sample(), 0.0);
        rm.push(7.0);
        assert_eq!(rm.mean(), 7.0);
        assert_eq!(rm.variance_sample(), 0.0);
        assert_eq!(rm.count(), 1);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| ((i * 37) % 17) as f64).collect();
        let mut all = RunningMoments::new();
        for &x in &xs {
            all.push(x);
        }
        let mut left = RunningMoments::new();
        let mut right = RunningMoments::new();
        for &x in &xs[..33] {
            left.push(x);
        }
        for &x in &xs[33..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), all.count());
        assert!((left.mean() - all.mean()).abs() < 1e-9);
        assert!((left.variance_sample() - all.variance_sample()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningMoments::new();
        a.push(1.0);
        a.push(2.0);
        let before = a.clone();
        a.merge(&RunningMoments::new());
        assert_eq!(a, before);

        let mut empty = RunningMoments::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn constant_stream_has_zero_variance() {
        let mut rm = RunningMoments::new();
        for _ in 0..1000 {
            rm.push(5.5);
        }
        assert!((rm.mean() - 5.5).abs() < 1e-12);
        assert!(rm.variance_sample().abs() < 1e-12);
    }
}
