//! Horvitz–Thompson estimation for wander join (§6.1).
//!
//! A random walk over the join data graph yields a join result tuple `t`
//! with a known, data-dependent probability `p(t)`. The Horvitz–Thompson
//! estimator of the join size based on `m` walks is
//! `|J|_S = (1/m) Σ_k 1/p(t_k)`, where failed walks contribute `0`.
//! The paper updates the estimate incrementally as each walk completes;
//! this module provides exactly that, plus the variance terms `T_n(u)` and
//! `T_{n,2}(u)` that feed the confidence interval of Eq. 3.

use crate::ci::z_value;
use crate::running::RunningMoments;

/// Online Horvitz–Thompson size estimator.
///
/// Each successful random walk contributes `1/p(t)`; each failed walk
/// contributes `0`. [`HorvitzThompson::estimate`] is the running mean of
/// those contributions, an unbiased estimate of the join size.
#[derive(Debug, Clone, Default)]
pub struct HorvitzThompson {
    moments: RunningMoments,
    successes: u64,
}

impl HorvitzThompson {
    /// Creates an empty estimator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a successful walk that produced a tuple with probability
    /// `p` (`0 < p ≤ 1`).
    pub fn push_success(&mut self, p: f64) {
        assert!(
            p > 0.0 && p <= 1.0,
            "walk probability must be in (0,1], got {p}"
        );
        self.moments.push(1.0 / p);
        self.successes += 1;
    }

    /// Records a failed walk (a dead end in the join graph); contributes
    /// zero, which keeps the estimator unbiased.
    pub fn push_failure(&mut self) {
        self.moments.push(0.0);
    }

    /// Total number of walks recorded (successes + failures).
    pub fn walks(&self) -> u64 {
        self.moments.count()
    }

    /// Number of successful walks.
    pub fn successes(&self) -> u64 {
        self.successes
    }

    /// Current size estimate (`T_n(u)` in the paper's notation).
    pub fn estimate(&self) -> f64 {
        self.moments.mean()
    }

    /// Sample variance of the per-walk contributions (`T_{n,2}(u)`).
    pub fn variance(&self) -> f64 {
        self.moments.variance_sample()
    }

    /// Half-width of the normal-approximation confidence interval at the
    /// given confidence level (e.g. `0.9`), i.e. `z · σ/√n`.
    pub fn ci_half_width(&self, confidence: f64) -> f64 {
        let n = self.moments.count();
        if n < 2 {
            return f64::INFINITY;
        }
        z_value(confidence) * self.moments.std_dev_sample() / (n as f64).sqrt()
    }

    /// Relative half-width (`half_width / estimate`); `∞` while the
    /// estimate is zero or too few walks have been recorded.
    pub fn relative_half_width(&self, confidence: f64) -> f64 {
        let est = self.estimate();
        if est <= 0.0 {
            return f64::INFINITY;
        }
        self.ci_half_width(confidence) / est
    }

    /// True once the relative CI half-width has shrunk below `threshold`
    /// at the given confidence level — the paper's warm-up termination
    /// criterion (§6.1).
    pub fn converged(&self, confidence: f64, threshold: f64) -> bool {
        self.relative_half_width(confidence) <= threshold
    }

    /// Merges walk statistics from another estimator.
    pub fn merge(&mut self, other: &HorvitzThompson) {
        self.moments.merge(&other.moments);
        self.successes += other.successes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SujRng;

    #[test]
    fn uniform_probability_recovers_population_size() {
        // If every element of a population of size 1000 is sampled with
        // p = 1/1000, the estimate is exactly 1000 for any sample.
        let mut ht = HorvitzThompson::new();
        for _ in 0..50 {
            ht.push_success(1.0 / 1000.0);
        }
        assert!((ht.estimate() - 1000.0).abs() < 1e-9);
        assert!(ht.variance() < 1e-9);
    }

    #[test]
    fn failures_shrink_the_estimate() {
        let mut ht = HorvitzThompson::new();
        ht.push_success(0.01); // contributes 100
        ht.push_failure(); // contributes 0
        assert!((ht.estimate() - 50.0).abs() < 1e-9);
        assert_eq!(ht.walks(), 2);
        assert_eq!(ht.successes(), 1);
    }

    #[test]
    fn unbiased_under_nonuniform_probabilities() {
        // Population of 100 items, item i sampled with probability p_i
        // proportional to i+1. E[1/p] over the sampling distribution = 100.
        let n = 100usize;
        let weights: Vec<f64> = (0..n).map(|i| (i + 1) as f64).collect();
        let total: f64 = weights.iter().sum();
        let probs: Vec<f64> = weights.iter().map(|w| w / total).collect();

        let mut rng = SujRng::seed_from_u64(99);
        let mut ht = HorvitzThompson::new();
        for _ in 0..200_000 {
            // inverse-CDF draw
            let u = rng.next_f64();
            let mut acc = 0.0;
            let mut idx = n - 1;
            for (i, &p) in probs.iter().enumerate() {
                acc += p;
                if u < acc {
                    idx = i;
                    break;
                }
            }
            ht.push_success(probs[idx]);
        }
        let rel_err = (ht.estimate() - n as f64).abs() / n as f64;
        assert!(
            rel_err < 0.05,
            "estimate {} rel_err {}",
            ht.estimate(),
            rel_err
        );
    }

    #[test]
    fn ci_shrinks_with_more_walks() {
        let mut rng = SujRng::seed_from_u64(4);
        let mut ht = HorvitzThompson::new();
        for _ in 0..100 {
            ht.push_success(if rng.bernoulli(0.5) { 0.01 } else { 0.02 });
        }
        let early = ht.ci_half_width(0.9);
        for _ in 0..10_000 {
            ht.push_success(if rng.bernoulli(0.5) { 0.01 } else { 0.02 });
        }
        let late = ht.ci_half_width(0.9);
        assert!(late < early, "late {late} must be < early {early}");
        assert!(ht.converged(0.9, 0.05));
    }

    #[test]
    fn empty_estimator_is_unconverged() {
        let ht = HorvitzThompson::new();
        assert_eq!(ht.estimate(), 0.0);
        assert!(!ht.converged(0.9, 0.1));
        assert!(ht.ci_half_width(0.9).is_infinite());
    }

    #[test]
    #[should_panic(expected = "walk probability")]
    fn rejects_invalid_probability() {
        let mut ht = HorvitzThompson::new();
        ht.push_success(0.0);
    }

    #[test]
    fn merge_pools_walks() {
        let mut a = HorvitzThompson::new();
        let mut b = HorvitzThompson::new();
        a.push_success(0.1);
        b.push_success(0.2);
        b.push_failure();
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.walks(), 3);
        assert_eq!(merged.successes(), 2);
        assert!((merged.estimate() - (10.0 + 5.0 + 0.0) / 3.0).abs() < 1e-12);
    }
}
