//! Flat arena of alias tables: one Walker/Vose table per *segment*,
//! all stored in three shared slabs.
//!
//! The Exact-Weight join sampler needs one alias table per key id per
//! join-tree edge (ISSUE 10 / ROADMAP item 4): a draw then cascades
//! root-alias → one O(1) alias lookup per edge with zero rejection.
//! Storing each table as its own [`AliasTable`](crate::AliasTable)
//! would mean two heap allocations per key id — millions of tiny
//! `Vec`s on realistic data. [`AliasArena`] instead packs every table
//! into one `prob` slab and one `alias` slab with a per-segment offset
//! column, mirroring the CSR postings layout the segments correspond
//! to: segment `k` of the arena is congruent with posting list `k` of
//! the driving hash index, and [`AliasArena::draw`] returns a *local*
//! index into that posting list.
//!
//! Zero-total segments (all weights zero — dangling rows) are stored
//! degenerately (`prob = 1`, self-alias) so the congruence with the
//! posting lists is preserved; callers reject such draws via their own
//! weight-zero guard, exactly as the pre-arena code did.

use crate::rng::SujRng;

/// A packed collection of alias tables sharing three flat slabs.
///
/// Built once via [`AliasArenaBuilder`], drawn from millions of times,
/// and serialized/revalidated through [`AliasArena::from_parts`].
#[derive(Debug, Clone, PartialEq)]
pub struct AliasArena {
    /// `segments() + 1` offsets into the slabs; segment `k` spans
    /// `offsets[k]..offsets[k + 1]`.
    offsets: Vec<u32>,
    /// Acceptance probability per slot, in `[0, 1]`.
    prob: Vec<f64>,
    /// Segment-local alias index per slot.
    alias: Vec<u32>,
}

impl AliasArena {
    /// Reassembles an arena from raw slabs (e.g. decoded from a
    /// snapshot), validating every structural invariant:
    ///
    /// * `offsets` is non-empty, starts at 0, is monotone
    ///   non-decreasing, and ends exactly at the slab length;
    /// * `prob` and `alias` have equal length;
    /// * every probability is finite and within `[0, 1]`;
    /// * every alias index stays inside its own segment.
    ///
    /// Returns `None` if any invariant fails.
    pub fn from_parts(offsets: Vec<u32>, prob: Vec<f64>, alias: Vec<u32>) -> Option<Self> {
        let (first, last) = (*offsets.first()?, *offsets.last()?);
        if first != 0 || last as usize != prob.len() || prob.len() != alias.len() {
            return None;
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return None;
        }
        if prob
            .iter()
            .any(|p| !p.is_finite() || !(0.0..=1.0).contains(p))
        {
            return None;
        }
        for w in offsets.windows(2) {
            let (lo, hi) = (w[0] as usize, w[1] as usize);
            let n = (hi - lo) as u32;
            if alias[lo..hi].iter().any(|&a| a >= n) {
                return None;
            }
        }
        Some(Self {
            offsets,
            prob,
            alias,
        })
    }

    /// Number of segments (alias tables) in the arena.
    pub fn segments(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of slots in segment `k`.
    pub fn segment_len(&self, k: usize) -> usize {
        (self.offsets[k + 1] - self.offsets[k]) as usize
    }

    /// Total number of slots across all segments.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the arena holds no slots at all.
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// The raw offset column (length `segments() + 1`).
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// The raw probability slab.
    pub fn prob(&self) -> &[f64] {
        &self.prob
    }

    /// The raw segment-local alias slab.
    pub fn alias_slab(&self) -> &[u32] {
        &self.alias
    }

    /// Heap footprint of the three slabs in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<u32>()
            + self.prob.len() * std::mem::size_of::<f64>()
            + self.alias.len() * std::mem::size_of::<u32>()
    }

    /// Draws a segment-local index from segment `segment` in O(1):
    /// one uniform slot pick plus at most one alias redirect.
    ///
    /// Allocation-free. Panics if the segment is empty (callers index
    /// arenas by key ids whose posting lists are never empty).
    #[inline]
    pub fn draw(&self, segment: u32, rng: &mut SujRng) -> u32 {
        let lo = self.offsets[segment as usize] as usize;
        let hi = self.offsets[segment as usize + 1] as usize;
        let i = rng.index(hi - lo);
        if rng.next_f64() < self.prob[lo + i] {
            i as u32
        } else {
            self.alias[lo + i]
        }
    }
}

/// Incremental builder for [`AliasArena`]: push one weight segment at
/// a time; Vose worklist scratch is reused across segments so building
/// `m` tables costs `m` pushes and zero per-table allocations beyond
/// the three shared slabs.
#[derive(Debug, Default)]
pub struct AliasArenaBuilder {
    offsets: Vec<u32>,
    prob: Vec<f64>,
    alias: Vec<u32>,
    // Reused Vose scratch (segment-local).
    scaled: Vec<f64>,
    small: Vec<u32>,
    large: Vec<u32>,
}

impl AliasArenaBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self {
            offsets: vec![0],
            ..Self::default()
        }
    }

    /// Creates a builder with slab capacity for `segments` tables and
    /// `slots` total entries.
    pub fn with_capacity(segments: usize, slots: usize) -> Self {
        Self {
            offsets: {
                let mut v = Vec::with_capacity(segments + 1);
                v.push(0);
                v
            },
            prob: Vec::with_capacity(slots),
            alias: Vec::with_capacity(slots),
            scaled: Vec::new(),
            small: Vec::new(),
            large: Vec::new(),
        }
    }

    /// Appends one segment of `n` slots whose weight at local index
    /// `i` is `weight(i)`. Non-finite or negative weights are treated
    /// as zero. A zero-total segment is stored degenerately
    /// (`prob = 1`, self-alias): draws on it return a uniform slot and
    /// the caller's zero-weight guard is expected to reject them.
    pub fn push_segment_with(&mut self, n: usize, mut weight: impl FnMut(usize) -> f64) {
        let base = self.prob.len();
        debug_assert!(self.offsets.last() == Some(&(base as u32)));
        self.prob.resize(base + n, 1.0);
        self.alias.resize(base + n, 0);

        self.scaled.clear();
        let mut total = 0.0f64;
        for i in 0..n {
            let w = weight(i);
            let w = if w.is_finite() && w > 0.0 { w } else { 0.0 };
            total += w;
            self.scaled.push(w);
        }
        if total > 0.0 {
            let scale = n as f64 / total;
            self.small.clear();
            self.large.clear();
            for (i, w) in self.scaled.iter_mut().enumerate() {
                *w *= scale;
                if *w < 1.0 {
                    self.small.push(i as u32);
                } else {
                    self.large.push(i as u32);
                }
            }
            while let (Some(&s), Some(&l)) = (self.small.last(), self.large.last()) {
                self.small.pop();
                self.large.pop();
                let (s, l) = (s as usize, l as usize);
                self.prob[base + s] = self.scaled[s];
                self.alias[base + s] = l as u32;
                self.scaled[l] = (self.scaled[l] + self.scaled[s]) - 1.0;
                if self.scaled[l] < 1.0 {
                    self.small.push(l as u32);
                } else {
                    self.large.push(l as u32);
                }
            }
            // Leftover worklist entries hold numerical residue ≈ 1;
            // their slots keep the prob = 1.0 they were initialized
            // with (alias never consulted).
            for &leftover in self.small.iter().chain(self.large.iter()) {
                self.alias[base + leftover as usize] = leftover;
            }
        } else {
            // Degenerate zero-total segment: uniform self-alias.
            for (i, slot) in self.alias[base..].iter_mut().enumerate() {
                *slot = i as u32;
            }
        }
        let end = u32::try_from(base + n).expect("alias arena exceeds u32 slots");
        self.offsets.push(end);
    }

    /// Appends one segment from a weight slice.
    pub fn push_segment(&mut self, weights: &[f64]) {
        self.push_segment_with(weights.len(), |i| weights[i]);
    }

    /// Finalizes the arena.
    pub fn finish(self) -> AliasArena {
        AliasArena {
            offsets: self.offsets,
            prob: self.prob,
            alias: self.alias,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::AliasTable;

    fn empirical(
        draws: usize,
        n: usize,
        seed: u64,
        mut f: impl FnMut(&mut SujRng) -> usize,
    ) -> Vec<f64> {
        let mut rng = SujRng::seed_from_u64(seed);
        let mut counts = vec![0usize; n];
        for _ in 0..draws {
            counts[f(&mut rng)] += 1;
        }
        counts.iter().map(|&c| c as f64 / draws as f64).collect()
    }

    #[test]
    fn arena_segment_agrees_with_alias_table() {
        let weights = [0.5, 0.0, 8.0, 1.5, 3.0];
        let table = AliasTable::new(&weights).unwrap();
        let mut b = AliasArenaBuilder::new();
        b.push_segment(&weights);
        let arena = b.finish();
        let ft = empirical(200_000, 5, 99, |rng| table.draw(rng));
        let fa = empirical(200_000, 5, 17, |rng| arena.draw(0, rng) as usize);
        for i in 0..5 {
            assert!(
                (ft[i] - fa[i]).abs() < 0.01,
                "slot {i}: {} vs {}",
                ft[i],
                fa[i]
            );
        }
    }

    #[test]
    fn multi_segment_draws_match_weights() {
        let segs: Vec<Vec<f64>> = vec![
            vec![1.0, 2.0, 3.0, 4.0],
            vec![10.0],
            vec![0.0, 5.0, 0.0, 5.0, 10.0],
        ];
        let mut b = AliasArenaBuilder::with_capacity(segs.len(), 10);
        for s in &segs {
            b.push_segment(s);
        }
        let arena = b.finish();
        assert_eq!(arena.segments(), 3);
        for (k, s) in segs.iter().enumerate() {
            assert_eq!(arena.segment_len(k), s.len());
            let total: f64 = s.iter().sum();
            let freqs = empirical(200_000, s.len(), 7 + k as u64, |rng| {
                arena.draw(k as u32, rng) as usize
            });
            for (i, &f) in freqs.iter().enumerate() {
                let expect = s[i] / total;
                assert!(
                    (f - expect).abs() < 0.01,
                    "seg {k} slot {i}: {f} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn zero_weight_slots_never_drawn() {
        let mut b = AliasArenaBuilder::new();
        b.push_segment(&[0.0, 7.0, 0.0]);
        let arena = b.finish();
        let mut rng = SujRng::seed_from_u64(3);
        for _ in 0..2_000 {
            assert_eq!(arena.draw(0, &mut rng), 1);
        }
    }

    #[test]
    fn zero_total_segment_is_degenerate_but_drawable() {
        let mut b = AliasArenaBuilder::new();
        b.push_segment(&[0.0, 0.0, 0.0]);
        b.push_segment(&[1.0, 1.0]);
        let arena = b.finish();
        let mut rng = SujRng::seed_from_u64(5);
        for _ in 0..500 {
            assert!(arena.draw(0, &mut rng) < 3);
            assert!(arena.draw(1, &mut rng) < 2);
        }
    }

    #[test]
    fn u64_counts_round_trip_through_f64_weights() {
        // Integer counts are what the EW sampler feeds in; make sure a
        // skewed integer profile is preserved.
        let counts: [u64; 4] = [1, 1_000, 1, 998];
        let mut b = AliasArenaBuilder::new();
        b.push_segment_with(counts.len(), |i| counts[i] as f64);
        let arena = b.finish();
        let total: u64 = counts.iter().sum();
        let freqs = empirical(400_000, 4, 21, |rng| arena.draw(0, rng) as usize);
        for (i, &f) in freqs.iter().enumerate() {
            let expect = counts[i] as f64 / total as f64;
            assert!((f - expect).abs() < 0.01, "slot {i}: {f} vs {expect}");
        }
    }

    #[test]
    fn from_parts_round_trips() {
        let mut b = AliasArenaBuilder::new();
        b.push_segment(&[1.0, 2.0]);
        b.push_segment(&[0.0, 0.0]);
        b.push_segment(&[5.0]);
        let arena = b.finish();
        let rebuilt = AliasArena::from_parts(
            arena.offsets().to_vec(),
            arena.prob().to_vec(),
            arena.alias_slab().to_vec(),
        )
        .unwrap();
        assert_eq!(arena, rebuilt);
    }

    #[test]
    fn from_parts_rejects_structural_corruption() {
        let ok_off = vec![0u32, 2, 2, 3];
        let ok_prob = vec![0.5, 1.0, 1.0];
        let ok_alias = vec![1u32, 0, 0];
        assert!(
            AliasArena::from_parts(ok_off.clone(), ok_prob.clone(), ok_alias.clone()).is_some()
        );
        // Empty offsets.
        assert!(AliasArena::from_parts(vec![], ok_prob.clone(), ok_alias.clone()).is_none());
        // First offset nonzero.
        assert!(AliasArena::from_parts(vec![1, 3], ok_prob.clone(), ok_alias.clone()).is_none());
        // Last offset disagrees with slab length.
        assert!(AliasArena::from_parts(vec![0, 2], ok_prob.clone(), ok_alias.clone()).is_none());
        // Non-monotone offsets.
        assert!(
            AliasArena::from_parts(vec![0, 3, 2, 3], ok_prob.clone(), ok_alias.clone()).is_none()
        );
        // Slab length mismatch.
        assert!(AliasArena::from_parts(ok_off.clone(), vec![0.5, 1.0], ok_alias.clone()).is_none());
        // Probability out of range / non-finite.
        assert!(
            AliasArena::from_parts(ok_off.clone(), vec![0.5, 2.0, 1.0], ok_alias.clone()).is_none()
        );
        assert!(
            AliasArena::from_parts(ok_off.clone(), vec![0.5, f64::NAN, 1.0], ok_alias.clone())
                .is_none()
        );
        // Alias escaping its segment.
        assert!(AliasArena::from_parts(ok_off, ok_prob, vec![2, 0, 0]).is_none());
    }

    #[test]
    fn memory_bytes_counts_all_three_slabs() {
        let mut b = AliasArenaBuilder::new();
        b.push_segment(&[1.0, 2.0, 3.0]);
        let arena = b.finish();
        // offsets: 2 × 4, prob: 3 × 8, alias: 3 × 4.
        assert_eq!(arena.memory_bytes(), 2 * 4 + 3 * 8 + 3 * 4);
    }
}
