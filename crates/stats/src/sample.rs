//! Weighted categorical sampling.
//!
//! Join selection in the union framework draws a join index `j` with
//! probability `|J'_j| / |U|` on every iteration (Algorithm 1 line 6).
//! Two implementations are provided:
//!
//! * [`Categorical`] — cumulative-weights + binary search, O(log n) per
//!   draw, cheap to rebuild when the weights change (Algorithm 2 updates
//!   them after every backtracking round).
//! * [`AliasTable`] — Walker/Vose alias method, O(1) per draw, best when
//!   the distribution is fixed and drawn from millions of times (the
//!   Exact-Weight join sampler's root selection).

use crate::rng::SujRng;

/// Cumulative-distribution categorical sampler.
#[derive(Debug, Clone)]
pub struct Categorical {
    cumulative: Vec<f64>,
    total: f64,
}

impl Categorical {
    /// Builds a sampler from non-negative weights. Returns `None` if the
    /// weights are empty, contain a negative/NaN entry, or all are zero.
    pub fn new(weights: &[f64]) -> Option<Self> {
        if weights.is_empty() {
            return None;
        }
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            if !w.is_finite() || w < 0.0 {
                return None;
            }
            acc += w;
            cumulative.push(acc);
        }
        if acc <= 0.0 {
            return None;
        }
        Some(Self {
            cumulative,
            total: acc,
        })
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the sampler has zero categories (never true for a
    /// successfully constructed sampler).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Total weight mass.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Probability of category `i`.
    pub fn probability(&self, i: usize) -> f64 {
        let prev = if i == 0 { 0.0 } else { self.cumulative[i - 1] };
        (self.cumulative[i] - prev) / self.total
    }

    /// Draws a category index.
    pub fn draw(&self, rng: &mut SujRng) -> usize {
        let x = rng.next_f64() * self.total;
        // partition_point returns the first index with cumulative > x.
        let idx = self.cumulative.partition_point(|&c| c <= x);
        idx.min(self.cumulative.len() - 1)
    }
}

/// Walker/Vose alias-method sampler: O(n) build, O(1) draw.
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl AliasTable {
    /// Builds an alias table from non-negative weights. Returns `None`
    /// under the same conditions as [`Categorical::new`].
    pub fn new(weights: &[f64]) -> Option<Self> {
        let n = weights.len();
        if n == 0 {
            return None;
        }
        let total: f64 = {
            let mut acc = 0.0;
            for &w in weights {
                if !w.is_finite() || w < 0.0 {
                    return None;
                }
                acc += w;
            }
            acc
        };
        if total <= 0.0 {
            return None;
        }

        let mut prob = vec![0.0f64; n];
        let mut alias = vec![0usize; n];
        let scale = n as f64 / total;
        let mut scaled: Vec<f64> = weights.iter().map(|&w| w * scale).collect();

        let mut small: Vec<usize> = Vec::with_capacity(n);
        let mut large: Vec<usize> = Vec::with_capacity(n);
        for (i, &p) in scaled.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            large.pop();
            prob[s] = scaled[s];
            alias[s] = l;
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        for &l in &large {
            prob[l] = 1.0;
        }
        for &s in &small {
            prob[s] = 1.0; // numerical residue
        }
        Some(Self { prob, alias })
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws a category index in O(1).
    pub fn draw(&self, rng: &mut SujRng) -> usize {
        let i = rng.index(self.prob.len());
        if rng.next_f64() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

/// Zipf-distributed index sampler: `P(i) ∝ 1/(i+1)^s` over `[0, n)`.
///
/// Exponent `s = 0` degenerates to the uniform distribution. Used by the
/// TPC-H generator's skew knob (the paper's §11 names "the impact of
/// data skew on approximations" as future work; the skew ablation
/// explores it).
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
    total: f64,
}

impl Zipf {
    /// Builds a Zipf sampler over `n` ranks with exponent `s ≥ 0`.
    /// Returns `None` for `n == 0` or non-finite/negative exponents.
    pub fn new(n: usize, s: f64) -> Option<Self> {
        if n == 0 || !s.is_finite() || s < 0.0 {
            return None;
        }
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cumulative.push(acc);
        }
        Some(Self {
            cumulative,
            total: acc,
        })
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the sampler is empty (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Probability of rank `i`.
    pub fn probability(&self, i: usize) -> f64 {
        let prev = if i == 0 { 0.0 } else { self.cumulative[i - 1] };
        (self.cumulative[i] - prev) / self.total
    }

    /// Draws a rank (0 is the hottest).
    pub fn draw(&self, rng: &mut SujRng) -> usize {
        let x = rng.next_f64() * self.total;
        let idx = self.cumulative.partition_point(|&c| c <= x);
        idx.min(self.cumulative.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empirical(draws: usize, n: usize, mut f: impl FnMut(&mut SujRng) -> usize) -> Vec<f64> {
        let mut rng = SujRng::seed_from_u64(1234);
        let mut counts = vec![0usize; n];
        for _ in 0..draws {
            counts[f(&mut rng)] += 1;
        }
        counts.iter().map(|&c| c as f64 / draws as f64).collect()
    }

    #[test]
    fn categorical_matches_weights() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let cat = Categorical::new(&weights).unwrap();
        let freqs = empirical(100_000, 4, |rng| cat.draw(rng));
        for (i, &f) in freqs.iter().enumerate() {
            let expect = weights[i] / 10.0;
            assert!((f - expect).abs() < 0.01, "cat {i}: {f} vs {expect}");
            assert!((cat.probability(i) - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn alias_matches_weights() {
        let weights = [0.5, 0.0, 8.0, 1.5];
        let total = 10.0;
        let alias = AliasTable::new(&weights).unwrap();
        let freqs = empirical(200_000, 4, |rng| alias.draw(rng));
        for (i, &f) in freqs.iter().enumerate() {
            let expect = weights[i] / total;
            assert!((f - expect).abs() < 0.01, "cat {i}: {f} vs {expect}");
        }
    }

    #[test]
    fn zero_weight_categories_never_drawn() {
        let weights = [0.0, 1.0, 0.0];
        let cat = Categorical::new(&weights).unwrap();
        let alias = AliasTable::new(&weights).unwrap();
        let mut rng = SujRng::seed_from_u64(8);
        for _ in 0..1000 {
            assert_eq!(cat.draw(&mut rng), 1);
            assert_eq!(alias.draw(&mut rng), 1);
        }
    }

    #[test]
    fn invalid_weights_rejected() {
        assert!(Categorical::new(&[]).is_none());
        assert!(Categorical::new(&[0.0, 0.0]).is_none());
        assert!(Categorical::new(&[1.0, -1.0]).is_none());
        assert!(Categorical::new(&[f64::NAN]).is_none());
        assert!(AliasTable::new(&[]).is_none());
        assert!(AliasTable::new(&[0.0]).is_none());
        assert!(AliasTable::new(&[f64::INFINITY]).is_none());
    }

    #[test]
    fn single_category_always_zero() {
        let cat = Categorical::new(&[3.0]).unwrap();
        let alias = AliasTable::new(&[3.0]).unwrap();
        let mut rng = SujRng::seed_from_u64(77);
        for _ in 0..100 {
            assert_eq!(cat.draw(&mut rng), 0);
            assert_eq!(alias.draw(&mut rng), 0);
        }
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let z = Zipf::new(10, 0.0).unwrap();
        for i in 0..10 {
            assert!((z.probability(i) - 0.1).abs() < 1e-12);
        }
        let freqs = empirical(100_000, 10, |rng| z.draw(rng));
        for &f in &freqs {
            assert!((f - 0.1).abs() < 0.01);
        }
    }

    #[test]
    fn zipf_probabilities_decay_with_rank() {
        let z = Zipf::new(20, 1.2).unwrap();
        for i in 1..20 {
            assert!(z.probability(i) < z.probability(i - 1));
        }
        // Analytic check of the head probability.
        let h: f64 = (1..=20).map(|i| 1.0 / (i as f64).powf(1.2)).sum();
        assert!((z.probability(0) - 1.0 / h).abs() < 1e-12);
        // Empirical head frequency.
        let freqs = empirical(100_000, 20, |rng| z.draw(rng));
        assert!((freqs[0] - 1.0 / h).abs() < 0.01);
    }

    #[test]
    fn zipf_rejects_bad_inputs() {
        assert!(Zipf::new(0, 1.0).is_none());
        assert!(Zipf::new(5, -1.0).is_none());
        assert!(Zipf::new(5, f64::NAN).is_none());
    }

    #[test]
    fn categorical_and_alias_agree_statistically() {
        let weights: Vec<f64> = (1..=16).map(|i| (i * i) as f64).collect();
        let cat = Categorical::new(&weights).unwrap();
        let alias = AliasTable::new(&weights).unwrap();
        let fc = empirical(200_000, 16, |rng| cat.draw(rng));
        let fa = empirical(200_000, 16, |rng| alias.draw(rng));
        for i in 0..16 {
            assert!((fc[i] - fa[i]).abs() < 0.01, "category {i}");
        }
    }
}
