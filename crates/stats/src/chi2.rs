//! Chi-square goodness-of-fit testing.
//!
//! The paper's central guarantee (Theorem 1) is that every union-sampling
//! instantiation returns tuples uniformly over the set union. The test
//! suite verifies this empirically: materialize the union, bucket a large
//! sample by tuple identity, and run a chi-square test against the uniform
//! distribution. The p-value machinery (regularized incomplete gamma) is
//! implemented here from scratch.

/// Outcome of a chi-square test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquareOutcome {
    /// The chi-square statistic Σ (obs − exp)² / exp.
    pub statistic: f64,
    /// Degrees of freedom (`categories − 1`).
    pub dof: u64,
    /// Upper-tail p-value `P(X² ≥ statistic)`.
    pub p_value: f64,
}

impl ChiSquareOutcome {
    /// Whether the uniformity hypothesis survives at significance `alpha`
    /// (i.e. `p_value > alpha` — we fail to reject).
    pub fn is_uniform_at(&self, alpha: f64) -> bool {
        self.p_value > alpha
    }
}

/// Chi-square statistic of observed counts against explicit expected
/// counts. Panics if lengths differ or any expected count is `≤ 0`.
pub fn chi_square_statistic(observed: &[u64], expected: &[f64]) -> f64 {
    assert_eq!(observed.len(), expected.len(), "length mismatch");
    observed
        .iter()
        .zip(expected)
        .map(|(&o, &e)| {
            assert!(e > 0.0, "expected counts must be positive");
            let d = o as f64 - e;
            d * d / e
        })
        .sum()
}

/// Chi-square test of observed counts against the uniform distribution
/// over `observed.len()` categories.
///
/// Returns `None` when there are fewer than two categories or no
/// observations (the test is undefined there).
pub fn chi_square_test(observed: &[u64]) -> Option<ChiSquareOutcome> {
    let k = observed.len();
    if k < 2 {
        return None;
    }
    let total: u64 = observed.iter().sum();
    if total == 0 {
        return None;
    }
    let expected = total as f64 / k as f64;
    let statistic: f64 = observed
        .iter()
        .map(|&o| {
            let d = o as f64 - expected;
            d * d / expected
        })
        .sum();
    let dof = (k - 1) as u64;
    let p_value = chi_square_survival(statistic, dof);
    Some(ChiSquareOutcome {
        statistic,
        dof,
        p_value,
    })
}

/// Upper-tail probability `P(X² ≥ x)` for a chi-square distribution with
/// `dof` degrees of freedom: `Q(dof/2, x/2)` (regularized upper incomplete
/// gamma).
pub fn chi_square_survival(x: f64, dof: u64) -> f64 {
    assert!(dof > 0, "degrees of freedom must be positive");
    if x <= 0.0 {
        return 1.0;
    }
    regularized_gamma_q(dof as f64 / 2.0, x / 2.0)
}

/// Natural log of the gamma function (Lanczos approximation, g = 7).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma domain is positive reals");
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.5203681218851,
        -1259.1392167224028,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507343278686905,
        -0.13857109526572012,
        9.984_369_578_019_572e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma `P(a, x)` via series expansion
/// (converges quickly for `x < a + 1`).
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut sum = 1.0 / a;
    let mut term = sum;
    let mut n = a;
    for _ in 0..500 {
        n += 1.0;
        term *= x / n;
        sum += term;
        if term.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Regularized upper incomplete gamma `Q(a, x)` via continued fraction
/// (Lentz's method; converges quickly for `x ≥ a + 1`).
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-15 {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Regularized upper incomplete gamma `Q(a, x) = 1 − P(a, x)`.
pub fn regularized_gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "invalid gamma arguments a={a} x={x}");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        (1.0 - gamma_p_series(a, x)).clamp(0.0, 1.0)
    } else {
        gamma_q_cf(a, x).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n−1)!
        let facts = [1.0f64, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0];
        for (i, &f) in facts.iter().enumerate() {
            let lg = ln_gamma((i + 1) as f64);
            assert!((lg - f.ln()).abs() < 1e-10, "Γ({}) mismatch", i + 1);
        }
        // Γ(1/2) = √π
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn survival_known_quantiles() {
        // 95th percentile of chi²(1) ≈ 3.841; chi²(5) ≈ 11.070;
        // chi²(10) ≈ 18.307.
        assert!((chi_square_survival(3.841, 1) - 0.05).abs() < 1e-3);
        assert!((chi_square_survival(11.070, 5) - 0.05).abs() < 1e-3);
        assert!((chi_square_survival(18.307, 10) - 0.05).abs() < 1e-3);
        // Median of chi²(2) is 2 ln 2 ≈ 1.386.
        assert!((chi_square_survival(2.0 * 2f64.ln(), 2) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn survival_edges() {
        assert_eq!(chi_square_survival(0.0, 3), 1.0);
        assert!(chi_square_survival(1e6, 3) < 1e-12);
    }

    #[test]
    fn uniform_counts_pass() {
        let observed = [100u64, 101, 99, 103, 97, 100, 98, 102];
        let outcome = chi_square_test(&observed).unwrap();
        assert!(outcome.p_value > 0.5, "p = {}", outcome.p_value);
        assert!(outcome.is_uniform_at(0.01));
    }

    #[test]
    fn skewed_counts_fail() {
        let observed = [500u64, 10, 10, 10, 10, 10, 10, 10];
        let outcome = chi_square_test(&observed).unwrap();
        assert!(outcome.p_value < 1e-10);
        assert!(!outcome.is_uniform_at(0.01));
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert!(chi_square_test(&[]).is_none());
        assert!(chi_square_test(&[5]).is_none());
        assert!(chi_square_test(&[0, 0, 0]).is_none());
    }

    #[test]
    fn statistic_with_explicit_expected() {
        let s = chi_square_statistic(&[10, 20], &[15.0, 15.0]);
        assert!((s - (25.0 / 15.0 + 25.0 / 15.0)).abs() < 1e-12);
    }
}
