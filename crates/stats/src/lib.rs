//! Statistics substrate for the sampling-over-union-of-joins framework.
//!
//! This crate bundles the numerical machinery the paper's estimators rely
//! on, kept independent of any relational concept so it can be tested in
//! isolation:
//!
//! * [`rng`] — a seedable pseudo-random number generator facade so the rest
//!   of the workspace never touches the `rand` API surface directly.
//! * [`running`] — Welford running moments (mean / variance / merge).
//! * [`ht`] — the Horvitz–Thompson size estimator used by wander join
//!   (§6.1 of the paper), with online updates.
//! * [`ci`] — normal-approximation confidence intervals and z-values.
//! * [`chi2`] — chi-square goodness-of-fit testing, used by the test suite
//!   to check sampler uniformity against materialized ground truth.
//! * [`sample`] — categorical sampling (cumulative and alias-table) and
//!   Bernoulli draws.
//! * [`arena`] — flat arenas of alias tables (one Walker/Vose table per
//!   key id, shared slabs) powering the Exact-Weight alias cascade.
//! * [`binom`] — exact binomial coefficients for the k-overlap recurrence
//!   (Theorem 3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod binom;
pub mod chi2;
pub mod ci;
pub mod ht;
pub mod rng;
pub mod running;
pub mod sample;

pub use arena::{AliasArena, AliasArenaBuilder};
pub use binom::binomial;
pub use chi2::{chi_square_statistic, chi_square_test, ChiSquareOutcome};
pub use ci::{half_width, z_value, ConfidenceInterval};
pub use ht::HorvitzThompson;
pub use rng::SujRng;
pub use running::RunningMoments;
pub use sample::{AliasTable, Categorical, Zipf};
