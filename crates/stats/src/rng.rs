//! Seedable pseudo-random number generation.
//!
//! All randomized components in the workspace draw from [`SujRng`] so that
//! every experiment is reproducible from a single `u64` seed. The
//! generator is xoshiro256++ (Blackman & Vigna) seeded through SplitMix64,
//! implemented here directly: it is tiny, `Clone`, platform-stable, and
//! keeps the workspace independent of external PRNG API churn.

/// A seedable random number generator (xoshiro256++).
///
/// Construction from a seed is deterministic across runs and platforms,
/// which the test suite and the benchmark harness rely on.
#[derive(Debug, Clone)]
pub struct SujRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SujRng {
    /// Creates a generator from a fixed seed. Identical seeds yield
    /// identical streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }

    /// Derives an independent child generator. Useful for giving each
    /// join/worker its own stream while keeping the experiment seeded.
    pub fn fork(&mut self) -> Self {
        Self::seed_from_u64(self.next_u64())
    }

    /// Deterministically derives the generator for stream `stream`
    /// under `root` — the stateless counterpart of [`fork`](Self::fork)
    /// used by concurrent serving: the derived stream depends only on
    /// the `(root, stream)` pair, never on which thread or in which
    /// order handles were minted, so a request seeded by its id is
    /// reproducible across any worker-pool interleaving.
    ///
    /// Both words pass through SplitMix64 before combining, so nearby
    /// roots/streams (0, 1, 2, …) land in unrelated states.
    pub fn derive(root: u64, stream: u64) -> Self {
        let mut a = root;
        let mut b = stream ^ 0x6A09_E667_F3BC_C909; // √2 offset: derive(s, s) ≠ seed(0)-like collisions
        Self::seed_from_u64(splitmix64(&mut a) ^ splitmix64(&mut b))
    }

    /// Returns the next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform double in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)` via Lemire's nearly-divisionless method.
    #[inline]
    fn bounded_u64(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform index in `[0, n)`. Panics if `n == 0`.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot sample an index from an empty range");
        self.bounded_u64(n as u64) as usize
    }

    /// Uniform integer in `[lo, hi)`. Panics if the range is empty.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.bounded_u64(hi - lo)
    }

    /// Uniform integer in `[lo, hi)` over `i64`. Panics if the range is empty.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range");
        let span = (hi as i128 - lo as i128) as u64;
        (lo as i128 + self.bounded_u64(span) as i128) as i64
    }

    /// Bernoulli draw: returns `true` with probability `p` (clamped to
    /// `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `[0, n)` (Floyd's algorithm when
    /// `k << n`, shuffle otherwise). Returned order is unspecified.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct items out of {n}");
        if k == 0 {
            return Vec::new();
        }
        if k * 4 >= n {
            let mut all: Vec<usize> = (0..n).collect();
            self.shuffle(&mut all);
            all.truncate(k);
            all
        } else {
            // Floyd's algorithm: O(k) expected time.
            let mut chosen = std::collections::HashSet::with_capacity(k * 2);
            let mut out = Vec::with_capacity(k);
            for j in (n - k)..n {
                let t = self.index(j + 1);
                let v = if chosen.contains(&t) { j } else { t };
                chosen.insert(v);
                out.push(v);
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SujRng::seed_from_u64(42);
        let mut b = SujRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SujRng::seed_from_u64(1);
        let mut b = SujRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SujRng::seed_from_u64(6);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_f64_mean_is_half() {
        let mut rng = SujRng::seed_from_u64(17);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn index_stays_in_range() {
        let mut rng = SujRng::seed_from_u64(7);
        for n in 1..50usize {
            for _ in 0..20 {
                assert!(rng.index(n) < n);
            }
        }
    }

    #[test]
    fn index_is_roughly_uniform() {
        let mut rng = SujRng::seed_from_u64(21);
        let mut counts = [0u64; 10];
        for _ in 0..100_000 {
            counts[rng.index(10)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "count {c}");
        }
    }

    #[test]
    fn range_i64_handles_negative_bounds() {
        let mut rng = SujRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.range_i64(-50, 50);
            assert!((-50..50).contains(&v));
        }
        let v = rng.range_i64(i64::MIN, i64::MIN + 2);
        assert!(v == i64::MIN || v == i64::MIN + 1);
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = SujRng::seed_from_u64(3);
        assert!(!rng.bernoulli(0.0));
        assert!(rng.bernoulli(1.0));
        assert!(!rng.bernoulli(-0.5));
        assert!(rng.bernoulli(1.5));
    }

    #[test]
    fn bernoulli_rate_is_plausible() {
        let mut rng = SujRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.bernoulli(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = SujRng::seed_from_u64(5);
        for &(n, k) in &[(10usize, 10usize), (100, 3), (50, 25), (1, 1), (8, 0)] {
            let got = rng.sample_indices(n, k);
            assert_eq!(got.len(), k);
            let set: std::collections::HashSet<_> = got.iter().collect();
            assert_eq!(set.len(), k, "indices must be distinct");
            assert!(got.iter().all(|&i| i < n));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SujRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..64).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn derive_is_deterministic_and_order_free() {
        let mut a = SujRng::derive(42, 7);
        let mut b = SujRng::derive(42, 7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // Different streams under one root differ, as do the same
        // streams under different roots.
        let mut c = SujRng::derive(42, 8);
        let mut d = SujRng::derive(43, 7);
        let mut a = SujRng::derive(42, 7);
        let same_c = (0..32).filter(|_| a.next_u64() == c.next_u64()).count();
        let mut a = SujRng::derive(42, 7);
        let same_d = (0..32).filter(|_| a.next_u64() == d.next_u64()).count();
        assert!(same_c < 4 && same_d < 4);
    }

    #[test]
    fn derive_does_not_collide_root_and_stream_swap() {
        let mut a = SujRng::derive(1, 2);
        let mut b = SujRng::derive(2, 1);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "swapped (root, stream) must not alias");
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut parent = SujRng::seed_from_u64(13);
        let mut child = parent.fork();
        let same = (0..32)
            .filter(|_| parent.next_u64() == child.next_u64())
            .count();
        assert!(same < 4);
    }
}
