//! Exact binomial coefficients.
//!
//! Theorem 3's k-overlap recurrence deducts `C(r−1, k−1) · |A_j^r|` for
//! every higher order `r`; the number of joins `n` is small in practice
//! (the paper's workloads have 3–5), so exact `u128` arithmetic never
//! overflows in realistic use and saturates gracefully otherwise.

/// `C(n, k)` with saturation at `u128::MAX`.
///
/// Returns `0` when `k > n`, `1` when `k == 0` or `k == n`.
pub fn binomial(n: u64, k: u64) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut result: u128 = 1;
    for i in 0..k {
        // result *= (n - i); result /= (i + 1); done carefully to stay exact:
        // C(n, i+1) = C(n, i) * (n - i) / (i + 1) is always integral.
        result = match result.checked_mul((n - i) as u128) {
            Some(v) => v,
            None => return u128::MAX,
        };
        result /= (i + 1) as u128;
    }
    result
}

/// `C(n, k)` as `f64` (convenient for probability expressions); loses
/// precision only above 2^53, far beyond the framework's use.
pub fn binomial_f64(n: u64, k: u64) -> f64 {
    binomial(n, k) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values() {
        assert_eq!(binomial(0, 0), 1);
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(5, 5), 1);
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(6, 3), 20);
        assert_eq!(binomial(10, 4), 210);
        assert_eq!(binomial(3, 7), 0);
    }

    #[test]
    fn pascal_identity() {
        for n in 1..30u64 {
            for k in 1..n {
                assert_eq!(
                    binomial(n, k),
                    binomial(n - 1, k - 1) + binomial(n - 1, k),
                    "Pascal fails at ({n},{k})"
                );
            }
        }
    }

    #[test]
    fn row_sums_are_powers_of_two() {
        for n in 0..20u64 {
            let sum: u128 = (0..=n).map(|k| binomial(n, k)).sum();
            assert_eq!(sum, 1u128 << n);
        }
    }

    #[test]
    fn symmetry() {
        for n in 0..25u64 {
            for k in 0..=n {
                assert_eq!(binomial(n, k), binomial(n, n - k));
            }
        }
    }

    #[test]
    fn large_values_exact() {
        assert_eq!(binomial(52, 5), 2_598_960);
        assert_eq!(binomial(100, 2), 4950);
    }

    #[test]
    fn saturates_instead_of_overflowing() {
        // C(200, 100) overflows u128; we saturate.
        assert_eq!(binomial(200, 100), u128::MAX);
    }
}
