//! Property-based tests for the statistics substrate.

use proptest::prelude::*;
use suj_stats::binom::binomial;
use suj_stats::chi2::{chi_square_survival, ln_gamma, regularized_gamma_q};
use suj_stats::{AliasTable, Categorical, HorvitzThompson, RunningMoments, SujRng};

proptest! {
    #[test]
    fn rng_bounds_hold(seed in any::<u64>(), n in 1usize..10_000) {
        let mut rng = SujRng::seed_from_u64(seed);
        for _ in 0..32 {
            prop_assert!(rng.index(n) < n);
            let x = rng.next_f64();
            prop_assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn rng_range_i64_bounds(seed in any::<u64>(), lo in -1000i64..1000, span in 1i64..1000) {
        let mut rng = SujRng::seed_from_u64(seed);
        let hi = lo + span;
        for _ in 0..32 {
            let v = rng.range_i64(lo, hi);
            prop_assert!(v >= lo && v < hi);
        }
    }

    #[test]
    fn rng_sample_indices_are_distinct(seed in any::<u64>(), n in 1usize..200, kfrac in 0.0f64..1.0) {
        let mut rng = SujRng::seed_from_u64(seed);
        let k = ((n as f64) * kfrac) as usize;
        let got = rng.sample_indices(n, k);
        prop_assert_eq!(got.len(), k);
        let set: std::collections::HashSet<_> = got.iter().collect();
        prop_assert_eq!(set.len(), k);
        prop_assert!(got.iter().all(|&i| i < n));
    }

    #[test]
    fn running_moments_match_naive(xs in prop::collection::vec(-1e6f64..1e6, 2..64)) {
        let mut rm = RunningMoments::new();
        for &x in &xs {
            rm.push(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        let scale = mean.abs().max(1.0);
        prop_assert!((rm.mean() - mean).abs() / scale < 1e-9);
        let vscale = var.abs().max(1.0);
        prop_assert!((rm.variance_sample() - var).abs() / vscale < 1e-6);
    }

    #[test]
    fn running_moments_merge_any_split(
        xs in prop::collection::vec(-1e3f64..1e3, 2..64),
        cut_frac in 0.0f64..1.0,
    ) {
        let cut = ((xs.len() as f64) * cut_frac) as usize;
        let mut whole = RunningMoments::new();
        let mut left = RunningMoments::new();
        let mut right = RunningMoments::new();
        for (i, &x) in xs.iter().enumerate() {
            whole.push(x);
            if i < cut {
                left.push(x);
            } else {
                right.push(x);
            }
        }
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-6);
        prop_assert!((left.variance_sample() - whole.variance_sample()).abs() < 1e-6);
    }

    #[test]
    fn binomial_pascal_and_symmetry(n in 1u64..40, k in 0u64..40) {
        prop_assume!(k <= n);
        prop_assert_eq!(binomial(n, k), binomial(n, n - k));
        if k >= 1 {
            prop_assert_eq!(
                binomial(n, k),
                binomial(n - 1, k - 1) + binomial(n - 1, k)
            );
        }
    }

    #[test]
    fn chi2_survival_is_a_probability_and_decreasing(
        x in 0.0f64..200.0,
        dx in 0.01f64..50.0,
        dof in 1u64..30,
    ) {
        let a = chi_square_survival(x, dof);
        let b = chi_square_survival(x + dx, dof);
        prop_assert!((0.0..=1.0).contains(&a));
        prop_assert!((0.0..=1.0).contains(&b));
        prop_assert!(b <= a + 1e-12, "survival must decrease: {} then {}", a, b);
    }

    #[test]
    fn gamma_q_bounds(a in 0.1f64..50.0, x in 0.0f64..100.0) {
        let q = regularized_gamma_q(a, x);
        prop_assert!((0.0..=1.0).contains(&q));
    }

    #[test]
    fn ln_gamma_recurrence(x in 0.5f64..50.0) {
        // Γ(x+1) = x·Γ(x)  ⇒  lnΓ(x+1) − lnΓ(x) = ln x.
        let lhs = ln_gamma(x + 1.0) - ln_gamma(x);
        prop_assert!((lhs - x.ln()).abs() < 1e-8, "x = {}, got {}", x, lhs);
    }

    #[test]
    fn categorical_probabilities_match_weights(
        weights in prop::collection::vec(0.0f64..100.0, 1..16),
    ) {
        let total: f64 = weights.iter().sum();
        prop_assume!(total > 0.0);
        let cat = Categorical::new(&weights).unwrap();
        for (i, &w) in weights.iter().enumerate() {
            prop_assert!((cat.probability(i) - w / total).abs() < 1e-9);
        }
    }

    #[test]
    fn alias_never_emits_zero_weight(
        seed in any::<u64>(),
        pattern in prop::collection::vec(prop::bool::ANY, 2..12),
    ) {
        prop_assume!(pattern.iter().any(|&b| b));
        let weights: Vec<f64> = pattern.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect();
        let alias = AliasTable::new(&weights).unwrap();
        let mut rng = SujRng::seed_from_u64(seed);
        for _ in 0..200 {
            let i = alias.draw(&mut rng);
            prop_assert!(pattern[i], "zero-weight category {} drawn", i);
        }
    }

    #[test]
    fn ht_estimator_exact_under_uniform_probability(
        pop in 1u64..100_000,
        m in 1u64..50,
    ) {
        let p = 1.0 / pop as f64;
        let mut ht = HorvitzThompson::new();
        for _ in 0..m {
            ht.push_success(p);
        }
        prop_assert!((ht.estimate() - pop as f64).abs() < 1e-6 * pop as f64);
        prop_assert!(ht.variance() < 1e-6 * pop as f64);
    }

    #[test]
    fn ht_failures_scale_estimate(pop in 10u64..10_000, fails in 0u64..20) {
        let p = 1.0 / pop as f64;
        let mut ht = HorvitzThompson::new();
        ht.push_success(p);
        for _ in 0..fails {
            ht.push_failure();
        }
        let expected = pop as f64 / (1.0 + fails as f64);
        prop_assert!((ht.estimate() - expected).abs() < 1e-9 * pop as f64);
    }
}
