//! Statistical independence of forked / derived RNG streams.
//!
//! Concurrent serving derives one RNG stream per request handle
//! (`SujRng::fork` / `SujRng::derive`), so the i.i.d. guarantee across
//! requests rests on those streams being statistically independent of
//! their parent and of each other. These tests check that empirically:
//! a chi-square test over the joint distribution of paired draws (two
//! independent uniform streams must be jointly uniform over the product
//! space), and a Pearson-correlation bound across streams.

use suj_stats::{chi_square_test, SujRng};

const DRAWS: usize = 40_000;
const CELLS: u64 = 8;

/// Pearson correlation of two equally long `f64` sequences.
fn correlation(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    cov / (vx.sqrt() * vy.sqrt()).max(f64::MIN_POSITIVE)
}

/// Chi-square over the joint cell counts of two streams: if the streams
/// are independent and uniform over `CELLS` values each, the pair is
/// uniform over `CELLS²` cells.
fn assert_jointly_uniform(a: &mut SujRng, b: &mut SujRng, label: &str) {
    let mut counts = vec![0u64; (CELLS * CELLS) as usize];
    for _ in 0..DRAWS {
        let x = a.next_u64() % CELLS;
        let y = b.next_u64() % CELLS;
        counts[(x * CELLS + y) as usize] += 1;
    }
    let outcome = chi_square_test(&counts).unwrap();
    assert!(
        outcome.p_value > 0.001,
        "{label}: joint distribution not uniform (chi2 = {}, p = {})",
        outcome.statistic,
        outcome.p_value
    );
}

fn assert_uncorrelated(a: &mut SujRng, b: &mut SujRng, label: &str) {
    let xs: Vec<f64> = (0..DRAWS).map(|_| a.next_f64()).collect();
    let ys: Vec<f64> = (0..DRAWS).map(|_| b.next_f64()).collect();
    let r = correlation(&xs, &ys);
    // For independent streams, |r| ~ N(0, 1/√n): 5/√n is a ~5σ bound.
    let bound = 5.0 / (DRAWS as f64).sqrt();
    assert!(r.abs() < bound, "{label}: correlation {r} exceeds {bound}");
}

#[test]
fn fork_is_independent_of_parent() {
    let mut parent = SujRng::seed_from_u64(0xFEED);
    let mut child = parent.fork();
    assert_jointly_uniform(&mut parent, &mut child, "parent vs fork");
    let mut parent = SujRng::seed_from_u64(0xFEED);
    let mut child = parent.fork();
    assert_uncorrelated(&mut parent, &mut child, "parent vs fork");
}

#[test]
fn sibling_forks_are_independent() {
    let mut parent = SujRng::seed_from_u64(99);
    let mut c1 = parent.fork();
    let mut c2 = parent.fork();
    assert_jointly_uniform(&mut c1, &mut c2, "fork siblings");
    let mut parent = SujRng::seed_from_u64(99);
    let mut c1 = parent.fork();
    let mut c2 = parent.fork();
    assert_uncorrelated(&mut c1, &mut c2, "fork siblings");
}

#[test]
fn derived_request_streams_are_independent() {
    // Adjacent stream ids under one root — exactly the serving
    // pattern, where stream = request id.
    let mut a = SujRng::derive(7, 0);
    let mut b = SujRng::derive(7, 1);
    assert_jointly_uniform(&mut a, &mut b, "derive(7,0) vs derive(7,1)");
    let mut a = SujRng::derive(7, 0);
    let mut b = SujRng::derive(7, 1);
    assert_uncorrelated(&mut a, &mut b, "derive(7,0) vs derive(7,1)");
}

#[test]
fn derived_stream_is_independent_of_root_stream() {
    let mut root = SujRng::seed_from_u64(7);
    let mut derived = SujRng::derive(7, 3);
    assert_jointly_uniform(&mut root, &mut derived, "seed(7) vs derive(7,3)");
    let mut root = SujRng::seed_from_u64(7);
    let mut derived = SujRng::derive(7, 3);
    assert_uncorrelated(&mut root, &mut derived, "seed(7) vs derive(7,3)");
}

#[test]
fn every_fork_in_a_family_is_marginally_uniform() {
    // Each forked stream must itself pass uniformity, not just joint
    // tests — a degenerate child (e.g. all zeros) could still look
    // "independent" against a healthy parent in correlation alone.
    let mut parent = SujRng::seed_from_u64(2024);
    for k in 0..8 {
        let mut child = parent.fork();
        let mut counts = vec![0u64; CELLS as usize];
        for _ in 0..DRAWS {
            counts[(child.next_u64() % CELLS) as usize] += 1;
        }
        let outcome = chi_square_test(&counts).unwrap();
        assert!(
            outcome.p_value > 0.001,
            "fork #{k} not uniform (chi2 = {}, p = {})",
            outcome.statistic,
            outcome.p_value
        );
    }
}
