//! The wire protocol: versioned, length-prefixed binary frames.
//!
//! # Frame layout
//!
//! Every message — request or response — is one frame with a fixed
//! 24-byte little-endian header followed by an opcode-specific
//! payload:
//!
//! ```text
//! offset  size  field
//!      0     4  magic        "SUJN" (0x4e4a5553 LE)
//!      4     2  version      protocol version, currently 2
//!      6     2  opcode       see below
//!      8     8  request id   echoed verbatim in the response
//!     16     4  payload len  bytes following the header (≤ 1 GiB)
//!     20     4  payload crc  CRC-32 of the payload bytes
//! ```
//!
//! Version 2 added the payload checksum (a flipped bit on the wire is
//! a typed [`NetError::Checksum`], never silently corrupt samples) and
//! an optional per-request deadline budget in the `Sample` payload.
//!
//! # Opcodes
//!
//! | opcode | direction | payload |
//! |--------|-----------|---------|
//! | 1 `Prepare` | request | serialized [`UnionQuery`] ([`suj_core::snapshot::encode_query`]) |
//! | 2 `Sample` | request | `prepared_id: u64`, `n: u64`, `seed: u64`, `budget_ns: u64` (0 = none) |
//! | 3 `Stats` | request | empty |
//! | 4 `Shutdown` | request | empty |
//! | 0x81 `Prepared` | response | `prepared_id: u64`, `estimations: u64`, summary string |
//! | 0x82 `Batch` | response | columnar tuple batch (below) |
//! | 0x83 `Stats` | response | counters, see [`WireStats`] |
//! | 0x84 `ShutdownAck` | response | empty |
//! | 0x85 `Busy` | response | `retry_after_ns: u64` |
//! | 0x86 `Error` | response | `code: u16`, message string |
//!
//! # Batch encoding
//!
//! Samples travel as a columnar batch, not tuple-at-a-time: arity
//! `u32`, the attribute names, `n_rows: u64`, then each column in the
//! storage layer's snapshot column codec ([`encode_column`]) — typed
//! slabs with validity bitmaps, dictionary-coded strings. The decoder
//! transposes back to row [`Tuple`]s.
//!
//! # Backpressure
//!
//! A server whose worker queue is full answers `Sample` with `Busy`
//! carrying the service's retry hint — the queue-full condition is a
//! first-class wire citizen, distinct from `Error`, so clients can
//! back off and retry instead of failing.

use std::fmt;
use std::io::{Read, Write};
use suj_core::query::UnionQuery;
use suj_core::snapshot::{decode_query, encode_query};
use suj_storage::snapshot::{crc32, decode_column, encode_column, ByteReader, ByteWriter};
use suj_storage::{ColumnBuilder, SnapshotError, Tuple};

/// Frame magic: `b"SUJN"` little-endian.
pub const NET_MAGIC: u32 = u32::from_le_bytes(*b"SUJN");
/// Protocol version spoken by this implementation.
pub const NET_VERSION: u16 = 2;
/// Frame header size in bytes.
pub const HEADER_LEN: usize = 24;
/// Upper bound on a frame payload (1 GiB) — a malformed or malicious
/// length prefix must not drive allocation.
pub const MAX_PAYLOAD: u32 = 1 << 30;

/// Request opcode: prepare a query, returning a `prepared_id`.
pub const OP_PREPARE: u16 = 1;
/// Request opcode: draw `n` samples from a prepared query.
pub const OP_SAMPLE: u16 = 2;
/// Request opcode: fetch service counters.
pub const OP_STATS: u16 = 3;
/// Request opcode: shut the server down gracefully.
pub const OP_SHUTDOWN: u16 = 4;
/// Response opcode: a query was prepared.
pub const OP_PREPARED: u16 = 0x81;
/// Response opcode: a columnar batch of sampled tuples.
pub const OP_BATCH: u16 = 0x82;
/// Response opcode: service counters.
pub const OP_STATS_REPLY: u16 = 0x83;
/// Response opcode: shutdown acknowledged.
pub const OP_SHUTDOWN_ACK: u16 = 0x84;
/// Response opcode: worker queue full, retry after the carried hint.
pub const OP_BUSY: u16 = 0x85;
/// Response opcode: the request failed; payload carries code+message.
pub const OP_ERROR: u16 = 0x86;

/// Error code inside an `Error` frame: malformed request payload.
pub const ERR_BAD_REQUEST: u16 = 1;
/// Error code inside an `Error` frame: unknown `prepared_id`.
pub const ERR_UNKNOWN_PREPARED: u16 = 2;
/// Error code inside an `Error` frame: sampling/planning failed.
pub const ERR_ENGINE: u16 = 3;
/// Error code inside an `Error` frame: server is shutting down.
pub const ERR_SHUTTING_DOWN: u16 = 4;
/// Error code inside an `Error` frame: the request's deadline expired
/// before it finished.
pub const ERR_DEADLINE: u16 = 5;

/// Client- and server-side protocol errors.
#[derive(Debug)]
pub enum NetError {
    /// A socket read/write failed.
    Io(std::io::Error),
    /// A frame arrived with the wrong magic.
    BadMagic(u32),
    /// A frame arrived with an unsupported protocol version.
    UnsupportedVersion(u16),
    /// A frame declared a payload larger than [`MAX_PAYLOAD`].
    FrameTooLarge(u32),
    /// A payload failed to decode, or an unexpected opcode arrived.
    Protocol(String),
    /// The server reported its queue full and the client exhausted its
    /// retries; the duration is the last retry hint received.
    Busy(std::time::Duration),
    /// The peer answered with an `Error` frame.
    Remote {
        /// One of the `ERR_*` codes.
        code: u16,
        /// Human-readable detail from the server.
        message: String,
    },
    /// The request's deadline expired before it finished
    /// ([`ERR_DEADLINE`] on the wire).
    DeadlineExceeded,
    /// The server refused the request because it is draining
    /// ([`ERR_SHUTTING_DOWN`] on the wire).
    ShuttingDown,
    /// The connection dropped mid-exchange (reset, aborted, broken
    /// pipe, or unexpected EOF). Retryable on a fresh connection.
    ConnectionReset,
    /// A frame's payload failed its CRC — corrupted on the wire.
    Checksum {
        /// CRC declared in the frame header.
        expected: u32,
        /// CRC computed over the received payload.
        got: u32,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "i/o error: {e}"),
            NetError::BadMagic(got) => write!(f, "bad frame magic {got:#010x}"),
            NetError::UnsupportedVersion(v) => write!(f, "unsupported protocol version {v}"),
            NetError::FrameTooLarge(n) => write!(f, "frame payload {n} exceeds limit"),
            NetError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            NetError::Busy(hint) => {
                write!(f, "server busy, retries exhausted (last hint {hint:?})")
            }
            NetError::Remote { code, message } => {
                write!(f, "server error (code {code}): {message}")
            }
            NetError::DeadlineExceeded => {
                write!(f, "deadline exceeded before the request finished")
            }
            NetError::ShuttingDown => write!(f, "server is shutting down"),
            NetError::ConnectionReset => write!(f, "connection reset by peer"),
            NetError::Checksum { expected, got } => write!(
                f,
                "payload checksum mismatch (header {expected:#010x}, computed {got:#010x})"
            ),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        use std::io::ErrorKind;
        match e.kind() {
            ErrorKind::ConnectionReset
            | ErrorKind::ConnectionAborted
            | ErrorKind::BrokenPipe
            | ErrorKind::UnexpectedEof => NetError::ConnectionReset,
            _ => NetError::Io(e),
        }
    }
}

impl From<SnapshotError> for NetError {
    fn from(e: SnapshotError) -> Self {
        NetError::Protocol(e.to_string())
    }
}

/// One wire frame: opcode, request id, and raw payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// One of the `OP_*` opcodes.
    pub opcode: u16,
    /// Caller-chosen id, echoed by the server — also the default RNG
    /// stream of a `Sample` request.
    pub request_id: u64,
    /// Opcode-specific payload.
    pub payload: Vec<u8>,
}

impl Frame {
    /// A frame with an empty payload.
    pub fn empty(opcode: u16, request_id: u64) -> Self {
        Self {
            opcode,
            request_id,
            payload: Vec::new(),
        }
    }

    /// Writes header + payload to `w` (one `write_all` per part; the
    /// caller flushes).
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), NetError> {
        let len = u32::try_from(self.payload.len())
            .ok()
            .filter(|&n| n <= MAX_PAYLOAD)
            .ok_or(NetError::FrameTooLarge(u32::MAX))?;
        let mut header = [0u8; HEADER_LEN];
        header[0..4].copy_from_slice(&NET_MAGIC.to_le_bytes());
        header[4..6].copy_from_slice(&NET_VERSION.to_le_bytes());
        header[6..8].copy_from_slice(&self.opcode.to_le_bytes());
        header[8..16].copy_from_slice(&self.request_id.to_le_bytes());
        header[16..20].copy_from_slice(&len.to_le_bytes());
        header[20..24].copy_from_slice(&crc32(&self.payload).to_le_bytes());
        w.write_all(&header)?;
        w.write_all(&self.payload)?;
        Ok(())
    }

    /// Reads one frame from `r`, validating magic, version, payload
    /// bound, and payload checksum before returning.
    pub fn read_from(r: &mut impl Read) -> Result<Frame, NetError> {
        let mut header = [0u8; HEADER_LEN];
        r.read_exact(&mut header)?;
        let (opcode, request_id, len, expected_crc) = parse_header(&header)?;
        let mut payload = vec![0u8; len as usize];
        r.read_exact(&mut payload)?;
        verify_payload(&payload, expected_crc)?;
        Ok(Frame {
            opcode,
            request_id,
            payload,
        })
    }
}

/// Validates a raw frame header and extracts
/// `(opcode, request_id, payload_len, payload_crc)`. Used by readers
/// that assemble the header incrementally (e.g. the server's
/// timeout-polling loop); such readers must call [`verify_payload`]
/// once the payload bytes arrive.
pub fn parse_header(header: &[u8; HEADER_LEN]) -> Result<(u16, u64, u32, u32), NetError> {
    let magic = u32::from_le_bytes(header[0..4].try_into().unwrap());
    if magic != NET_MAGIC {
        return Err(NetError::BadMagic(magic));
    }
    let version = u16::from_le_bytes(header[4..6].try_into().unwrap());
    if version != NET_VERSION {
        return Err(NetError::UnsupportedVersion(version));
    }
    let opcode = u16::from_le_bytes(header[6..8].try_into().unwrap());
    let request_id = u64::from_le_bytes(header[8..16].try_into().unwrap());
    let len = u32::from_le_bytes(header[16..20].try_into().unwrap());
    if len > MAX_PAYLOAD {
        return Err(NetError::FrameTooLarge(len));
    }
    let crc = u32::from_le_bytes(header[20..24].try_into().unwrap());
    Ok((opcode, request_id, len, crc))
}

/// Checks payload bytes against the CRC carried in the frame header.
pub fn verify_payload(payload: &[u8], expected: u32) -> Result<(), NetError> {
    let got = crc32(payload);
    if got != expected {
        return Err(NetError::Checksum { expected, got });
    }
    Ok(())
}

/// Encodes a `Prepare` request payload.
pub fn encode_prepare(query: &UnionQuery) -> Vec<u8> {
    let mut w = ByteWriter::new();
    encode_query(query, &mut w);
    w.into_bytes()
}

/// Decodes a `Prepare` request payload.
pub fn decode_prepare(payload: &[u8]) -> Result<UnionQuery, NetError> {
    let mut r = ByteReader::new(payload);
    let q = decode_query(&mut r)?;
    Ok(q)
}

/// Encodes a `Sample` request payload. `budget_ns` is the per-request
/// deadline budget in nanoseconds; 0 means no deadline.
pub fn encode_sample(prepared_id: u64, n: u64, seed: u64, budget_ns: u64) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(prepared_id);
    w.put_u64(n);
    w.put_u64(seed);
    if budget_ns != 0 {
        w.put_u64(budget_ns);
    }
    w.into_bytes()
}

/// Decodes a `Sample` request payload into
/// `(prepared_id, n, seed, budget_ns)`. The trailing budget word is
/// optional on the wire (version-1 peers sent three words); absence
/// decodes as 0, meaning no deadline.
pub fn decode_sample(payload: &[u8]) -> Result<(u64, u64, u64, u64), NetError> {
    let mut r = ByteReader::new(payload);
    let (prepared_id, n, seed) = (r.get_u64()?, r.get_u64()?, r.get_u64()?);
    let budget_ns = if r.is_empty() { 0 } else { r.get_u64()? };
    Ok((prepared_id, n, seed, budget_ns))
}

/// Encodes a `Prepared` response payload.
pub fn encode_prepared(prepared_id: u64, estimations: u64, summary: &str) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(prepared_id);
    w.put_u64(estimations);
    w.put_str(summary);
    w.into_bytes()
}

/// Decodes a `Prepared` response payload into
/// `(prepared_id, estimations, summary)`.
pub fn decode_prepared(payload: &[u8]) -> Result<(u64, u64, String), NetError> {
    let mut r = ByteReader::new(payload);
    Ok((r.get_u64()?, r.get_u64()?, r.get_str()?.to_string()))
}

/// Encodes a tuple batch as columns: arity, attribute names, row
/// count, then one storage-codec column per attribute.
pub fn encode_batch(attrs: &[std::sync::Arc<str>], tuples: &[Tuple]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32(attrs.len() as u32);
    for a in attrs {
        w.put_str(a);
    }
    w.put_u64(tuples.len() as u64);
    for (pos, _) in attrs.iter().enumerate() {
        let mut builder = ColumnBuilder::new();
        for t in tuples {
            builder.push_ref(t.get(pos));
        }
        encode_column(&builder.finish(), &mut w);
    }
    w.into_bytes()
}

/// Decodes a tuple batch back into attribute names and row tuples.
pub fn decode_batch(payload: &[u8]) -> Result<(Vec<String>, Vec<Tuple>), NetError> {
    let mut r = ByteReader::new(payload);
    let arity = r.get_u32()? as usize;
    let mut attrs = Vec::with_capacity(arity.min(1024));
    for _ in 0..arity {
        attrs.push(r.get_str()?.to_string());
    }
    let n_rows = r.get_u64()? as usize;
    let mut columns = Vec::with_capacity(arity);
    for _ in 0..arity {
        columns.push(decode_column(&mut r, n_rows)?);
    }
    let mut tuples = Vec::with_capacity(n_rows);
    for i in 0..n_rows {
        tuples.push(Tuple::new(columns.iter().map(|c| c.value(i)).collect()));
    }
    Ok((attrs, tuples))
}

/// A compact snapshot of server-side service counters carried by a
/// `Stats` response.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WireStats {
    /// Worker threads in the server's pool.
    pub workers: u64,
    /// Requests accepted into the queue so far.
    pub submitted: u64,
    /// Requests served successfully.
    pub completed: u64,
    /// Requests that errored.
    pub failed: u64,
    /// Total tuples across all completed responses.
    pub tuples_served: u64,
    /// Resident bytes of the largest prepared artifact served.
    pub prepared_bytes: u64,
    /// Snapshot size behind the served artifacts (0 when frozen
    /// in-process).
    pub snapshot_bytes: u64,
    /// Snapshot restore wall time, in nanoseconds.
    pub restore_time_ns: u64,
}

/// Encodes a `Stats` response payload.
pub fn encode_stats(stats: &WireStats) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(stats.workers);
    w.put_u64(stats.submitted);
    w.put_u64(stats.completed);
    w.put_u64(stats.failed);
    w.put_u64(stats.tuples_served);
    w.put_u64(stats.prepared_bytes);
    w.put_u64(stats.snapshot_bytes);
    w.put_u64(stats.restore_time_ns);
    w.into_bytes()
}

/// Decodes a `Stats` response payload.
pub fn decode_stats(payload: &[u8]) -> Result<WireStats, NetError> {
    let mut r = ByteReader::new(payload);
    Ok(WireStats {
        workers: r.get_u64()?,
        submitted: r.get_u64()?,
        completed: r.get_u64()?,
        failed: r.get_u64()?,
        tuples_served: r.get_u64()?,
        prepared_bytes: r.get_u64()?,
        snapshot_bytes: r.get_u64()?,
        restore_time_ns: r.get_u64()?,
    })
}

/// Encodes a `Busy` response payload.
pub fn encode_busy(retry_after: std::time::Duration) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(u64::try_from(retry_after.as_nanos()).unwrap_or(u64::MAX));
    w.into_bytes()
}

/// Decodes a `Busy` response payload into the retry hint.
pub fn decode_busy(payload: &[u8]) -> Result<std::time::Duration, NetError> {
    let mut r = ByteReader::new(payload);
    Ok(std::time::Duration::from_nanos(r.get_u64()?))
}

/// Encodes an `Error` response payload.
pub fn encode_error(code: u16, message: &str) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32(u32::from(code));
    w.put_str(message);
    w.into_bytes()
}

/// Decodes an `Error` response payload into `(code, message)`.
pub fn decode_error(payload: &[u8]) -> Result<(u16, String), NetError> {
    let mut r = ByteReader::new(payload);
    let code = u16::try_from(r.get_u32()?)
        .map_err(|_| NetError::Protocol("error code out of range".into()))?;
    Ok((code, r.get_str()?.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use suj_storage::Value;

    #[test]
    fn frame_round_trip() {
        let frame = Frame {
            opcode: OP_SAMPLE,
            request_id: 42,
            payload: encode_sample(7, 100, 9, 0),
        };
        let mut buf = Vec::new();
        frame.write_to(&mut buf).unwrap();
        assert_eq!(buf.len(), HEADER_LEN + frame.payload.len());
        let read = Frame::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(read, frame);
        assert_eq!(decode_sample(&read.payload).unwrap(), (7, 100, 9, 0));
    }

    #[test]
    fn sample_budget_word_is_optional_on_the_wire() {
        let with_budget = encode_sample(7, 100, 9, 2_000_000);
        assert_eq!(decode_sample(&with_budget).unwrap(), (7, 100, 9, 2_000_000));
        // A version-1 peer sends exactly three words; budget decodes
        // as 0 (no deadline).
        let legacy = encode_sample(7, 100, 9, 0);
        assert_eq!(legacy.len(), 24);
        assert_eq!(decode_sample(&legacy).unwrap(), (7, 100, 9, 0));
    }

    #[test]
    fn bad_magic_version_and_length_are_rejected() {
        let frame = Frame::empty(OP_STATS, 1);
        let mut buf = Vec::new();
        frame.write_to(&mut buf).unwrap();

        let mut bad = buf.clone();
        bad[0] ^= 0xff;
        assert!(matches!(
            Frame::read_from(&mut bad.as_slice()),
            Err(NetError::BadMagic(_))
        ));

        let mut bad = buf.clone();
        bad[4] = 0xff;
        assert!(matches!(
            Frame::read_from(&mut bad.as_slice()),
            Err(NetError::UnsupportedVersion(_))
        ));

        let mut bad = buf.clone();
        bad[16..20].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        assert!(matches!(
            Frame::read_from(&mut bad.as_slice()),
            Err(NetError::FrameTooLarge(_))
        ));

        // Truncated stream: a typed connection error, not a panic.
        assert!(matches!(
            Frame::read_from(&mut buf[..HEADER_LEN - 3].as_ref()),
            Err(NetError::ConnectionReset)
        ));
    }

    #[test]
    fn flipped_payload_bits_fail_the_checksum() {
        let frame = Frame {
            opcode: OP_SAMPLE,
            request_id: 9,
            payload: encode_sample(1, 64, 3, 0),
        };
        let mut buf = Vec::new();
        frame.write_to(&mut buf).unwrap();
        for bit in 0..8 {
            for byte in HEADER_LEN..buf.len() {
                let mut bad = buf.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    matches!(
                        Frame::read_from(&mut bad.as_slice()),
                        Err(NetError::Checksum { .. })
                    ),
                    "flip of payload byte {byte} bit {bit} must be caught"
                );
            }
        }
        // A flipped CRC byte itself is also a checksum error.
        let mut bad = buf.clone();
        bad[20] ^= 0x01;
        assert!(matches!(
            Frame::read_from(&mut bad.as_slice()),
            Err(NetError::Checksum { .. })
        ));
    }

    #[test]
    fn batch_round_trip_preserves_tuples() {
        let attrs: Vec<std::sync::Arc<str>> = vec!["a".into(), "b".into(), "c".into()];
        let tuples = vec![
            Tuple::new(vec![Value::int(1), Value::str("x"), Value::Null]),
            Tuple::new(vec![Value::int(2), Value::str("y"), Value::float(1.5)]),
            Tuple::new(vec![Value::int(3), Value::str("x"), Value::Null]),
        ];
        let payload = encode_batch(&attrs, &tuples);
        let (names, decoded) = decode_batch(&payload).unwrap();
        assert_eq!(names, vec!["a", "b", "c"]);
        assert_eq!(decoded, tuples);
    }

    #[test]
    fn empty_batch_round_trips() {
        let attrs: Vec<std::sync::Arc<str>> = vec!["a".into()];
        let payload = encode_batch(&attrs, &[]);
        let (names, decoded) = decode_batch(&payload).unwrap();
        assert_eq!(names, vec!["a"]);
        assert!(decoded.is_empty());
    }

    #[test]
    fn auxiliary_payload_round_trips() {
        let stats = WireStats {
            workers: 4,
            submitted: 10,
            completed: 9,
            failed: 1,
            tuples_served: 90,
            prepared_bytes: 4096,
            snapshot_bytes: 2048,
            restore_time_ns: 1_000_000,
        };
        assert_eq!(decode_stats(&encode_stats(&stats)).unwrap(), stats);
        let d = std::time::Duration::from_micros(250);
        assert_eq!(decode_busy(&encode_busy(d)).unwrap(), d);
        assert_eq!(
            decode_error(&encode_error(ERR_ENGINE, "boom")).unwrap(),
            (ERR_ENGINE, "boom".to_string())
        );
        let (id, est, summary) = decode_prepared(&encode_prepared(3, 1, "plan")).unwrap();
        assert_eq!((id, est, summary.as_str()), (3, 1, "plan"));
    }

    #[test]
    fn truncated_payloads_error_never_panic() {
        let payload = encode_sample(1, 2, 3, 0);
        for cut in 0..payload.len() {
            assert!(decode_sample(&payload[..cut]).is_err());
        }
        let attrs: Vec<std::sync::Arc<str>> = vec!["a".into()];
        let batch = encode_batch(&attrs, &[Tuple::new(vec![Value::int(5)])]);
        for cut in 0..batch.len() {
            assert!(decode_batch(&batch[..cut]).is_err(), "cut at {cut}");
        }
    }
}
