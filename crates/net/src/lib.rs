//! Network serving tier for the union sampling engine.
//!
//! Two subsystems turn a prepared engine into a deployable service:
//!
//! - [`protocol`] + [`server`] + [`client`] — a versioned,
//!   length-prefixed binary protocol over plain `std::net` TCP (no
//!   async runtime, no HTTP). A [`Server`] fronts an
//!   [`Engine`](suj_core::catalog::Engine) and a
//!   [`SamplingService`](suj_core::serve::SamplingService) worker
//!   pool; queue-full backpressure travels on the wire as a typed
//!   `Busy` response with a retry hint.
//! - snapshot-restored replicas — combined with
//!   `Engine::{save_snapshot, load_snapshot}` (in `suj-core`), a cold
//!   process restores catalog + prepared-query cache from a snapshot
//!   file and serves `Sample` requests bit-identical to the original
//!   engine, without re-running estimation.
//!
//! Determinism is end-to-end: for a given prepared query, service
//! root seed, and request seed, the drawn samples are byte-identical
//! whether obtained in-process via
//! [`PreparedQuery::sample`](suj_core::catalog::PreparedQuery::sample),
//! over TCP, or from a restored replica.
//!
//! ```no_run
//! use suj_core::catalog::{Catalog, Engine};
//! use suj_core::query::UnionQuery;
//! use suj_core::serve::ServiceConfig;
//! use suj_net::{Client, Server};
//!
//! let engine = Engine::new(Catalog::new());
//! let server = Server::bind(engine, "127.0.0.1:0", ServiceConfig::default())?;
//! let addr = server.addr();
//!
//! let mut client = Client::connect(addr)?;
//! let prepared = client.prepare(&UnionQuery::set_union())?;
//! let batch = client.sample(&prepared, 100, 42)?;
//! assert_eq!(batch.tuples.len(), 100);
//! client.shutdown()?;
//! server.join()?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod faults;
pub mod protocol;
pub mod server;

pub use client::{Client, RemotePrepared, SampleBatch};
pub use faults::{Conn, FaultConfig, FaultInjector, FaultPlan};
pub use protocol::{Frame, NetError, WireStats};
pub use server::{Server, ServerOptions};
