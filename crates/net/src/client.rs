//! A blocking TCP client for the sampling protocol.
//!
//! One [`Client`] owns one connection; requests are issued
//! synchronously (send frame, wait for the matching response).
//!
//! # Resilience
//!
//! - `Busy` responses are retried with exponential backoff and
//!   deterministic seeded jitter, honoring the server's drain hint as
//!   the floor, up to a bounded retry budget — after which the call
//!   fails with [`NetError::Busy`] so callers can apply their own
//!   policy.
//! - Connection resets can be retried transparently on a fresh
//!   connection ([`Client::with_reconnect`]) — prepared ids are
//!   server-wide, not per-connection, so a reconnected client can keep
//!   sampling the same prepared query. Sampling is seeded and
//!   idempotent, so a retry returns bit-identical tuples.
//! - Response frames that fail their payload CRC
//!   ([`NetError::Checksum`]) are retried on the same connection under
//!   the same bounded budget; the stream framing is intact, only the
//!   bytes were damaged.
//! - Typed server failures map to typed errors:
//!   [`NetError::DeadlineExceeded`] and [`NetError::ShuttingDown`]
//!   instead of opaque `Remote` codes.

use crate::faults::Conn;
#[cfg(any(test, feature = "faults"))]
use crate::faults::FaultPlan;
use crate::protocol::{
    decode_batch, decode_busy, decode_error, decode_prepared, decode_stats, encode_prepare,
    encode_sample, Frame, NetError, WireStats, ERR_DEADLINE, ERR_SHUTTING_DOWN, OP_BATCH, OP_BUSY,
    OP_ERROR, OP_PREPARE, OP_PREPARED, OP_SAMPLE, OP_SHUTDOWN, OP_SHUTDOWN_ACK, OP_STATS,
    OP_STATS_REPLY,
};
use std::io::Write;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;
use suj_core::query::UnionQuery;
use suj_stats::rng::SujRng;
use suj_storage::Tuple;

/// How many `Busy` responses a call absorbs before giving up.
const DEFAULT_BUSY_RETRIES: usize = 32;

/// Backoff floor when the server supplies no (or a zero) retry hint.
const MIN_BACKOFF: Duration = Duration::from_micros(500);

/// Cap on the exponential backoff base, before jitter.
const MAX_BACKOFF: Duration = Duration::from_millis(500);

/// A server-side prepared query, addressed by id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemotePrepared {
    /// Server-assigned handle for subsequent `Sample` requests.
    pub id: u64,
    /// Estimation passes the server spent preparing (0 when restored
    /// from a snapshot).
    pub estimations: u64,
    /// The server's plan summary line.
    pub summary: String,
}

/// A decoded sample batch.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleBatch {
    /// Canonical attribute names, in schema order.
    pub attrs: Vec<String>,
    /// The sampled rows.
    pub tuples: Vec<Tuple>,
}

/// A blocking protocol client over one TCP connection.
pub struct Client {
    conn: Conn,
    addr: SocketAddr,
    next_request: u64,
    busy_retries: usize,
    reconnect_attempts: usize,
    io_timeout: Option<Duration>,
    retry_rng: SujRng,
    #[cfg(any(test, feature = "faults"))]
    fault_plan: Option<FaultPlan>,
    #[cfg(any(test, feature = "faults"))]
    conn_seq: u64,
}

impl Client {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, NetError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let addr = stream.peer_addr()?;
        Ok(Client {
            conn: Conn::new(stream, None),
            addr,
            next_request: 1,
            busy_retries: DEFAULT_BUSY_RETRIES,
            reconnect_attempts: 0,
            io_timeout: None,
            retry_rng: SujRng::seed_from_u64(0),
            #[cfg(any(test, feature = "faults"))]
            fault_plan: None,
            #[cfg(any(test, feature = "faults"))]
            conn_seq: 0,
        })
    }

    /// Overrides how many `Busy` responses a call absorbs before
    /// failing with [`NetError::Busy`]. Zero disables retries.
    #[must_use = "builder methods return the updated client"]
    pub fn with_busy_retries(mut self, retries: usize) -> Self {
        self.busy_retries = retries;
        self
    }

    /// Seeds the deterministic backoff jitter. Two clients with the
    /// same seed sleep the same schedule; defaults to seed 0.
    #[must_use = "builder methods return the updated client"]
    pub fn with_retry_seed(mut self, seed: u64) -> Self {
        self.retry_rng = SujRng::seed_from_u64(seed);
        self
    }

    /// Allows a `Sample` call to survive up to `attempts` connection
    /// resets by reconnecting and retrying. Prepared ids are
    /// server-wide, so the retried request is the same request;
    /// sampling is seeded, so the retried answer is bit-identical.
    #[must_use = "builder methods return the updated client"]
    pub fn with_reconnect(mut self, attempts: usize) -> Self {
        self.reconnect_attempts = attempts;
        self
    }

    /// Sets a read/write timeout on the socket so a stalled server
    /// surfaces as a timeout error instead of blocking forever.
    pub fn with_io_timeout(self, timeout: Duration) -> Result<Self, NetError> {
        self.conn.stream().set_read_timeout(Some(timeout))?;
        self.conn.stream().set_write_timeout(Some(timeout))?;
        let mut this = self;
        this.io_timeout = Some(timeout);
        Ok(this)
    }

    /// Installs a deterministic fault plan: this connection (and any
    /// reconnect) reads and writes through an injector derived from
    /// `(plan seed, connection index)`. Chaos builds only.
    #[cfg(any(test, feature = "faults"))]
    #[must_use = "builder methods return the updated client"]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        let injector = plan.injector(self.conn_seq);
        self.fault_plan = Some(plan);
        self.conn = Conn::new(
            self.conn.stream().try_clone().expect("clone socket"),
            Some(injector),
        );
        self
    }

    fn next_id(&mut self) -> u64 {
        let id = self.next_request;
        self.next_request += 1;
        id
    }

    /// Replaces the dead connection with a fresh one to the same
    /// address, re-applying socket options and the fault plan.
    fn reconnect(&mut self) -> Result<(), NetError> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true)?;
        if let Some(t) = self.io_timeout {
            stream.set_read_timeout(Some(t))?;
            stream.set_write_timeout(Some(t))?;
        }
        #[cfg(any(test, feature = "faults"))]
        let injector = {
            self.conn_seq += 1;
            self.fault_plan.as_ref().map(|p| p.injector(self.conn_seq))
        };
        #[cfg(not(any(test, feature = "faults")))]
        let injector = None;
        self.conn = Conn::new(stream, injector);
        Ok(())
    }

    /// Exponential backoff with deterministic jitter: attempt `k`
    /// sleeps in `[base, 2·base)` where `base = hint << k`, floored at
    /// the server's hint (never retry before the server asked) and
    /// capped at [`MAX_BACKOFF`] before jitter.
    fn backoff(&mut self, hint: Duration, attempt: u32) -> Duration {
        let base = hint
            .max(MIN_BACKOFF)
            .saturating_mul(1u32 << attempt.min(10))
            .min(MAX_BACKOFF)
            .max(hint);
        let jitter = base.mul_f64(self.retry_rng.next_f64());
        base + jitter
    }

    /// One request/response round-trip, checking the response echoes
    /// the request id and translating `Error` frames.
    fn round_trip(&mut self, request: &Frame) -> Result<Frame, NetError> {
        request.write_to(&mut self.conn)?;
        self.conn.flush()?;
        let response = Frame::read_from(&mut self.conn)?;
        if response.request_id != request.request_id {
            return Err(NetError::Protocol(format!(
                "response id {} does not match request id {}",
                response.request_id, request.request_id
            )));
        }
        if response.opcode == OP_ERROR {
            let (code, message) = decode_error(&response.payload)?;
            return Err(match code {
                ERR_DEADLINE => NetError::DeadlineExceeded,
                ERR_SHUTTING_DOWN => NetError::ShuttingDown,
                _ => NetError::Remote { code, message },
            });
        }
        Ok(response)
    }

    /// Prepares `query` on the server, returning its remote handle.
    pub fn prepare(&mut self, query: &UnionQuery) -> Result<RemotePrepared, NetError> {
        let request = Frame {
            opcode: OP_PREPARE,
            request_id: self.next_id(),
            payload: encode_prepare(query),
        };
        let response = self.round_trip(&request)?;
        if response.opcode != OP_PREPARED {
            return Err(unexpected(OP_PREPARED, response.opcode));
        }
        let (id, estimations, summary) = decode_prepared(&response.payload)?;
        Ok(RemotePrepared {
            id,
            estimations,
            summary,
        })
    }

    /// Draws `n` samples from a prepared query under `seed`,
    /// transparently retrying `Busy` responses with exponential
    /// backoff seeded-jittered above the server's hint.
    pub fn sample(
        &mut self,
        prepared: &RemotePrepared,
        n: usize,
        seed: u64,
    ) -> Result<SampleBatch, NetError> {
        self.sample_by_id(prepared.id, n, seed)
    }

    /// Like [`Client::sample`] with a per-request deadline budget: the
    /// server answers [`NetError::DeadlineExceeded`] if it cannot
    /// finish in time.
    pub fn sample_within(
        &mut self,
        prepared: &RemotePrepared,
        n: usize,
        seed: u64,
        budget: Duration,
    ) -> Result<SampleBatch, NetError> {
        self.sample_request(prepared.id, n, seed, budget_ns(budget))
    }

    /// Like [`Client::sample`], addressing the prepared query by raw
    /// id.
    pub fn sample_by_id(
        &mut self,
        prepared_id: u64,
        n: usize,
        seed: u64,
    ) -> Result<SampleBatch, NetError> {
        self.sample_request(prepared_id, n, seed, 0)
    }

    fn sample_request(
        &mut self,
        prepared_id: u64,
        n: usize,
        seed: u64,
        budget_ns: u64,
    ) -> Result<SampleBatch, NetError> {
        let mut busy_budget = self.busy_retries;
        let mut reconnects = self.reconnect_attempts;
        let mut attempt: u32 = 0;
        loop {
            let request = Frame {
                opcode: OP_SAMPLE,
                request_id: self.next_id(),
                payload: encode_sample(prepared_id, n as u64, seed, budget_ns),
            };
            let response = match self.round_trip(&request) {
                Ok(r) => r,
                Err(NetError::Checksum { .. }) if reconnects > 0 => {
                    // The response was damaged in transit but the
                    // stream framing survived: retry on the same
                    // connection.
                    reconnects -= 1;
                    continue;
                }
                Err(e) if reconnects > 0 && transport_corruption(&e) => {
                    reconnects -= 1;
                    // The old connection is dead or its framing can no
                    // longer be trusted; back off briefly, then
                    // rebuild it. Sampling is seeded and idempotent,
                    // so the retry cannot change the answer.
                    std::thread::sleep(self.backoff(MIN_BACKOFF, attempt));
                    attempt = attempt.saturating_add(1);
                    self.reconnect()?;
                    continue;
                }
                Err(e) => return Err(e),
            };
            match response.opcode {
                OP_BATCH => {
                    let (attrs, tuples) = decode_batch(&response.payload)?;
                    return Ok(SampleBatch { attrs, tuples });
                }
                OP_BUSY => {
                    let hint = decode_busy(&response.payload)?;
                    if busy_budget == 0 {
                        return Err(NetError::Busy(hint));
                    }
                    busy_budget -= 1;
                    std::thread::sleep(self.backoff(hint, attempt));
                    attempt = attempt.saturating_add(1);
                }
                other => return Err(unexpected(OP_BATCH, other)),
            }
        }
    }

    /// Fetches the server's service counters.
    pub fn stats(&mut self) -> Result<WireStats, NetError> {
        let request = Frame::empty(OP_STATS, self.next_id());
        let response = self.round_trip(&request)?;
        if response.opcode != OP_STATS_REPLY {
            return Err(unexpected(OP_STATS_REPLY, response.opcode));
        }
        decode_stats(&response.payload)
    }

    /// Asks the server to shut down; returns once acknowledged.
    pub fn shutdown(&mut self) -> Result<(), NetError> {
        let request = Frame::empty(OP_SHUTDOWN, self.next_id());
        let response = self.round_trip(&request)?;
        if response.opcode != OP_SHUTDOWN_ACK {
            return Err(unexpected(OP_SHUTDOWN_ACK, response.opcode));
        }
        Ok(())
    }
}

/// True for errors that mean the connection itself failed or its
/// framing can no longer be trusted — a reset, a corrupted header
/// (bad magic/version), or a response that desynced from its request.
/// These are retryable on a fresh connection for idempotent requests.
fn transport_corruption(e: &NetError) -> bool {
    matches!(
        e,
        NetError::ConnectionReset
            | NetError::BadMagic(_)
            | NetError::UnsupportedVersion(_)
            | NetError::Protocol(_)
    )
}

/// Clamps a [`Duration`] budget into the wire's nanosecond word; zero
/// stays zero (no deadline).
fn budget_ns(budget: Duration) -> u64 {
    u64::try_from(budget.as_nanos()).unwrap_or(u64::MAX)
}

fn unexpected(wanted: u16, got: u16) -> NetError {
    NetError::Protocol(format!(
        "expected response opcode {wanted:#06x}, got {got:#06x}"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_floors_at_hint_and_is_deterministic() {
        let mk = || {
            let stream = {
                let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
                let addr = listener.local_addr().unwrap();
                let s = TcpStream::connect(addr).unwrap();
                let _ = listener.accept().unwrap();
                s
            };
            Client {
                conn: Conn::new(stream, None),
                addr: "127.0.0.1:1".parse().unwrap(),
                next_request: 1,
                busy_retries: 0,
                reconnect_attempts: 0,
                io_timeout: None,
                retry_rng: SujRng::seed_from_u64(42),
                fault_plan: None,
                conn_seq: 0,
            }
        };
        let hint = Duration::from_millis(3);
        let mut a = mk();
        let mut b = mk();
        for attempt in 0..8 {
            let sa = a.backoff(hint, attempt);
            let sb = b.backoff(hint, attempt);
            assert_eq!(sa, sb, "same seed, same schedule");
            assert!(sa >= hint, "never retry before the server's hint");
            assert!(sa <= 2 * MAX_BACKOFF.max(hint), "bounded above");
        }
        // The base doubles until the cap.
        let mut c = mk();
        let early = c.backoff(hint, 0);
        let late = c.backoff(hint, 9);
        assert!(late > early);
    }
}
