//! A blocking TCP client for the sampling protocol.
//!
//! One [`Client`] owns one connection; requests are issued
//! synchronously (send frame, wait for the matching response). `Busy`
//! responses are retried automatically with the server-provided
//! back-off hint, up to a bounded retry budget — after which the call
//! fails with [`NetError::Busy`] so callers can apply their own
//! policy.

use crate::protocol::{
    decode_batch, decode_busy, decode_error, decode_prepared, decode_stats, encode_prepare,
    encode_sample, Frame, NetError, WireStats, OP_BATCH, OP_BUSY, OP_ERROR, OP_PREPARE,
    OP_PREPARED, OP_SAMPLE, OP_SHUTDOWN, OP_SHUTDOWN_ACK, OP_STATS, OP_STATS_REPLY,
};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;
use suj_core::query::UnionQuery;
use suj_storage::Tuple;

/// How many `Busy` responses a call absorbs before giving up.
const DEFAULT_BUSY_RETRIES: usize = 32;

/// A server-side prepared query, addressed by id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemotePrepared {
    /// Server-assigned handle for subsequent `Sample` requests.
    pub id: u64,
    /// Estimation passes the server spent preparing (0 when restored
    /// from a snapshot).
    pub estimations: u64,
    /// The server's plan summary line.
    pub summary: String,
}

/// A decoded sample batch.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleBatch {
    /// Canonical attribute names, in schema order.
    pub attrs: Vec<String>,
    /// The sampled rows.
    pub tuples: Vec<Tuple>,
}

/// A blocking protocol client over one TCP connection.
pub struct Client {
    stream: TcpStream,
    next_request: u64,
    busy_retries: usize,
}

impl Client {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, NetError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            next_request: 1,
            busy_retries: DEFAULT_BUSY_RETRIES,
        })
    }

    /// Overrides how many `Busy` responses a call absorbs before
    /// failing with [`NetError::Busy`]. Zero disables retries.
    #[must_use = "builder methods return the updated client"]
    pub fn with_busy_retries(mut self, retries: usize) -> Self {
        self.busy_retries = retries;
        self
    }

    fn next_id(&mut self) -> u64 {
        let id = self.next_request;
        self.next_request += 1;
        id
    }

    /// One request/response round-trip, checking the response echoes
    /// the request id and translating `Error` frames.
    fn round_trip(&mut self, request: &Frame) -> Result<Frame, NetError> {
        use std::io::Write;
        request.write_to(&mut self.stream)?;
        self.stream.flush()?;
        let response = Frame::read_from(&mut self.stream)?;
        if response.request_id != request.request_id {
            return Err(NetError::Protocol(format!(
                "response id {} does not match request id {}",
                response.request_id, request.request_id
            )));
        }
        if response.opcode == OP_ERROR {
            let (code, message) = decode_error(&response.payload)?;
            return Err(NetError::Remote { code, message });
        }
        Ok(response)
    }

    /// Prepares `query` on the server, returning its remote handle.
    pub fn prepare(&mut self, query: &UnionQuery) -> Result<RemotePrepared, NetError> {
        let request = Frame {
            opcode: OP_PREPARE,
            request_id: self.next_id(),
            payload: encode_prepare(query),
        };
        let response = self.round_trip(&request)?;
        if response.opcode != OP_PREPARED {
            return Err(unexpected(OP_PREPARED, response.opcode));
        }
        let (id, estimations, summary) = decode_prepared(&response.payload)?;
        Ok(RemotePrepared {
            id,
            estimations,
            summary,
        })
    }

    /// Draws `n` samples from a prepared query under `seed`,
    /// transparently retrying `Busy` responses with the server's
    /// back-off hint.
    pub fn sample(
        &mut self,
        prepared: &RemotePrepared,
        n: usize,
        seed: u64,
    ) -> Result<SampleBatch, NetError> {
        self.sample_by_id(prepared.id, n, seed)
    }

    /// Like [`Client::sample`], addressing the prepared query by raw
    /// id.
    pub fn sample_by_id(
        &mut self,
        prepared_id: u64,
        n: usize,
        seed: u64,
    ) -> Result<SampleBatch, NetError> {
        let mut budget = self.busy_retries;
        loop {
            let request = Frame {
                opcode: OP_SAMPLE,
                request_id: self.next_id(),
                payload: encode_sample(prepared_id, n as u64, seed),
            };
            let response = self.round_trip(&request)?;
            match response.opcode {
                OP_BATCH => {
                    let (attrs, tuples) = decode_batch(&response.payload)?;
                    return Ok(SampleBatch { attrs, tuples });
                }
                OP_BUSY => {
                    let hint = decode_busy(&response.payload)?;
                    if budget == 0 {
                        return Err(NetError::Busy(hint));
                    }
                    budget -= 1;
                    std::thread::sleep(hint.min(Duration::from_millis(50)));
                }
                other => return Err(unexpected(OP_BATCH, other)),
            }
        }
    }

    /// Fetches the server's service counters.
    pub fn stats(&mut self) -> Result<WireStats, NetError> {
        let request = Frame::empty(OP_STATS, self.next_id());
        let response = self.round_trip(&request)?;
        if response.opcode != OP_STATS_REPLY {
            return Err(unexpected(OP_STATS_REPLY, response.opcode));
        }
        decode_stats(&response.payload)
    }

    /// Asks the server to shut down; returns once acknowledged.
    pub fn shutdown(&mut self) -> Result<(), NetError> {
        let request = Frame::empty(OP_SHUTDOWN, self.next_id());
        let response = self.round_trip(&request)?;
        if response.opcode != OP_SHUTDOWN_ACK {
            return Err(unexpected(OP_SHUTDOWN_ACK, response.opcode));
        }
        Ok(())
    }
}

fn unexpected(wanted: u16, got: u16) -> NetError {
    NetError::Protocol(format!(
        "expected response opcode {wanted:#06x}, got {got:#06x}"
    ))
}
