//! The TCP server: a thread-per-connection front-end over
//! [`Engine`] + [`SamplingService`].
//!
//! Each accepted connection gets a reader thread that decodes frames,
//! dispatches them, and writes the response back on the same socket —
//! requests on one connection are answered in order; connections are
//! independent and served concurrently by the shared worker pool.
//!
//! Backpressure is end-to-end: `Sample` requests go through
//! [`SamplingService::try_submit`], so a full worker queue surfaces as
//! a `Busy` frame (with the service's drain-time retry hint) instead
//! of unbounded buffering inside the server.
//!
//! Determinism is preserved across the wire: a `Sample` frame carries
//! an explicit seed, the worker derives its RNG stream from
//! `(root_seed, seed)` exactly as the in-process path does, so the
//! same prepared query + root seed + request seed yields bit-identical
//! samples whether sampled in-process, over TCP, or on a
//! snapshot-restored replica.
//!
//! # Failure containment
//!
//! The server assumes every peer and every request can misbehave:
//!
//! - **Deadlines** — a `Sample` frame may carry a budget; the worker
//!   pool checks it at dequeue and between draws, answering
//!   [`ERR_DEADLINE`] instead of running away.
//! - **Panic isolation** — frame handling runs under `catch_unwind`;
//!   a panicking request yields a typed [`ERR_ENGINE`] frame and the
//!   connection (and accept loop) keeps serving. Poisoned registry
//!   locks are recovered, never unwrapped.
//! - **Stalled peers** — once a frame's first byte arrives, the rest
//!   must make progress within [`ServerOptions::io_grace`]; writes get
//!   the same timeout. A peer that stalls past the grace is dropped
//!   instead of pinning its thread.
//! - **Graceful drain** — after [`Server::stop`] (or a `Shutdown`
//!   frame), connections keep reading for
//!   [`ServerOptions::drain_grace`] so queued frames are answered with
//!   typed [`ERR_SHUTTING_DOWN`] errors instead of a raw EOF.

use crate::faults::Conn;
#[cfg(any(test, feature = "faults"))]
use crate::faults::FaultPlan;
use crate::protocol::{
    decode_prepare, decode_sample, encode_batch, encode_busy, encode_error, encode_prepared,
    encode_stats, parse_header, verify_payload, Frame, NetError, WireStats, ERR_BAD_REQUEST,
    ERR_DEADLINE, ERR_ENGINE, ERR_SHUTTING_DOWN, ERR_UNKNOWN_PREPARED, HEADER_LEN, OP_BATCH,
    OP_BUSY, OP_ERROR, OP_PREPARE, OP_PREPARED, OP_SAMPLE, OP_SHUTDOWN, OP_SHUTDOWN_ACK, OP_STATS,
    OP_STATS_REPLY,
};
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};
use suj_core::catalog::{Engine, PreparedQuery};
use suj_core::error::CoreError;
use suj_core::serve::{SampleRequest, SamplingService, ServiceConfig, SubmitError};

/// How long a blocked connection read waits before re-checking the
/// shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// Caps `Sample.n` so a single malicious frame cannot request an
/// unbounded draw.
const MAX_SAMPLE_N: u64 = 1 << 24;

/// Tuning knobs for the server's failure-containment behavior.
///
/// Defaults are production-ready; tests lower the graces to exercise
/// timeout paths quickly.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    io_grace: Duration,
    drain_grace: Duration,
    #[cfg(any(test, feature = "faults"))]
    fault_plan: Option<FaultPlan>,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            io_grace: Duration::from_secs(5),
            drain_grace: Duration::from_millis(500),
            #[cfg(any(test, feature = "faults"))]
            fault_plan: None,
        }
    }
}

impl ServerOptions {
    /// Progress deadline for mid-frame reads and for response writes.
    /// A connection that stalls a transfer longer than this is
    /// dropped. Also used as the write timeout on every connection.
    #[must_use = "builder methods return the updated options"]
    pub fn with_io_grace(mut self, grace: Duration) -> Self {
        self.io_grace = grace;
        self
    }

    /// How long draining connections keep answering buffered frames
    /// (with typed `ShuttingDown` errors) after shutdown is requested.
    #[must_use = "builder methods return the updated options"]
    pub fn with_drain_grace(mut self, grace: Duration) -> Self {
        self.drain_grace = grace;
        self
    }

    /// The configured I/O grace.
    pub fn io_grace(&self) -> Duration {
        self.io_grace
    }

    /// The configured drain grace.
    pub fn drain_grace(&self) -> Duration {
        self.drain_grace
    }

    /// Installs a deterministic fault plan: every accepted connection
    /// reads and writes through an injector derived from
    /// `(plan seed, connection index)`. Chaos builds only.
    #[cfg(any(test, feature = "faults"))]
    #[must_use = "builder methods return the updated options"]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }
}

/// Recovers a poisoned mutex instead of propagating the poison: the
/// registry holds plain data (id → prepared handle), which stays
/// consistent even if a holder panicked mid-insert.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

struct Shared {
    engine: Engine,
    service: SamplingService,
    registry: Mutex<HashMap<u64, Arc<PreparedQuery>>>,
    next_prepared: AtomicU64,
    shutdown: AtomicBool,
    active_conns: AtomicU64,
    conn_seq: AtomicU64,
    options: ServerOptions,
}

/// Decrements the active-connection count when a connection thread
/// exits — normally or by unwinding.
struct ConnGuard {
    shared: Arc<Shared>,
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.shared.active_conns.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A running TCP sampling server.
///
/// Constructed with [`Server::bind`]; runs until a client sends
/// `Shutdown` or [`Server::stop`] is called, then [`Server::join`]
/// returns. Dropping the server also stops it.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_handle: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` and starts serving `engine` with a worker pool
    /// configured by `config` and default [`ServerOptions`]. Use port
    /// 0 to let the OS pick; the bound address is available via
    /// [`Server::addr`].
    pub fn bind(
        engine: Engine,
        addr: impl ToSocketAddrs,
        config: ServiceConfig,
    ) -> Result<Server, NetError> {
        Self::bind_with(engine, addr, config, ServerOptions::default())
    }

    /// Like [`Server::bind`] with explicit failure-containment
    /// options.
    pub fn bind_with(
        engine: Engine,
        addr: impl ToSocketAddrs,
        config: ServiceConfig,
        options: ServerOptions,
    ) -> Result<Server, NetError> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        // The engine is cloned, not moved: both handles share the
        // catalog and the prepared-query cache, so queries prepared
        // over the wire are visible to the service workers and vice
        // versa.
        let service = SamplingService::start(engine.clone(), config);
        let shared = Arc::new(Shared {
            engine,
            service,
            registry: Mutex::new(HashMap::new()),
            next_prepared: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
            active_conns: AtomicU64::new(0),
            conn_seq: AtomicU64::new(0),
            options,
        });
        let accept_shared = Arc::clone(&shared);
        let accept_handle = thread::Builder::new()
            .name("suj-net-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))
            .map_err(NetError::Io)?;
        Ok(Server {
            addr,
            shared,
            accept_handle: Some(accept_handle),
        })
    }

    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// True once a shutdown (wire or local) has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Open connections currently being served.
    pub fn active_connections(&self) -> u64 {
        self.shared.active_conns.load(Ordering::SeqCst)
    }

    /// Requests shutdown without a wire round-trip. Idempotent.
    /// Draining connections answer their buffered frames with typed
    /// `ShuttingDown` errors before closing.
    pub fn stop(&self) {
        request_shutdown(&self.shared, self.addr);
    }

    /// Blocks until the accept loop exits (after a `Shutdown` frame or
    /// [`Server::stop`]), then waits — bounded by the drain and I/O
    /// graces — for in-flight connections to finish draining.
    pub fn join(mut self) -> Result<(), NetError> {
        let result = if let Some(handle) = self.accept_handle.take() {
            handle
                .join()
                .map_err(|_| NetError::Protocol("accept thread panicked".into()))
        } else {
            Ok(())
        };
        wait_for_drain(&self.shared);
        result
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        wait_for_drain(&self.shared);
    }
}

/// Bounded wait for connection threads to drain after shutdown: the
/// drain grace (buffered frames) plus the I/O grace (a stalled final
/// write), plus scheduling slack.
fn wait_for_drain(shared: &Shared) {
    let deadline =
        Instant::now() + shared.options.drain_grace + shared.options.io_grace + POLL_INTERVAL;
    while shared.active_conns.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
        thread::sleep(Duration::from_millis(5));
    }
}

/// Flags shutdown and pokes the listener with a throwaway connection
/// so a blocking `accept` observes the flag.
fn request_shutdown(shared: &Shared, addr: SocketAddr) {
    if !shared.shutdown.swap(true, Ordering::SeqCst) {
        let _ = TcpStream::connect(addr);
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    // The wake-up connection (or a late client): close
                    // it and exit.
                    drop(stream);
                    return;
                }
                let conn_shared = Arc::clone(&shared);
                shared.active_conns.fetch_add(1, Ordering::SeqCst);
                let spawned = thread::Builder::new()
                    .name("suj-net-conn".into())
                    .spawn(move || {
                        let guard = ConnGuard {
                            shared: Arc::clone(&conn_shared),
                        };
                        // A panicking connection must not take the
                        // server down: contain it, release the guard,
                        // keep accepting.
                        let _ = catch_unwind(AssertUnwindSafe(|| {
                            let _ = serve_connection(stream, &conn_shared);
                        }));
                        drop(guard);
                    });
                if spawned.is_err() {
                    // Thread spawn failed (resource exhaustion): undo
                    // the count and drop the connection.
                    shared.active_conns.fetch_sub(1, Ordering::SeqCst);
                }
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // Transient accept failure: keep serving.
            }
        }
    }
}

/// Reads `buf.len()` bytes, looping over timeouts but only while the
/// peer makes progress: each received chunk renews the grace; a stall
/// longer than `grace` fails with `TimedOut` so a dead or glacial peer
/// cannot pin the connection thread forever.
fn read_full(conn: &mut Conn, buf: &mut [u8], grace: Duration) -> std::io::Result<()> {
    let mut off = 0;
    let mut stall_deadline = Instant::now() + grace;
    while off < buf.len() {
        match conn.read(&mut buf[off..]) {
            Ok(0) => return Err(ErrorKind::UnexpectedEof.into()),
            Ok(n) => {
                off += n;
                stall_deadline = Instant::now() + grace;
            }
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                ) =>
            {
                if Instant::now() >= stall_deadline {
                    return Err(ErrorKind::TimedOut.into());
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// What the connection loop should do with the bytes it just read.
enum Next {
    /// A complete frame arrived.
    Frame(Frame),
    /// A frame arrived but its payload failed the header CRC; answer
    /// with a typed error (the stream itself is still framed
    /// correctly, so the connection survives).
    Corrupt { request_id: u64 },
    /// Orderly end: peer closed, or the drain grace expired.
    Done,
}

/// Reads the next frame, polling the shutdown flag between timed-out
/// reads while idle. After shutdown is flagged, keeps reading for
/// `drain_grace` so frames already in flight get typed
/// `ShuttingDown` answers instead of a dropped connection.
fn read_frame(
    conn: &mut Conn,
    shared: &Shared,
    drain_deadline: &mut Option<Instant>,
) -> Result<Next, NetError> {
    let mut first = [0u8; 1];
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            let deadline =
                *drain_deadline.get_or_insert_with(|| Instant::now() + shared.options.drain_grace);
            if Instant::now() >= deadline {
                return Ok(Next::Done);
            }
        }
        match conn.read(&mut first) {
            Ok(0) => return Ok(Next::Done),
            Ok(_) => break,
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(e.into()),
        }
    }
    let grace = shared.options.io_grace;
    let mut header = [0u8; HEADER_LEN];
    header[0] = first[0];
    read_full(conn, &mut header[1..], grace)?;
    let (opcode, request_id, len, expected_crc) = parse_header(&header)?;
    let mut payload = vec![0u8; len as usize];
    read_full(conn, &mut payload, grace)?;
    if verify_payload(&payload, expected_crc).is_err() {
        return Ok(Next::Corrupt { request_id });
    }
    Ok(Next::Frame(Frame {
        opcode,
        request_id,
        payload,
    }))
}

fn serve_connection(stream: TcpStream, shared: &Shared) -> Result<(), NetError> {
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    stream.set_write_timeout(Some(shared.options.io_grace))?;
    stream.set_nodelay(true)?;
    let local_addr = stream.local_addr()?;
    let stream_id = shared.conn_seq.fetch_add(1, Ordering::Relaxed);
    #[cfg(any(test, feature = "faults"))]
    let injector = shared
        .options
        .fault_plan
        .as_ref()
        .map(|plan| plan.injector(stream_id));
    #[cfg(not(any(test, feature = "faults")))]
    let injector = None;
    let _ = stream_id;
    let mut conn = Conn::new(stream, injector);
    let mut drain_deadline = None;
    loop {
        let response = match read_frame(&mut conn, shared, &mut drain_deadline)? {
            Next::Done => return Ok(()),
            Next::Corrupt { request_id } => error_frame(
                request_id,
                ERR_BAD_REQUEST,
                "payload checksum mismatch: frame corrupted in transit",
            ),
            Next::Frame(frame) => {
                let is_shutdown = frame.opcode == OP_SHUTDOWN;
                let response = dispatch(frame, shared);
                if is_shutdown {
                    response.write_to(&mut conn)?;
                    conn.flush()?;
                    request_shutdown(shared, local_addr);
                    return Ok(());
                }
                response
            }
        };
        response.write_to(&mut conn)?;
        conn.flush()?;
    }
}

/// Handles one frame with panic containment: a request that panics the
/// handler produces a typed `Error` frame, not a dead connection.
fn dispatch(frame: Frame, shared: &Shared) -> Frame {
    let id = frame.request_id;
    catch_unwind(AssertUnwindSafe(|| handle_frame(frame, shared))).unwrap_or_else(|payload| {
        let detail = panic_message(payload.as_ref());
        error_frame(id, ERR_ENGINE, &format!("request panicked: {detail}"))
    })
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "opaque panic payload"
    }
}

fn handle_frame(frame: Frame, shared: &Shared) -> Frame {
    let id = frame.request_id;
    if shared.shutdown.load(Ordering::SeqCst) && frame.opcode != OP_SHUTDOWN {
        return error_frame(id, ERR_SHUTTING_DOWN, "server is shutting down");
    }
    match frame.opcode {
        OP_PREPARE => handle_prepare(id, &frame.payload, shared),
        OP_SAMPLE => handle_sample(id, &frame.payload, shared),
        OP_STATS => handle_stats(id, shared),
        OP_SHUTDOWN => Frame::empty(OP_SHUTDOWN_ACK, id),
        other => error_frame(id, ERR_BAD_REQUEST, &format!("unknown opcode {other:#06x}")),
    }
}

fn handle_prepare(id: u64, payload: &[u8], shared: &Shared) -> Frame {
    let query = match decode_prepare(payload) {
        Ok(q) => q,
        Err(e) => return error_frame(id, ERR_BAD_REQUEST, &e.to_string()),
    };
    let prepared = match shared.engine.prepare(&query) {
        Ok(p) => p,
        Err(e) => return error_frame(id, ERR_ENGINE, &e.to_string()),
    };
    let prepared_id = shared.next_prepared.fetch_add(1, Ordering::Relaxed);
    let estimations = prepared.estimations();
    // The freeze-time summary, not one recomputed from the plan: the
    // stamped copy preserves provenance (rule, sizing) across snapshot
    // restores, so donor and replica serve identical strings.
    let summary = prepared.summary().to_string();
    lock(&shared.registry).insert(prepared_id, prepared);
    Frame {
        opcode: OP_PREPARED,
        request_id: id,
        payload: encode_prepared(prepared_id, estimations, &summary),
    }
}

fn handle_sample(id: u64, payload: &[u8], shared: &Shared) -> Frame {
    let (prepared_id, n, seed, budget_ns) = match decode_sample(payload) {
        Ok(parts) => parts,
        Err(e) => return error_frame(id, ERR_BAD_REQUEST, &e.to_string()),
    };
    // Chaos builds: `n == u64::MAX` is a panic pill that exercises the
    // worker-pool panic containment end to end.
    #[cfg(feature = "faults")]
    let panic_pill = n == u64::MAX;
    #[cfg(not(feature = "faults"))]
    let panic_pill = false;
    if n > MAX_SAMPLE_N && !panic_pill {
        return error_frame(
            id,
            ERR_BAD_REQUEST,
            &format!("sample size {n} exceeds limit {MAX_SAMPLE_N}"),
        );
    }
    let prepared = {
        let registry = lock(&shared.registry);
        match registry.get(&prepared_id) {
            Some(p) => Arc::clone(p),
            None => {
                return error_frame(
                    id,
                    ERR_UNKNOWN_PREPARED,
                    &format!("no prepared query with id {prepared_id}"),
                )
            }
        }
    };
    let effective_n = if panic_pill { 1 } else { n as usize };
    let mut request = SampleRequest::prepared(id, effective_n, &prepared).with_seed(seed);
    if budget_ns > 0 {
        request = request.with_budget(Duration::from_nanos(budget_ns));
    }
    #[cfg(feature = "faults")]
    if panic_pill {
        request = request.with_panic_for_test();
    }
    let ticket = match shared.service.try_submit(request) {
        Ok(t) => t,
        Err(SubmitError::Busy { retry_after, .. }) => {
            return Frame {
                opcode: OP_BUSY,
                request_id: id,
                payload: encode_busy(retry_after),
            }
        }
        Err(SubmitError::ShutDown(_)) => {
            return error_frame(id, ERR_SHUTTING_DOWN, "worker pool is shut down")
        }
    };
    match ticket.wait() {
        Ok(response) => {
            let attrs = prepared.workload().canonical_schema().attrs().to_vec();
            Frame {
                opcode: OP_BATCH,
                request_id: id,
                payload: encode_batch(&attrs, &response.tuples),
            }
        }
        Err(CoreError::DeadlineExceeded) => error_frame(
            id,
            ERR_DEADLINE,
            "deadline exceeded before the request finished",
        ),
        Err(e) => error_frame(id, ERR_ENGINE, &e.to_string()),
    }
}

fn handle_stats(id: u64, shared: &Shared) -> Frame {
    let stats = shared.service.stats();
    let wire = WireStats {
        workers: stats.workers as u64,
        submitted: stats.submitted,
        completed: stats.completed,
        failed: stats.failed,
        tuples_served: stats.tuples_served,
        prepared_bytes: stats.prepared_bytes,
        snapshot_bytes: stats.snapshot_bytes,
        restore_time_ns: u64::try_from(stats.restore_time.as_nanos()).unwrap_or(u64::MAX),
    };
    Frame {
        opcode: OP_STATS_REPLY,
        request_id: id,
        payload: encode_stats(&wire),
    }
}

fn error_frame(id: u64, code: u16, message: &str) -> Frame {
    Frame {
        opcode: OP_ERROR,
        request_id: id,
        payload: encode_error(code, message),
    }
}
