//! The TCP server: a thread-per-connection front-end over
//! [`Engine`] + [`SamplingService`].
//!
//! Each accepted connection gets a reader thread that decodes frames,
//! dispatches them, and writes the response back on the same socket —
//! requests on one connection are answered in order; connections are
//! independent and served concurrently by the shared worker pool.
//!
//! Backpressure is end-to-end: `Sample` requests go through
//! [`SamplingService::try_submit`], so a full worker queue surfaces as
//! a `Busy` frame (with the service's drain-time retry hint) instead
//! of unbounded buffering inside the server.
//!
//! Determinism is preserved across the wire: a `Sample` frame carries
//! an explicit seed, the worker derives its RNG stream from
//! `(root_seed, seed)` exactly as the in-process path does, so the
//! same prepared query + root seed + request seed yields bit-identical
//! samples whether sampled in-process, over TCP, or on a
//! snapshot-restored replica.

use crate::protocol::{
    decode_prepare, decode_sample, encode_batch, encode_busy, encode_error, encode_prepared,
    encode_stats, parse_header, Frame, NetError, WireStats, ERR_BAD_REQUEST, ERR_ENGINE,
    ERR_SHUTTING_DOWN, ERR_UNKNOWN_PREPARED, HEADER_LEN, OP_BATCH, OP_BUSY, OP_ERROR, OP_PREPARE,
    OP_PREPARED, OP_SAMPLE, OP_SHUTDOWN, OP_SHUTDOWN_ACK, OP_STATS, OP_STATS_REPLY,
};
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;
use suj_core::catalog::{Engine, PreparedQuery};
use suj_core::serve::{SampleRequest, SamplingService, ServiceConfig, SubmitError};

/// How long a blocked connection read waits before re-checking the
/// shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// Caps `Sample.n` so a single malicious frame cannot request an
/// unbounded draw.
const MAX_SAMPLE_N: u64 = 1 << 24;

struct Shared {
    engine: Engine,
    service: SamplingService,
    registry: Mutex<HashMap<u64, Arc<PreparedQuery>>>,
    next_prepared: AtomicU64,
    shutdown: AtomicBool,
}

/// A running TCP sampling server.
///
/// Constructed with [`Server::bind`]; runs until a client sends
/// `Shutdown` or [`Server::stop`] is called, then [`Server::join`]
/// returns. Dropping the server also stops it.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_handle: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` and starts serving `engine` with a worker pool
    /// configured by `config`. Use port 0 to let the OS pick; the
    /// bound address is available via [`Server::addr`].
    pub fn bind(
        engine: Engine,
        addr: impl ToSocketAddrs,
        config: ServiceConfig,
    ) -> Result<Server, NetError> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        // The engine is cloned, not moved: both handles share the
        // catalog and the prepared-query cache, so queries prepared
        // over the wire are visible to the service workers and vice
        // versa.
        let service = SamplingService::start(engine.clone(), config);
        let shared = Arc::new(Shared {
            engine,
            service,
            registry: Mutex::new(HashMap::new()),
            next_prepared: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_handle = thread::Builder::new()
            .name("suj-net-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))
            .map_err(NetError::Io)?;
        Ok(Server {
            addr,
            shared,
            accept_handle: Some(accept_handle),
        })
    }

    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// True once a shutdown (wire or local) has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Requests shutdown without a wire round-trip. Idempotent.
    pub fn stop(&self) {
        request_shutdown(&self.shared, self.addr);
    }

    /// Blocks until the accept loop exits (after a `Shutdown` frame or
    /// [`Server::stop`]), then joins connection threads implicitly by
    /// returning once the listener is closed.
    pub fn join(mut self) -> Result<(), NetError> {
        if let Some(handle) = self.accept_handle.take() {
            handle
                .join()
                .map_err(|_| NetError::Protocol("accept thread panicked".into()))?;
        }
        Ok(())
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
    }
}

/// Flags shutdown and pokes the listener with a throwaway connection
/// so a blocking `accept` observes the flag.
fn request_shutdown(shared: &Shared, addr: SocketAddr) {
    if !shared.shutdown.swap(true, Ordering::SeqCst) {
        let _ = TcpStream::connect(addr);
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    // The wake-up connection (or a late client): close
                    // it and exit.
                    drop(stream);
                    return;
                }
                let conn_shared = Arc::clone(&shared);
                let _ = thread::Builder::new()
                    .name("suj-net-conn".into())
                    .spawn(move || {
                        let _ = serve_connection(stream, conn_shared);
                    });
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // Transient accept failure: keep serving.
            }
        }
    }
}

/// Reads `buf.len()` bytes, looping over timeouts; the caller has
/// already seen the first byte of the frame, so a mid-frame timeout
/// just means a slow peer.
fn read_full(stream: &mut TcpStream, buf: &mut [u8]) -> std::io::Result<()> {
    let mut off = 0;
    while off < buf.len() {
        match stream.read(&mut buf[off..]) {
            Ok(0) => return Err(ErrorKind::UnexpectedEof.into()),
            Ok(n) => off += n,
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Reads the next frame, polling the shutdown flag between timed-out
/// reads while idle. Returns `None` on orderly end (peer closed, or
/// shutdown observed between frames).
fn read_frame(stream: &mut TcpStream, shared: &Shared) -> Result<Option<Frame>, NetError> {
    let mut first = [0u8; 1];
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return Ok(None);
        }
        match stream.read(&mut first) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(e.into()),
        }
    }
    let mut header = [0u8; HEADER_LEN];
    header[0] = first[0];
    read_full(stream, &mut header[1..])?;
    let (opcode, request_id, len) = parse_header(&header)?;
    let mut payload = vec![0u8; len as usize];
    read_full(stream, &mut payload)?;
    Ok(Some(Frame {
        opcode,
        request_id,
        payload,
    }))
}

fn serve_connection(mut stream: TcpStream, shared: Arc<Shared>) -> Result<(), NetError> {
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    stream.set_nodelay(true)?;
    while let Some(frame) = read_frame(&mut stream, &shared)? {
        let is_shutdown = frame.opcode == OP_SHUTDOWN;
        let response = handle_frame(frame, &shared);
        response.write_to(&mut stream)?;
        stream.flush()?;
        if is_shutdown {
            request_shutdown(&shared, stream.local_addr()?);
            break;
        }
    }
    Ok(())
}

fn handle_frame(frame: Frame, shared: &Shared) -> Frame {
    let id = frame.request_id;
    if shared.shutdown.load(Ordering::SeqCst) && frame.opcode != OP_SHUTDOWN {
        return error_frame(id, ERR_SHUTTING_DOWN, "server is shutting down");
    }
    match frame.opcode {
        OP_PREPARE => handle_prepare(id, &frame.payload, shared),
        OP_SAMPLE => handle_sample(id, &frame.payload, shared),
        OP_STATS => handle_stats(id, shared),
        OP_SHUTDOWN => Frame::empty(OP_SHUTDOWN_ACK, id),
        other => error_frame(id, ERR_BAD_REQUEST, &format!("unknown opcode {other:#06x}")),
    }
}

fn handle_prepare(id: u64, payload: &[u8], shared: &Shared) -> Frame {
    let query = match decode_prepare(payload) {
        Ok(q) => q,
        Err(e) => return error_frame(id, ERR_BAD_REQUEST, &e.to_string()),
    };
    let prepared = match shared.engine.prepare(&query) {
        Ok(p) => p,
        Err(e) => return error_frame(id, ERR_ENGINE, &e.to_string()),
    };
    let prepared_id = shared.next_prepared.fetch_add(1, Ordering::Relaxed);
    let estimations = prepared.estimations();
    let summary = prepared.plan().summary().to_string();
    shared
        .registry
        .lock()
        .expect("prepared registry poisoned")
        .insert(prepared_id, prepared);
    Frame {
        opcode: OP_PREPARED,
        request_id: id,
        payload: encode_prepared(prepared_id, estimations, &summary),
    }
}

fn handle_sample(id: u64, payload: &[u8], shared: &Shared) -> Frame {
    let (prepared_id, n, seed) = match decode_sample(payload) {
        Ok(parts) => parts,
        Err(e) => return error_frame(id, ERR_BAD_REQUEST, &e.to_string()),
    };
    if n > MAX_SAMPLE_N {
        return error_frame(
            id,
            ERR_BAD_REQUEST,
            &format!("sample size {n} exceeds limit {MAX_SAMPLE_N}"),
        );
    }
    let prepared = {
        let registry = shared.registry.lock().expect("prepared registry poisoned");
        match registry.get(&prepared_id) {
            Some(p) => Arc::clone(p),
            None => {
                return error_frame(
                    id,
                    ERR_UNKNOWN_PREPARED,
                    &format!("no prepared query with id {prepared_id}"),
                )
            }
        }
    };
    let request = SampleRequest::prepared(id, n as usize, &prepared).with_seed(seed);
    let ticket = match shared.service.try_submit(request) {
        Ok(t) => t,
        Err(SubmitError::Busy { retry_after, .. }) => {
            return Frame {
                opcode: OP_BUSY,
                request_id: id,
                payload: encode_busy(retry_after),
            }
        }
        Err(SubmitError::ShutDown(_)) => {
            return error_frame(id, ERR_SHUTTING_DOWN, "worker pool is shut down")
        }
    };
    match ticket.wait() {
        Ok(response) => {
            let attrs = prepared.workload().canonical_schema().attrs().to_vec();
            Frame {
                opcode: OP_BATCH,
                request_id: id,
                payload: encode_batch(&attrs, &response.tuples),
            }
        }
        Err(e) => error_frame(id, ERR_ENGINE, &e.to_string()),
    }
}

fn handle_stats(id: u64, shared: &Shared) -> Frame {
    let stats = shared.service.stats();
    let wire = WireStats {
        workers: stats.workers as u64,
        submitted: stats.submitted,
        completed: stats.completed,
        failed: stats.failed,
        tuples_served: stats.tuples_served,
        prepared_bytes: stats.prepared_bytes,
        snapshot_bytes: stats.snapshot_bytes,
        restore_time_ns: u64::try_from(stats.restore_time.as_nanos()).unwrap_or(u64::MAX),
    };
    Frame {
        opcode: OP_STATS_REPLY,
        request_id: id,
        payload: encode_stats(&wire),
    }
}

fn error_frame(id: u64, code: u16, message: &str) -> Frame {
    Frame {
        opcode: OP_ERROR,
        request_id: id,
        payload: encode_error(code, message),
    }
}
