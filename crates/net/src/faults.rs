//! Deterministic fault injection for chaos testing.
//!
//! A [`FaultPlan`] is a seeded schedule of transport faults — delays,
//! connection drops, short writes, and byte flips. Each connection
//! derives its own [`FaultInjector`] from `(plan seed, stream id)` via
//! [`SujRng::derive`], so a chaos run is fully reproducible: the same
//! root seed yields the same faults at the same points, every time,
//! independent of thread scheduling.
//!
//! The injector sits between the socket and the protocol code inside
//! [`Conn`], the stream wrapper both [`Server`](crate::Server) and
//! [`Client`](crate::Client) read and write through. In production
//! builds no plan is installed and `Conn` is a zero-cost passthrough;
//! the hooks that install a plan are gated behind
//! `#[cfg(any(test, feature = "faults"))]`.
//!
//! Faults are injected at observable protocol points only — bytes in
//! transit, not engine state — so every induced failure surfaces as a
//! typed outcome: a flipped bit becomes
//! [`NetError::Checksum`](crate::NetError::Checksum), a dropped
//! connection becomes
//! [`NetError::ConnectionReset`](crate::NetError::ConnectionReset),
//! and a delay either succeeds late or trips a deadline.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::Duration;
use suj_stats::rng::SujRng;

/// Per-operation fault probabilities, in per-mille (‰). A value of 0
/// disables that fault class; 1000 fires on every operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultConfig {
    /// Chance an I/O operation is delayed before executing.
    pub delay_per_mille: u16,
    /// Upper bound for an injected delay (uniform in `0..max_delay`).
    pub max_delay: Duration,
    /// Chance the connection dies before the operation (reads fail
    /// with `ConnectionReset`, writes with `BrokenPipe`).
    pub drop_per_mille: u16,
    /// Chance a write is truncated mid-buffer and the connection dies.
    pub short_write_per_mille: u16,
    /// Chance one bit of the buffer is flipped in transit.
    pub flip_per_mille: u16,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            delay_per_mille: 0,
            max_delay: Duration::from_millis(2),
            drop_per_mille: 0,
            short_write_per_mille: 0,
            flip_per_mille: 0,
        }
    }
}

impl FaultConfig {
    /// The standard chaos mix used by the chaos suite and the
    /// `chaos_path` bench: frequent small delays, occasional drops,
    /// short writes, and byte flips.
    pub fn standard() -> Self {
        FaultConfig {
            delay_per_mille: 100,
            max_delay: Duration::from_millis(2),
            drop_per_mille: 15,
            short_write_per_mille: 10,
            flip_per_mille: 10,
        }
    }
}

/// A seeded fault schedule shared by all connections of a server or
/// client under test.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    seed: u64,
    config: FaultConfig,
}

impl FaultPlan {
    /// A plan rooted at `seed` with the given fault mix.
    pub fn new(seed: u64, config: FaultConfig) -> Self {
        FaultPlan { seed, config }
    }

    /// The plan's root seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives the injector for one connection. Stream ids are
    /// assigned in accept/connect order, so the fault sequence per
    /// connection is a pure function of `(plan seed, stream id)`.
    pub fn injector(&self, stream_id: u64) -> FaultInjector {
        FaultInjector {
            rng: SujRng::derive(self.seed, stream_id),
            config: self.config,
            dead: false,
        }
    }
}

/// Per-connection fault state: a derived RNG and the configured mix.
/// Once a drop or short write fires, the connection stays dead — like
/// a real broken socket, every subsequent operation fails.
#[derive(Debug)]
pub struct FaultInjector {
    rng: SujRng,
    config: FaultConfig,
    dead: bool,
}

impl FaultInjector {
    fn roll(&mut self, per_mille: u16) -> bool {
        // Always consume one RNG draw so the fault sequence does not
        // depend on which classes are enabled.
        let draw = self.rng.range_u64(0, 1000);
        draw < u64::from(per_mille)
    }

    fn maybe_delay(&mut self) {
        let max = self.config.max_delay.as_nanos() as u64;
        let fire = self.roll(self.config.delay_per_mille);
        if max > 0 {
            let ns = self.rng.range_u64(0, max);
            if fire {
                std::thread::sleep(Duration::from_nanos(ns));
            }
        }
    }

    /// Wraps one read: may delay, kill the connection, or flip a bit
    /// of the bytes handed to the caller.
    pub fn read(&mut self, inner: &mut impl Read, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.dead {
            return Err(ErrorKind::ConnectionReset.into());
        }
        self.maybe_delay();
        if self.roll(self.config.drop_per_mille) {
            self.dead = true;
            return Err(ErrorKind::ConnectionReset.into());
        }
        let flip = self.roll(self.config.flip_per_mille);
        let n = inner.read(buf)?;
        if flip && n > 0 {
            let bit = self.rng.index(n * 8);
            buf[bit / 8] ^= 1 << (bit % 8);
        }
        Ok(n)
    }

    /// Wraps one write: may delay, kill the connection, truncate the
    /// buffer (then kill), or flip a bit of the bytes sent.
    pub fn write(&mut self, inner: &mut impl Write, buf: &[u8]) -> std::io::Result<usize> {
        if self.dead {
            return Err(ErrorKind::BrokenPipe.into());
        }
        self.maybe_delay();
        if self.roll(self.config.drop_per_mille) {
            self.dead = true;
            return Err(ErrorKind::BrokenPipe.into());
        }
        let short = self.roll(self.config.short_write_per_mille);
        let flip = self.roll(self.config.flip_per_mille);
        if short && buf.len() > 1 {
            let cut = 1 + self.rng.index(buf.len() - 1);
            let _ = inner.write(&buf[..cut]);
            let _ = inner.flush();
            self.dead = true;
            return Err(ErrorKind::BrokenPipe.into());
        }
        if flip && !buf.is_empty() {
            let mut copy = buf.to_vec();
            let bit = self.rng.index(copy.len() * 8);
            copy[bit / 8] ^= 1 << (bit % 8);
            let n = inner.write(&copy)?;
            return Ok(n);
        }
        inner.write(buf)
    }
}

/// A TCP stream with an optional fault injector in the byte path.
///
/// Production code constructs it with [`Conn::new`]`(stream, None)` —
/// a zero-cost passthrough. Chaos builds install an injector derived
/// from the active [`FaultPlan`].
#[derive(Debug)]
pub struct Conn {
    stream: TcpStream,
    injector: Option<FaultInjector>,
}

impl Conn {
    /// Wraps `stream`, optionally injecting faults from `injector`.
    pub fn new(stream: TcpStream, injector: Option<FaultInjector>) -> Self {
        Conn { stream, injector }
    }

    /// The underlying socket, for timeout configuration and metadata.
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match &mut self.injector {
            Some(inj) => inj.read(&mut self.stream, buf),
            None => self.stream.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match &mut self.injector {
            Some(inj) => inj.write(&mut self.stream, buf),
            None => self.stream.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream_same_fault_schedule() {
        let plan = FaultPlan::new(7, FaultConfig::standard());
        let mut a = plan.injector(3);
        let mut b = plan.injector(3);
        let mut rolls_a = Vec::new();
        let mut rolls_b = Vec::new();
        for _ in 0..256 {
            rolls_a.push(a.roll(500));
            rolls_b.push(b.roll(500));
        }
        assert_eq!(rolls_a, rolls_b);
        // A different stream id yields a different schedule.
        let mut c = plan.injector(4);
        let rolls_c: Vec<bool> = (0..256).map(|_| c.roll(500)).collect();
        assert_ne!(rolls_a, rolls_c);
    }

    #[test]
    fn dead_connection_stays_dead() {
        let plan = FaultPlan::new(
            1,
            FaultConfig {
                drop_per_mille: 1000,
                ..FaultConfig::default()
            },
        );
        let mut inj = plan.injector(0);
        let mut sink = Vec::new();
        assert!(inj.write(&mut sink, b"hello").is_err());
        assert!(sink.is_empty());
        // Even with the drop probability exhausted, the connection
        // never recovers.
        let mut src: &[u8] = b"world";
        assert!(inj.read(&mut src, &mut [0u8; 4]).is_err());
        assert!(inj.write(&mut sink, b"again").is_err());
    }

    #[test]
    fn short_write_truncates_then_kills() {
        let plan = FaultPlan::new(
            2,
            FaultConfig {
                short_write_per_mille: 1000,
                ..FaultConfig::default()
            },
        );
        let mut inj = plan.injector(0);
        let mut sink = Vec::new();
        let err = inj.write(&mut sink, &[9u8; 64]).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::BrokenPipe);
        assert!(!sink.is_empty() && sink.len() < 64, "got {}", sink.len());
    }

    #[test]
    fn flips_change_exactly_one_bit() {
        let plan = FaultPlan::new(
            3,
            FaultConfig {
                flip_per_mille: 1000,
                ..FaultConfig::default()
            },
        );
        let mut inj = plan.injector(0);
        let mut sink = Vec::new();
        let original = [0u8; 32];
        inj.write(&mut sink, &original).unwrap();
        let flipped_bits: u32 = sink.iter().map(|b| b.count_ones()).sum();
        assert_eq!(flipped_bits, 1, "exactly one bit must differ");
    }

    #[test]
    fn passthrough_conn_is_faithful() {
        // Conn with no injector must not alter bytes. Use a loopback
        // socket pair.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        let mut tx = Conn::new(client, None);
        let mut rx = Conn::new(server, None);
        tx.write_all(b"deterministic").unwrap();
        tx.flush().unwrap();
        let mut got = [0u8; 13];
        rx.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"deterministic");
    }
}
