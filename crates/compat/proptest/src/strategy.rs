//! The `Strategy` trait and the combinators / base strategies the
//! workspace's tests use.

use crate::test_runner::Rng;
use std::ops::{Range, RangeInclusive};

/// A generator of test-case values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut Rng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns
    /// for it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut Rng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_flat_map` combinator.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut Rng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut Rng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty => $draw:ident),* $(,)?) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut Rng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    rng.$draw(self.start, self.end)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut Rng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    if hi < <$t>::MAX {
                        rng.$draw(lo, hi + 1)
                    } else {
                        rng.$draw(lo, hi)
                    }
                }
            }
        )*
    };
}

int_range_strategy! {
    i64 => i64_in,
    u64 => u64_in,
    usize => usize_between,
    u8 => u8_in,
    u32 => u32_in,
    i32 => i32_in,
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut Rng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut Rng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn generate(&self, rng: &mut Rng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy, E: Strategy> Strategy for (A, B, C, D, E) {
    type Value = (A::Value, B::Value, C::Value, D::Value, E::Value);
    fn generate(&self, rng: &mut Rng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
            self.4.generate(rng),
        )
    }
}

/// String strategies from a restricted regex subset: a single character
/// class `[x-y]` (char ranges and literal chars) optionally followed by
/// a `{lo,hi}` repetition, e.g. `"[a-z]{0,6}"` or `"[a-e]"`.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut Rng) -> String {
        let (chars, lo, hi) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string strategy pattern: {self:?}"));
        let len = rng.usize_between(lo, hi + 1);
        (0..len)
            .map(|_| chars[rng.usize_between(0, chars.len())])
            .collect()
    }
}

fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let mut chars = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (a, b) = (class[i] as u32, class[i + 2] as u32);
            if a > b {
                return None;
            }
            for c in a..=b {
                chars.push(char::from_u32(c)?);
            }
            i += 3;
        } else {
            chars.push(class[i]);
            i += 1;
        }
    }
    if chars.is_empty() {
        return None;
    }
    let tail = &rest[close + 1..];
    if tail.is_empty() {
        return Some((chars, 1, 1));
    }
    let rep = tail.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = rep.split_once(',')?;
    Some((chars, lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}
