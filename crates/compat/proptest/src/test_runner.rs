//! Deterministic case generation and the config / error types used by
//! the `proptest!` macro.

/// Per-test configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case budget.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Why a test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` (does not count).
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// A failed assertion.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected assumption.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// SplitMix64-based generator: tiny, deterministic, good enough for
/// test-case generation.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Seeds deterministically from a test name so each property gets a
    /// stable independent stream.
    pub fn from_name(name: &str) -> Self {
        let mut seed = 0x9E37_79B9_7F4A_7C15u64;
        for b in name.bytes() {
            seed = (seed ^ b as u64).wrapping_mul(0x100_0000_01B3);
        }
        Self { state: seed }
    }

    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform u64 in `[lo, hi)`.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform i64 in `[lo, hi)`.
    pub fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo < hi);
        lo.wrapping_add((self.next_u64() % ((hi as i128 - lo as i128) as u64)) as i64)
    }

    /// Uniform i32 in `[lo, hi)`.
    pub fn i32_in(&mut self, lo: i32, hi: i32) -> i32 {
        self.i64_in(lo as i64, hi as i64) as i32
    }

    /// Uniform u32 in `[lo, hi)`.
    pub fn u32_in(&mut self, lo: u32, hi: u32) -> u32 {
        self.u64_in(lo as u64, hi as u64) as u32
    }

    /// Uniform u8 in `[lo, hi)`.
    pub fn u8_in(&mut self, lo: u8, hi: u8) -> u8 {
        self.u64_in(lo as u64, hi as u64) as u8
    }

    /// Uniform usize in `[lo, hi)`.
    pub fn usize_between(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi);
        self.u64_in(lo as u64, hi as u64) as usize
    }

    /// Uniform usize in a `Range`.
    pub fn usize_in(&mut self, range: std::ops::Range<usize>) -> usize {
        self.usize_between(range.start, range.end)
    }
}
