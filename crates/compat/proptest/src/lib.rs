//! Offline shim for the subset of the `proptest` API this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a miniature, dependency-free re-implementation of the pieces
//! its property tests rely on: range / tuple / collection / simple
//! char-class string strategies, `prop_map` / `prop_flat_map`, the
//! `proptest!` macro with `ProptestConfig::with_cases`, and the
//! `prop_assert*` / `prop_assume!` macros. Generation is deterministic
//! per test (seeded from the test name) and there is **no shrinking** —
//! a failing case reports its case index instead.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

pub mod arbitrary {
    //! `any::<T>()` for the primitive types the tests draw.
    use crate::strategy::Strategy;
    use crate::test_runner::Rng;
    use core::marker::PhantomData;

    /// A full-range strategy for a primitive type.
    pub struct Any<T>(PhantomData<T>);

    /// Creates a full-range strategy for `T`.
    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy,
    {
        Any(PhantomData)
    }

    impl Strategy for Any<u64> {
        type Value = u64;
        fn generate(&self, rng: &mut Rng) -> u64 {
            rng.next_u64()
        }
    }

    impl Strategy for Any<u32> {
        type Value = u32;
        fn generate(&self, rng: &mut Rng) -> u32 {
            rng.next_u64() as u32
        }
    }

    impl Strategy for Any<i64> {
        type Value = i64;
        fn generate(&self, rng: &mut Rng) -> i64 {
            rng.next_u64() as i64
        }
    }

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut Rng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod bool {
    //! `prop::bool::ANY`.
    use crate::strategy::Strategy;
    use crate::test_runner::Rng;

    /// Uniform boolean strategy.
    #[derive(Clone, Copy, Debug)]
    pub struct AnyBool;

    /// Uniform boolean strategy value.
    pub const ANY: AnyBool = AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, rng: &mut Rng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    //! `prop::collection::{vec, hash_set}`.
    use crate::strategy::Strategy;
    use crate::test_runner::Rng;
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Creates a vector strategy.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut Rng) -> Vec<S::Value> {
            let len = rng.usize_in(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `HashSet<S::Value>` with size drawn from `size`
    /// (best effort when the element domain is small).
    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Creates a hash-set strategy.
    pub fn hash_set<S: Strategy>(element: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S::Value: Hash + Eq,
    {
        HashSetStrategy { element, size }
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut Rng) -> HashSet<S::Value> {
            let target = rng.usize_in(self.size.clone()).max(self.size.start);
            let mut out = HashSet::new();
            // Small element domains may not be able to fill `target`
            // distinct values; bail out after a bounded effort.
            for _ in 0..(target * 50 + 100) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }
}

/// The conventional prelude.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Alias matching `proptest::prelude::prop`.
    pub use crate as prop;
}

pub use crate as prop;

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {} == {} ({:?} vs {:?})",
                    stringify!($left),
                    stringify!($right),
                    l,
                    r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l == r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Rejects (skips) the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Declares property tests. Each case draws fresh inputs from the given
/// strategies; assertion macros abort just the case, `prop_assume!`
/// rejects it without counting toward the case budget.
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::Rng::from_name(stringify!($name));
                let mut ran: u32 = 0;
                let mut rejected: u32 = 0;
                let mut case: u32 = 0;
                while ran < config.cases {
                    case += 1;
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    let outcome = (|| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match outcome {
                        ::core::result::Result::Ok(()) => ran += 1,
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                            rejected += 1;
                            if rejected > config.cases.saturating_mul(20).saturating_add(200) {
                                panic!(
                                    "proptest `{}`: too many rejected cases ({rejected})",
                                    stringify!($name)
                                );
                            }
                        }
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest `{}` failed at case #{case}: {msg}",
                                stringify!($name)
                            );
                        }
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}
