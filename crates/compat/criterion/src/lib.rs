//! Offline shim for the subset of the `criterion` API this workspace
//! uses.
//!
//! The build environment cannot reach crates.io, so the Criterion
//! benches link against this miniature harness instead: it runs each
//! benchmark closure for a fixed wall-clock budget and prints mean
//! iteration time. No statistics, no plots — just honest timing output
//! so `cargo bench` works end to end.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group: {name} ==");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 50,
        }
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            budget: self.sample_size,
        };
        f(&mut bencher);
        let n = bencher.samples.len().max(1);
        let total: Duration = bencher.samples.iter().sum();
        let mean = total / n as u32;
        println!("  {id:<40} {mean:>12.3?}/iter  ({n} samples)");
        self
    }

    /// Finishes the group (a no-op in the shim).
    pub fn finish(self) {}
}

/// Times a single benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: usize,
}

impl Bencher {
    /// Runs the routine repeatedly, recording per-iteration wall time.
    pub fn iter<T>(&mut self, mut routine: impl FnMut() -> T) {
        // One warm-up iteration.
        let _ = std::hint::black_box(routine());
        for _ in 0..self.budget {
            let start = Instant::now();
            let _ = std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
