//! Property-based tests for the join substrate: execution, trees,
//! samplers, decomposition, and templates over randomized instances.

use proptest::prelude::*;
use std::sync::Arc;
use suj_join::exec::execute;
use suj_join::graph::{classify, gyo_acyclic, JoinShape};
use suj_join::residual::decompose_cyclic;
use suj_join::weights::{build_sampler, exact_join_size};
use suj_join::{
    ExactWeightSampler, JoinSampler, JoinSpec, JoinTree, MembershipOracle, RowDraw, SampleOutcome,
    WanderJoin, WeightKind,
};
use suj_stats::SujRng;
use suj_storage::{FxHashMap, FxHashSet, Relation, Schema, Tuple, Value};

fn rel(name: &str, attrs: [&str; 2], rows: &[(i64, i64)]) -> Arc<Relation> {
    let schema = Schema::new(attrs).unwrap();
    let mut seen = FxHashSet::default();
    let tuples: Vec<Tuple> = rows
        .iter()
        .filter(|&&p| seen.insert(p))
        .map(|&(x, y)| Tuple::new(vec![Value::int(x), Value::int(y)]))
        .collect();
    Arc::new(Relation::new(name, schema, tuples).unwrap())
}

/// Strategy: a star join c(a,b) with leaves l1(a,x), l2(b,y).
fn star() -> impl Strategy<Value = JoinSpec> {
    (
        prop::collection::vec((0i64..6, 0i64..6), 1..16),
        prop::collection::vec((0i64..6, 0i64..20), 1..16),
        prop::collection::vec((0i64..6, 0i64..20), 1..16),
    )
        .prop_map(|(c, l1, l2)| {
            JoinSpec::natural(
                "star",
                vec![
                    rel("c", ["a", "b"], &c),
                    rel("l1", ["a", "x"], &l1),
                    rel("l2", ["b", "y"], &l2),
                ],
            )
            .unwrap()
        })
}

/// Strategy: a triangle join x(a,b), y(b,c), z(c,a).
fn triangle() -> impl Strategy<Value = JoinSpec> {
    (
        prop::collection::vec((0i64..4, 0i64..4), 1..12),
        prop::collection::vec((0i64..4, 0i64..4), 1..12),
        prop::collection::vec((0i64..4, 0i64..4), 1..12),
    )
        .prop_map(|(x, y, z)| {
            JoinSpec::natural(
                "tri",
                vec![
                    rel("x", ["a", "b"], &x),
                    rel("y", ["b", "c"], &y),
                    rel("z", ["c", "a"], &z),
                ],
            )
            .unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn star_is_classified_and_sized_correctly(spec in star()) {
        prop_assert!(matches!(classify(&spec), JoinShape::Chain | JoinShape::Acyclic));
        prop_assert!(gyo_acyclic(&spec));
        prop_assert_eq!(
            exact_join_size(&spec).unwrap(),
            execute(&spec).len() as f64
        );
    }

    #[test]
    fn star_membership_oracle_exact(spec in star()) {
        let oracle = MembershipOracle::for_spec(&spec);
        let set = execute(&spec).distinct_set();
        for t in set.iter().take(30) {
            prop_assert!(oracle.contains(t));
        }
        // Grid of candidate non-members.
        for a in 0..3i64 {
            for b in 0..3i64 {
                let t = Tuple::new(vec![
                    Value::int(a),
                    Value::int(b),
                    Value::int(0),
                    Value::int(0),
                ]);
                prop_assert_eq!(oracle.contains(&t), set.contains(&t));
            }
        }
    }

    #[test]
    fn triangle_execution_matches_oracle(spec in triangle()) {
        let oracle = MembershipOracle::for_spec(&spec);
        let set = execute(&spec).distinct_set();
        for a in 0..4i64 {
            for b in 0..4i64 {
                for c in 0..4i64 {
                    let t = Tuple::new(vec![Value::int(a), Value::int(b), Value::int(c)]);
                    prop_assert_eq!(oracle.contains(&t), set.contains(&t));
                }
            }
        }
    }

    #[test]
    fn triangle_decomposition_is_lossless(spec in triangle()) {
        prop_assume!(classify(&spec) == JoinShape::Cyclic);
        let dec = decompose_cyclic(&spec).unwrap();
        let original = execute(&spec);
        let mapping = dec.spec.projection_from(spec.output_schema()).unwrap();
        let reordered = execute(&dec.spec).reordered(spec.output_schema(), &mapping);
        prop_assert_eq!(original.distinct_set(), reordered.distinct_set());
    }

    #[test]
    fn cyclic_samplers_emit_only_true_results(spec in triangle(), seed in 0u64..500) {
        let spec = Arc::new(spec);
        let set = execute(&spec).distinct_set();
        let mut rng = SujRng::seed_from_u64(seed);
        for kind in [WeightKind::Exact, WeightKind::ExtendedOlken] {
            let sampler = build_sampler(spec.clone(), kind).unwrap();
            let mut emitted = 0;
            for _ in 0..64 {
                if let SampleOutcome::Accepted(t) = sampler.sample(&mut rng) {
                    prop_assert!(set.contains(&t), "non-member from {:?}", kind);
                    emitted += 1;
                }
            }
            if set.is_empty() {
                prop_assert_eq!(emitted, 0);
            }
        }
    }

    #[test]
    fn wander_bound_dominates_walk_probabilities(spec in star(), seed in 0u64..500) {
        let wander = WanderJoin::new(Arc::new(spec)).unwrap();
        let mut rng = SujRng::seed_from_u64(seed);
        for _ in 0..32 {
            if let suj_join::WalkOutcome::Success { probability, .. } = wander.walk(&mut rng) {
                prop_assert!(1.0 / probability <= wander.bound() + 1e-9);
            }
        }
    }

    #[test]
    fn tree_distance_is_a_metric_on_stars(spec in star()) {
        let tree = JoinTree::new(&spec).unwrap();
        let n = spec.n_relations();
        for i in 0..n {
            prop_assert_eq!(tree.distance(i, i), 0);
            for j in 0..n {
                prop_assert_eq!(tree.distance(i, j), tree.distance(j, i));
                for k in 0..n {
                    prop_assert!(
                        tree.distance(i, k) <= tree.distance(i, j) + tree.distance(j, k)
                    );
                }
            }
        }
    }

    #[test]
    fn spanning_tree_covers_all_relations(spec in triangle()) {
        let tree = JoinTree::spanning(&spec, 0).unwrap();
        let mut seen: Vec<usize> = tree.order().to_vec();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..spec.n_relations()).collect::<Vec<_>>());
        // Exactly n−1 parent links.
        let parents = (0..spec.n_relations())
            .filter(|&v| tree.parent(v).is_some())
            .count();
        prop_assert_eq!(parents, spec.n_relations() - 1);
    }

    #[test]
    fn olken_bound_dominates_on_stars(spec in star()) {
        let bound = suj_join::bounds::olken_bound(&spec).unwrap();
        prop_assert!(bound >= execute(&spec).len() as f64);
    }

    #[test]
    fn ew_sampling_has_no_rejections_on_acyclic(spec in star(), seed in 0u64..500) {
        let size = execute(&spec).len();
        let sampler = build_sampler(Arc::new(spec), WeightKind::Exact).unwrap();
        let mut rng = SujRng::seed_from_u64(seed);
        for _ in 0..32 {
            match sampler.sample(&mut rng) {
                SampleOutcome::Accepted(_) => prop_assert!(size > 0),
                SampleOutcome::Rejected => prop_assert_eq!(size, 0),
            }
        }
    }

    /// The alias cascade and the linear-scan reference path draw from
    /// the *same* per-tuple distribution (uniform over the join
    /// result): their RNG streams differ, so the comparison is
    /// distributional — full-support equality plus per-tuple empirical
    /// frequencies within a 6σ binomial envelope of each other.
    #[test]
    fn cascade_and_linear_paths_share_per_tuple_marginals(
        spec in star(),
        seed in 0u64..1_000,
    ) {
        let result = execute(&spec);
        let size = result.len();
        // Small non-empty joins: every tuple's expected count is large
        // enough for a tight envelope, and full coverage is certain
        // (miss probability ≈ e^{-N/|J|} ≈ e^{-125}).
        prop_assume!(size > 0 && size <= 64);
        let set = result.distinct_set();
        let sampler = ExactWeightSampler::new(Arc::new(spec)).unwrap();

        const N: usize = 8_000;
        let mut draw = RowDraw::new();
        let mut cascade: FxHashMap<Tuple, i64> = FxHashMap::default();
        let mut rng = SujRng::seed_from_u64(seed);
        for _ in 0..N {
            prop_assert!(
                sampler.sample_rows(&mut rng, &mut draw),
                "cascade rejected a draw on an acyclic spec"
            );
            *cascade.entry(sampler.materialize(&draw)).or_insert(0) += 1;
        }
        let mut linear: FxHashMap<Tuple, i64> = FxHashMap::default();
        let mut rng = SujRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        for _ in 0..N {
            prop_assert!(
                sampler.sample_rows_linear(&mut rng, &mut draw),
                "linear scan rejected a draw on an acyclic spec"
            );
            *linear.entry(sampler.materialize(&draw)).or_insert(0) += 1;
        }

        // Both paths cover exactly the join result, nothing else.
        prop_assert_eq!(cascade.len(), size, "cascade support");
        prop_assert_eq!(linear.len(), size, "linear support");
        for t in cascade.keys().chain(linear.keys()) {
            prop_assert!(set.contains(t), "non-member emitted: {:?}", t);
        }

        // Per-tuple counts are Binomial(N, 1/|J|) on both sides; the
        // difference of two independent estimates stays within 6σ
        // (≈1e-9 per-tuple false-positive rate — negligible across the
        // whole sweep).
        let p = 1.0 / size as f64;
        let tol = 6.0 * (2.0 * N as f64 * p * (1.0 - p)).sqrt() + 8.0;
        for t in set.iter() {
            let a = cascade.get(t).copied().unwrap_or(0);
            let b = linear.get(t).copied().unwrap_or(0);
            prop_assert!(
                (a - b).abs() as f64 <= tol,
                "marginals diverge on {:?}: cascade {} vs linear {} (tol {:.1})",
                t, a, b, tol
            );
        }
    }
}
