//! Pins the Exact-Weight artifact-restore guarantee: reviving a
//! sampler from persisted [`EwArtifacts`] performs **zero** alias-table
//! builds and serves bit-identical draw streams.
//!
//! This lives in its own integration binary (one `#[test]`) because
//! [`alias_builds`] is a process-global counter: asserting an exact
//! delta is only race-free when no other test threads build arenas
//! concurrently. Cargo runs test binaries sequentially, so a
//! single-test binary owns the counter for its whole run.

use std::sync::Arc;
use suj_join::{alias_builds, ExactWeightSampler, JoinSampler, JoinSpec, RowDraw};
use suj_stats::SujRng;
use suj_storage::{Relation, Schema, Tuple, Value};

fn rel(name: &str, attrs: &[&str], rows: &[&[i64]]) -> Arc<Relation> {
    let schema = Schema::new(attrs.iter().copied()).unwrap();
    let tuples = rows
        .iter()
        .map(|vals| Tuple::new(vals.iter().copied().map(Value::int).collect()))
        .collect();
    Arc::new(Relation::new(name, schema, tuples).unwrap())
}

#[test]
fn restore_from_artifacts_builds_no_aliases() {
    let spec = Arc::new(
        JoinSpec::chain(
            "skew",
            vec![
                rel("r", &["a", "b"], &[&[1, 10], &[2, 10], &[3, 20], &[4, 30]]),
                rel(
                    "s",
                    &["b", "c"],
                    &[&[10, 100], &[10, 101], &[10, 102], &[20, 200], &[40, 400]],
                ),
                rel(
                    "t",
                    &["c", "d"],
                    &[&[100, 1], &[100, 2], &[101, 3], &[200, 4]],
                ),
            ],
        )
        .unwrap(),
    );

    let builds_start = alias_builds();
    let sampler = ExactWeightSampler::new(spec.clone()).unwrap();
    assert_eq!(
        alias_builds(),
        builds_start + 1,
        "a fresh prepare builds its arenas exactly once"
    );

    let artifacts = sampler.artifacts();
    let builds_before_restore = alias_builds();
    let restored = ExactWeightSampler::from_artifacts(spec, artifacts).unwrap();
    assert_eq!(
        alias_builds(),
        builds_before_restore,
        "from_artifacts must not rebuild any alias table"
    );

    assert_eq!(restored.exact_size_u64(), sampler.exact_size_u64());
    assert_eq!(restored.size_info(), sampler.size_info());
    assert_eq!(restored.memory_bytes(), sampler.memory_bytes());

    // Same artifacts ⇒ bit-identical draw streams.
    let mut ra = SujRng::seed_from_u64(33);
    let mut rb = SujRng::seed_from_u64(33);
    let mut da = RowDraw::new();
    let mut db = RowDraw::new();
    for _ in 0..500 {
        assert_eq!(
            sampler.sample_rows(&mut ra, &mut da),
            restored.sample_rows(&mut rb, &mut db)
        );
        assert_eq!(da.rows(), db.rows());
    }
}
