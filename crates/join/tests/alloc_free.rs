//! ISSUE 4 acceptance: rejected draw attempts perform **zero heap
//! allocations**.
//!
//! A counting global allocator wraps the system allocator; after a
//! warm-up pass (which sizes the reusable [`RowDraw`] scratch), the
//! test drives thousands of row-id draw attempts, random walks, and
//! membership-oracle probes and asserts the allocation counter did not
//! move. This file deliberately holds a single `#[test]` so no
//! concurrent test thread can pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use suj_join::weights::build_sampler;
use suj_join::{JoinSpec, MembershipOracle, RowDraw, WanderJoin, WeightKind};
use suj_stats::SujRng;
use suj_storage::{Relation, Schema, Tuple, Value};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn rel(name: &str, attrs: &[&str], rows: Vec<Vec<i64>>) -> Arc<Relation> {
    let schema = Schema::new(attrs.iter().copied()).unwrap();
    let tuples = rows
        .into_iter()
        .map(|vals| vals.into_iter().map(Value::int).collect())
        .collect();
    Arc::new(Relation::new(name, schema, tuples).unwrap())
}

/// A skewed chain (degrees 3 vs 1) so Extended Olken rejects often,
/// with one dangling row per relation for dead-end walks.
fn skewed_chain() -> Arc<JoinSpec> {
    let r = rel(
        "r",
        &["a", "b"],
        vec![vec![1, 10], vec![2, 10], vec![3, 20], vec![4, 30]],
    );
    let s = rel(
        "s",
        &["b", "c"],
        vec![
            vec![10, 100],
            vec![10, 101],
            vec![10, 102],
            vec![20, 200],
            vec![40, 400],
        ],
    );
    let t = rel(
        "t",
        &["c", "d"],
        vec![vec![100, 1], vec![100, 2], vec![101, 3], vec![200, 4]],
    );
    Arc::new(JoinSpec::chain("skew", vec![r, s, t]).unwrap())
}

/// A triangle, so cycle-consistency rejection is exercised too.
fn triangle() -> Arc<JoinSpec> {
    Arc::new(
        JoinSpec::natural(
            "tri",
            vec![
                rel(
                    "x",
                    &["a", "b"],
                    vec![vec![1, 2], vec![1, 9], vec![5, 2], vec![5, 6]],
                ),
                rel(
                    "y",
                    &["b", "c"],
                    vec![vec![2, 3], vec![2, 4], vec![9, 4], vec![6, 3]],
                ),
                rel(
                    "z",
                    &["c", "a"],
                    vec![vec![3, 1], vec![4, 5], vec![4, 1], vec![3, 5]],
                ),
            ],
        )
        .unwrap(),
    )
}

/// Runs `f` and returns the number of allocations it performed.
fn counting<R>(f: impl FnOnce() -> R) -> (R, u64) {
    let before = allocations();
    let out = f();
    (out, allocations() - before)
}

/// Runs `f` in up to three counted windows, stopping at the first
/// clean one. The counter is process-global, so a stray one-shot
/// allocation (a lazily grown scratch spilling on a first-seen path,
/// another thread's bookkeeping) can land in any single window; it is
/// warm by the next, while a draw path that allocates per attempt
/// fails every window.
fn counting_settled<R>(mut f: impl FnMut() -> R) -> (R, u64) {
    let mut result = counting(&mut f);
    for _ in 0..2 {
        if result.1 == 0 {
            break;
        }
        result = counting(&mut f);
    }
    result
}

#[test]
fn draw_attempts_do_not_allocate() {
    let mut rng = SujRng::seed_from_u64(7);
    let mut draw = RowDraw::new();

    // --- Row-id draws: EW, EO, wander, on acyclic and cyclic specs. ---
    for spec in [skewed_chain(), triangle()] {
        for kind in [
            WeightKind::Exact,
            WeightKind::ExtendedOlken,
            WeightKind::WanderJoin,
        ] {
            let sampler = build_sampler(spec.clone(), kind).unwrap();
            // Warm-up: sizes the scratch and faults everything in.
            for _ in 0..16 {
                sampler.sample_rows(&mut rng, &mut draw);
            }
            let (outcomes, allocs) = counting_settled(|| {
                let mut accepted = 0u64;
                let mut rejected = 0u64;
                for _ in 0..4_000 {
                    if sampler.sample_rows(&mut rng, &mut draw) {
                        accepted += 1;
                    } else {
                        rejected += 1;
                    }
                }
                (accepted, rejected)
            });
            assert_eq!(
                allocs,
                0,
                "{kind:?} on {}: {allocs} allocations across 4000 attempts",
                spec.name()
            );
            // The loop must have exercised both outcomes for EO/wander
            // on the skewed chain (degree skew forces rejection).
            if spec.name() == "skew" {
                assert!(outcomes.0 > 0, "{kind:?}: no attempt accepted");
                if kind != WeightKind::Exact {
                    assert!(outcomes.1 > 0, "{kind:?}: no attempt rejected");
                }
            }
        }
    }

    // --- Wander walks through the raw walk API. ---
    let wander = WanderJoin::new(skewed_chain()).unwrap();
    for _ in 0..16 {
        wander.walk_rows(&mut rng, &mut draw);
    }
    let (_, allocs) = counting_settled(|| {
        for _ in 0..4_000 {
            let _ = wander.walk_rows(&mut rng, &mut draw);
        }
    });
    assert_eq!(allocs, 0, "walk_rows allocated");

    // --- Membership-oracle probes (the `t ∈ Jᵢ` hot path). ---
    let spec = skewed_chain();
    let oracle = MembershipOracle::for_spec(&spec);
    let member = Tuple::new(vec![
        Value::int(1),
        Value::int(10),
        Value::int(100),
        Value::int(1),
    ]);
    let non_member = Tuple::new(vec![
        Value::int(4),
        Value::int(30),
        Value::int(100),
        Value::int(1),
    ]);
    assert!(oracle.contains(&member));
    assert!(!oracle.contains(&non_member));
    let (hits, allocs) = counting_settled(|| {
        let mut hits = 0u64;
        for _ in 0..4_000 {
            hits += u64::from(oracle.contains(&member));
            hits += u64::from(oracle.contains(&non_member));
        }
        hits
    });
    assert_eq!(allocs, 0, "membership probes allocated");
    assert_eq!(hits, 4_000);
}
