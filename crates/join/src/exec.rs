//! Full join materialization.
//!
//! The `FullJoinUnion` ground-truth baseline of §9 "performs the full
//! join and computes the union". This module is its engine: a pipelined
//! hash join that handles chain, acyclic, and cyclic specs uniformly by
//! probing each new relation on every attribute already bound (extra
//! shared attributes become additional equality conditions, which is
//! exactly natural-join semantics for cyclic specs).

use crate::spec::JoinSpec;
use std::sync::Arc;
use suj_storage::{FxHashSet, HashIndex, Schema, Tuple, Value};

/// A materialized join result.
#[derive(Debug, Clone)]
pub struct JoinResult {
    schema: Schema,
    tuples: Vec<Tuple>,
}

impl JoinResult {
    /// Result schema (the spec's output schema).
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Result tuples.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Number of result tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the result is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The distinct result tuples as a hash set (the paper assumes
    /// duplicate-free joins; this is used to validate that and to take
    /// set unions).
    pub fn distinct_set(&self) -> FxHashSet<Tuple> {
        self.tuples.iter().cloned().collect()
    }

    /// Re-orders every tuple to a canonical attribute order given by a
    /// position mapping (`mapping[k]` = local position of canonical
    /// attribute `k`).
    pub fn reordered(&self, canonical: &Schema, mapping: &[usize]) -> JoinResult {
        let tuples = self.tuples.iter().map(|t| t.project(mapping)).collect();
        JoinResult {
            schema: canonical.clone(),
            tuples,
        }
    }
}

/// Materializes the full join result.
///
/// Joins relations in BFS order over the join graph, probing each new
/// relation on all already-bound shared attributes. Disconnected specs
/// cannot occur (validated at construction); a relation sharing no bound
/// attribute can only appear in residual materialization, where a nested
/// -loop cross product is the correct semantics.
pub fn execute(spec: &JoinSpec) -> JoinResult {
    let out_schema = spec.output_schema().clone();
    let arity = out_schema.arity();
    let order = bfs_order(spec);

    // Start with the first relation's rows expanded to output arity,
    // read column by column.
    let first = order[0];
    let mut bound = vec![false; arity];
    for &p in spec.out_positions(first) {
        bound[p] = true;
    }
    let first_rel = spec.relation(first);
    let mut partials: Vec<Vec<Value>> = (0..first_rel.len())
        .map(|i| {
            let mut buf = vec![Value::Null; arity];
            for (k, &p) in spec.out_positions(first).iter().enumerate() {
                buf[p] = first_rel.column(k).value(i);
            }
            buf
        })
        .collect();

    for &ri in &order[1..] {
        let rel = spec.relation(ri);
        let rel_out = spec.out_positions(ri);

        // Attributes of `rel` that are already bound → probe key.
        let probe_attr_names: Vec<Arc<str>> = rel
            .schema()
            .attrs()
            .iter()
            .enumerate()
            .filter(|(k, _)| bound[rel_out[*k]])
            .map(|(_, a)| a.clone())
            .collect();
        let probe_out_positions: Vec<usize> = rel
            .schema()
            .attrs()
            .iter()
            .enumerate()
            .filter(|(k, _)| bound[rel_out[*k]])
            .map(|(k, _)| rel_out[k])
            .collect();
        let fill_positions: Vec<(usize, usize)> = rel
            .schema()
            .attrs()
            .iter()
            .enumerate()
            .filter(|(k, _)| !bound[rel_out[*k]])
            .map(|(k, _)| (k, rel_out[k]))
            .collect();

        let mut next: Vec<Vec<Value>> = Vec::new();
        if probe_attr_names.is_empty() {
            // Cross product (legal only during residual materialization).
            for partial in &partials {
                for i in 0..rel.len() {
                    let mut buf = partial.clone();
                    for &(k, p) in &fill_positions {
                        buf[p] = rel.column(k).value(i);
                    }
                    next.push(buf);
                }
            }
        } else {
            let index = HashIndex::build(rel, &probe_attr_names);
            for partial in &partials {
                // Encoded probe straight off the partial buffer — no
                // key materialization per probe.
                for &rid in index.rows_matching_projected(partial, &probe_out_positions) {
                    let mut buf = partial.clone();
                    for &(k, p) in &fill_positions {
                        buf[p] = rel.column(k).value(rid as usize);
                    }
                    next.push(buf);
                }
            }
        }
        partials = next;
        for &(_, p) in &fill_positions {
            bound[p] = true;
        }
        if partials.is_empty() {
            break;
        }
    }

    JoinResult {
        schema: out_schema,
        tuples: partials.into_iter().map(Tuple::new).collect(),
    }
}

/// BFS order over the join graph starting at relation 0.
fn bfs_order(spec: &JoinSpec) -> Vec<usize> {
    let n = spec.n_relations();
    let mut order = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(0usize);
    visited[0] = true;
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for u in spec.neighbors(v) {
            if !visited[u] {
                visited[u] = true;
                queue.push_back(u);
            }
        }
    }
    // Disconnected pieces (possible only in residual sub-specs) appended
    // in index order → cross product semantics.
    for (i, seen) in visited.iter().enumerate() {
        if !seen {
            order.push(i);
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::JoinSpec;
    use std::sync::Arc;
    use suj_storage::{tuple, Relation, Schema};

    fn rel(name: &str, attrs: &[&str], rows: Vec<Vec<i64>>) -> Arc<Relation> {
        let schema = Schema::new(attrs.iter().copied()).unwrap();
        let tuples = rows
            .into_iter()
            .map(|vals| vals.into_iter().map(Value::int).collect())
            .collect();
        Arc::new(Relation::new(name, schema, tuples).unwrap())
    }

    #[test]
    fn two_way_join() {
        let spec = JoinSpec::natural(
            "j",
            vec![
                rel(
                    "r",
                    &["a", "b"],
                    vec![vec![1, 10], vec![2, 20], vec![3, 10]],
                ),
                rel(
                    "s",
                    &["b", "c"],
                    vec![vec![10, 100], vec![10, 101], vec![30, 300]],
                ),
            ],
        )
        .unwrap();
        let result = execute(&spec);
        // b=10 matches rows {1,3} × {100,101} → 4 tuples; b=20,30 match none.
        assert_eq!(result.len(), 4);
        let set = result.distinct_set();
        assert!(set.contains(&tuple![1i64, 10i64, 100i64]));
        assert!(set.contains(&tuple![3i64, 10i64, 101i64]));
        assert!(!set.contains(&tuple![2i64, 20i64, 100i64]));
    }

    #[test]
    fn chain_join_of_three() {
        let spec = JoinSpec::chain(
            "j",
            vec![
                rel("r", &["a", "b"], vec![vec![1, 10], vec![2, 20]]),
                rel("s", &["b", "c"], vec![vec![10, 100], vec![20, 200]]),
                rel("t", &["c", "d"], vec![vec![100, 7], vec![100, 8]]),
            ],
        )
        .unwrap();
        let result = execute(&spec);
        assert_eq!(result.len(), 2);
        let set = result.distinct_set();
        assert!(set.contains(&tuple![1i64, 10i64, 100i64, 7i64]));
        assert!(set.contains(&tuple![1i64, 10i64, 100i64, 8i64]));
    }

    #[test]
    fn empty_intermediate_short_circuits() {
        let spec = JoinSpec::chain(
            "j",
            vec![
                rel("r", &["a", "b"], vec![vec![1, 10]]),
                rel("s", &["b", "c"], vec![vec![99, 100]]),
                rel("t", &["c", "d"], vec![vec![100, 7]]),
            ],
        )
        .unwrap();
        assert!(execute(&spec).is_empty());
    }

    #[test]
    fn cyclic_triangle_join() {
        // Triangle query: edges (a,b), (b,c), (c,a).
        // Data forms one valid triangle: a=1, b=2, c=3, plus decoys.
        let spec = JoinSpec::natural(
            "tri",
            vec![
                rel("x", &["a", "b"], vec![vec![1, 2], vec![1, 9]]),
                rel("y", &["b", "c"], vec![vec![2, 3], vec![9, 4]]),
                rel("z", &["c", "a"], vec![vec![3, 1], vec![4, 5]]),
            ],
        )
        .unwrap();
        let result = execute(&spec);
        assert_eq!(result.len(), 1);
        assert_eq!(result.tuples()[0], tuple![1i64, 2i64, 3i64]);
    }

    #[test]
    fn self_join_via_renaming() {
        // orders(orderkey, custkey) self-joined on custkey: pairs of
        // orders by the same customer (paper's bundle-orders pattern).
        let orders = rel(
            "orders",
            &["orderkey", "custkey"],
            vec![vec![1, 7], vec![2, 7], vec![3, 8]],
        );
        let orders2 = Arc::new(
            orders
                .rename_attrs("orders2", |a| {
                    if a == "orderkey" {
                        "orderkey2".to_string()
                    } else {
                        a.to_string()
                    }
                })
                .unwrap(),
        );
        let spec = JoinSpec::natural("pairs", vec![orders, orders2]).unwrap();
        let result = execute(&spec);
        // custkey=7 → 2×2 pairs; custkey=8 → 1 pair.
        assert_eq!(result.len(), 5);
    }

    #[test]
    fn star_join() {
        let spec = JoinSpec::natural(
            "star",
            vec![
                rel("c", &["a", "b"], vec![vec![1, 2]]),
                rel("l1", &["a", "x"], vec![vec![1, 10], vec![1, 11]]),
                rel(
                    "l2",
                    &["b", "y"],
                    vec![vec![2, 20], vec![2, 21], vec![2, 22]],
                ),
            ],
        )
        .unwrap();
        let result = execute(&spec);
        assert_eq!(result.len(), 6);
        assert_eq!(result.schema().arity(), 4);
    }

    #[test]
    fn single_relation_execution() {
        let spec =
            JoinSpec::natural("one", vec![rel("r", &["a"], vec![vec![1], vec![2]])]).unwrap();
        let result = execute(&spec);
        assert_eq!(result.len(), 2);
    }

    #[test]
    fn reordered_projects_to_canonical() {
        let spec = JoinSpec::natural(
            "j",
            vec![
                rel("r", &["a", "b"], vec![vec![1, 10]]),
                rel("s", &["b", "c"], vec![vec![10, 100]]),
            ],
        )
        .unwrap();
        let result = execute(&spec);
        let canonical = Schema::new(["c", "a", "b"]).unwrap();
        let mapping = spec.projection_from(&canonical).unwrap();
        let reordered = result.reordered(&canonical, &mapping);
        assert_eq!(reordered.tuples()[0], tuple![100i64, 1i64, 10i64]);
    }

    #[test]
    fn result_is_duplicate_free_for_set_relations() {
        let spec = JoinSpec::natural(
            "j",
            vec![
                rel("r", &["a", "b"], vec![vec![1, 10], vec![2, 10]]),
                rel("s", &["b", "c"], vec![vec![10, 100], vec![10, 200]]),
            ],
        )
        .unwrap();
        let result = execute(&spec);
        assert_eq!(result.len(), result.distinct_set().len());
    }
}
