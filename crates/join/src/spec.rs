//! Multi-way equi-join specifications.
//!
//! A [`JoinSpec`] is the paper's `J_j = R_{j,1} ⋈ R_{j,2} ⋈ … ⋈ R_{j,n}`
//! (§2): an ordered list of relations plus equality edges over
//! standardized attribute names. Semantics are those of the natural join
//! over the (ordered) union of attribute names, which is what makes a
//! result tuple's identity (`t.val`) well defined across joins, and what
//! makes the membership oracle exact. Self-joins are expressed by
//! renaming (e.g. `orderkey` → `orderkey2`), exactly as Fig. 1 does.

use crate::error::JoinError;
use std::fmt;
use std::sync::Arc;
use suj_storage::{Relation, Schema};

/// An equality edge between two relations of a join.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinEdge {
    /// Index of the first relation.
    pub left: usize,
    /// Index of the second relation.
    pub right: usize,
    /// Attribute names equated (same name on both sides — standardized
    /// names per §2).
    pub attrs: Vec<Arc<str>>,
}

/// A multi-way equi-join over named relations.
#[derive(Debug, Clone)]
pub struct JoinSpec {
    name: Arc<str>,
    relations: Vec<Arc<Relation>>,
    edges: Vec<JoinEdge>,
    output_schema: Schema,
    /// Per relation: position of each of its attributes in the output
    /// schema.
    out_positions: Vec<Vec<usize>>,
}

impl JoinSpec {
    /// Builds a join with explicit edges, validating natural-join
    /// closure: every attribute name shared between two relations must be
    /// equated by an edge between them.
    pub fn with_edges(
        name: impl AsRef<str>,
        relations: Vec<Arc<Relation>>,
        edges: Vec<JoinEdge>,
    ) -> Result<Self, JoinError> {
        if relations.is_empty() {
            return Err(JoinError::NoRelations);
        }
        let n = relations.len();
        for e in &edges {
            if e.left >= n {
                return Err(JoinError::BadRelationIndex(e.left));
            }
            if e.right >= n {
                return Err(JoinError::BadRelationIndex(e.right));
            }
            if e.attrs.is_empty() {
                return Err(JoinError::EmptyEdge {
                    left: relations[e.left].name().to_string(),
                    right: relations[e.right].name().to_string(),
                });
            }
            for a in &e.attrs {
                for idx in [e.left, e.right] {
                    if !relations[idx].schema().contains(a) {
                        return Err(JoinError::Invalid(format!(
                            "edge attribute `{a}` not in relation `{}`",
                            relations[idx].name()
                        )));
                    }
                }
            }
        }

        // Natural-join closure: every shared attribute must be equated,
        // directly or transitively. Two relations sharing attribute `a`
        // are fine iff they are connected in the subgraph of edges that
        // equate `a` (e.g. a chain nation ⋈ supplier ⋈ customer equates
        // `nationkey` across all three through consecutive edges).
        for i in 0..n {
            for j in (i + 1)..n {
                let shared = relations[i].schema().shared_with(relations[j].schema());
                for a in shared {
                    if !attr_connected(&edges, n, &a, i, j) {
                        return Err(JoinError::UncoveredSharedAttrs {
                            left: relations[i].name().to_string(),
                            right: relations[j].name().to_string(),
                            attr: a.to_string(),
                        });
                    }
                }
            }
        }

        // Connectivity over the edge graph.
        if n > 1 {
            let mut seen = vec![false; n];
            let mut stack = vec![0usize];
            seen[0] = true;
            while let Some(v) = stack.pop() {
                for e in &edges {
                    let other = if e.left == v {
                        Some(e.right)
                    } else if e.right == v {
                        Some(e.left)
                    } else {
                        None
                    };
                    if let Some(o) = other {
                        if !seen[o] {
                            seen[o] = true;
                            stack.push(o);
                        }
                    }
                }
            }
            if seen.iter().any(|s| !s) {
                return Err(JoinError::Disconnected);
            }
        }

        // Output schema: ordered union of attribute names.
        let mut output_schema = relations[0].schema().clone();
        for r in &relations[1..] {
            output_schema = output_schema.union(r.schema())?;
        }
        let out_positions = relations
            .iter()
            .map(|r| {
                r.schema()
                    .attrs()
                    .iter()
                    .map(|a| output_schema.position(a).expect("attr in union"))
                    .collect()
            })
            .collect();

        Ok(Self {
            name: Arc::from(name.as_ref()),
            relations,
            edges,
            output_schema,
            out_positions,
        })
    }

    /// Builds a natural join: edges are derived from shared attribute
    /// names between every pair of relations.
    pub fn natural(
        name: impl AsRef<str>,
        relations: Vec<Arc<Relation>>,
    ) -> Result<Self, JoinError> {
        let n = relations.len();
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                let shared = relations[i].schema().shared_with(relations[j].schema());
                if !shared.is_empty() {
                    edges.push(JoinEdge {
                        left: i,
                        right: j,
                        attrs: shared,
                    });
                }
            }
        }
        Self::with_edges(name, relations, edges)
    }

    /// Builds a chain join: edges are created only between consecutive
    /// relations (the paper's chain join class). A shared attribute
    /// between non-consecutive relations is legal when it is equated
    /// transitively along the chain (e.g. `nationkey` in
    /// nation ⋈ supplier ⋈ customer) and rejected otherwise.
    pub fn chain(name: impl AsRef<str>, relations: Vec<Arc<Relation>>) -> Result<Self, JoinError> {
        let n = relations.len();
        let mut edges = Vec::new();
        for i in 0..n.saturating_sub(1) {
            let shared = relations[i].schema().shared_with(relations[i + 1].schema());
            if shared.is_empty() {
                return Err(JoinError::Invalid(format!(
                    "chain join `{}` is missing an edge between positions {i} and {}",
                    name.as_ref(),
                    i + 1
                )));
            }
            edges.push(JoinEdge {
                left: i,
                right: i + 1,
                attrs: shared,
            });
        }
        Self::with_edges(name, relations, edges)
    }

    /// Join name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Relations in join order.
    pub fn relations(&self) -> &[Arc<Relation>] {
        &self.relations
    }

    /// Relation at index `i`.
    pub fn relation(&self, i: usize) -> &Arc<Relation> {
        &self.relations[i]
    }

    /// Number of relations.
    pub fn n_relations(&self) -> usize {
        self.relations.len()
    }

    /// Equality edges.
    pub fn edges(&self) -> &[JoinEdge] {
        &self.edges
    }

    /// The output schema (ordered union of attribute names).
    pub fn output_schema(&self) -> &Schema {
        &self.output_schema
    }

    /// For relation `i`: positions of its attributes in the output schema.
    pub fn out_positions(&self, i: usize) -> &[usize] {
        &self.out_positions[i]
    }

    /// The edge between relations `i` and `j`, if any.
    pub fn edge_between(&self, i: usize, j: usize) -> Option<&JoinEdge> {
        self.edges
            .iter()
            .find(|e| (e.left == i && e.right == j) || (e.left == j && e.right == i))
    }

    /// Neighbors of relation `i` in the join graph.
    pub fn neighbors(&self, i: usize) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .edges
            .iter()
            .filter_map(|e| {
                if e.left == i {
                    Some(e.right)
                } else if e.right == i {
                    Some(e.left)
                } else {
                    None
                }
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Indices of relations whose schema contains `attr`.
    pub fn relations_with_attr(&self, attr: &str) -> Vec<usize> {
        (0..self.relations.len())
            .filter(|&i| self.relations[i].schema().contains(attr))
            .collect()
    }

    /// Position mapping from `canonical` schema order to this join's
    /// output order: `result[k]` is the local position of canonical
    /// attribute `k`. Fails if the attribute sets differ.
    pub fn projection_from(&self, canonical: &Schema) -> Result<Vec<usize>, JoinError> {
        if canonical.arity() != self.output_schema.arity() {
            return Err(JoinError::Invalid(format!(
                "join `{}` output schema {} is incompatible with canonical {}",
                self.name, self.output_schema, canonical
            )));
        }
        canonical
            .attrs()
            .iter()
            .map(|a| {
                self.output_schema.position(a).ok_or_else(|| {
                    JoinError::Invalid(format!(
                        "canonical attribute `{a}` missing from join `{}`",
                        self.name
                    ))
                })
            })
            .collect()
    }

    /// Product of relation sizes — the trivial upper bound used as a
    /// sanity cap in tests.
    pub fn cross_product_size(&self) -> f64 {
        self.relations.iter().map(|r| r.len() as f64).product()
    }
}

/// Whether relations `i` and `j` are connected in the subgraph of edges
/// equating attribute `a`.
fn attr_connected(edges: &[JoinEdge], n: usize, a: &Arc<str>, i: usize, j: usize) -> bool {
    let mut seen = vec![false; n];
    let mut stack = vec![i];
    seen[i] = true;
    while let Some(v) = stack.pop() {
        if v == j {
            return true;
        }
        for e in edges {
            if !e.attrs.contains(a) {
                continue;
            }
            let other = if e.left == v {
                Some(e.right)
            } else if e.right == v {
                Some(e.left)
            } else {
                None
            };
            if let Some(o) = other {
                if !seen[o] {
                    seen[o] = true;
                    stack.push(o);
                }
            }
        }
    }
    false
}

impl fmt::Display for JoinSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: ", self.name)?;
        for (i, r) in self.relations.iter().enumerate() {
            if i > 0 {
                write!(f, " ⋈ ")?;
            }
            write!(f, "{}", r.name())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use suj_storage::Value;

    fn rel(name: &str, attrs: &[&str], rows: Vec<Vec<i64>>) -> Arc<Relation> {
        let schema = Schema::new(attrs.iter().copied()).unwrap();
        let tuples = rows
            .into_iter()
            .map(|vals| vals.into_iter().map(Value::int).collect())
            .collect();
        Arc::new(Relation::new(name, schema, tuples).unwrap())
    }

    fn chain_rels() -> Vec<Arc<Relation>> {
        vec![
            rel("r1", &["a", "b"], vec![vec![1, 10], vec![2, 20]]),
            rel("r2", &["b", "c"], vec![vec![10, 100], vec![20, 200]]),
            rel("r3", &["c", "d"], vec![vec![100, 7]]),
        ]
    }

    #[test]
    fn natural_join_derives_edges() {
        let spec = JoinSpec::natural("j", chain_rels()).unwrap();
        assert_eq!(spec.edges().len(), 2);
        assert_eq!(spec.n_relations(), 3);
        let e = spec.edge_between(0, 1).unwrap();
        assert_eq!(e.attrs[0].as_ref(), "b");
        assert!(spec.edge_between(0, 2).is_none());
    }

    #[test]
    fn output_schema_is_ordered_union() {
        let spec = JoinSpec::natural("j", chain_rels()).unwrap();
        let names: Vec<&str> = spec
            .output_schema()
            .attrs()
            .iter()
            .map(|a| a.as_ref())
            .collect();
        assert_eq!(names, vec!["a", "b", "c", "d"]);
        assert_eq!(spec.out_positions(1), &[1, 2]);
    }

    #[test]
    fn chain_constructor_accepts_paths_only() {
        assert!(JoinSpec::chain("c", chain_rels()).is_ok());

        // A triangle is not a chain.
        let tri = vec![
            rel("x", &["a", "b"], vec![]),
            rel("y", &["b", "c"], vec![]),
            rel("z", &["c", "a"], vec![]),
        ];
        assert!(JoinSpec::chain("t", tri).is_err());
    }

    #[test]
    fn disconnected_join_rejected() {
        let rels = vec![rel("p", &["a", "b"], vec![]), rel("q", &["x", "y"], vec![])];
        assert!(matches!(
            JoinSpec::natural("d", rels),
            Err(JoinError::Disconnected)
        ));
    }

    #[test]
    fn empty_relation_list_rejected() {
        assert!(matches!(
            JoinSpec::natural("e", vec![]),
            Err(JoinError::NoRelations)
        ));
    }

    #[test]
    fn uncovered_shared_attribute_rejected() {
        // r1 and r2 share `b`, but the explicit edge equates nothing
        // between them.
        let rels = chain_rels();
        let edges = vec![
            JoinEdge {
                left: 1,
                right: 2,
                attrs: vec![Arc::from("c")],
            },
            // Missing edge between 0 and 1 — shared attr `b` uncovered.
            JoinEdge {
                left: 0,
                right: 2,
                attrs: vec![Arc::from("d")], // also invalid: d not in r1
            },
        ];
        assert!(JoinSpec::with_edges("bad", rels, edges).is_err());
    }

    #[test]
    fn bad_indexes_rejected() {
        let rels = chain_rels();
        let edges = vec![JoinEdge {
            left: 0,
            right: 9,
            attrs: vec![Arc::from("b")],
        }];
        assert!(matches!(
            JoinSpec::with_edges("bad", rels, edges),
            Err(JoinError::BadRelationIndex(9))
        ));
    }

    #[test]
    fn single_relation_join_is_valid() {
        let spec = JoinSpec::natural("one", vec![rel("r", &["a"], vec![vec![1]])]).unwrap();
        assert_eq!(spec.n_relations(), 1);
        assert_eq!(spec.output_schema().arity(), 1);
    }

    #[test]
    fn neighbors_and_attr_lookup() {
        let spec = JoinSpec::natural("j", chain_rels()).unwrap();
        assert_eq!(spec.neighbors(1), vec![0, 2]);
        assert_eq!(spec.relations_with_attr("b"), vec![0, 1]);
        assert_eq!(spec.relations_with_attr("zz"), Vec::<usize>::new());
    }

    #[test]
    fn projection_from_canonical_schema() {
        let spec = JoinSpec::natural("j", chain_rels()).unwrap();
        let canonical = Schema::new(["d", "a", "c", "b"]).unwrap();
        let proj = spec.projection_from(&canonical).unwrap();
        assert_eq!(proj, vec![3, 0, 2, 1]);

        let wrong = Schema::new(["a", "b"]).unwrap();
        assert!(spec.projection_from(&wrong).is_err());
    }

    #[test]
    fn display_shows_pipeline() {
        let spec = JoinSpec::natural("j", chain_rels()).unwrap();
        assert_eq!(spec.to_string(), "j: r1 ⋈ r2 ⋈ r3");
    }

    #[test]
    fn cross_product_size() {
        let spec = JoinSpec::natural("j", chain_rels()).unwrap();
        assert_eq!(spec.cross_product_size(), 2.0 * 2.0 * 1.0);
    }
}
