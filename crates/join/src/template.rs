//! The splitting method: standard templates and two-attribute split
//! joins (§5.2, §8.1).
//!
//! To compare joins of different lengths and schemas, the paper rewrites
//! every join as an *equi-length chain of two-attribute relations* that
//! follows one shared attribute ordering — the **standard template**.
//! Consecutive split relations derived from the *same* base relation are
//! linked by a **fake join** (⋈′, overlap multiplier 1 in Theorem 4);
//! links that cross base relations are real joins (multiplier
//! `M_{A_i}(R_{i+1})`).
//!
//! Template selection (§8.1.1): for attributes `A, A′` the score
//! `score(A,A′) = Σ_j Dist_j(A,A′)` sums, over joins, the join-tree
//! distance between the relations containing them; the template is the
//! attribute ordering minimizing the total score of consecutive pairs
//! (min-cost Hamiltonian path — exact Held–Karp DP up to 14 attributes,
//! greedy + 2-opt beyond). The §8.1.2 *alternating score* replaces the
//! 0 of same-relation pairs with a tunable weight.
//!
//! When a template pair spans base relations, the split relation's
//! statistics are *pre-estimated* along the join path (Example 7's
//! information loss): per-value degrees scale by the product of the
//! intermediate maximum degrees, mirroring the `M_A(R'_ij)` propagation
//! rule of §8.1.2.

use crate::error::JoinError;
use crate::spec::JoinSpec;
use std::sync::Arc;
use suj_storage::{FrequencyHistogram, FxHashMap, HashIndex, Value};

/// An upper bound on per-value degrees of one attribute of a (possibly
/// derived) split relation.
#[derive(Debug, Clone)]
pub enum DegreeBound {
    /// Exact histogram of a base-relation attribute.
    Exact(Arc<FrequencyHistogram>),
    /// Derived: `degree(v) ≤ base.degree(v) · factor`, the path
    /// pre-estimation of §8.1.
    Scaled {
        /// Histogram of the attribute in the path's endpoint relation.
        base: Arc<FrequencyHistogram>,
        /// Product of intermediate maximum degrees along the path.
        factor: f64,
    },
}

impl DegreeBound {
    /// Upper bound on the degree of value `v`.
    pub fn degree(&self, v: &Value) -> f64 {
        match self {
            DegreeBound::Exact(h) => h.degree(v) as f64,
            DegreeBound::Scaled { base, factor } => base.degree(v) as f64 * factor,
        }
    }

    /// Upper bound on the maximum degree.
    pub fn max_degree(&self) -> f64 {
        match self {
            DegreeBound::Exact(h) => h.max_degree() as f64,
            DegreeBound::Scaled { base, factor } => base.max_degree() as f64 * factor,
        }
    }

    /// Upper bound on the average degree (the §5.1 refinement).
    pub fn avg_degree(&self) -> f64 {
        match self {
            DegreeBound::Exact(h) => h.avg_degree(),
            DegreeBound::Scaled { base, factor } => base.avg_degree() * factor,
        }
    }

    /// Number of distinct values in the underlying histogram's domain.
    pub fn distinct(&self) -> usize {
        match self {
            DegreeBound::Exact(h) | DegreeBound::Scaled { base: h, .. } => h.distinct(),
        }
    }

    /// Iterates the value domain of the underlying histogram.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        match self {
            DegreeBound::Exact(h) | DegreeBound::Scaled { base: h, .. } => {
                h.entries().map(|(v, _)| v)
            }
        }
    }
}

/// One two-attribute relation of a split join.
#[derive(Debug, Clone)]
pub struct SplitRelation {
    /// First attribute (position `i` of the template).
    pub x: Arc<str>,
    /// Second attribute (position `i + 1` of the template).
    pub y: Arc<str>,
    /// Upper bound on the split relation's cardinality.
    pub size_bound: f64,
    /// Degree bound for `x`.
    pub deg_x: DegreeBound,
    /// Degree bound for `y`.
    pub deg_y: DegreeBound,
    /// Base relation index when the pair lies within one relation
    /// (exact statistics); None for path-derived relations.
    pub source: Option<usize>,
}

/// A join rewritten along a template as a chain of two-attribute
/// relations.
#[derive(Debug, Clone)]
pub struct SplitJoin {
    /// Name of the original join.
    pub join_name: Arc<str>,
    /// The split relations, one per consecutive template pair.
    pub relations: Vec<SplitRelation>,
    /// `fake_links[i]` — whether the join between `relations[i]` and
    /// `relations[i+1]` is a fake join (same base relation, multiplier 1
    /// in Theorem 4).
    pub fake_links: Vec<bool>,
}

/// A standard template: a shared attribute ordering.
#[derive(Debug, Clone)]
pub struct Template {
    /// Attribute ordering (covers the joins' common output attributes).
    pub order: Vec<Arc<str>>,
    /// Total pairwise-score cost of the ordering.
    pub cost: f64,
}

/// Builds the pairwise-score matrix and selects the minimum-cost
/// attribute ordering. `zero_weight` is the §8.1.2 alternating-score
/// hyper-parameter substituted for same-relation (distance 0) pairs.
pub fn build_template(specs: &[&JoinSpec], zero_weight: f64) -> Result<Template, JoinError> {
    if specs.is_empty() {
        return Err(JoinError::Invalid(
            "no joins given to build_template".into(),
        ));
    }
    let attrs: Vec<Arc<str>> = specs[0].output_schema().attrs().to_vec();
    for s in specs {
        if s.output_schema().arity() != attrs.len()
            || !attrs.iter().all(|a| s.output_schema().contains(a))
        {
            return Err(JoinError::Invalid(format!(
                "join `{}` does not share the common output attribute set",
                s.name()
            )));
        }
    }
    let m = attrs.len();
    if m == 1 {
        return Ok(Template {
            order: attrs,
            cost: 0.0,
        });
    }

    // Pairwise scores: Σ_j Dist_j(A, A').
    let trees: Vec<crate::tree::JoinTree> = specs
        .iter()
        .map(|s| crate::tree::JoinTree::spanning(s, 0))
        .collect::<Result<_, _>>()?;
    let mut score = vec![vec![0.0f64; m]; m];
    for a in 0..m {
        for b in (a + 1)..m {
            let mut total = 0.0;
            for (j, spec) in specs.iter().enumerate() {
                let d = attr_distance(spec, &trees[j], &attrs[a], &attrs[b]);
                total += if d == 0 { zero_weight } else { d as f64 };
            }
            score[a][b] = total;
            score[b][a] = total;
        }
    }

    let (order_idx, cost) = if m <= 14 {
        held_karp_path(&score)
    } else {
        greedy_two_opt_path(&score)
    };
    Ok(Template {
        order: order_idx.into_iter().map(|i| attrs[i].clone()).collect(),
        cost,
    })
}

/// Distance between the relations containing two attributes in one
/// join's (spanning) tree — 0 when some relation contains both.
fn attr_distance(
    spec: &JoinSpec,
    tree: &crate::tree::JoinTree,
    a: &Arc<str>,
    b: &Arc<str>,
) -> usize {
    let ra = spec.relations_with_attr(a);
    let rb = spec.relations_with_attr(b);
    let mut best = usize::MAX;
    for &i in &ra {
        for &j in &rb {
            best = best.min(tree.distance(i, j));
        }
    }
    best
}

/// Exact min-cost Hamiltonian path via Held–Karp over subsets.
#[allow(clippy::needless_range_loop)] // dp is indexed by bit patterns of v
fn held_karp_path(score: &[Vec<f64>]) -> (Vec<usize>, f64) {
    let m = score.len();
    let full = 1usize << m;
    // dp[mask][last] = best cost of a path visiting `mask`, ending at `last`.
    let mut dp = vec![vec![f64::INFINITY; m]; full];
    let mut parent = vec![vec![usize::MAX; m]; full];
    for v in 0..m {
        dp[1 << v][v] = 0.0;
    }
    for mask in 1..full {
        for last in 0..m {
            if mask & (1 << last) == 0 || !dp[mask][last].is_finite() {
                continue;
            }
            let base = dp[mask][last];
            for next in 0..m {
                if mask & (1 << next) != 0 {
                    continue;
                }
                let nm = mask | (1 << next);
                let cand = base + score[last][next];
                if cand < dp[nm][next] {
                    dp[nm][next] = cand;
                    parent[nm][next] = last;
                }
            }
        }
    }
    let final_mask = full - 1;
    let (mut last, mut best) = (0usize, f64::INFINITY);
    for v in 0..m {
        if dp[final_mask][v] < best {
            best = dp[final_mask][v];
            last = v;
        }
    }
    // Reconstruct.
    let mut order = Vec::with_capacity(m);
    let mut mask = final_mask;
    let mut cur = last;
    loop {
        order.push(cur);
        let p = parent[mask][cur];
        mask &= !(1 << cur);
        if p == usize::MAX {
            break;
        }
        cur = p;
    }
    order.reverse();
    (order, best)
}

/// Greedy nearest-neighbor path improved by 2-opt (for >14 attributes).
fn greedy_two_opt_path(score: &[Vec<f64>]) -> (Vec<usize>, f64) {
    let m = score.len();
    // Greedy from vertex 0.
    let mut order = vec![0usize];
    let mut used = vec![false; m];
    used[0] = true;
    while order.len() < m {
        let last = *order.last().unwrap();
        let next = (0..m)
            .filter(|&v| !used[v])
            .min_by(|&a, &b| score[last][a].total_cmp(&score[last][b]))
            .unwrap();
        used[next] = true;
        order.push(next);
    }
    let path_cost = |ord: &[usize]| -> f64 { ord.windows(2).map(|w| score[w[0]][w[1]]).sum() };
    // 2-opt until no improvement.
    let mut improved = true;
    while improved {
        improved = false;
        for i in 0..m - 1 {
            for k in (i + 1)..m {
                let mut cand = order.clone();
                cand[i..=k].reverse();
                if path_cost(&cand) + 1e-12 < path_cost(&order) {
                    order = cand;
                    improved = true;
                }
            }
        }
    }
    let cost = path_cost(&order);
    (order, cost)
}

/// Histogram cache keyed by (relation index, attribute).
struct HistCache<'a> {
    spec: &'a JoinSpec,
    cache: FxHashMap<(usize, Arc<str>), Arc<FrequencyHistogram>>,
}

impl<'a> HistCache<'a> {
    fn new(spec: &'a JoinSpec) -> Self {
        Self {
            spec,
            cache: FxHashMap::default(),
        }
    }

    fn get(&mut self, rel: usize, attr: &Arc<str>) -> Arc<FrequencyHistogram> {
        self.cache
            .entry((rel, attr.clone()))
            .or_insert_with(|| Arc::new(FrequencyHistogram::build(self.spec.relation(rel), attr)))
            .clone()
    }
}

/// Rewrites one join along a template.
pub fn split_join(spec: &JoinSpec, template: &Template) -> Result<SplitJoin, JoinError> {
    let order = &template.order;
    let mut hists = HistCache::new(spec);
    let tree = crate::tree::JoinTree::spanning(spec, 0)?;

    let mut relations: Vec<SplitRelation> = Vec::with_capacity(order.len().saturating_sub(1));
    for w in order.windows(2) {
        let (x, y) = (&w[0], &w[1]);
        let rx = spec.relations_with_attr(x);
        let ry = spec.relations_with_attr(y);
        if rx.is_empty() || ry.is_empty() {
            return Err(JoinError::Invalid(format!(
                "template attribute missing from join `{}`",
                spec.name()
            )));
        }
        // Best (closest) relation pair hosting x and y.
        let (mut best_a, mut best_b, mut best_d) = (rx[0], ry[0], usize::MAX);
        for &a in &rx {
            for &b in &ry {
                let d = tree.distance(a, b);
                if d < best_d {
                    best_d = d;
                    best_a = a;
                    best_b = b;
                }
            }
        }

        if best_d == 0 {
            // Both attributes live in one base relation: exact stats.
            let r = best_a;
            relations.push(SplitRelation {
                x: x.clone(),
                y: y.clone(),
                size_bound: spec.relation(r).len() as f64,
                deg_x: DegreeBound::Exact(hists.get(r, x)),
                deg_y: DegreeBound::Exact(hists.get(r, y)),
                source: Some(r),
            });
        } else {
            // Pre-estimate along the tree path (Example 7's penalty).
            let path = tree_path(&tree, best_a, best_b);
            let mut forward = 1.0f64; // multiplicity gained hopping a→b
            for step in path.windows(2) {
                let (u, v) = (step[0], step[1]);
                let edge = spec.edge_between(u, v).expect("path follows edges");
                let idx = HashIndex::build(spec.relation(v), &edge.attrs);
                forward *= idx.max_degree() as f64;
            }
            let mut backward = 1.0f64; // multiplicity gained hopping b→a
            for step in path.windows(2).rev() {
                let (u, v) = (step[1], step[0]);
                let _ = u;
                let edge = spec.edge_between(step[0], step[1]).expect("path edge");
                let idx = HashIndex::build(spec.relation(v), &edge.attrs);
                backward *= idx.max_degree() as f64;
            }
            let size_bound = spec.relation(best_a).len() as f64 * forward;
            relations.push(SplitRelation {
                x: x.clone(),
                y: y.clone(),
                size_bound,
                deg_x: DegreeBound::Scaled {
                    base: hists.get(best_a, x),
                    factor: forward,
                },
                deg_y: DegreeBound::Scaled {
                    base: hists.get(best_b, y),
                    factor: backward,
                },
                source: None,
            });
        }
    }

    // Fake joins: consecutive split relations from the same base
    // relation recombine 1:1.
    let fake_links = relations
        .windows(2)
        .map(|w| match (w[0].source, w[1].source) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        })
        .collect();

    Ok(SplitJoin {
        join_name: Arc::from(spec.name()),
        relations,
        fake_links,
    })
}

/// The vertex path between `a` and `b` in a join tree (inclusive).
fn tree_path(tree: &crate::tree::JoinTree, a: usize, b: usize) -> Vec<usize> {
    // Collect root paths, then splice at the lowest common ancestor.
    let root_path = |mut x: usize| {
        let mut p = vec![x];
        while let Some(par) = tree.parent(x) {
            p.push(par);
            x = par;
        }
        p
    };
    let pa = root_path(a);
    let pb = root_path(b);
    let sa: std::collections::HashSet<usize> = pa.iter().copied().collect();
    // First vertex of b's root path that also lies on a's root path = LCA.
    let lca = *pb.iter().find(|v| sa.contains(v)).expect("common root");
    let mut path: Vec<usize> = pa.iter().take_while(|&&v| v != lca).copied().collect();
    path.push(lca);
    let tail: Vec<usize> = pb.iter().take_while(|&&v| v != lca).copied().collect();
    path.extend(tail.into_iter().rev());
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use suj_storage::{Relation, Schema};

    fn rel(name: &str, attrs: &[&str], rows: Vec<Vec<i64>>) -> Arc<Relation> {
        let schema = Schema::new(attrs.iter().copied()).unwrap();
        let tuples = rows
            .into_iter()
            .map(|vals| vals.into_iter().map(Value::int).collect())
            .collect();
        Arc::new(Relation::new(name, schema, tuples).unwrap())
    }

    /// Fig. 3a: ABC ⋈ CD ⋈ DE, with CF hanging off C.
    fn fig3a() -> JoinSpec {
        JoinSpec::natural(
            "fig3a",
            vec![
                rel("abc", &["a", "b", "c"], vec![vec![1, 2, 3], vec![4, 5, 3]]),
                rel("cd", &["c", "d"], vec![vec![3, 7], vec![3, 8]]),
                rel("de", &["d", "e"], vec![vec![7, 9], vec![8, 10]]),
                rel("cf", &["c", "f"], vec![vec![3, 11]]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn template_prefers_same_relation_adjacency() {
        let spec = fig3a();
        let template = build_template(&[&spec], 0.0).unwrap();
        assert_eq!(template.order.len(), 6);
        // Adjacent same-relation pairs cost 0; a & b must be adjacent
        // somewhere in the optimal order since score(a,b) = 0.
        let pos = |n: &str| template.order.iter().position(|x| x.as_ref() == n).unwrap();
        assert_eq!(pos("a").abs_diff(pos("b")), 1, "order {:?}", template.order);
        // The chain a-b-c-d-e plus f near c has total cost 0 achievable?
        // (a,b)=0,(b,c)=0,(c,d)=0,(d,e)=0 — f costs ≥... check the DP
        // found something no worse than the hand-built order.
        let hand = ["f", "c", "a", "b", "d", "e"]; // not necessarily optimal
        let _ = hand;
        assert!(template.cost <= 2.0, "cost {}", template.cost);
    }

    #[test]
    fn split_join_marks_fake_links() {
        let spec = fig3a();
        // Force a template that keeps abc's attributes adjacent.
        let template = Template {
            order: ["a", "b", "c", "d", "e", "f"]
                .iter()
                .map(|s| Arc::from(*s))
                .collect(),
            cost: 0.0,
        };
        let split = split_join(&spec, &template).unwrap();
        assert_eq!(split.relations.len(), 5);
        // (a,b) and (b,c) both come from `abc` → fake link between them.
        assert_eq!(split.relations[0].source, Some(0));
        assert_eq!(split.relations[1].source, Some(0));
        assert!(split.fake_links[0]);
        // (b,c) from abc and (c,d) from cd → real link.
        assert_eq!(split.relations[2].source, Some(1));
        assert!(!split.fake_links[1]);
    }

    #[test]
    fn derived_split_relation_scales_degrees() {
        let spec = fig3a();
        // Template pairing d with f forces a path cd—abc? No: d is in cd
        // and de; f is in cf. Closest pair (cd, cf) has distance 2 via
        // abc.
        let template = Template {
            order: ["d", "f", "a", "b", "c", "e"]
                .iter()
                .map(|s| Arc::from(*s))
                .collect(),
            cost: 0.0,
        };
        let split = split_join(&spec, &template).unwrap();
        let df = &split.relations[0];
        assert!(df.source.is_none(), "d,f must be derived");
        // Size bound must exceed any base relation hosting d or f alone.
        assert!(df.size_bound >= 1.0);
        match &df.deg_x {
            DegreeBound::Scaled { factor, .. } => assert!(*factor >= 1.0),
            DegreeBound::Exact(_) => panic!("expected scaled bound"),
        }
    }

    #[test]
    fn degree_bound_arithmetic() {
        let r = rel("r", &["k"], vec![vec![1], vec![1], vec![2]]);
        let h = Arc::new(FrequencyHistogram::build(&r, "k"));
        let exact = DegreeBound::Exact(h.clone());
        assert_eq!(exact.degree(&Value::int(1)), 2.0);
        assert_eq!(exact.max_degree(), 2.0);
        assert_eq!(exact.distinct(), 2);

        let scaled = DegreeBound::Scaled {
            base: h,
            factor: 3.0,
        };
        assert_eq!(scaled.degree(&Value::int(1)), 6.0);
        assert_eq!(scaled.degree(&Value::int(9)), 0.0);
        assert_eq!(scaled.max_degree(), 6.0);
        assert!((scaled.avg_degree() - 4.5).abs() < 1e-12);
        assert_eq!(scaled.values().count(), 2);
    }

    #[test]
    fn held_karp_solves_small_instance() {
        // Path graph costs: 0-1 cheap, 1-2 cheap, others expensive.
        let inf = 10.0;
        let score = vec![
            vec![0.0, 1.0, inf],
            vec![1.0, 0.0, 1.0],
            vec![inf, 1.0, 0.0],
        ];
        let (order, cost) = held_karp_path(&score);
        assert_eq!(cost, 2.0);
        assert!(order == vec![0, 1, 2] || order == vec![2, 1, 0]);
    }

    #[test]
    fn greedy_two_opt_matches_held_karp_on_small_instances() {
        let score = vec![
            vec![0.0, 2.0, 9.0, 1.0],
            vec![2.0, 0.0, 4.0, 8.0],
            vec![9.0, 4.0, 0.0, 3.0],
            vec![1.0, 8.0, 3.0, 0.0],
        ];
        let (_, exact) = held_karp_path(&score);
        let (_, approx) = greedy_two_opt_path(&score);
        assert!(approx <= exact * 1.5, "approx {approx} vs exact {exact}");
    }

    #[test]
    fn tree_path_endpoints_and_midpoints() {
        let spec = fig3a();
        let tree = crate::tree::JoinTree::spanning(&spec, 0).unwrap();
        // cd (1) to cf (3) passes through abc (0).
        let p = tree_path(&tree, 1, 3);
        assert_eq!(p.first(), Some(&1));
        assert_eq!(p.last(), Some(&3));
        assert!(p.contains(&0));
        // Self path.
        assert_eq!(tree_path(&tree, 2, 2), vec![2]);
    }

    #[test]
    fn template_rejects_mismatched_joins() {
        let a = JoinSpec::natural("a", vec![rel("r", &["x", "y"], vec![])]).unwrap();
        let b = JoinSpec::natural("b", vec![rel("s", &["x", "z"], vec![])]).unwrap();
        assert!(build_template(&[&a, &b], 0.0).is_err());
        assert!(build_template(&[], 0.0).is_err());
    }

    #[test]
    fn single_attribute_template() {
        let a = JoinSpec::natural("a", vec![rel("r", &["x"], vec![vec![1]])]).unwrap();
        let t = build_template(&[&a], 0.0).unwrap();
        assert_eq!(t.order.len(), 1);
        let split = split_join(&a, &t).unwrap();
        assert!(split.relations.is_empty());
        assert!(split.fake_links.is_empty());
    }
}
