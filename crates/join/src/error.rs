//! Join-layer errors.

use std::fmt;
use suj_storage::StorageError;

/// Errors raised while building or processing joins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JoinError {
    /// A join spec needs at least one relation.
    NoRelations,
    /// The join graph is not connected (a cross product was implied).
    Disconnected,
    /// Two relations share attributes but no edge equates them (natural
    /// join semantics would silently collapse distinct columns).
    UncoveredSharedAttrs {
        /// First relation name.
        left: String,
        /// Second relation name.
        right: String,
        /// The shared attribute.
        attr: String,
    },
    /// An edge references relations that share no attribute.
    EmptyEdge {
        /// First relation name.
        left: String,
        /// Second relation name.
        right: String,
    },
    /// An edge index is out of range.
    BadRelationIndex(usize),
    /// The operation requires an acyclic (tree-shaped) join.
    NotATree(String),
    /// Cycle breaking failed to produce an acyclic skeleton.
    CannotBreakCycles(String),
    /// No AGM fractional edge cover exists for the join's hypergraph:
    /// some output attribute is covered by no relation, so the
    /// box-splitting sampler cannot bound it.
    UnsupportedHypergraph {
        /// The join name.
        join: String,
        /// The uncoverable attribute.
        attr: String,
    },
    /// A storage-layer error.
    Storage(StorageError),
    /// Generic invariant violation with context.
    Invalid(String),
}

impl fmt::Display for JoinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JoinError::NoRelations => write!(f, "join must reference at least one relation"),
            JoinError::Disconnected => write!(f, "join graph is not connected"),
            JoinError::UncoveredSharedAttrs { left, right, attr } => write!(
                f,
                "relations `{left}` and `{right}` share attribute `{attr}` with no join edge"
            ),
            JoinError::EmptyEdge { left, right } => {
                write!(
                    f,
                    "edge between `{left}` and `{right}` equates no attributes"
                )
            }
            JoinError::BadRelationIndex(i) => write!(f, "relation index {i} out of range"),
            JoinError::NotATree(name) => {
                write!(f, "join `{name}` is not tree-shaped; break cycles first")
            }
            JoinError::CannotBreakCycles(name) => {
                write!(f, "could not break cycles of join `{name}`")
            }
            JoinError::UnsupportedHypergraph { join, attr } => write!(
                f,
                "join `{join}`: attribute `{attr}` is covered by no relation — \
                 no AGM fractional edge cover exists for box-splitting sampling"
            ),
            JoinError::Storage(e) => write!(f, "storage error: {e}"),
            JoinError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for JoinError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JoinError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for JoinError {
    fn from(e: StorageError) -> Self {
        JoinError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = JoinError::UncoveredSharedAttrs {
            left: "a".into(),
            right: "b".into(),
            attr: "x".into(),
        };
        let s = e.to_string();
        assert!(s.contains("`a`") && s.contains("`b`") && s.contains("`x`"));
    }

    #[test]
    fn storage_error_converts_and_sources() {
        let e: JoinError = StorageError::EmptySchema.into();
        assert!(matches!(e, JoinError::Storage(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
