//! Rooted join trees.
//!
//! Acyclic joins are organized "in a join tree, where each node refers to
//! a relation and each edge denotes a join" (§8.1). The tree fixes the
//! processing order for execution, exact-weight DP (bottom-up), and
//! sampling (top-down root→leaves). Chains are trees with one branch.

use crate::error::JoinError;
use crate::graph::has_graph_cycle;
use crate::spec::JoinSpec;
use std::sync::Arc;

/// A rooted tree over a join spec's relations.
#[derive(Debug, Clone)]
pub struct JoinTree {
    root: usize,
    order: Vec<usize>,
    parent: Vec<Option<usize>>,
    children: Vec<Vec<usize>>,
    probe_attrs: Vec<Vec<Arc<str>>>,
}

impl JoinTree {
    /// Builds a tree rooted at relation 0.
    pub fn new(spec: &JoinSpec) -> Result<Self, JoinError> {
        Self::with_root(spec, 0)
    }

    /// Builds a tree rooted at `root`. Fails if the join graph has a
    /// cycle (decompose with [`crate::residual`] or use
    /// [`JoinTree::spanning`] first).
    pub fn with_root(spec: &JoinSpec, root: usize) -> Result<Self, JoinError> {
        if has_graph_cycle(spec) {
            return Err(JoinError::NotATree(spec.name().to_string()));
        }
        Self::spanning(spec, root)
    }

    /// Builds a BFS *spanning* tree rooted at `root`, silently dropping
    /// cycle-closing edges. The dropped equality constraints must be
    /// re-checked by the caller (the samplers do so via output-buffer
    /// consistency rejection — the Zhao et al. cycle-breaking mechanism
    /// referenced in §8.2).
    pub fn spanning(spec: &JoinSpec, root: usize) -> Result<Self, JoinError> {
        let n = spec.n_relations();
        if root >= n {
            return Err(JoinError::BadRelationIndex(root));
        }

        let mut parent = vec![None; n];
        let mut children = vec![Vec::new(); n];
        let mut probe_attrs = vec![Vec::new(); n];
        let mut order = Vec::with_capacity(n);
        let mut visited = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(root);
        visited[root] = true;
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for u in spec.neighbors(v) {
                if !visited[u] {
                    visited[u] = true;
                    parent[u] = Some(v);
                    children[v].push(u);
                    let edge = spec
                        .edge_between(v, u)
                        .expect("neighbor implies edge exists");
                    probe_attrs[u] = edge.attrs.clone();
                    queue.push_back(u);
                }
            }
        }
        // Connectivity is validated by JoinSpec; a failed visit would be
        // an internal inconsistency.
        debug_assert!(visited.iter().all(|&v| v), "spec guaranteed connectivity");

        Ok(Self {
            root,
            order,
            parent,
            children,
            probe_attrs,
        })
    }

    /// Root relation index.
    pub fn root(&self) -> usize {
        self.root
    }

    /// BFS order (parents before children).
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// Reverse BFS order (children before parents) — the exact-weight DP
    /// order.
    pub fn bottom_up(&self) -> impl Iterator<Item = usize> + '_ {
        self.order.iter().rev().copied()
    }

    /// Parent of relation `i` (None for the root).
    pub fn parent(&self, i: usize) -> Option<usize> {
        self.parent[i]
    }

    /// Children of relation `i`.
    pub fn children(&self, i: usize) -> &[usize] {
        &self.children[i]
    }

    /// Attributes on which relation `i` joins its parent (empty for the
    /// root).
    pub fn probe_attrs(&self, i: usize) -> &[Arc<str>] {
        &self.probe_attrs[i]
    }

    /// Whether the tree is a path (the chain-join case).
    pub fn is_path(&self) -> bool {
        self.children.iter().all(|c| c.len() <= 1)
    }

    /// Tree distance (number of edges) between two relations.
    pub fn distance(&self, a: usize, b: usize) -> usize {
        if a == b {
            return 0;
        }
        // Walk both nodes to the root, recording depths.
        let depth = |mut x: usize| {
            let mut d = 0;
            while let Some(p) = self.parent[x] {
                x = p;
                d += 1;
            }
            d
        };
        let (mut x, mut y) = (a, b);
        let (mut dx, mut dy) = (depth(a), depth(b));
        let mut dist = 0;
        while dx > dy {
            x = self.parent[x].unwrap();
            dx -= 1;
            dist += 1;
        }
        while dy > dx {
            y = self.parent[y].unwrap();
            dy -= 1;
            dist += 1;
        }
        while x != y {
            x = self.parent[x].unwrap();
            y = self.parent[y].unwrap();
            dist += 2;
        }
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use suj_storage::{Relation, Schema};

    fn rel(name: &str, attrs: &[&str]) -> Arc<Relation> {
        Arc::new(Relation::new(name, Schema::new(attrs.iter().copied()).unwrap(), vec![]).unwrap())
    }

    fn chain_spec() -> JoinSpec {
        JoinSpec::natural(
            "c",
            vec![
                rel("r1", &["a", "b"]),
                rel("r2", &["b", "c"]),
                rel("r3", &["c", "d"]),
            ],
        )
        .unwrap()
    }

    fn star_spec() -> JoinSpec {
        JoinSpec::natural(
            "s",
            vec![
                rel("c", &["a", "b", "d"]),
                rel("l1", &["a", "x"]),
                rel("l2", &["b", "y"]),
                rel("l3", &["d", "z"]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn chain_tree_structure() {
        let spec = chain_spec();
        let t = JoinTree::new(&spec).unwrap();
        assert_eq!(t.root(), 0);
        assert_eq!(t.order(), &[0, 1, 2]);
        assert_eq!(t.parent(1), Some(0));
        assert_eq!(t.parent(2), Some(1));
        assert_eq!(t.children(0), &[1]);
        assert!(t.is_path());
        assert_eq!(t.probe_attrs(1)[0].as_ref(), "b");
        assert_eq!(t.probe_attrs(2)[0].as_ref(), "c");
        assert!(t.probe_attrs(0).is_empty());
    }

    #[test]
    fn star_tree_structure() {
        let spec = star_spec();
        let t = JoinTree::new(&spec).unwrap();
        assert_eq!(t.children(0).len(), 3);
        assert!(!t.is_path());
        for leaf in 1..4 {
            assert_eq!(t.parent(leaf), Some(0));
        }
    }

    #[test]
    fn bottom_up_visits_children_first() {
        let spec = star_spec();
        let t = JoinTree::new(&spec).unwrap();
        let order: Vec<usize> = t.bottom_up().collect();
        assert_eq!(*order.last().unwrap(), 0);
    }

    #[test]
    fn rerooting_changes_orientation() {
        let spec = chain_spec();
        let t = JoinTree::with_root(&spec, 2).unwrap();
        assert_eq!(t.root(), 2);
        assert_eq!(t.parent(0), Some(1));
        assert_eq!(t.parent(1), Some(2));
        assert_eq!(t.order(), &[2, 1, 0]);
    }

    #[test]
    fn cyclic_spec_rejected() {
        let tri = JoinSpec::natural(
            "t",
            vec![
                rel("x", &["a", "b"]),
                rel("y", &["b", "c"]),
                rel("z", &["c", "a"]),
            ],
        )
        .unwrap();
        assert!(matches!(JoinTree::new(&tri), Err(JoinError::NotATree(_))));
    }

    #[test]
    fn bad_root_rejected() {
        let spec = chain_spec();
        assert!(matches!(
            JoinTree::with_root(&spec, 10),
            Err(JoinError::BadRelationIndex(10))
        ));
    }

    #[test]
    fn distances() {
        let spec = chain_spec();
        let t = JoinTree::new(&spec).unwrap();
        assert_eq!(t.distance(0, 0), 0);
        assert_eq!(t.distance(0, 1), 1);
        assert_eq!(t.distance(0, 2), 2);
        assert_eq!(t.distance(2, 0), 2);

        let star = star_spec();
        let ts = JoinTree::new(&star).unwrap();
        assert_eq!(ts.distance(1, 2), 2);
        assert_eq!(ts.distance(1, 0), 1);

        // Distance is invariant under rerooting.
        let ts2 = JoinTree::with_root(&star, 3).unwrap();
        assert_eq!(ts2.distance(1, 2), 2);
    }

    #[test]
    fn single_relation_tree() {
        let spec = JoinSpec::natural("one", vec![rel("r", &["a"])]).unwrap();
        let t = JoinTree::new(&spec).unwrap();
        assert_eq!(t.order(), &[0]);
        assert!(t.is_path());
        assert!(t.children(0).is_empty());
    }
}
