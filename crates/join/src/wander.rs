//! Wander join: random walks over the join data graph (§6.1).
//!
//! A walk picks a root tuple uniformly, then at each step a uniform
//! joinable tuple in the next relation. The walk's success probability
//! `p(t) = 1/|R_1| · 1/d_2(t_1) · … · 1/d_m(t_{m−1})` is computed on the
//! fly (Example 6), giving:
//!
//! * an online Horvitz–Thompson join-size estimator
//!   `|J|_S = (1/m) Σ 1/p(t_k)` with running confidence intervals, and
//! * [`WanderSampler`], a *uniform* sampler that accepts a walk result
//!   with probability `(1/p(t))/B` for an upper bound `B ≥ max 1/p(t)`
//!   (the "plug in any join size upper-bound estimation" instantiation
//!   of §3.2).
//!
//! Walks also feed the union framework's warm-up: each successful walk's
//! `(tuple, p)` pair goes into the sample-reuse pool of Algorithm 2.

use crate::error::JoinError;
use crate::spec::JoinSpec;
use crate::weights::{with_draw_scratch, JoinSampler, Prepared, RowDraw};
use std::sync::Arc;
use suj_stats::{HorvitzThompson, SujRng};
use suj_storage::{Tuple, NO_KEY};

/// Result of one random walk.
#[derive(Debug, Clone, PartialEq)]
pub enum WalkOutcome {
    /// The walk reached every relation and produced a result tuple with
    /// the given probability.
    Success {
        /// The joined result tuple (spec output order).
        tuple: Tuple,
        /// Probability of this exact walk.
        probability: f64,
    },
    /// The walk hit a dead end (or a cycle-consistency violation).
    Failure,
}

/// Random-walk engine over one join.
#[derive(Debug)]
pub struct WanderJoin {
    prepared: Prepared,
    /// `|root| · Π M` over the walk tree — dominates every `1/p(t)`.
    bound: f64,
}

impl WanderJoin {
    /// Builds the walk engine for any join shape.
    pub fn new(spec: Arc<JoinSpec>) -> Result<Self, JoinError> {
        let prepared = Prepared::new(spec)?;
        let root = prepared.tree.root();
        let root_size = prepared.spec.relation(root).len() as f64;
        let degree_product: f64 = prepared
            .indexes
            .iter()
            .flatten()
            .map(|idx| idx.max_degree() as f64)
            .product();
        let bound = root_size * degree_product;
        Ok(Self { prepared, bound })
    }

    /// The join spec being walked.
    pub fn spec(&self) -> &JoinSpec {
        &self.prepared.spec
    }

    /// Upper bound `B ≥ 1/p(t)` for every possible walk (the extended
    /// Olken bound along the walk tree).
    pub fn bound(&self) -> f64 {
        self.bound
    }

    /// Performs one random walk over row ids — the allocation-free hot
    /// path. On success, returns the walk probability with the chosen
    /// rows left in `draw`; materialize them with
    /// [`WanderJoin::materialize`] only if the walk is kept.
    pub fn walk_rows(&self, rng: &mut SujRng, draw: &mut RowDraw) -> Option<f64> {
        let prepared = &self.prepared;
        let root = prepared.tree.root();
        let root_len = prepared.spec.relation(root).len();
        if root_len == 0 {
            return None;
        }
        draw.reset(prepared.spec.n_relations());
        let mut probability = 1.0 / root_len as f64;
        draw.rows[root] = rng.index(root_len) as u32;

        for &v in &prepared.tree.order()[1..] {
            let p = prepared.tree.parent(v).expect("non-root has parent");
            let kid = prepared.edge_keys[v][draw.rows[p] as usize];
            if kid == NO_KEY {
                return None; // dead end
            }
            let index = prepared.indexes[v].as_ref().expect("child index");
            let degree = index.degree_of(kid);
            probability /= degree as f64;
            draw.rows[v] = index.postings(kid)[rng.index(degree)];
        }
        if !prepared.consistent(&draw.rows) {
            return None; // cycle-consistency violation
        }
        Some(probability)
    }

    /// Materializes a successful walk's rows into the output tuple.
    pub fn materialize(&self, draw: &RowDraw) -> Tuple {
        self.prepared.materialize(draw.rows())
    }

    /// Performs one random walk, materializing the result tuple on
    /// success.
    pub fn walk(&self, rng: &mut SujRng) -> WalkOutcome {
        with_draw_scratch(|draw| match self.walk_rows(rng, draw) {
            Some(probability) => WalkOutcome::Success {
                tuple: self.materialize(draw),
                probability,
            },
            None => WalkOutcome::Failure,
        })
    }

    /// Runs a fixed number of walks, feeding a Horvitz–Thompson size
    /// estimator.
    pub fn estimate_size(&self, rng: &mut SujRng, walks: u64) -> HorvitzThompson {
        let mut ht = HorvitzThompson::new();
        for _ in 0..walks {
            match self.walk(rng) {
                WalkOutcome::Success { probability, .. } => ht.push_success(probability),
                WalkOutcome::Failure => ht.push_failure(),
            }
        }
        ht
    }

    /// Walks until the relative CI half-width at `confidence` drops below
    /// `threshold` or `max_walks` is reached (the paper's warm-up
    /// termination: 90% confidence or 1,000 samples). Returns the
    /// estimator and the walks spent.
    pub fn estimate_until(
        &self,
        rng: &mut SujRng,
        confidence: f64,
        threshold: f64,
        max_walks: u64,
    ) -> (HorvitzThompson, u64) {
        let mut ht = HorvitzThompson::new();
        let mut walks = 0;
        // Check convergence every few walks to amortize the CI cost.
        const CHECK_EVERY: u64 = 32;
        while walks < max_walks {
            match self.walk(rng) {
                WalkOutcome::Success { probability, .. } => ht.push_success(probability),
                WalkOutcome::Failure => ht.push_failure(),
            }
            walks += 1;
            if walks % CHECK_EVERY == 0 && ht.converged(confidence, threshold) {
                break;
            }
        }
        (ht, walks)
    }
}

/// Uniform sampler built on wander join: accept a successful walk's
/// tuple with probability `(1/p(t)) / B`.
#[derive(Debug)]
pub struct WanderSampler {
    wander: WanderJoin,
}

impl WanderSampler {
    /// Builds the sampler for any join shape.
    pub fn new(spec: Arc<JoinSpec>) -> Result<Self, JoinError> {
        Ok(Self {
            wander: WanderJoin::new(spec)?,
        })
    }

    /// Access to the underlying walk engine.
    pub fn wander(&self) -> &WanderJoin {
        &self.wander
    }
}

impl JoinSampler for WanderSampler {
    fn spec(&self) -> &JoinSpec {
        self.wander.spec()
    }

    fn sample_rows(&self, rng: &mut SujRng, draw: &mut RowDraw) -> bool {
        if self.wander.bound <= 0.0 {
            return false;
        }
        match self.wander.walk_rows(rng, draw) {
            Some(probability) => {
                let accept = (1.0 / probability) / self.wander.bound;
                rng.bernoulli(accept)
            }
            None => false,
        }
    }

    fn materialize(&self, draw: &RowDraw) -> Tuple {
        self.wander.materialize(draw)
    }

    fn join_size_hint(&self) -> f64 {
        self.wander.bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use crate::spec::JoinSpec;
    use crate::weights::SampleOutcome;
    use suj_storage::{FxHashMap, Relation, Schema, Value};

    fn rel(name: &str, attrs: &[&str], rows: Vec<Vec<i64>>) -> Arc<Relation> {
        let schema = Schema::new(attrs.iter().copied()).unwrap();
        let tuples = rows
            .into_iter()
            .map(|vals| vals.into_iter().map(Value::int).collect())
            .collect();
        Arc::new(Relation::new(name, schema, tuples).unwrap())
    }

    fn skewed_chain() -> Arc<JoinSpec> {
        let r = rel(
            "r",
            &["a", "b"],
            vec![vec![1, 10], vec![2, 10], vec![3, 20], vec![4, 30]],
        );
        let s = rel(
            "s",
            &["b", "c"],
            vec![
                vec![10, 100],
                vec![10, 101],
                vec![10, 102],
                vec![20, 200],
                vec![40, 400],
            ],
        );
        let t = rel(
            "t",
            &["c", "d"],
            vec![vec![100, 1], vec![100, 2], vec![101, 3], vec![200, 4]],
        );
        Arc::new(JoinSpec::chain("skew", vec![r, s, t]).unwrap())
    }

    #[test]
    fn walk_probabilities_match_fig3d_arithmetic() {
        // Paper Example 6: p(a1 ⋈ b2 ⋈ c1) = 1/5 · 1/2 · 1/3 with
        // |R1| = 5, d2 = 2 joinable, d3 = 3 joinable.
        let r1 = rel(
            "r1",
            &["a", "b"],
            vec![vec![1, 1], vec![2, 2], vec![3, 3], vec![4, 4], vec![5, 5]],
        );
        // a1 (b=1) joins two rows of r2.
        let r2 = rel(
            "r2",
            &["b", "c"],
            vec![
                vec![1, 7],
                vec![1, 8],
                vec![2, 7],
                vec![3, 9],
                vec![4, 9],
                vec![5, 9],
            ],
        );
        // c=7 joins three rows of r3.
        let r3 = rel(
            "r3",
            &["c", "d"],
            vec![
                vec![7, 100],
                vec![7, 101],
                vec![7, 102],
                vec![8, 103],
                vec![9, 104],
            ],
        );
        let spec = Arc::new(JoinSpec::chain("fig3d", vec![r1, r2, r3]).unwrap());
        let wander = WanderJoin::new(spec).unwrap();
        let mut rng = SujRng::seed_from_u64(1);
        let mut seen_target = false;
        for _ in 0..500 {
            if let WalkOutcome::Success { tuple, probability } = wander.walk(&mut rng) {
                if tuple.get(0) == &Value::int(1) && tuple.get(2).as_int() == Some(7) {
                    assert!((probability - (1.0 / 5.0) * (1.0 / 2.0) * (1.0 / 3.0)).abs() < 1e-12);
                    seen_target = true;
                }
            }
        }
        assert!(seen_target, "target walk never observed");
    }

    #[test]
    fn ht_estimate_converges_to_true_size() {
        let spec = skewed_chain();
        let truth = execute(&spec).len() as f64;
        let wander = WanderJoin::new(spec).unwrap();
        let mut rng = SujRng::seed_from_u64(21);
        let ht = wander.estimate_size(&mut rng, 60_000);
        let rel_err = (ht.estimate() - truth).abs() / truth;
        assert!(rel_err < 0.05, "estimate {} truth {truth}", ht.estimate());
    }

    #[test]
    fn estimate_until_stops_on_convergence() {
        let spec = skewed_chain();
        let wander = WanderJoin::new(spec).unwrap();
        let mut rng = SujRng::seed_from_u64(22);
        let (ht, walks) = wander.estimate_until(&mut rng, 0.9, 0.05, 100_000);
        assert!(walks < 100_000, "should converge before the cap");
        assert!(ht.converged(0.9, 0.05));
    }

    #[test]
    fn bound_dominates_inverse_probabilities() {
        let spec = skewed_chain();
        let wander = WanderJoin::new(spec).unwrap();
        let mut rng = SujRng::seed_from_u64(5);
        for _ in 0..500 {
            if let WalkOutcome::Success { probability, .. } = wander.walk(&mut rng) {
                assert!(1.0 / probability <= wander.bound() + 1e-9);
            }
        }
    }

    #[test]
    fn wander_sampler_is_uniform() {
        let spec = skewed_chain();
        let result = execute(&spec);
        let universe = result.distinct_set();
        let sampler = WanderSampler::new(spec).unwrap();
        let mut rng = SujRng::seed_from_u64(31);
        let mut counts: FxHashMap<Tuple, u64> = FxHashMap::default();
        let mut accepted = 0usize;
        let target = 2_000 * universe.len();
        while accepted < target {
            if let SampleOutcome::Accepted(t) = sampler.sample(&mut rng) {
                assert!(universe.contains(&t));
                *counts.entry(t).or_insert(0) += 1;
                accepted += 1;
            }
        }
        let observed: Vec<u64> = result
            .tuples()
            .iter()
            .map(|t| counts.get(t).copied().unwrap_or(0))
            .collect();
        let outcome = suj_stats::chi_square_test(&observed).unwrap();
        assert!(outcome.p_value > 0.001, "p = {}", outcome.p_value);
    }

    #[test]
    fn cyclic_walks_estimate_cyclic_size() {
        let spec = Arc::new(
            JoinSpec::natural(
                "tri",
                vec![
                    rel(
                        "x",
                        &["a", "b"],
                        vec![vec![1, 2], vec![1, 9], vec![5, 2], vec![5, 6]],
                    ),
                    rel(
                        "y",
                        &["b", "c"],
                        vec![vec![2, 3], vec![2, 4], vec![9, 4], vec![6, 3]],
                    ),
                    rel(
                        "z",
                        &["c", "a"],
                        vec![vec![3, 1], vec![4, 5], vec![4, 1], vec![3, 5]],
                    ),
                ],
            )
            .unwrap(),
        );
        let truth = execute(&spec).len() as f64;
        assert!(truth > 0.0);
        let wander = WanderJoin::new(spec).unwrap();
        let mut rng = SujRng::seed_from_u64(77);
        let ht = wander.estimate_size(&mut rng, 60_000);
        let rel_err = (ht.estimate() - truth).abs() / truth;
        assert!(rel_err < 0.1, "estimate {} truth {truth}", ht.estimate());
    }

    #[test]
    fn empty_join_walks_fail() {
        let spec = Arc::new(
            JoinSpec::chain(
                "empty",
                vec![
                    rel("r", &["a", "b"], vec![vec![1, 10]]),
                    rel("s", &["b", "c"], vec![]),
                ],
            )
            .unwrap(),
        );
        let wander = WanderJoin::new(spec).unwrap();
        let mut rng = SujRng::seed_from_u64(2);
        for _ in 0..20 {
            assert_eq!(wander.walk(&mut rng), WalkOutcome::Failure);
        }
        let ht = wander.estimate_size(&mut rng, 100);
        assert_eq!(ht.estimate(), 0.0);
    }
}
