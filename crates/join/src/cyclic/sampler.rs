//! The AGM-bound box-splitting sampler for cyclic joins.
//!
//! A *box* constrains the join's output attributes, in the fixed order
//! of the output schema: a pinned prefix of attributes, a value
//! interval on the current attribute, and unconstrained attributes
//! after it. Because every relation is indexed by a [`SortedIndex`]
//! whose sort key lists the relation's attributes in that same global
//! order, the rows of a relation inside any box form one contiguous
//! *run* `[lo, hi)` of its sorted permutation — so a box is just one
//! `(lo, hi)` pair per relation, and all bookkeeping is positional.
//!
//! One attempt descends from the root box (everything unconstrained) to
//! a *unit* box (all attributes pinned):
//!
//! 1. **Scan** the relations containing the current attribute. An empty
//!    run, or constant-but-disagreeing values, mean the box holds no
//!    join tuple: reject. All constant and agreeing: the attribute is
//!    pinned for free — advance.
//! 2. **Split** otherwise: the non-constant relation with the most
//!    distinct keys in its run is cut at the positional midpoint,
//!    snapped outward to a duplicate-block boundary so both children
//!    are non-empty; every relation containing the attribute narrows at
//!    the same value boundary by binary search.
//! 3. **Branch** by the AGM bound: with `r ~ U[0, AGM(B))`, descend
//!    left if `r < AGM(B_l)`, right if `r < AGM(B_l) + AGM(B_r)`,
//!    otherwise reject. The cover condition `Σ_{i ∋ A} w_i ≥ 1` makes
//!    `AGM(B_l) + AGM(B_r) ≤ AGM(B)` (Hölder), so the reject mass is
//!    never negative and the descent probability telescopes to
//!    `AGM(unit)/AGM(root) = 1/AGM(root)` for every unit box.
//! 4. **Accept rows**: at a unit box each run is one duplicate block.
//!    For each relation, a uniform slot in `[0, max_block_i)` either
//!    lands inside the block (take that duplicate) or rejects, so a
//!    specific row combination is accepted with probability exactly
//!    `1 / (AGM(root) · Π_i max_block_i)` — uniform under bag
//!    semantics, with no residual-predicate re-check: pinning equates
//!    every shared attribute by construction.
//!
//! The AGM bound is computed over *distinct* rows (an O(1) prefix-sum
//! read per run); duplicate multiplicity is restored by step 4. All
//! descent state lives in a thread-local scratch, so rejected attempts
//! allocate nothing.
//!
//! This is the "subgraph/cyclic sampling via box splitting" technique
//! of Wang & Tao (PODS 2023, see `PAPERS.md`) specialized to the
//! paper's union-of-joins engine; the bound itself is
//! Atserias–Grohe–Marx.

use super::cover::{agm_bound, FractionalEdgeCover};
use crate::error::JoinError;
use crate::spec::JoinSpec;
use crate::weights::{JoinSampler, RowDraw};
use std::cell::RefCell;
use std::sync::Arc;
use suj_stats::SujRng;
use suj_storage::{SortedIndex, Tuple, Value};

/// Per-thread descent scratch: one run, one distinct count, and one
/// split point per relation.
#[derive(Default)]
struct BoxScratch {
    runs: Vec<(u32, u32)>,
    counts: Vec<f64>,
    mids: Vec<u32>,
}

thread_local! {
    static BOX_SCRATCH: RefCell<BoxScratch> = RefCell::new(BoxScratch::default());
}

/// Uniform sampler over a (possibly cyclic) join via AGM-bound box
/// splitting. See the [module docs](self) for the algorithm and its
/// uniformity argument.
#[derive(Debug)]
pub struct CyclicJoinSampler {
    spec: Arc<JoinSpec>,
    cover: FractionalEdgeCover,
    /// One sorted index per relation, keyed by the relation's
    /// attributes in output-schema order — so box constraints are
    /// always a prefix of the sort key.
    sorted: Vec<SortedIndex>,
    /// For each output attribute `d`: the relations containing it, as
    /// `(relation, key position in its sort key)`.
    attr_rels: Vec<Vec<(u32, u32)>>,
    /// `attr_key[d][i]` = key position of attribute `d` in relation
    /// `i`'s sort key, or -1 if the relation lacks the attribute.
    attr_key: Vec<Vec<i32>>,
    /// AGM bound of the root box (over distinct rows).
    agm_root: f64,
    /// Per relation: longest duplicate block (≥ 1 unless empty).
    max_block: Vec<usize>,
    /// `agm_root · Π max_block` — the bag-semantics output bound.
    size_bound: f64,
    /// Output fill plan: for each output position, the first relation
    /// containing the attribute and its column there.
    out_src: Vec<(u32, u32)>,
}

impl CyclicJoinSampler {
    /// Builds the sampler: a fractional edge cover for the spec's
    /// hypergraph plus one sorted index per relation.
    pub fn new(spec: Arc<JoinSpec>) -> Result<Self, JoinError> {
        let cover = FractionalEdgeCover::for_spec(&spec)?;
        let out_attrs = spec.output_schema().attrs();
        let n = spec.n_relations();

        let mut sorted = Vec::with_capacity(n);
        for i in 0..n {
            let rel = spec.relation(i);
            let keys: Vec<Arc<str>> = out_attrs
                .iter()
                .filter(|a| rel.schema().position(a).is_some())
                .cloned()
                .collect();
            sorted.push(SortedIndex::build(rel, &keys));
        }

        let mut attr_rels = vec![Vec::new(); out_attrs.len()];
        let mut attr_key = vec![vec![-1i32; n]; out_attrs.len()];
        for (i, idx) in sorted.iter().enumerate() {
            for (k, a) in idx.attrs().iter().enumerate() {
                let d = spec
                    .output_schema()
                    .position(a)
                    .expect("sort key attr in output schema");
                attr_rels[d].push((i as u32, k as u32));
                attr_key[d][i] = k as i32;
            }
        }

        let root_counts: Vec<f64> = sorted
            .iter()
            .map(|idx| idx.distinct_in(0, idx.len()) as f64)
            .collect();
        let agm_root = agm_bound(&root_counts, cover.weights());
        let max_block: Vec<usize> = sorted.iter().map(|idx| idx.max_block().max(1)).collect();
        let size_bound = agm_root * max_block.iter().map(|&m| m as f64).product::<f64>();

        let arity = spec.output_schema().arity();
        let mut out_src = vec![(0u32, 0u32); arity];
        let mut claimed = vec![false; arity];
        for i in 0..n {
            for (k, &p) in spec.out_positions(i).iter().enumerate() {
                if !claimed[p] {
                    claimed[p] = true;
                    out_src[p] = (i as u32, k as u32);
                }
            }
        }

        Ok(Self {
            spec,
            cover,
            sorted,
            attr_rels,
            attr_key,
            agm_root,
            max_block,
            size_bound,
            out_src,
        })
    }

    /// The fractional edge cover in use.
    pub fn cover(&self) -> &FractionalEdgeCover {
        &self.cover
    }

    /// AGM bound of the root box (over distinct rows).
    pub fn agm_root(&self) -> f64 {
        self.agm_root
    }

    /// One box descent. `true` leaves a uniform row combination in
    /// `draw`.
    fn descend(&self, rng: &mut SujRng, draw: &mut RowDraw, s: &mut BoxScratch) -> bool {
        let n = self.spec.n_relations();
        s.runs.clear();
        s.counts.clear();
        s.mids.clear();
        s.mids.resize(n, 0);
        for idx in &self.sorted {
            s.runs.push((0, idx.len() as u32));
            s.counts.push(idx.distinct_in(0, idx.len()) as f64);
        }
        let mut agm_cur = self.agm_root;
        if agm_cur <= 0.0 {
            return false;
        }

        for d in 0..self.attr_rels.len() {
            loop {
                // Scan the relations containing attribute d.
                let mut split_rel: Option<usize> = None;
                let mut split_count = -1.0f64;
                let mut pin: Option<Value> = None;
                for &(i, k) in &self.attr_rels[d] {
                    let i = i as usize;
                    let (lo, hi) = s.runs[i];
                    if lo == hi {
                        return false;
                    }
                    let idx = &self.sorted[i];
                    let first = idx.value_at(k as usize, lo as usize);
                    let last = idx.value_at(k as usize, hi as usize - 1);
                    if first != last {
                        if s.counts[i] > split_count {
                            split_count = s.counts[i];
                            split_rel = Some(i);
                        }
                    } else {
                        match &pin {
                            None => pin = Some(first),
                            Some(v) => {
                                if *v != first {
                                    return false;
                                }
                            }
                        }
                    }
                }

                let si = match split_rel {
                    // All containing relations constant and agreeing:
                    // the attribute is pinned; runs are unchanged.
                    None => break,
                    Some(si) => si,
                };

                // Split relation si's run at the positional midpoint,
                // snapped to a duplicate-block boundary on attribute d.
                let k = self.attr_key[d][si] as usize;
                let (lo, hi) = s.runs[si];
                let (lo, hi) = (lo as usize, hi as usize);
                let idx = &self.sorted[si];
                let mid = lo + (hi - lo) / 2;
                let v_mid = idx.value_at(k, mid);
                let p = idx.lower_bound_in(k, lo, hi, &v_mid);
                let (cut, boundary) = if p == lo {
                    // v_mid is the run's smallest value; cut after its
                    // block (the run is non-constant, so some larger
                    // value follows).
                    (idx.upper_bound_in(k, lo, hi, &v_mid), v_mid)
                } else {
                    (p, idx.value_at(k, p - 1))
                };
                debug_assert!(cut > lo && cut < hi);

                // AGM bounds of the two children: left pins
                // attr_d ≤ boundary, right pins attr_d > boundary.
                let mut agm_left = 1.0f64;
                let mut agm_right = 1.0f64;
                for i in 0..n {
                    let w = self.cover.weights()[i];
                    let key = self.attr_key[d][i];
                    if key < 0 {
                        let f = s.counts[i].powf(w);
                        agm_left *= f;
                        agm_right *= f;
                    } else {
                        let (lo_i, hi_i) = s.runs[i];
                        let (lo_i, hi_i) = (lo_i as usize, hi_i as usize);
                        let m = if i == si {
                            cut
                        } else {
                            self.sorted[i].upper_bound_in(key as usize, lo_i, hi_i, &boundary)
                        };
                        s.mids[i] = m as u32;
                        // A zero distinct count empties the child for
                        // this relation regardless of its weight
                        // (0^0 = 1 would wrongly keep the bound alive).
                        let dl = self.sorted[i].distinct_in(lo_i, m) as f64;
                        let dr = self.sorted[i].distinct_in(m, hi_i) as f64;
                        if dl > 0.0 {
                            agm_left *= dl.powf(w);
                        } else {
                            agm_left = 0.0;
                        }
                        if dr > 0.0 {
                            agm_right *= dr.powf(w);
                        } else {
                            agm_right = 0.0;
                        }
                    }
                }

                // Branch ~ AGM mass; the remainder rejects.
                let r = rng.next_f64() * agm_cur;
                let go_left = r < agm_left;
                if !go_left && r >= agm_left + agm_right {
                    return false;
                }
                for &(i, _) in &self.attr_rels[d] {
                    let i = i as usize;
                    let (lo_i, hi_i) = s.runs[i];
                    let m = s.mids[i];
                    s.runs[i] = if go_left { (lo_i, m) } else { (m, hi_i) };
                    let (a, b) = s.runs[i];
                    s.counts[i] = self.sorted[i].distinct_in(a as usize, b as usize) as f64;
                }
                agm_cur = if go_left { agm_left } else { agm_right };
                if agm_cur <= 0.0 {
                    return false;
                }
            }
        }

        // Unit box: every run is one duplicate block. Correct for bag
        // multiplicity with a per-relation max-block acceptance test.
        draw.reset(n);
        for i in 0..n {
            let (lo, hi) = s.runs[i];
            let m = (hi - lo) as usize;
            let slot = rng.index(self.max_block[i]);
            if slot >= m {
                return false;
            }
            draw.rows[i] = self.sorted[i].row_at(lo as usize + slot);
        }
        true
    }
}

impl JoinSampler for CyclicJoinSampler {
    fn spec(&self) -> &JoinSpec {
        &self.spec
    }

    fn sample_rows(&self, rng: &mut SujRng, draw: &mut RowDraw) -> bool {
        BOX_SCRATCH.with(|s| self.descend(rng, draw, &mut s.borrow_mut()))
    }

    fn materialize(&self, draw: &RowDraw) -> Tuple {
        let mut vals: Vec<Value> = Vec::with_capacity(self.out_src.len());
        vals.extend(self.out_src.iter().map(|&(r, k)| {
            self.spec
                .relation(r as usize)
                .column(k as usize)
                .value(draw.rows[r as usize] as usize)
        }));
        Tuple::new(vals)
    }

    /// `AGM(root) · Π_i max_block_i` — an upper bound on the bag-join
    /// size, and the inverse of the per-attempt acceptance probability
    /// of any fixed result row combination.
    fn join_size_hint(&self) -> f64 {
        self.size_bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use crate::spec::JoinSpec;
    use suj_stats::chi_square_test;
    use suj_storage::{Relation, Schema, Tuple};

    fn rel(name: &str, attrs: &[&str], rows: &[&[i64]]) -> Arc<Relation> {
        let schema = Schema::new(attrs.iter().copied()).unwrap();
        let tuples = rows
            .iter()
            .map(|r| Tuple::new(r.iter().map(|&v| Value::int(v)).collect()))
            .collect();
        Arc::new(Relation::new(name, schema, tuples).unwrap())
    }

    fn triangle() -> Arc<JoinSpec> {
        Arc::new(
            JoinSpec::natural(
                "tri",
                vec![
                    rel("x", &["a", "b"], &[&[1, 2], &[1, 9], &[5, 2], &[5, 6]]),
                    rel("y", &["b", "c"], &[&[2, 3], &[2, 4], &[9, 4], &[6, 3]]),
                    rel("z", &["c", "a"], &[&[3, 1], &[4, 5], &[4, 1], &[3, 5]]),
                ],
            )
            .unwrap(),
        )
    }

    fn four_cycle() -> Arc<JoinSpec> {
        Arc::new(
            JoinSpec::natural(
                "c4",
                vec![
                    rel("p", &["a", "b"], &[&[1, 2], &[1, 3], &[4, 2], &[4, 3]]),
                    rel("q", &["b", "c"], &[&[2, 5], &[3, 5], &[2, 6], &[3, 7]]),
                    rel("r", &["c", "d"], &[&[5, 8], &[6, 8], &[7, 9], &[5, 9]]),
                    rel("s", &["d", "a"], &[&[8, 1], &[9, 4], &[8, 4], &[9, 1]]),
                ],
            )
            .unwrap(),
        )
    }

    /// Draws `2000·k` accepted samples and chi²-tests them against the
    /// uniform distribution over the join's `k` results (which must be
    /// duplicate-free for tuple-level counting to be valid).
    fn assert_uniform(sampler: &CyclicJoinSampler, seed: u64) {
        let result = execute(sampler.spec());
        let k = result.tuples().len();
        assert!(k > 1, "uniformity test needs a non-trivial join");
        let mut pos = std::collections::HashMap::new();
        for (i, t) in result.tuples().iter().enumerate() {
            assert!(pos.insert(t.clone(), i).is_none(), "duplicate result");
        }
        let mut counts = vec![0u64; k];
        let mut rng = SujRng::seed_from_u64(seed);
        let mut accepted = 0usize;
        let mut attempts = 0u64;
        while accepted < 2000 * k {
            attempts += 1;
            assert!(attempts < 20_000_000, "acceptance rate collapsed");
            if let crate::weights::SampleOutcome::Accepted(t) = sampler.sample(&mut rng) {
                counts[*pos.get(&t).expect("sampled tuple not in join result")] += 1;
                accepted += 1;
            }
        }
        let test = chi_square_test(&counts).expect("enough cells for chi²");
        assert!(
            test.p_value > 0.001,
            "chi² rejected uniformity: {test:?} counts={counts:?}"
        );
    }

    #[test]
    fn triangle_samples_are_uniform() {
        let sampler = CyclicJoinSampler::new(triangle()).unwrap();
        assert_eq!(sampler.cover().kind(), super::super::CoverKind::Cycle);
        assert_uniform(&sampler, 0xA11CE);
    }

    #[test]
    fn four_cycle_samples_are_uniform() {
        let sampler = CyclicJoinSampler::new(four_cycle()).unwrap();
        assert_eq!(sampler.cover().kind(), super::super::CoverKind::Cycle);
        assert_uniform(&sampler, 77);
    }

    #[test]
    fn acyclic_chain_also_samples_uniformly() {
        // The box descent is shape-agnostic; on acyclic specs it is just
        // a slower exact sampler. Sanity-check uniformity anyway.
        let spec = Arc::new(
            JoinSpec::natural(
                "chain",
                vec![
                    rel("l", &["a", "b"], &[&[1, 1], &[1, 2], &[2, 2], &[3, 2]]),
                    rel("r", &["b", "c"], &[&[1, 7], &[2, 7], &[2, 8], &[2, 9]]),
                ],
            )
            .unwrap(),
        );
        let sampler = CyclicJoinSampler::new(spec).unwrap();
        assert_uniform(&sampler, 5);
    }

    #[test]
    fn bag_duplicates_are_weighted_by_multiplicity() {
        // Duplicate rows in the inputs: uniformity must hold over row
        // *combinations*, observed via the row-id hot path.
        let spec = Arc::new(
            JoinSpec::natural(
                "tri-bag",
                vec![
                    rel("x", &["a", "b"], &[&[1, 2], &[1, 2], &[1, 9]]),
                    rel("y", &["b", "c"], &[&[2, 3], &[9, 3], &[2, 3]]),
                    rel("z", &["c", "a"], &[&[3, 1], &[3, 1], &[3, 1]]),
                ],
            )
            .unwrap(),
        );
        let sampler = CyclicJoinSampler::new(spec.clone()).unwrap();
        // Enumerate valid row combinations by brute force.
        let mut combos = std::collections::HashMap::new();
        for xi in 0..3u32 {
            for yi in 0..3u32 {
                for zi in 0..3u32 {
                    let x = spec.relation(0);
                    let y = spec.relation(1);
                    let z = spec.relation(2);
                    let b_ok = x.column(1).cell(xi as usize) == y.column(0).cell(yi as usize);
                    let c_ok = y.column(1).cell(yi as usize) == z.column(0).cell(zi as usize);
                    let a_ok = z.column(1).cell(zi as usize) == x.column(0).cell(xi as usize);
                    if b_ok && c_ok && a_ok {
                        let idx = combos.len();
                        combos.insert([xi, yi, zi], idx);
                    }
                }
            }
        }
        // x/y pairs: b=2 gives 2·2, b=9 gives 1·1; each pairs with all
        // 3 (identical) z rows.
        assert_eq!(combos.len(), 15);
        let mut counts = vec![0u64; combos.len()];
        let mut rng = SujRng::seed_from_u64(99);
        let mut draw = RowDraw::new();
        let mut accepted = 0usize;
        while accepted < 2000 * combos.len() {
            if sampler.sample_rows(&mut rng, &mut draw) {
                let key = [draw.rows()[0], draw.rows()[1], draw.rows()[2]];
                counts[*combos.get(&key).expect("accepted combo not in join")] += 1;
                accepted += 1;
            }
        }
        let test = chi_square_test(&counts).expect("enough cells for chi²");
        assert!(test.p_value > 0.001, "chi² rejected: {test:?} {counts:?}");
    }

    #[test]
    fn acceptance_implies_membership_and_hint_bounds_out() {
        let sampler = CyclicJoinSampler::new(triangle()).unwrap();
        let result = execute(sampler.spec());
        let members: std::collections::HashSet<_> = result.tuples().iter().cloned().collect();
        assert!(sampler.join_size_hint() >= result.tuples().len() as f64);
        let mut rng = SujRng::seed_from_u64(123);
        let mut seen = 0;
        for _ in 0..50_000 {
            if let crate::weights::SampleOutcome::Accepted(t) = sampler.sample(&mut rng) {
                assert!(members.contains(&t));
                seen += 1;
            }
        }
        assert!(seen > 0);
    }

    #[test]
    fn empty_relation_never_accepts() {
        let spec = Arc::new(
            JoinSpec::natural(
                "tri-empty",
                vec![
                    rel("x", &["a", "b"], &[&[1, 2]]),
                    rel("y", &["b", "c"], &[]),
                    rel("z", &["c", "a"], &[&[3, 1]]),
                ],
            )
            .unwrap(),
        );
        let sampler = CyclicJoinSampler::new(spec).unwrap();
        assert_eq!(sampler.join_size_hint(), 0.0);
        let mut rng = SujRng::seed_from_u64(1);
        let mut draw = RowDraw::new();
        for _ in 0..100 {
            assert!(!sampler.sample_rows(&mut rng, &mut draw));
        }
    }

    #[test]
    fn same_seed_is_bit_identical() {
        let sampler = CyclicJoinSampler::new(triangle()).unwrap();
        let run = |seed| {
            let mut rng = SujRng::seed_from_u64(seed);
            let mut out = Vec::new();
            sampler.sample_batch(64, 1_000_000, &mut rng, &mut out);
            out
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn agm_root_matches_hand_computation() {
        // Triangle of 4-row duplicate-free relations: 4^{3/2} = 8.
        let sampler = CyclicJoinSampler::new(triangle()).unwrap();
        assert_eq!(sampler.agm_root(), 8.0);
        assert_eq!(sampler.join_size_hint(), 8.0); // max blocks all 1
    }
}
