//! Cyclic-join sampling: AGM-bound box splitting over sorted-index
//! range oracles.
//!
//! The tree-walk samplers ([`ExactWeightSampler`], [`OlkenSampler`],
//! [`WanderSampler`]) handle cyclic joins by walking a spanning tree
//! and rejecting draws that violate the dropped cycle-closing
//! equalities — correct, but the rejection rate degrades with how much
//! the dropped edges filter. This module provides the structurally
//! cyclic alternative: a sampler whose acceptance probability is
//! governed by the AGM output bound instead.
//!
//! * [`cover`] — LP-free fractional edge covers (exact for cycles and
//!   cliques, greedy integral fallback) and the [`agm_bound`] they
//!   parameterize.
//! * [`sampler`] — [`CyclicJoinSampler`], the box-splitting descent:
//!   repeatedly halve a box of the output space, branching with
//!   probability proportional to each half's AGM bound, until every
//!   attribute is pinned; accepted draws are exactly uniform over the
//!   (bag-semantics) join result.
//!
//! The storage half lives in [`suj_storage::sorted`]: per-relation
//! sorted permutations whose O(1) distinct counts and O(log n) run
//! narrowing make each split two binary searches per relation.
//!
//! [`ExactWeightSampler`]: crate::weights::ExactWeightSampler
//! [`OlkenSampler`]: crate::weights::OlkenSampler
//! [`WanderSampler`]: crate::wander::WanderSampler

pub mod cover;
pub mod sampler;

pub use cover::{agm_bound, CoverKind, FractionalEdgeCover};
pub use sampler::CyclicJoinSampler;
