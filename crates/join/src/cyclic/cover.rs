//! LP-free fractional edge covers for the AGM bound.
//!
//! The AGM inequality bounds a join's output by
//! `Π_i |R_i|^{w_i}` for any *fractional edge cover* `w`: per-relation
//! weights such that every output attribute `A` satisfies
//! `Σ_{i : A ∈ R_i} w_i ≥ 1`. The same condition is exactly what makes
//! the bound *subadditive under box splits on `A`* — the invariant the
//! box-splitting sampler's accept probability rests on — so any valid
//! cover yields a correct (if looser) sampler.
//!
//! Computing the *optimal* cover is a linear program; this module stays
//! LP-free by recognizing the two structures the workload actually
//! ships (where the LP optimum is known in closed form) and falling
//! back to a greedy integral cover everywhere else:
//!
//! * **Cycles** — every relation binary, every attribute in exactly two
//!   relations: `w_i = 1/2` (the optimum for odd cycles; for a
//!   triangle of `N`-row relations this is the classic `N^{3/2}`).
//! * **Cliques `K_k`** — all `k(k−1)/2` attribute pairs present as
//!   binary relations: `w_i = 1/(k−1)`.
//! * **Greedy fallback** — repeatedly take the relation covering the
//!   most uncovered attributes at weight 1. Always valid; the bound
//!   degrades toward a cross product of the chosen relations.
//!
//! A hypergraph where some attribute belongs to *no* relation has no
//! cover at all; that surfaces as the named
//! [`JoinError::UnsupportedHypergraph`] (unreachable through
//! [`JoinSpec`] — whose output schema is the union of relation schemas
//! — but the hypergraph API is public and must be total).

use crate::error::JoinError;
use crate::spec::JoinSpec;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Which rule produced a cover (surfaced in planner explanations and
/// bench reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoverKind {
    /// All relations binary, every attribute in exactly two: `w = 1/2`.
    Cycle,
    /// A `K_k` clique of binary relations: `w = 1/(k−1)`.
    Clique,
    /// Greedy integral set cover (weights 0/1).
    Greedy,
}

impl std::fmt::Display for CoverKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoverKind::Cycle => write!(f, "cycle(w=1/2)"),
            CoverKind::Clique => write!(f, "clique(w=1/(k-1))"),
            CoverKind::Greedy => write!(f, "greedy(w∈{{0,1}})"),
        }
    }
}

/// A fractional edge cover: one weight per relation, in spec order.
#[derive(Debug, Clone)]
pub struct FractionalEdgeCover {
    weights: Vec<f64>,
    kind: CoverKind,
}

impl FractionalEdgeCover {
    /// Computes a cover for `spec`'s hypergraph (vertices = output
    /// attributes, hyperedges = relation schemas).
    pub fn for_spec(spec: &JoinSpec) -> Result<Self, JoinError> {
        let attrs: Vec<Arc<str>> = spec.output_schema().attrs().to_vec();
        let hyperedges: Vec<BTreeSet<Arc<str>>> = spec
            .relations()
            .iter()
            .map(|r| r.schema().attrs().iter().cloned().collect())
            .collect();
        Self::for_hypergraph(spec.name(), &attrs, &hyperedges)
    }

    /// Computes a cover for an explicit hypergraph. Errors with
    /// [`JoinError::UnsupportedHypergraph`] if some attribute is in no
    /// hyperedge (then no cover exists).
    pub fn for_hypergraph(
        join: &str,
        attrs: &[Arc<str>],
        hyperedges: &[BTreeSet<Arc<str>>],
    ) -> Result<Self, JoinError> {
        let mut degree: BTreeMap<&Arc<str>, usize> = attrs.iter().map(|a| (a, 0)).collect();
        for he in hyperedges {
            for a in he {
                if let Some(d) = degree.get_mut(a) {
                    *d += 1;
                }
            }
        }
        if let Some((&a, _)) = degree.iter().find(|(_, &d)| d == 0) {
            return Err(JoinError::UnsupportedHypergraph {
                join: join.to_string(),
                attr: a.to_string(),
            });
        }

        let all_binary = hyperedges.iter().all(|he| he.len() == 2);

        // Cycle rule: binary relations, every attribute in exactly two.
        // (Counting degrees shows #edges = #attrs — one or more disjoint
        // cycles, each attribute's weight sum exactly 1.)
        if !hyperedges.is_empty() && all_binary && degree.values().all(|&d| d == 2) {
            return Ok(Self {
                weights: vec![0.5; hyperedges.len()],
                kind: CoverKind::Cycle,
            });
        }

        // Clique rule: all k(k−1)/2 attribute pairs present exactly once.
        let k = attrs.len();
        if all_binary && k >= 3 && hyperedges.len() == k * (k - 1) / 2 {
            let pairs: BTreeSet<&BTreeSet<Arc<str>>> = hyperedges.iter().collect();
            let distinct_pairs = pairs.len() == hyperedges.len();
            if distinct_pairs && degree.values().all(|&d| d == k - 1) {
                return Ok(Self {
                    weights: vec![1.0 / (k - 1) as f64; hyperedges.len()],
                    kind: CoverKind::Clique,
                });
            }
        }

        // Greedy integral cover: always succeeds once every attribute
        // has a home. Deterministic tie-break on lowest index.
        let mut weights = vec![0.0; hyperedges.len()];
        let mut uncovered: BTreeSet<&Arc<str>> = attrs.iter().collect();
        while !uncovered.is_empty() {
            let (best, gain) = hyperedges
                .iter()
                .enumerate()
                .map(|(i, he)| (i, he.iter().filter(|a| uncovered.contains(a)).count()))
                .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
                .expect("non-empty hyperedge list");
            debug_assert!(gain > 0, "zero-degree attribute slipped through");
            weights[best] = 1.0;
            uncovered.retain(|a| !hyperedges[best].contains(*a));
        }
        Ok(Self {
            weights,
            kind: CoverKind::Greedy,
        })
    }

    /// Per-relation weights, in spec order.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Which rule produced the cover.
    pub fn kind(&self) -> CoverKind {
        self.kind
    }

    /// Sum of the weights (the exponent of the AGM bound's growth in a
    /// uniform-size workload).
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// Whether `Σ_{i : a ∈ R_i} w_i ≥ 1` holds for every attribute —
    /// the cover validity condition (and the split-subadditivity
    /// condition). Exposed for tests and debug assertions.
    pub fn covers(&self, attrs: &[Arc<str>], hyperedges: &[BTreeSet<Arc<str>>]) -> bool {
        attrs.iter().all(|a| {
            let sum: f64 = hyperedges
                .iter()
                .zip(&self.weights)
                .filter(|(he, _)| he.contains(a))
                .map(|(_, w)| w)
                .sum();
            sum >= 1.0 - 1e-9
        })
    }
}

/// The AGM bound of one box: `Π_i counts[i]^{weights[i]}`, with an
/// empty relation (count 0) collapsing the bound to 0 regardless of
/// its weight — a box missing tuples of *any* relation holds no join
/// result.
pub fn agm_bound(counts: &[f64], weights: &[f64]) -> f64 {
    debug_assert_eq!(counts.len(), weights.len());
    let mut bound = 1.0f64;
    for (&c, &w) in counts.iter().zip(weights) {
        if c <= 0.0 {
            return 0.0;
        }
        bound *= c.powf(w);
    }
    bound
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edges(list: &[&[&str]]) -> Vec<BTreeSet<Arc<str>>> {
        list.iter()
            .map(|he| he.iter().map(|a| Arc::from(*a)).collect())
            .collect()
    }

    fn attrs(list: &[&str]) -> Vec<Arc<str>> {
        list.iter().map(|a| Arc::from(*a)).collect()
    }

    #[test]
    fn triangle_gets_half_weights() {
        let a = attrs(&["a", "b", "c"]);
        let he = edges(&[&["a", "b"], &["b", "c"], &["c", "a"]]);
        let cover = FractionalEdgeCover::for_hypergraph("tri", &a, &he).unwrap();
        assert_eq!(cover.kind(), CoverKind::Cycle);
        assert_eq!(cover.weights(), &[0.5, 0.5, 0.5]);
        assert!(cover.covers(&a, &he));
        assert_eq!(cover.total_weight(), 1.5);
    }

    #[test]
    fn four_cycle_gets_half_weights() {
        let a = attrs(&["a", "b", "c", "d"]);
        let he = edges(&[&["a", "b"], &["b", "c"], &["c", "d"], &["d", "a"]]);
        let cover = FractionalEdgeCover::for_hypergraph("c4", &a, &he).unwrap();
        assert_eq!(cover.kind(), CoverKind::Cycle);
        assert!(cover.covers(&a, &he));
        assert_eq!(cover.total_weight(), 2.0);
    }

    #[test]
    fn k4_gets_third_weights() {
        let a = attrs(&["a", "b", "c", "d"]);
        let he = edges(&[
            &["a", "b"],
            &["a", "c"],
            &["a", "d"],
            &["b", "c"],
            &["b", "d"],
            &["c", "d"],
        ]);
        let cover = FractionalEdgeCover::for_hypergraph("k4", &a, &he).unwrap();
        assert_eq!(cover.kind(), CoverKind::Clique);
        for &w in cover.weights() {
            assert!((w - 1.0 / 3.0).abs() < 1e-12);
        }
        assert!(cover.covers(&a, &he));
    }

    #[test]
    fn chain_falls_back_to_greedy_and_still_covers() {
        let a = attrs(&["a", "b", "c", "d"]);
        let he = edges(&[&["a", "b"], &["b", "c"], &["c", "d"]]);
        let cover = FractionalEdgeCover::for_hypergraph("chain", &a, &he).unwrap();
        assert_eq!(cover.kind(), CoverKind::Greedy);
        assert!(cover.covers(&a, &he));
        assert!(cover.weights().iter().all(|&w| w == 0.0 || w == 1.0));
    }

    #[test]
    fn triangle_with_payload_attrs_is_greedy_but_valid() {
        // Payload columns break the pure-cycle shape.
        let a = attrs(&["a", "b", "c", "p"]);
        let he = edges(&[&["a", "b", "p"], &["b", "c"], &["c", "a"]]);
        let cover = FractionalEdgeCover::for_hypergraph("trip", &a, &he).unwrap();
        assert_eq!(cover.kind(), CoverKind::Greedy);
        assert!(cover.covers(&a, &he));
    }

    #[test]
    fn uncovered_attribute_is_a_named_error() {
        let a = attrs(&["a", "b", "ghost"]);
        let he = edges(&[&["a", "b"]]);
        let err = FractionalEdgeCover::for_hypergraph("bad", &a, &he).unwrap_err();
        match err {
            JoinError::UnsupportedHypergraph { join, attr } => {
                assert_eq!(join, "bad");
                assert_eq!(attr, "ghost");
            }
            other => panic!("expected UnsupportedHypergraph, got {other}"),
        }
    }

    #[test]
    fn agm_bound_matches_hand_computation() {
        // Triangle over N-row relations: N^{3/2}.
        assert_eq!(agm_bound(&[4.0, 4.0, 4.0], &[0.5, 0.5, 0.5]), 8.0);
        // Any empty relation kills the bound.
        assert_eq!(agm_bound(&[4.0, 0.0, 4.0], &[0.5, 0.5, 0.5]), 0.0);
        // Zero-weight relations contribute nothing.
        assert_eq!(agm_bound(&[7.0, 3.0], &[0.0, 1.0]), 3.0);
    }
}
