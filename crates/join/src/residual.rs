//! Cyclic joins: skeleton + residual decomposition (§8.2).
//!
//! "We break all the cycles in the join hyper-graph by removing a subset
//! of relations so that the join becomes a connected and acyclic join.
//! The residual join S_R is the set of removed relations … We treat S_R
//! as a single relation in the new acyclic join. We can even materialize
//! S_R by performing joins in S_R."
//!
//! The decomposition produced here is *semantically equal* to the
//! original cyclic join (natural-join semantics make the regrouping
//! lossless) and supplies the residual's maximum degree `M(S_R)`, which
//! the histogram-based estimator uses to treat the residual as one
//! relation when splitting into the base chain structure (§8.1).

use crate::error::JoinError;
use crate::graph::has_graph_cycle;
use crate::spec::JoinSpec;
use std::sync::Arc;
use suj_storage::{HashIndex, Relation, Tuple, Value};

/// Result of breaking a cyclic join into skeleton + residual.
#[derive(Debug, Clone)]
pub struct CyclicDecomposition {
    /// Indices (in the original spec) of the removed relations.
    pub removed: Vec<usize>,
    /// The materialized residual join (None when the input was already
    /// acyclic).
    pub residual: Option<Arc<Relation>>,
    /// The equivalent join: skeleton relations plus the residual as a
    /// single relation. Produces exactly the original join's result.
    pub spec: JoinSpec,
    /// `M(S_R)`: maximum multiplicity of any combination of values over
    /// the attributes the residual shares with the skeleton (§8.2).
    pub residual_max_degree: usize,
}

/// Breaks the cycles of `spec` by removing a minimal set of relations,
/// materializing their join as a single residual relation, and
/// rebuilding an equivalent spec. Acyclic inputs pass through untouched.
///
/// Removal sets are tried in increasing size; among same-size candidates
/// the one with the fewest total removed rows is tried first (the
/// cheapest residual to materialize — the practical heuristic §8.2
/// attributes to Zhao et al.).
pub fn decompose_cyclic(spec: &JoinSpec) -> Result<CyclicDecomposition, JoinError> {
    if !has_graph_cycle(spec) {
        return Ok(CyclicDecomposition {
            removed: Vec::new(),
            residual: None,
            spec: spec.clone(),
            residual_max_degree: 0,
        });
    }

    let n = spec.n_relations();
    for k in 1..n {
        // All removal sets of size k, cheapest residual first.
        let mut candidates: Vec<Vec<usize>> = subsets_of_size(n, k);
        candidates.sort_by_key(|set| {
            set.iter()
                .map(|&i| spec.relation(i).len())
                .product::<usize>()
        });
        for removed in candidates {
            if let Some(dec) = try_removal(spec, &removed)? {
                return Ok(dec);
            }
        }
    }
    Err(JoinError::CannotBreakCycles(spec.name().to_string()))
}

fn try_removal(
    spec: &JoinSpec,
    removed: &[usize],
) -> Result<Option<CyclicDecomposition>, JoinError> {
    let n = spec.n_relations();
    let kept: Vec<usize> = (0..n).filter(|i| !removed.contains(i)).collect();
    if kept.is_empty() {
        return Ok(None);
    }

    // The skeleton (kept relations with their mutual edges) must be a
    // connected tree.
    if !skeleton_is_tree(spec, &kept) {
        return Ok(None);
    }

    // Materialize the residual join.
    let removed_rels: Vec<Arc<Relation>> =
        removed.iter().map(|&i| spec.relation(i).clone()).collect();
    let residual_name = format!("{}__residual", spec.name());
    let residual = Arc::new(materialize_natural(&residual_name, &removed_rels)?);

    // Rebuild the spec: skeleton relations + residual, natural edges.
    let mut rels: Vec<Arc<Relation>> = kept.iter().map(|&i| spec.relation(i).clone()).collect();
    rels.push(residual.clone());
    let new_spec = match JoinSpec::natural(spec.name(), rels) {
        Ok(s) => s,
        Err(JoinError::Disconnected) => return Ok(None),
        Err(e) => return Err(e),
    };

    // M(S_R) over the attributes shared with the skeleton.
    let shared: Vec<Arc<str>> = residual
        .schema()
        .attrs()
        .iter()
        .filter(|a| kept.iter().any(|&i| spec.relation(i).schema().contains(a)))
        .cloned()
        .collect();
    let residual_max_degree = if shared.is_empty() || residual.is_empty() {
        0
    } else {
        HashIndex::build(&residual, &shared).max_degree()
    };

    Ok(Some(CyclicDecomposition {
        removed: removed.to_vec(),
        residual: Some(residual),
        spec: new_spec,
        residual_max_degree,
    }))
}

/// Whether the induced subgraph on `kept` is a connected tree.
fn skeleton_is_tree(spec: &JoinSpec, kept: &[usize]) -> bool {
    if kept.len() <= 1 {
        return true;
    }
    let in_kept = |x: usize| kept.contains(&x);
    // Distinct undirected edges within the kept set.
    let mut edges: std::collections::BTreeSet<(usize, usize)> = Default::default();
    for e in spec.edges() {
        if e.left != e.right && in_kept(e.left) && in_kept(e.right) {
            edges.insert((e.left.min(e.right), e.left.max(e.right)));
        }
    }
    if edges.len() != kept.len() - 1 {
        return false; // a tree on k nodes has exactly k−1 edges
    }
    // Connectivity.
    let mut seen = std::collections::BTreeSet::new();
    let mut stack = vec![kept[0]];
    seen.insert(kept[0]);
    while let Some(v) = stack.pop() {
        for &(a, b) in &edges {
            let other = if a == v {
                Some(b)
            } else if b == v {
                Some(a)
            } else {
                None
            };
            if let Some(o) = other {
                if seen.insert(o) {
                    stack.push(o);
                }
            }
        }
    }
    seen.len() == kept.len()
}

/// Natural join of a list of relations (cross product where no attribute
/// is shared) — used only to materialize residuals, which may be
/// internally disconnected.
fn materialize_natural(name: &str, relations: &[Arc<Relation>]) -> Result<Relation, JoinError> {
    assert!(!relations.is_empty(), "residual cannot be empty");
    let mut schema = relations[0].schema().clone();
    let mut rows: Vec<Tuple> = relations[0].tuples();

    for rel in &relations[1..] {
        let shared = schema.shared_with(rel.schema());
        let new_attrs: Vec<Arc<str>> = rel
            .schema()
            .attrs()
            .iter()
            .filter(|a| !schema.contains(a))
            .cloned()
            .collect();
        let next_schema = schema.union(rel.schema())?;
        let new_positions_in_rel: Vec<usize> = new_attrs
            .iter()
            .map(|a| rel.schema().position(a).expect("own attr"))
            .collect();

        let mut next_rows = Vec::new();
        if shared.is_empty() {
            for acc in &rows {
                for i in 0..rel.len() {
                    let mut vals: Vec<Value> = acc.values().to_vec();
                    vals.extend(new_positions_in_rel.iter().map(|&p| rel.column(p).value(i)));
                    next_rows.push(Tuple::new(vals));
                }
            }
        } else {
            let index = HashIndex::build(rel, &shared);
            let shared_positions_in_acc: Vec<usize> = shared
                .iter()
                .map(|a| schema.position(a).expect("shared attr"))
                .collect();
            for acc in &rows {
                for &rid in index.rows_matching_projected(acc.values(), &shared_positions_in_acc) {
                    let mut vals: Vec<Value> = acc.values().to_vec();
                    vals.extend(
                        new_positions_in_rel
                            .iter()
                            .map(|&p| rel.column(p).value(rid as usize)),
                    );
                    next_rows.push(Tuple::new(vals));
                }
            }
        }
        schema = next_schema;
        rows = next_rows;
    }

    Relation::new(name, schema, rows).map_err(JoinError::from)
}

fn subsets_of_size(n: usize, k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut current = Vec::with_capacity(k);
    fn recur(
        start: usize,
        n: usize,
        k: usize,
        current: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if current.len() == k {
            out.push(current.clone());
            return;
        }
        for i in start..n {
            current.push(i);
            recur(i + 1, n, k, current, out);
            current.pop();
        }
    }
    recur(0, n, k, &mut current, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use crate::graph::classify;
    use crate::graph::JoinShape;
    use suj_storage::Schema;

    fn rel(name: &str, attrs: &[&str], rows: Vec<Vec<i64>>) -> Arc<Relation> {
        let schema = Schema::new(attrs.iter().copied()).unwrap();
        let tuples = rows
            .into_iter()
            .map(|vals| vals.into_iter().map(Value::int).collect())
            .collect();
        Arc::new(Relation::new(name, schema, tuples).unwrap())
    }

    fn triangle() -> JoinSpec {
        JoinSpec::natural(
            "tri",
            vec![
                rel(
                    "x",
                    &["a", "b"],
                    vec![vec![1, 2], vec![1, 9], vec![5, 2], vec![5, 6]],
                ),
                rel(
                    "y",
                    &["b", "c"],
                    vec![vec![2, 3], vec![2, 4], vec![9, 4], vec![6, 3]],
                ),
                rel(
                    "z",
                    &["c", "a"],
                    vec![vec![3, 1], vec![4, 5], vec![4, 1], vec![3, 5]],
                ),
            ],
        )
        .unwrap()
    }

    #[test]
    fn acyclic_passes_through() {
        let spec = JoinSpec::chain(
            "c",
            vec![
                rel("r", &["a", "b"], vec![vec![1, 2]]),
                rel("s", &["b", "c"], vec![vec![2, 3]]),
            ],
        )
        .unwrap();
        let dec = decompose_cyclic(&spec).unwrap();
        assert!(dec.removed.is_empty());
        assert!(dec.residual.is_none());
        assert_eq!(dec.spec.n_relations(), 2);
    }

    #[test]
    fn triangle_decomposition_preserves_semantics() {
        let spec = triangle();
        let dec = decompose_cyclic(&spec).unwrap();
        assert_eq!(dec.removed.len(), 1);
        assert!(dec.residual.is_some());
        assert_eq!(dec.spec.n_relations(), 3);

        let original = execute(&spec);
        let decomposed = execute(&dec.spec);
        // Same result set (attribute order may differ).
        let mapping = dec.spec.projection_from(spec.output_schema()).unwrap();
        let reordered = decomposed.reordered(spec.output_schema(), &mapping);
        assert_eq!(original.distinct_set(), reordered.distinct_set());
    }

    #[test]
    fn fig3b_removes_one_relation_for_tree_skeleton() {
        // Fig. 3b/3c: AB, BCD, DE, CF, EF — removing EF leaves a tree.
        let spec = JoinSpec::natural(
            "fig3b",
            vec![
                rel("ab", &["a", "b"], vec![vec![1, 1]]),
                rel("bcd", &["b", "c", "d"], vec![vec![1, 1, 1]]),
                rel("de", &["d", "e"], vec![vec![1, 1]]),
                rel("cf", &["c", "f"], vec![vec![1, 1]]),
                rel("ef", &["e", "f"], vec![vec![1, 1]]),
            ],
        )
        .unwrap();
        assert_eq!(classify(&spec), JoinShape::Cyclic);
        let dec = decompose_cyclic(&spec).unwrap();
        assert_eq!(dec.removed.len(), 1);
        // The residual must reconnect on both its attributes.
        let residual = dec.residual.as_ref().unwrap();
        assert_eq!(residual.schema().arity(), 2);
        assert_eq!(execute(&dec.spec).len(), execute(&spec).len());
    }

    #[test]
    fn residual_max_degree_reflects_shared_attrs() {
        let spec = triangle();
        let dec = decompose_cyclic(&spec).unwrap();
        // The removed relation's rows are distinct pairs on (shared
        // attrs) = its full schema → max degree 1.
        assert_eq!(dec.residual_max_degree, 1);
    }

    #[test]
    fn four_cycle_decomposition() {
        // Square: w(a,b), x(b,c), y(c,d), z(d,a).
        let spec = JoinSpec::natural(
            "square",
            vec![
                rel("w", &["a", "b"], vec![vec![1, 2], vec![5, 2]]),
                rel("x", &["b", "c"], vec![vec![2, 3], vec![2, 7]]),
                rel("y", &["c", "d"], vec![vec![3, 4], vec![7, 4]]),
                rel("z", &["d", "a"], vec![vec![4, 1], vec![4, 5]]),
            ],
        )
        .unwrap();
        let dec = decompose_cyclic(&spec).unwrap();
        let original = execute(&spec);
        let decomposed = execute(&dec.spec);
        let mapping = dec.spec.projection_from(spec.output_schema()).unwrap();
        let reordered = decomposed.reordered(spec.output_schema(), &mapping);
        assert_eq!(original.distinct_set(), reordered.distinct_set());
    }

    #[test]
    fn cheapest_residual_tried_first() {
        // Two valid single removals; the smaller relation must be chosen.
        let spec = JoinSpec::natural(
            "tri2",
            vec![
                rel(
                    "big",
                    &["a", "b"],
                    vec![vec![1, 2], vec![3, 4], vec![5, 6], vec![7, 8]],
                ),
                rel("mid", &["b", "c"], vec![vec![2, 3], vec![4, 5]]),
                rel("small", &["c", "a"], vec![vec![3, 1]]),
            ],
        )
        .unwrap();
        let dec = decompose_cyclic(&spec).unwrap();
        assert_eq!(dec.removed, vec![2], "smallest relation should be removed");
    }

    #[test]
    fn subsets_enumeration() {
        assert_eq!(subsets_of_size(3, 1), vec![vec![0], vec![1], vec![2]]);
        assert_eq!(subsets_of_size(3, 2).len(), 3);
        assert_eq!(subsets_of_size(5, 3).len(), 10);
    }
}
