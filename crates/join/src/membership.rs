//! The join membership oracle.
//!
//! §6.2's overlap estimator needs to check, for a sampled result tuple
//! `t`, "every `J_i ∈ Δ` … to see where `t` is contained in `J_i`. Since
//! we already have the index for each `J_i` (stored in hash tables), this
//! operation could be cheap". For natural joins over standardized
//! attribute names the check is exact: `t ∈ J` iff for every base
//! relation `R` of `J`, the projection of `t` onto `R`'s attributes is a
//! row of `R`. (Shared attributes carry a single value in `t`, so the
//! projections automatically agree on join attributes.)

use crate::error::JoinError;
use crate::spec::JoinSpec;
use std::sync::Arc;
use suj_storage::{RowMembership, Schema, Tuple};

/// Decides membership of canonical-schema tuples in one join.
#[derive(Debug, Clone)]
pub struct MembershipOracle {
    /// Per relation: whole-row membership index.
    memberships: Vec<RowMembership>,
    /// Per relation: positions in the *canonical* schema of the
    /// relation's attributes, in relation-schema order.
    projections: Vec<Vec<usize>>,
}

impl MembershipOracle {
    /// Builds an oracle for `spec`, interpreting input tuples in
    /// `canonical` attribute order (which must cover the spec's output
    /// schema).
    pub fn new(spec: &JoinSpec, canonical: &Schema) -> Result<Self, JoinError> {
        let mut memberships = Vec::with_capacity(spec.n_relations());
        let mut projections = Vec::with_capacity(spec.n_relations());
        for rel in spec.relations() {
            memberships.push(RowMembership::build(rel));
            let proj: Vec<usize> = rel
                .schema()
                .attrs()
                .iter()
                .map(|a| {
                    canonical.position(a).ok_or_else(|| {
                        JoinError::Invalid(format!(
                            "canonical schema {canonical} lacks attribute `{a}` of `{}`",
                            rel.name()
                        ))
                    })
                })
                .collect::<Result<_, _>>()?;
            projections.push(proj);
        }
        Ok(Self {
            memberships,
            projections,
        })
    }

    /// Builds an oracle whose canonical order is the spec's own output
    /// schema.
    pub fn for_spec(spec: &JoinSpec) -> Self {
        Self::new(spec, spec.output_schema()).expect("own output schema always covers the spec")
    }

    /// Whether `tuple` (in canonical order) is a result tuple of the
    /// join. Each relation's check probes its membership index through
    /// the projection positions directly — the §6.2 "queries with key"
    /// are hash lookups with zero allocation per check.
    #[inline]
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.memberships
            .iter()
            .zip(&self.projections)
            .all(|(membership, proj)| membership.contains_projection(tuple, proj))
    }

    /// Number of base relations consulted per check (the paper's `M`).
    pub fn n_relations(&self) -> usize {
        self.memberships.len()
    }
}

/// Convenience: the index of the first join (in `oracles` order) that
/// contains `tuple`, if any — the canonical assignment `f(u)` used by
/// the Bernoulli union sampler and the cover construction.
pub fn first_containing(oracles: &[Arc<MembershipOracle>], tuple: &Tuple) -> Option<usize> {
    oracles.iter().position(|o| o.contains(tuple))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use crate::spec::JoinSpec;
    use suj_storage::{tuple, Relation, Value};

    fn rel(name: &str, attrs: &[&str], rows: Vec<Vec<i64>>) -> Arc<Relation> {
        let schema = Schema::new(attrs.iter().copied()).unwrap();
        let tuples = rows
            .into_iter()
            .map(|vals| vals.into_iter().map(Value::int).collect())
            .collect();
        Arc::new(Relation::new(name, schema, tuples).unwrap())
    }

    fn chain_spec() -> JoinSpec {
        JoinSpec::chain(
            "j",
            vec![
                rel(
                    "r",
                    &["a", "b"],
                    vec![vec![1, 10], vec![2, 20], vec![3, 10]],
                ),
                rel("s", &["b", "c"], vec![vec![10, 100], vec![20, 200]]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn oracle_agrees_with_materialized_join() {
        let spec = chain_spec();
        let oracle = MembershipOracle::for_spec(&spec);
        let result = execute(&spec);
        let set = result.distinct_set();

        for t in result.tuples() {
            assert!(oracle.contains(t), "result tuple must be member: {t}");
        }
        // Some non-members.
        for t in [
            tuple![1i64, 10i64, 200i64], // c mismatched
            tuple![9i64, 10i64, 100i64], // a not in r
            tuple![2i64, 20i64, 100i64], // (20,100) not in s
        ] {
            assert!(!set.contains(&t));
            assert!(!oracle.contains(&t));
        }
    }

    #[test]
    fn oracle_exhaustive_over_value_grid() {
        // Brute-force cross-check: every tuple in a small grid is a
        // member iff it is in the materialized result.
        let spec = chain_spec();
        let oracle = MembershipOracle::for_spec(&spec);
        let set = execute(&spec).distinct_set();
        for a in 0..5i64 {
            for b in [10i64, 20, 30] {
                for c in [100i64, 200, 300] {
                    let t = tuple![a, b, c];
                    assert_eq!(oracle.contains(&t), set.contains(&t), "tuple {t}");
                }
            }
        }
    }

    #[test]
    fn canonical_reordering_respected() {
        let spec = chain_spec();
        let canonical = Schema::new(["c", "a", "b"]).unwrap();
        let oracle = MembershipOracle::new(&spec, &canonical).unwrap();
        // (a=1, b=10, c=100) in canonical order (c, a, b):
        assert!(oracle.contains(&tuple![100i64, 1i64, 10i64]));
        assert!(!oracle.contains(&tuple![1i64, 100i64, 10i64]));
    }

    #[test]
    fn missing_canonical_attr_fails() {
        let spec = chain_spec();
        let bad = Schema::new(["a", "b"]).unwrap();
        assert!(MembershipOracle::new(&spec, &bad).is_err());
    }

    #[test]
    fn cyclic_membership() {
        let spec = JoinSpec::natural(
            "tri",
            vec![
                rel("x", &["a", "b"], vec![vec![1, 2], vec![1, 9]]),
                rel("y", &["b", "c"], vec![vec![2, 3], vec![9, 4]]),
                rel("z", &["c", "a"], vec![vec![3, 1], vec![4, 5]]),
            ],
        )
        .unwrap();
        let oracle = MembershipOracle::for_spec(&spec);
        assert!(oracle.contains(&tuple![1i64, 2i64, 3i64]));
        // (1,9,4) satisfies x and y but z lacks (4,1).
        assert!(!oracle.contains(&tuple![1i64, 9i64, 4i64]));
    }

    #[test]
    fn first_containing_picks_lowest_index() {
        let spec1 = chain_spec();
        let spec2 = JoinSpec::chain(
            "j2",
            vec![
                rel("r2", &["a", "b"], vec![vec![1, 10]]),
                rel("s2", &["b", "c"], vec![vec![10, 100]]),
            ],
        )
        .unwrap();
        let oracles = vec![
            Arc::new(MembershipOracle::for_spec(&spec1)),
            Arc::new(MembershipOracle::for_spec(&spec2)),
        ];
        // In both joins → index 0.
        assert_eq!(
            first_containing(&oracles, &tuple![1i64, 10i64, 100i64]),
            Some(0)
        );
        // Only in join 1 (3,10,100).
        assert_eq!(
            first_containing(&oracles, &tuple![3i64, 10i64, 100i64]),
            Some(0)
        );
        // In neither.
        assert_eq!(first_containing(&oracles, &tuple![8i64, 8i64, 8i64]), None);
    }
}
