//! Random sampling over a single join (the Zhao et al. framework, §3.2).
//!
//! Each tuple of each relation carries a *weight*: an upper bound on the
//! number of join results it can yield. Sampling walks the join tree
//! root→leaves, choosing tuples proportionally to weights, and rejects
//! to flatten any over-estimation — uniformity over the join result is
//! guaranteed for any valid weight function. Two instantiations:
//!
//! * **Exact Weight (EW)** — bottom-up dynamic program computing every
//!   tuple's exact result count. Zero rejections on acyclic joins; the
//!   root's total weight is the exact join size (used as ground truth
//!   throughout §9).
//! * **Extended Olken (EO)** — weights from maximum degrees
//!   (`M_{A_i}(R_{i+1})` products). Cheap to set up, rejects at rate
//!   `1 − |J|/bound`. Following §3.2 we additionally zero the weights of
//!   dangling tuples ("an extra linear search in the hash tables"):
//!   root tuples with no match in some child are excluded up front.
//!
//! Cyclic joins are sampled over a BFS *spanning tree* of the join graph
//! with the dropped cycle-closing equalities enforced by consistency
//! rejection on the chosen rows — the cycle-breaking mechanism of Zhao
//! et al. that §8.2 adopts. Uniformity is preserved because each result
//! tuple of the cyclic join corresponds to exactly one spanning-join row
//! combination.
//!
//! # The allocation-free draw hot path
//!
//! A sampling attempt never touches tuple values: every join edge's
//! probe keys are dictionary encoded at build time (the prepared
//! structure's edge-key table maps each parent row id straight to the
//! child index's key id), so one walk step is two integer array reads
//! (key id → CSR postings) plus the RNG draw. Attempts produce row ids
//! only ([`JoinSampler::sample_rows`] into a caller-held [`RowDraw`]);
//! the output [`Tuple`] is materialized *after* acceptance
//! ([`JoinSampler::materialize`]), so rejected attempts perform zero
//! heap allocations — pinned by the counting-allocator test in
//! `tests/alloc_free.rs`.
//!
//! # The alias cascade
//!
//! The EW sampler compiles its count tables into per-key alias tables
//! at build time (one [`AliasArena`] segment per dictionary key id,
//! congruent with the CSR postings): a draw is then a root alias pick
//! plus exactly one O(1) alias lookup per join edge — O(tree depth)
//! total, zero rejection, no per-candidate scan. The count DP itself
//! runs in u64 with checked arithmetic, so the root total is the
//! *exact* integer join size on acyclic specs (no f64 drift), reported
//! through [`JoinSampler::size_info`] and consumed by the planner's
//! Bernoulli rule.

use crate::error::JoinError;
use crate::exec::execute;
use crate::graph::has_graph_cycle;
use crate::spec::JoinSpec;
use crate::tree::JoinTree;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use suj_stats::{AliasArena, AliasArenaBuilder, SujRng};
use suj_storage::{HashIndex, Tuple, Value, NO_KEY};

/// Weight instantiation for the join-sampling subroutine (§3.2 lists
/// all three: "extended Olken's, exact, and Wander Join").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightKind {
    /// Exact per-tuple result counts (ground-truth weights, no rejection
    /// on acyclic joins).
    Exact,
    /// Extended Olken max-degree bounds (cheap setup, accept/reject).
    ExtendedOlken,
    /// Wander-join walks uniformized against the Olken bound (zero
    /// setup beyond indexes; rejection rate `1 − |J|/bound`).
    WanderJoin,
    /// AGM-bound box splitting over sorted-index range oracles (the
    /// structurally cyclic path — see [`crate::cyclic`]). On acyclic
    /// specs this degrades to exact weights, which dominate there.
    AgmBox,
}

/// Join-size information implied by a sampler's weights.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizeInfo {
    /// An upper bound on the join size (always valid; equal to the
    /// true size when `exact` is set).
    pub bound: f64,
    /// The exact integer join size, when the sampler knows it: EW on
    /// an acyclic spec whose count DP did not saturate.
    pub exact: Option<u64>,
}

static ALIAS_BUILDS: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of Exact-Weight alias-arena builds. Snapshot
/// restore must *deserialize* arenas ([`ExactWeightSampler::from_artifacts`])
/// rather than rebuild them; the restore tests pin that by watching
/// this counter.
pub fn alias_builds() -> u64 {
    ALIAS_BUILDS.load(Ordering::Relaxed)
}

/// Outcome of one sampling attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SampleOutcome {
    /// A uniform result tuple (in the spec's output schema order).
    Accepted(Tuple),
    /// The attempt was rejected (dead end, failed acceptance test, or a
    /// cycle-consistency violation).
    Rejected,
}

/// Reusable scratch for allocation-free row-id draws: the chosen row id
/// per relation of the join. Callers on a hot path hold one `RowDraw`
/// across many [`JoinSampler::sample_rows`] attempts; after the first
/// attempt resizes it, no further allocation occurs.
#[derive(Debug, Clone, Default)]
pub struct RowDraw {
    pub(crate) rows: Vec<u32>,
}

impl RowDraw {
    /// Creates an empty scratch (sized lazily by the first draw).
    pub fn new() -> Self {
        Self::default()
    }

    /// The chosen row ids, indexed by relation, after a successful
    /// draw.
    pub fn rows(&self) -> &[u32] {
        &self.rows
    }

    #[inline]
    pub(crate) fn reset(&mut self, n: usize) {
        self.rows.clear();
        self.rows.resize(n, 0);
    }
}

thread_local! {
    /// Per-thread scratch backing the provided tuple-level
    /// [`JoinSampler`] methods, so callers that never hold a [`RowDraw`]
    /// still get allocation-free rejected attempts.
    static DRAW_SCRATCH: RefCell<RowDraw> = RefCell::new(RowDraw::new());
}

/// Runs `f` with this thread's shared draw scratch.
pub(crate) fn with_draw_scratch<R>(f: impl FnOnce(&mut RowDraw) -> R) -> R {
    DRAW_SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

/// A uniform sampler over one join's result.
///
/// The required surface is the row-id hot path:
/// [`sample_rows`](JoinSampler::sample_rows) performs one attempt
/// without allocating, and [`materialize`](JoinSampler::materialize)
/// builds the output tuple for an accepted draw. The tuple-level
/// methods ([`sample`](JoinSampler::sample),
/// [`sample_until_accepted`](JoinSampler::sample_until_accepted),
/// [`sample_batch`](JoinSampler::sample_batch)) are provided on top and
/// only materialize on acceptance.
pub trait JoinSampler: Send + Sync {
    /// The join being sampled.
    fn spec(&self) -> &JoinSpec;

    /// One allocation-free sampling attempt over row ids. On `true`,
    /// `draw.rows()` holds a uniform result row combination; on
    /// `false` the attempt was rejected (dead end, failed acceptance
    /// test, or a cycle-consistency violation).
    fn sample_rows(&self, rng: &mut SujRng, draw: &mut RowDraw) -> bool;

    /// Materializes an accepted draw into a tuple in the spec's output
    /// schema order.
    fn materialize(&self, draw: &RowDraw) -> Tuple;

    /// Size information implied by the weights: the exact join size for
    /// EW on acyclic joins, an upper bound otherwise.
    fn join_size_hint(&self) -> f64;

    /// Structured size report: the bound plus the exact integer size
    /// when the sampler knows it. The default reports no exact size.
    fn size_info(&self) -> SizeInfo {
        SizeInfo {
            bound: self.join_size_hint(),
            exact: None,
        }
    }

    /// Heap bytes owned by the sampler's prepared structures (hash
    /// indexes, encoded edge keys, count tables, alias arenas). Base
    /// relation storage is accounted separately by the workload; the
    /// default reports zero for samplers that keep no auxiliary state.
    fn memory_bytes(&self) -> usize {
        0
    }

    /// Downcast hook: the EW sampler returns itself so the snapshot
    /// writer can extract its count-table/alias-arena artifacts.
    fn as_exact(&self) -> Option<&ExactWeightSampler> {
        None
    }

    /// One sampling attempt, materializing the tuple only on
    /// acceptance.
    fn sample(&self, rng: &mut SujRng) -> SampleOutcome {
        with_draw_scratch(|draw| {
            if self.sample_rows(rng, draw) {
                SampleOutcome::Accepted(self.materialize(draw))
            } else {
                SampleOutcome::Rejected
            }
        })
    }

    /// Draws until acceptance (or `max_tries`); returns the tuple and the
    /// number of attempts consumed. Rejected attempts allocate nothing.
    fn sample_until_accepted(&self, rng: &mut SujRng, max_tries: u64) -> (Option<Tuple>, u64) {
        with_draw_scratch(|draw| {
            for attempt in 1..=max_tries {
                if self.sample_rows(rng, draw) {
                    return (Some(self.materialize(draw)), attempt);
                }
            }
            (None, max_tries)
        })
    }

    /// Batched entry point: draws until `n` tuples are accepted (or
    /// `max_tries` total attempts are spent), appending them to `out`.
    /// Returns the attempts consumed. One thread-local scratch access
    /// and one pre-sized output reservation are amortized across the
    /// whole batch of draws on one RNG stream — the cheapest way to
    /// pull many samples from a single join (measured by the
    /// `join-batch` rows of `benches/hot_path.rs`).
    fn sample_batch(
        &self,
        n: usize,
        max_tries: u64,
        rng: &mut SujRng,
        out: &mut Vec<Tuple>,
    ) -> u64 {
        out.reserve(n);
        with_draw_scratch(|draw| {
            let mut attempts = 0u64;
            let mut accepted = 0usize;
            while accepted < n && attempts < max_tries {
                attempts += 1;
                if self.sample_rows(rng, draw) {
                    out.push(self.materialize(draw));
                    accepted += 1;
                }
            }
            attempts
        })
    }
}

/// Shared prepared structure: spanning-tree order, child hash indexes,
/// and the build-time dictionary encoding of every edge's probe keys.
#[derive(Debug)]
pub(crate) struct Prepared {
    pub(crate) spec: Arc<JoinSpec>,
    pub(crate) tree: JoinTree,
    /// Per relation: index on its probe attributes (None for the root).
    pub(crate) indexes: Vec<Option<HashIndex>>,
    /// Per non-root relation `c`: for every row id of `c`'s parent, the
    /// dictionary key id of that row's probe key in `c`'s index
    /// ([`NO_KEY`] when the child holds no matching rows). This is the
    /// encoded-join-key table that turns a walk step into two integer
    /// array reads.
    pub(crate) edge_keys: Vec<Vec<u32>>,
    /// Whether the join graph was already a tree (no dropped equalities
    /// to re-check).
    pub(crate) exact_tree: bool,
    /// Output fill plan: output position `p` is supplied by local
    /// position `out_src[p].1` of relation `out_src[p].0` (the first
    /// tree-order claimant).
    out_src: Vec<(u32, u32)>,
    /// Equality constraints dropped by the spanning tree (cyclic specs
    /// only): `(rel_a, k_a, rel_b, k_b)` pairs whose values must agree
    /// in an accepted row combination.
    consistency: Vec<(u32, u32, u32, u32)>,
}

impl Prepared {
    pub(crate) fn new(spec: Arc<JoinSpec>) -> Result<Self, JoinError> {
        let exact_tree = !has_graph_cycle(&spec);
        let tree = JoinTree::spanning(&spec, 0)?;
        let n = spec.n_relations();
        let mut indexes: Vec<Option<HashIndex>> = (0..n).map(|_| None).collect();
        let mut edge_keys: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &v in tree.order() {
            if let Some(p) = tree.parent(v) {
                let attrs = tree.probe_attrs(v).to_vec();
                let index = HashIndex::build(spec.relation(v), &attrs);
                let positions: Vec<usize> = attrs
                    .iter()
                    .map(|a| {
                        spec.relation(p)
                            .schema()
                            .position(a)
                            .expect("probe attr shared with parent")
                    })
                    .collect();
                // Dictionary-encode the edge: one hash probe per parent
                // row now buys hash-free walk steps forever after. The
                // probe reads the parent's columns in place — no row is
                // materialized.
                let parent = spec.relation(p);
                edge_keys[v] = (0..parent.len())
                    .map(|ri| index.key_id_at(parent, &positions, ri).unwrap_or(NO_KEY))
                    .collect();
                indexes[v] = Some(index);
            }
        }

        // Output fill plan + dropped-equality checks.
        let arity = spec.output_schema().arity();
        let mut out_src = vec![(0u32, 0u32); arity];
        let mut claimed = vec![false; arity];
        let mut consistency = Vec::new();
        for &v in tree.order() {
            for (k, &p) in spec.out_positions(v).iter().enumerate() {
                if claimed[p] {
                    if !exact_tree {
                        let (r0, k0) = out_src[p];
                        consistency.push((r0, k0, v as u32, k as u32));
                    }
                } else {
                    claimed[p] = true;
                    out_src[p] = (v as u32, k as u32);
                }
            }
        }

        Ok(Self {
            spec,
            tree,
            indexes,
            edge_keys,
            exact_tree,
            out_src,
            consistency,
        })
    }

    /// Whether the chosen rows satisfy the equality constraints the
    /// spanning tree dropped (always true for acyclic specs). Compares
    /// column cells in place — no allocation.
    #[inline]
    pub(crate) fn consistent(&self, rows: &[u32]) -> bool {
        self.consistency.iter().all(|&(ra, ka, rb, kb)| {
            let a = self
                .spec
                .relation(ra as usize)
                .column(ka as usize)
                .cell(rows[ra as usize] as usize);
            let b = self
                .spec
                .relation(rb as usize)
                .column(kb as usize)
                .cell(rows[rb as usize] as usize);
            a == b
        })
    }

    /// Heap bytes of the prepared structures: child hash indexes plus
    /// the encoded edge-key tables and output/consistency plans.
    pub(crate) fn memory_bytes(&self) -> usize {
        let indexes: usize = self
            .indexes
            .iter()
            .flatten()
            .map(HashIndex::memory_bytes)
            .sum();
        let edges: usize = self.edge_keys.iter().map(|e| e.len() * 4).sum();
        indexes
            + edges
            + self.out_src.len() * std::mem::size_of::<(u32, u32)>()
            + self.consistency.len() * std::mem::size_of::<(u32, u32, u32, u32)>()
    }

    /// Materializes a row combination into an output tuple, filling
    /// each output position straight from the owning relation's column
    /// (string cells are an `Arc` bump out of the column dictionary) —
    /// the one acceptance-path allocation.
    pub(crate) fn materialize(&self, rows: &[u32]) -> Tuple {
        let mut vals: Vec<Value> = Vec::with_capacity(self.out_src.len());
        vals.extend(self.out_src.iter().map(|&(r, k)| {
            self.spec
                .relation(r as usize)
                .column(k as usize)
                .value(rows[r as usize] as usize)
        }));
        Tuple::new(vals)
    }
}

/// The freeze-time artifacts of an [`ExactWeightSampler`]: the u64
/// count tables and the compiled alias arenas. Extracted via
/// [`ExactWeightSampler::artifacts`] for snapshot persistence and
/// re-installed by [`ExactWeightSampler::from_artifacts`] *without* an
/// alias rebuild (pinned by [`alias_builds`]).
#[derive(Debug, Clone, PartialEq)]
pub struct EwArtifacts {
    /// Per relation: exact result count of each row.
    pub counts: Vec<Vec<u64>>,
    /// Per non-root relation: total count of each dictionary key's
    /// postings (empty for the root).
    pub key_counts: Vec<Vec<u64>>,
    /// Per non-root relation: the per-key alias arena, segment `k`
    /// congruent with postings list `k` (`None` for the root).
    pub arenas: Vec<Option<AliasArena>>,
    /// Single-segment arena over the root relation's counts.
    pub root_arena: AliasArena,
    /// Exact spanning-join size (saturating at `u64::MAX`).
    pub total: u64,
    /// Whether `total` is the exact join size (acyclic spec, no
    /// counter saturation).
    pub exact: bool,
}

/// Exact-weight sampler: zero rejections on acyclic joins, exact size.
///
/// Per-row result counts are computed bottom-up as u64 integers with
/// checked arithmetic (saturating to `u64::MAX` and clearing the exact
/// flag on overflow), then compiled into flat [`AliasArena`]s — one
/// alias table per dictionary key id per join edge plus one over the
/// root — so a draw is an O(tree depth) alias cascade with zero
/// rejection and zero allocation. Counts above 2⁵³ lose precision only
/// in the draw *probabilities* (the arena weights pass through f64);
/// the reported sizes stay integer-exact until u64 saturation.
#[derive(Debug)]
pub struct ExactWeightSampler {
    prepared: Prepared,
    /// Per relation: exact result count of each row (number of
    /// spanning-join results through that row's subtree).
    counts: Vec<Vec<u64>>,
    /// Per non-root relation: total count of each dictionary key's
    /// postings — the per-probe count sum, precomputed per key id.
    key_counts: Vec<Vec<u64>>,
    /// Per non-root relation: per-key alias tables over the postings.
    arenas: Vec<Option<AliasArena>>,
    /// Single-segment arena over the root relation's counts.
    root_arena: AliasArena,
    /// Exact spanning-join size (saturating at `u64::MAX`).
    total: u64,
    /// Whether `total` is the exact join size: acyclic spec and no
    /// counter saturation.
    exact: bool,
}

impl ExactWeightSampler {
    /// Builds the sampler for any join shape.
    pub fn new(spec: Arc<JoinSpec>) -> Result<Self, JoinError> {
        let prepared = Prepared::new(spec)?;
        let (counts, key_counts, total, saturated) = Self::count_tables(&prepared);
        let (root_arena, arenas) = Self::build_arenas(&prepared, &counts);
        let exact = prepared.exact_tree && !saturated;
        Ok(Self {
            prepared,
            counts,
            key_counts,
            arenas,
            root_arena,
            total,
            exact,
        })
    }

    /// Bottom-up count DP in u64: count(row) = Π_child Σ_matching
    /// count(child row). Children are finalized first, so each child's
    /// per-key count sums are ready when the parent consults them —
    /// the per-row probe is a single encoded-key array read. All
    /// arithmetic is checked; overflow saturates to `u64::MAX` and
    /// flags the result inexact.
    fn count_tables(prepared: &Prepared) -> (Vec<Vec<u64>>, Vec<Vec<u64>>, u64, bool) {
        let spec = &prepared.spec;
        let n = spec.n_relations();
        let mut counts: Vec<Vec<u64>> =
            (0..n).map(|i| vec![1u64; spec.relation(i).len()]).collect();
        let mut key_counts: Vec<Vec<u64>> = vec![Vec::new(); n];
        let mut saturated = false;

        for v in prepared.tree.bottom_up() {
            let children = prepared.tree.children(v);
            if !children.is_empty() {
                for (ri, slot) in counts[v].iter_mut().enumerate() {
                    let mut w = 1u64;
                    for &c in children {
                        let s = match prepared.edge_keys[c][ri] {
                            NO_KEY => 0,
                            kid => key_counts[c][kid as usize],
                        };
                        w = w.checked_mul(s).unwrap_or_else(|| {
                            saturated = true;
                            u64::MAX
                        });
                        if w == 0 {
                            break;
                        }
                    }
                    *slot = w;
                }
            }
            if let Some(index) = prepared.indexes[v].as_ref() {
                key_counts[v] = (0..index.n_keys() as u32)
                    .map(|kid| {
                        index.postings(kid).iter().fold(0u64, |acc, &rid| {
                            acc.checked_add(counts[v][rid as usize]).unwrap_or_else(|| {
                                saturated = true;
                                u64::MAX
                            })
                        })
                    })
                    .collect();
            }
        }

        let root = prepared.tree.root();
        let total = counts[root].iter().fold(0u64, |acc, &c| {
            acc.checked_add(c).unwrap_or_else(|| {
                saturated = true;
                u64::MAX
            })
        });
        (counts, key_counts, total, saturated)
    }

    /// Compiles the count tables into alias arenas: one segment per
    /// key id per edge (congruent with the CSR postings) plus a
    /// single-segment arena over the root rows. Bumps the
    /// [`alias_builds`] counter — the snapshot-restore path must go
    /// through [`ExactWeightSampler::from_artifacts`] instead.
    fn build_arenas(
        prepared: &Prepared,
        counts: &[Vec<u64>],
    ) -> (AliasArena, Vec<Option<AliasArena>>) {
        let root = prepared.tree.root();
        let mut rb = AliasArenaBuilder::with_capacity(1, counts[root].len());
        rb.push_segment_with(counts[root].len(), |i| counts[root][i] as f64);
        let root_arena = rb.finish();

        let arenas = prepared
            .indexes
            .iter()
            .enumerate()
            .map(|(v, index)| {
                index.as_ref().map(|index| {
                    let n_keys = index.n_keys();
                    let mut b = AliasArenaBuilder::with_capacity(n_keys, counts[v].len());
                    for kid in 0..n_keys as u32 {
                        let posts = index.postings(kid);
                        b.push_segment_with(posts.len(), |i| counts[v][posts[i] as usize] as f64);
                    }
                    b.finish()
                })
            })
            .collect();
        ALIAS_BUILDS.fetch_add(1, Ordering::Relaxed);
        (root_arena, arenas)
    }

    /// Reassembles a sampler from snapshot artifacts without rebuilding
    /// any alias arena. The hash indexes and edge encodings are rebuilt
    /// from the relations (they are derived data); the count tables and
    /// arenas are validated structurally against them — shape mismatch
    /// is a [`JoinError::Invalid`], never a panic.
    pub fn from_artifacts(spec: Arc<JoinSpec>, artifacts: EwArtifacts) -> Result<Self, JoinError> {
        let prepared = Prepared::new(spec)?;
        let EwArtifacts {
            counts,
            key_counts,
            arenas,
            root_arena,
            total,
            exact,
        } = artifacts;
        let invalid = |what: &str| JoinError::Invalid(format!("EW artifacts: {what}"));
        let n = prepared.spec.n_relations();
        if counts.len() != n || key_counts.len() != n || arenas.len() != n {
            return Err(invalid("table count disagrees with relations"));
        }
        for v in 0..n {
            if counts[v].len() != prepared.spec.relation(v).len() {
                return Err(invalid("count column length disagrees with relation"));
            }
            match (prepared.indexes[v].as_ref(), arenas[v].as_ref()) {
                (Some(index), Some(arena)) => {
                    let n_keys = index.n_keys();
                    if key_counts[v].len() != n_keys || arena.segments() != n_keys {
                        return Err(invalid("key table shape disagrees with index"));
                    }
                    for kid in 0..n_keys {
                        if arena.segment_len(kid) != index.postings(kid as u32).len() {
                            return Err(invalid("arena segment incongruent with postings"));
                        }
                    }
                }
                (None, None) => {
                    if !key_counts[v].is_empty() {
                        return Err(invalid("root key table must be empty"));
                    }
                }
                _ => return Err(invalid("arena/index presence mismatch")),
            }
        }
        let root = prepared.tree.root();
        if root_arena.segments() != 1 || root_arena.segment_len(0) != counts[root].len() {
            return Err(invalid("root arena incongruent with root relation"));
        }
        let sum = counts[root]
            .iter()
            .fold(0u64, |acc, &c| acc.saturating_add(c));
        if sum != total {
            return Err(invalid("total disagrees with root counts"));
        }
        if exact && !prepared.exact_tree {
            return Err(invalid("exact flag set on a cyclic spec"));
        }
        Ok(Self {
            prepared,
            counts,
            key_counts,
            arenas,
            root_arena,
            total,
            exact,
        })
    }

    /// Extracts the freeze-time artifacts for snapshot persistence.
    pub fn artifacts(&self) -> EwArtifacts {
        EwArtifacts {
            counts: self.counts.clone(),
            key_counts: self.key_counts.clone(),
            arenas: self.arenas.clone(),
            root_arena: self.root_arena.clone(),
            total: self.total,
            exact: self.exact,
        }
    }

    /// The exact join size for acyclic joins; for cyclic joins this is
    /// the spanning-join size, an upper bound on the true size.
    pub fn exact_size(&self) -> f64 {
        self.total as f64
    }

    /// The exact integer join size, when known (acyclic spec, no u64
    /// saturation in the count DP).
    pub fn exact_size_u64(&self) -> Option<u64> {
        self.exact.then_some(self.total)
    }

    /// Whether [`ExactWeightSampler::exact_size`] is the true join size
    /// (acyclic specs, no saturation) rather than an upper bound.
    pub fn size_is_exact(&self) -> bool {
        self.exact
    }

    /// Per-row result counts of relation `i` (exposed for tests and
    /// the EO comparison benches).
    pub fn counts_of(&self, i: usize) -> &[u64] {
        &self.counts[i]
    }

    /// Draws the root row (shared by the cascade and linear paths).
    /// Returns `None` when the join is empty or the alias residue
    /// landed on a dead row.
    #[inline]
    fn draw_root(&self, rng: &mut SujRng, draw: &mut RowDraw) -> Option<usize> {
        if self.total == 0 {
            return None;
        }
        let prepared = &self.prepared;
        let root = prepared.tree.root();
        draw.reset(prepared.spec.n_relations());
        let root_row = self.root_arena.draw(0, rng);
        // Alias tables cannot express zero-probability rows exactly in
        // the presence of FP residue; guard against picking a dead row.
        if self.counts[root][root_row as usize] == 0 {
            return None;
        }
        draw.rows[root] = root_row;
        Some(root)
    }

    /// The pre-arena reference draw path: root alias pick plus a
    /// linear scan of each key's postings weighted by the exact
    /// counts. Retained for the `alias_path` bench comparison and the
    /// distribution-equivalence proptests; per-tuple marginals are
    /// identical to [`JoinSampler::sample_rows`] (RNG consumption
    /// differs). Allocation-free like the cascade.
    pub fn sample_rows_linear(&self, rng: &mut SujRng, draw: &mut RowDraw) -> bool {
        if self.draw_root(rng, draw).is_none() {
            return false;
        }
        let prepared = &self.prepared;
        for &v in &prepared.tree.order()[1..] {
            let p = prepared.tree.parent(v).expect("non-root has parent");
            let kid = prepared.edge_keys[v][draw.rows[p] as usize];
            if kid == NO_KEY {
                return false; // impossible when counts are exact; defensive
            }
            let total = self.key_counts[v][kid as usize];
            if total == 0 {
                return false; // likewise defensive
            }
            let index = prepared.indexes[v].as_ref().expect("child index");
            let cands = index.postings(kid);
            // Integer inversion: x ∈ [0, total) lands in exactly one
            // row's count interval — no FP fallback needed.
            let mut x = rng.range_u64(0, total);
            let mut picked = None;
            for &rid in cands {
                let c = self.counts[v][rid as usize];
                if x < c {
                    picked = Some(rid);
                    break;
                }
                x -= c;
            }
            match picked {
                Some(rid) => draw.rows[v] = rid,
                // Unreachable unless the counts saturated; reject.
                None => return false,
            }
        }
        prepared.consistent(&draw.rows)
    }
}

impl JoinSampler for ExactWeightSampler {
    fn spec(&self) -> &JoinSpec {
        &self.prepared.spec
    }

    fn sample_rows(&self, rng: &mut SujRng, draw: &mut RowDraw) -> bool {
        if self.draw_root(rng, draw).is_none() {
            return false;
        }
        let prepared = &self.prepared;

        // Top-down over the tree order (parents precede children): the
        // alias cascade — one encoded-key read plus one O(1) alias
        // lookup per edge, no candidate scan.
        for &v in &prepared.tree.order()[1..] {
            let p = prepared.tree.parent(v).expect("non-root has parent");
            let kid = prepared.edge_keys[v][draw.rows[p] as usize];
            if kid == NO_KEY {
                return false; // impossible when counts are exact; defensive
            }
            if self.key_counts[v][kid as usize] == 0 {
                return false; // likewise defensive
            }
            let local = self.arenas[v].as_ref().expect("child arena").draw(kid, rng);
            let rid = prepared.indexes[v]
                .as_ref()
                .expect("child index")
                .postings(kid)[local as usize];
            // FP residue guard, same as the root pick.
            if self.counts[v][rid as usize] == 0 {
                return false;
            }
            draw.rows[v] = rid;
        }
        prepared.consistent(&draw.rows)
    }

    fn materialize(&self, draw: &RowDraw) -> Tuple {
        self.prepared.materialize(&draw.rows)
    }

    fn join_size_hint(&self) -> f64 {
        self.total as f64
    }

    fn size_info(&self) -> SizeInfo {
        SizeInfo {
            bound: self.total as f64,
            exact: self.exact.then_some(self.total),
        }
    }

    fn memory_bytes(&self) -> usize {
        let counts: usize = self.counts.iter().map(|c| c.len() * 8).sum();
        let key_counts: usize = self.key_counts.iter().map(|c| c.len() * 8).sum();
        let arenas: usize = self
            .arenas
            .iter()
            .flatten()
            .map(AliasArena::memory_bytes)
            .sum::<usize>()
            + self.root_arena.memory_bytes();
        self.prepared.memory_bytes() + counts + key_counts + arenas
    }

    fn as_exact(&self) -> Option<&ExactWeightSampler> {
        Some(self)
    }
}

/// Extended-Olken sampler: max-degree weights plus dangling elimination.
#[derive(Debug)]
pub struct OlkenSampler {
    prepared: Prepared,
    /// Per relation: `M(probe attrs)` (1 for the root).
    max_degrees: Vec<f64>,
    /// Root rows that survive the one-level dangling check.
    live_roots: Vec<u32>,
    /// `|live_roots| · Π M` — the sampler's size upper bound.
    bound: f64,
}

impl OlkenSampler {
    /// Builds the sampler for any join shape.
    pub fn new(spec: Arc<JoinSpec>) -> Result<Self, JoinError> {
        let prepared = Prepared::new(spec)?;
        let spec = &prepared.spec;
        let n = spec.n_relations();
        let mut max_degrees = vec![1.0f64; n];
        for (v, index) in prepared.indexes.iter().enumerate() {
            if let Some(idx) = index.as_ref() {
                max_degrees[v] = idx.max_degree() as f64;
            }
        }

        // One-level dangling elimination at the root (§3.2's linear
        // search): root rows with an empty candidate list in any child
        // can never yield a result. A row is live iff every child edge
        // encoded its key — one integer read per (row, child).
        let root = prepared.tree.root();
        let root_children: Vec<usize> = prepared.tree.children(root).to_vec();
        let live_roots: Vec<u32> = (0..spec.relation(root).len())
            .filter(|&ri| {
                root_children
                    .iter()
                    .all(|&c| prepared.edge_keys[c][ri] != NO_KEY)
            })
            .map(|ri| ri as u32)
            .collect();

        let degree_product: f64 = (0..n)
            .filter(|&v| v != root)
            .map(|v| max_degrees[v])
            .product();
        let bound = live_roots.len() as f64 * degree_product;

        Ok(Self {
            prepared,
            max_degrees,
            live_roots,
            bound,
        })
    }

    /// The sampler's join-size upper bound (`|live roots| · Π M`).
    pub fn bound(&self) -> f64 {
        self.bound
    }

    /// Number of root rows surviving dangling elimination.
    pub fn live_root_count(&self) -> usize {
        self.live_roots.len()
    }
}

impl JoinSampler for OlkenSampler {
    fn spec(&self) -> &JoinSpec {
        &self.prepared.spec
    }

    fn sample_rows(&self, rng: &mut SujRng, draw: &mut RowDraw) -> bool {
        if self.live_roots.is_empty() || self.bound <= 0.0 {
            return false;
        }
        let prepared = &self.prepared;
        let root = prepared.tree.root();
        draw.reset(prepared.spec.n_relations());
        draw.rows[root] = self.live_roots[rng.index(self.live_roots.len())];

        for &v in &prepared.tree.order()[1..] {
            let p = prepared.tree.parent(v).expect("non-root has parent");
            let kid = prepared.edge_keys[v][draw.rows[p] as usize];
            if kid == NO_KEY {
                return false; // dead end
            }
            let index = prepared.indexes[v].as_ref().expect("child index");
            let degree = index.degree_of(kid);
            // Uniform candidate + accept with d/M keeps the overall
            // path probability constant: (1/d)·(d/M) = 1/M.
            if !rng.bernoulli(degree as f64 / self.max_degrees[v]) {
                return false;
            }
            draw.rows[v] = index.postings(kid)[rng.index(degree)];
        }
        prepared.consistent(&draw.rows)
    }

    fn materialize(&self, draw: &RowDraw) -> Tuple {
        self.prepared.materialize(&draw.rows)
    }

    fn join_size_hint(&self) -> f64 {
        self.bound
    }

    fn memory_bytes(&self) -> usize {
        self.prepared.memory_bytes() + self.max_degrees.len() * 8 + self.live_roots.len() * 4
    }
}

/// Builds a uniform sampler for any join shape with the requested weight
/// instantiation.
pub fn build_sampler(
    spec: Arc<JoinSpec>,
    kind: WeightKind,
) -> Result<Box<dyn JoinSampler>, JoinError> {
    Ok(match kind {
        WeightKind::Exact => Box::new(ExactWeightSampler::new(spec)?),
        WeightKind::ExtendedOlken => Box::new(OlkenSampler::new(spec)?),
        WeightKind::WanderJoin => Box::new(crate::wander::WanderSampler::new(spec)?),
        // Per-join routing: in a union whose plan asks for AGM boxes,
        // any *acyclic* member join still gets the (strictly better)
        // tree walk; only the genuinely cyclic members pay for boxes.
        WeightKind::AgmBox => {
            if has_graph_cycle(&spec) {
                Box::new(crate::cyclic::CyclicJoinSampler::new(spec)?)
            } else {
                Box::new(ExactWeightSampler::new(spec)?)
            }
        }
    })
}

/// The exact size of any join: EW total weight for acyclic specs; full
/// execution for cyclic specs (ground-truth path only).
pub fn exact_join_size(spec: &JoinSpec) -> Result<f64, JoinError> {
    if has_graph_cycle(spec) {
        Ok(execute(spec).len() as f64)
    } else {
        Ok(ExactWeightSampler::new(Arc::new(spec.clone()))?.exact_size())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use suj_storage::{FxHashMap, Relation, Schema};

    fn rel(name: &str, attrs: &[&str], rows: Vec<Vec<i64>>) -> Arc<Relation> {
        let schema = Schema::new(attrs.iter().copied()).unwrap();
        let tuples = rows
            .into_iter()
            .map(|vals| vals.into_iter().map(Value::int).collect())
            .collect();
        Arc::new(Relation::new(name, schema, tuples).unwrap())
    }

    fn skewed_chain() -> Arc<JoinSpec> {
        // Skewed degrees so EO rejects and EW must weight properly.
        let r = rel(
            "r",
            &["a", "b"],
            vec![vec![1, 10], vec![2, 10], vec![3, 20], vec![4, 30]],
        );
        let s = rel(
            "s",
            &["b", "c"],
            vec![
                vec![10, 100],
                vec![10, 101],
                vec![10, 102],
                vec![20, 200],
                vec![40, 400],
            ],
        );
        let t = rel(
            "t",
            &["c", "d"],
            vec![vec![100, 1], vec![100, 2], vec![101, 3], vec![200, 4]],
        );
        Arc::new(JoinSpec::chain("skew", vec![r, s, t]).unwrap())
    }

    #[test]
    fn ew_total_matches_execution() {
        let spec = skewed_chain();
        let sampler = ExactWeightSampler::new(spec.clone()).unwrap();
        let actual = execute(&spec).len() as f64;
        assert_eq!(sampler.exact_size(), actual);
        assert_eq!(sampler.join_size_hint(), actual);
        assert!(sampler.size_is_exact());
    }

    #[test]
    fn ew_never_rejects_on_nonempty_acyclic_join() {
        let spec = skewed_chain();
        let sampler = ExactWeightSampler::new(spec).unwrap();
        let mut rng = SujRng::seed_from_u64(1);
        for _ in 0..200 {
            assert!(matches!(
                sampler.sample(&mut rng),
                SampleOutcome::Accepted(_)
            ));
        }
    }

    fn empirical_counts(
        sampler: &dyn JoinSampler,
        draws: usize,
        seed: u64,
    ) -> FxHashMap<Tuple, u64> {
        let mut rng = SujRng::seed_from_u64(seed);
        let mut counts: FxHashMap<Tuple, u64> = FxHashMap::default();
        let mut accepted = 0usize;
        while accepted < draws {
            if let SampleOutcome::Accepted(t) = sampler.sample(&mut rng) {
                *counts.entry(t).or_insert(0) += 1;
                accepted += 1;
            }
        }
        counts
    }

    fn assert_uniform(sampler: &dyn JoinSampler, seed: u64) {
        let result = execute(sampler.spec());
        let universe = result.distinct_set();
        let k = universe.len();
        assert!(k >= 2, "need a multi-tuple join for the test");
        let draws = 2_000 * k;
        let counts = empirical_counts(sampler, draws, seed);
        // Every sampled tuple must be a real result tuple.
        for t in counts.keys() {
            assert!(universe.contains(t), "sampled non-member {t}");
        }
        let observed: Vec<u64> = result
            .tuples()
            .iter()
            .map(|t| counts.get(t).copied().unwrap_or(0))
            .collect();
        let outcome = suj_stats::chi_square_test(&observed).unwrap();
        assert!(
            outcome.p_value > 0.001,
            "sampler not uniform: chi2={} p={}",
            outcome.statistic,
            outcome.p_value
        );
    }

    #[test]
    fn ew_samples_uniformly() {
        let sampler = ExactWeightSampler::new(skewed_chain()).unwrap();
        assert_uniform(&sampler, 42);
    }

    #[test]
    fn eo_samples_uniformly() {
        let sampler = OlkenSampler::new(skewed_chain()).unwrap();
        assert_uniform(&sampler, 43);
    }

    #[test]
    fn eo_bound_dominates_exact_size() {
        let spec = skewed_chain();
        let eo = OlkenSampler::new(spec.clone()).unwrap();
        let ew = ExactWeightSampler::new(spec).unwrap();
        assert!(eo.bound() >= ew.exact_size());
    }

    #[test]
    fn eo_dangling_elimination_shrinks_bound() {
        // Root row with b=30 has no match in s: live roots = 3 of 4.
        let spec = skewed_chain();
        let eo = OlkenSampler::new(spec).unwrap();
        assert_eq!(eo.live_root_count(), 3);
    }

    #[test]
    fn star_join_sampling_uniform() {
        let spec = Arc::new(
            JoinSpec::natural(
                "star",
                vec![
                    rel("c", &["a", "b"], vec![vec![1, 2], vec![3, 2], vec![1, 4]]),
                    rel(
                        "l1",
                        &["a", "x"],
                        vec![vec![1, 10], vec![1, 11], vec![3, 12]],
                    ),
                    rel(
                        "l2",
                        &["b", "y"],
                        vec![vec![2, 20], vec![2, 21], vec![4, 22]],
                    ),
                ],
            )
            .unwrap(),
        );
        let ew = ExactWeightSampler::new(spec.clone()).unwrap();
        assert_uniform(&ew, 7);
        let eo = OlkenSampler::new(spec).unwrap();
        assert_uniform(&eo, 8);
    }

    fn triangle_spec() -> Arc<JoinSpec> {
        Arc::new(
            JoinSpec::natural(
                "tri",
                vec![
                    rel(
                        "x",
                        &["a", "b"],
                        vec![vec![1, 2], vec![1, 9], vec![5, 2], vec![5, 6]],
                    ),
                    rel(
                        "y",
                        &["b", "c"],
                        vec![vec![2, 3], vec![2, 4], vec![9, 4], vec![6, 3]],
                    ),
                    rel(
                        "z",
                        &["c", "a"],
                        vec![vec![3, 1], vec![4, 5], vec![4, 1], vec![3, 5]],
                    ),
                ],
            )
            .unwrap(),
        )
    }

    #[test]
    fn cyclic_join_sampling_uniform() {
        let spec = triangle_spec();
        assert!(execute(&spec).len() >= 2);
        let ew = build_sampler(spec.clone(), WeightKind::Exact).unwrap();
        assert_uniform(ew.as_ref(), 11);
        let eo = build_sampler(spec.clone(), WeightKind::ExtendedOlken).unwrap();
        assert_uniform(eo.as_ref(), 12);
        let wj = build_sampler(spec.clone(), WeightKind::WanderJoin).unwrap();
        assert_uniform(wj.as_ref(), 13);
    }

    #[test]
    fn wander_kind_samples_uniformly_on_chains() {
        let sampler = build_sampler(skewed_chain(), WeightKind::WanderJoin).unwrap();
        assert_uniform(sampler.as_ref(), 14);
    }

    #[test]
    fn cyclic_sizes_and_hints() {
        let spec = triangle_spec();
        let actual = execute(&spec).len() as f64;
        assert_eq!(exact_join_size(&spec).unwrap(), actual);
        // The EW hint on a cyclic spec is the spanning-join size — an
        // upper bound, flagged as inexact.
        let ew = ExactWeightSampler::new(spec).unwrap();
        assert!(!ew.size_is_exact());
        assert!(ew.join_size_hint() >= actual);
    }

    #[test]
    fn cyclic_samples_satisfy_all_edges() {
        let spec = triangle_spec();
        let universe = execute(&spec).distinct_set();
        let sampler = build_sampler(spec, WeightKind::Exact).unwrap();
        let mut rng = SujRng::seed_from_u64(19);
        let mut accepted = 0;
        for _ in 0..2000 {
            if let SampleOutcome::Accepted(t) = sampler.sample(&mut rng) {
                assert!(universe.contains(&t), "inconsistent cyclic sample {t}");
                accepted += 1;
            }
        }
        assert!(accepted > 0, "sampler never accepted");
    }

    #[test]
    fn sample_batch_matches_sequential_draws() {
        // One batched call is seed-for-seed identical to a loop of
        // sample_until_accepted — the batch only amortizes scratch.
        let sampler = OlkenSampler::new(skewed_chain()).unwrap();
        let mut rng_a = SujRng::seed_from_u64(9);
        let mut rng_b = SujRng::seed_from_u64(9);
        let mut batch = Vec::new();
        let attempts = sampler.sample_batch(50, 1_000_000, &mut rng_a, &mut batch);
        let mut sequential = Vec::new();
        let mut seq_attempts = 0u64;
        while sequential.len() < 50 {
            let (t, tries) = sampler.sample_until_accepted(&mut rng_b, 1_000_000);
            seq_attempts += tries;
            sequential.push(t.expect("nonempty join accepts"));
        }
        assert_eq!(batch, sequential);
        assert_eq!(attempts, seq_attempts);
    }

    #[test]
    fn sample_batch_respects_attempt_budget() {
        let spec = Arc::new(
            JoinSpec::chain(
                "empty",
                vec![
                    rel("r", &["a", "b"], vec![vec![1, 10]]),
                    rel("s", &["b", "c"], vec![vec![99, 1]]),
                ],
            )
            .unwrap(),
        );
        let sampler = OlkenSampler::new(spec).unwrap();
        let mut rng = SujRng::seed_from_u64(1);
        let mut out = Vec::new();
        let attempts = sampler.sample_batch(10, 25, &mut rng, &mut out);
        assert!(out.is_empty());
        assert_eq!(attempts, 25);
    }

    #[test]
    fn row_draws_materialize_to_result_tuples() {
        // sample_rows + materialize is the same accept set as sample().
        let spec = skewed_chain();
        let universe = execute(&spec).distinct_set();
        let sampler = ExactWeightSampler::new(spec).unwrap();
        let mut rng = SujRng::seed_from_u64(12);
        let mut draw = RowDraw::new();
        for _ in 0..200 {
            assert!(sampler.sample_rows(&mut rng, &mut draw));
            let t = sampler.materialize(&draw);
            assert!(universe.contains(&t), "materialized non-member {t}");
            assert_eq!(draw.rows().len(), 3);
        }
    }

    #[test]
    fn empty_join_always_rejects() {
        let spec = Arc::new(
            JoinSpec::chain(
                "empty",
                vec![
                    rel("r", &["a", "b"], vec![vec![1, 10]]),
                    rel("s", &["b", "c"], vec![vec![99, 1]]),
                ],
            )
            .unwrap(),
        );
        let ew = ExactWeightSampler::new(spec.clone()).unwrap();
        let eo = OlkenSampler::new(spec).unwrap();
        let mut rng = SujRng::seed_from_u64(3);
        for _ in 0..50 {
            assert_eq!(ew.sample(&mut rng), SampleOutcome::Rejected);
            assert_eq!(eo.sample(&mut rng), SampleOutcome::Rejected);
        }
        let (t, tries) = ew.sample_until_accepted(&mut rng, 10);
        assert!(t.is_none());
        assert_eq!(tries, 10);
    }

    #[test]
    fn single_relation_sampling() {
        let spec = Arc::new(
            JoinSpec::natural(
                "one",
                vec![rel("r", &["a"], vec![vec![1], vec![2], vec![3]])],
            )
            .unwrap(),
        );
        let sampler = ExactWeightSampler::new(spec).unwrap();
        assert_eq!(sampler.exact_size(), 3.0);
        assert_uniform(&sampler, 5);
    }

    #[test]
    fn weights_expose_per_row_counts() {
        let spec = skewed_chain();
        let sampler = ExactWeightSampler::new(spec.clone()).unwrap();
        // Row (1,10) of r joins s-rows {100,101,102}; t matches:
        // 100→2, 101→1, 102→0 → count 3.
        assert_eq!(sampler.counts_of(0)[0], 3);
        // Row (4,30) is dangling → 0.
        assert_eq!(sampler.counts_of(0)[3], 0);
    }

    /// Chi²-checks the linear-scan reference path the same way
    /// `assert_uniform` checks the cascade.
    fn assert_uniform_linear(sampler: &ExactWeightSampler, seed: u64) {
        let result = execute(sampler.spec());
        let universe = result.distinct_set();
        let k = universe.len();
        assert!(k >= 2, "need a multi-tuple join for the test");
        let mut rng = SujRng::seed_from_u64(seed);
        let mut draw = RowDraw::new();
        let mut counts: FxHashMap<Tuple, u64> = FxHashMap::default();
        let mut accepted = 0usize;
        while accepted < 2_000 * k {
            if sampler.sample_rows_linear(&mut rng, &mut draw) {
                let t = sampler.materialize(&draw);
                assert!(universe.contains(&t), "sampled non-member {t}");
                *counts.entry(t).or_insert(0) += 1;
                accepted += 1;
            }
        }
        let observed: Vec<u64> = result
            .tuples()
            .iter()
            .map(|t| counts.get(t).copied().unwrap_or(0))
            .collect();
        let outcome = suj_stats::chi_square_test(&observed).unwrap();
        assert!(
            outcome.p_value > 0.001,
            "linear path not uniform: chi2={} p={}",
            outcome.statistic,
            outcome.p_value
        );
    }

    #[test]
    fn linear_scan_path_samples_uniformly() {
        let sampler = ExactWeightSampler::new(skewed_chain()).unwrap();
        assert_uniform_linear(&sampler, 51);
    }

    /// A chain where most rows are dangling: only one s-row and one
    /// t-row survive, so the cascade must route around heavy dead mass.
    fn dangling_heavy_chain() -> Arc<JoinSpec> {
        let r = rel(
            "r",
            &["a", "b"],
            (0..12).map(|i| vec![i, 10 + (i % 4)]).collect(),
        );
        let s = rel(
            "s",
            &["b", "c"],
            vec![
                vec![10, 100],
                vec![10, 777], // dangling in t
                vec![11, 777],
                vec![12, 777],
                vec![13, 100],
            ],
        );
        let t = rel("t", &["c", "d"], vec![vec![100, 1], vec![100, 2]]);
        Arc::new(JoinSpec::chain("dangling", vec![r, s, t]).unwrap())
    }

    #[test]
    fn dangling_heavy_cascade_samples_uniformly() {
        let spec = dangling_heavy_chain();
        let sampler = ExactWeightSampler::new(spec.clone()).unwrap();
        assert_eq!(sampler.exact_size_u64(), Some(execute(&spec).len() as u64));
        assert_uniform(&sampler, 52);
        assert_uniform_linear(&sampler, 53);
    }

    #[test]
    fn cascade_and_linear_marginals_agree() {
        let sampler = ExactWeightSampler::new(skewed_chain()).unwrap();
        let result = execute(sampler.spec());
        let draws = 3_000 * result.tuples().len();
        let freq = |linear: bool, seed: u64| -> FxHashMap<Tuple, f64> {
            let mut rng = SujRng::seed_from_u64(seed);
            let mut draw = RowDraw::new();
            let mut counts: FxHashMap<Tuple, u64> = FxHashMap::default();
            for _ in 0..draws {
                let ok = if linear {
                    sampler.sample_rows_linear(&mut rng, &mut draw)
                } else {
                    sampler.sample_rows(&mut rng, &mut draw)
                };
                if ok {
                    *counts.entry(sampler.materialize(&draw)).or_insert(0) += 1;
                }
            }
            counts
                .into_iter()
                .map(|(t, c)| (t, c as f64 / draws as f64))
                .collect()
        };
        let fa = freq(false, 61);
        let fl = freq(true, 62);
        for (t, &p) in &fa {
            let q = fl.get(t).copied().unwrap_or(0.0);
            assert!((p - q).abs() < 0.02, "{t}: cascade {p} vs linear {q}");
        }
    }

    #[test]
    fn exact_size_matches_brute_force_on_randomized_joins() {
        // Randomized chain/star/natural joins: the u64 count DP must
        // agree with materialized execution *exactly*, not up to ULPs.
        let mut rng = SujRng::seed_from_u64(0xE0E0);
        for trial in 0..12 {
            let n_rel = 2 + rng.index(3); // 2..=4 relations
            let shape = trial % 3;
            let mut relations = Vec::new();
            if shape == 1 {
                // Star: hub(h1..h_{n-1}), leaf i joins on its own h_i.
                let hub_attrs: Vec<String> = (1..n_rel).map(|i| format!("h{i}")).collect();
                let n_rows = 3 + rng.index(15);
                let hub_tuples: Vec<Tuple> = (0..n_rows)
                    .map(|_| {
                        Tuple::new(
                            (1..n_rel)
                                .map(|_| Value::int(rng.range_i64(0, 6)))
                                .collect(),
                        )
                    })
                    .collect();
                let schema = Schema::new(hub_attrs.iter().map(String::as_str)).unwrap();
                relations.push(Arc::new(
                    Relation::new(format!("hub{trial}"), schema, hub_tuples).unwrap(),
                ));
                for i in 1..n_rel {
                    let n_rows = 3 + rng.index(15);
                    let schema =
                        Schema::new([format!("h{i}").as_str(), format!("x{i}").as_str()]).unwrap();
                    let tuples = (0..n_rows)
                        .map(|_| {
                            Tuple::new(vec![
                                Value::int(rng.range_i64(0, 6)),
                                Value::int(rng.range_i64(0, 6)),
                            ])
                        })
                        .collect();
                    relations.push(Arc::new(
                        Relation::new(format!("leaf{trial}_{i}"), schema, tuples).unwrap(),
                    ));
                }
            } else {
                for i in 0..n_rel {
                    let n_rows = 3 + rng.index(15);
                    let (a, b) = if shape == 0 {
                        // Chain: r_i(c_i, c_{i+1}).
                        (format!("c{i}"), format!("c{}", i + 1))
                    } else {
                        // Natural: overlapping pairs, some repeated attrs.
                        (format!("c{}", i / 2), format!("c{}", i / 2 + 1))
                    };
                    let schema = Schema::new([a.as_str(), b.as_str()]).unwrap();
                    let tuples = (0..n_rows)
                        .map(|_| {
                            Tuple::new(vec![
                                Value::int(rng.range_i64(0, 6)),
                                Value::int(rng.range_i64(0, 6)),
                            ])
                        })
                        .collect();
                    relations.push(Arc::new(
                        Relation::new(format!("r{trial}_{i}"), schema, tuples).unwrap(),
                    ));
                }
            }
            let spec = Arc::new(JoinSpec::natural(format!("rand{trial}"), relations).unwrap());
            if has_graph_cycle(&spec) {
                continue;
            }
            let sampler = ExactWeightSampler::new(spec.clone()).unwrap();
            let actual = execute(&spec).len() as u64;
            assert_eq!(
                sampler.exact_size_u64(),
                Some(actual),
                "trial {trial}: DP size disagrees with brute force"
            );
            assert_eq!(sampler.size_info().exact, Some(actual));
            assert_eq!(sampler.size_info().bound, actual as f64);
        }
    }

    #[test]
    fn count_overflow_saturates_and_clears_exact_flag() {
        // 9-relation chain, 256 rows each, all matching: join size is
        // 256⁹ = 2⁷² — past u64. The DP must saturate, not wrap, and
        // the sampler must still produce draws.
        let relations: Vec<Arc<Relation>> = (0..9)
            .map(|i| {
                let attrs = [format!("c{i}"), format!("c{}", i + 1), format!("u{i}")];
                let schema = Schema::new(attrs.iter().map(String::as_str)).unwrap();
                let tuples = (0..256)
                    .map(|v| Tuple::new(vec![Value::int(1), Value::int(1), Value::int(v)]))
                    .collect();
                Arc::new(Relation::new(format!("w{i}"), schema, tuples).unwrap())
            })
            .collect();
        let spec = Arc::new(JoinSpec::chain("wide", relations).unwrap());
        let sampler = ExactWeightSampler::new(spec).unwrap();
        assert!(!sampler.size_is_exact());
        assert_eq!(sampler.exact_size_u64(), None);
        assert_eq!(sampler.size_info().exact, None);
        assert_eq!(sampler.counts_of(0)[0], u64::MAX, "saturate, not wrap");
        let mut rng = SujRng::seed_from_u64(4);
        let mut draw = RowDraw::new();
        let accepted = (0..64)
            .filter(|_| sampler.sample_rows(&mut rng, &mut draw))
            .count();
        assert!(accepted > 0, "saturated sampler must still draw");
    }

    #[test]
    fn artifacts_round_trip_bit_identically() {
        // The "no alias rebuild" half of this guarantee is pinned by
        // `tests/artifact_restore.rs` (its own binary: the global
        // `alias_builds` counter cannot be asserted race-free amid
        // parallel lib tests).
        let spec = skewed_chain();
        let sampler = ExactWeightSampler::new(spec.clone()).unwrap();
        let artifacts = sampler.artifacts();
        let restored = ExactWeightSampler::from_artifacts(spec.clone(), artifacts).unwrap();
        assert_eq!(restored.exact_size_u64(), sampler.exact_size_u64());
        // Same artifacts ⇒ bit-identical draw streams.
        let mut ra = SujRng::seed_from_u64(33);
        let mut rb = SujRng::seed_from_u64(33);
        let mut da = RowDraw::new();
        let mut db = RowDraw::new();
        for _ in 0..200 {
            assert_eq!(
                sampler.sample_rows(&mut ra, &mut da),
                restored.sample_rows(&mut rb, &mut db)
            );
            assert_eq!(da.rows(), db.rows());
        }
    }

    #[test]
    fn from_artifacts_rejects_mismatched_shapes() {
        let spec = skewed_chain();
        let sampler = ExactWeightSampler::new(spec.clone()).unwrap();
        let good = sampler.artifacts();

        let mut short_counts = good.clone();
        short_counts.counts[0].pop();
        assert!(ExactWeightSampler::from_artifacts(spec.clone(), short_counts).is_err());

        let mut bad_total = good.clone();
        bad_total.total += 1;
        assert!(ExactWeightSampler::from_artifacts(spec.clone(), bad_total).is_err());

        let mut missing_arena = good.clone();
        let slot = missing_arena
            .arenas
            .iter()
            .position(Option::is_some)
            .unwrap();
        missing_arena.arenas[slot] = None;
        assert!(ExactWeightSampler::from_artifacts(spec.clone(), missing_arena).is_err());

        let mut wrong_exact = good;
        wrong_exact.exact = true; // fine: spec is acyclic
        assert!(ExactWeightSampler::from_artifacts(spec, wrong_exact).is_ok());
    }

    #[test]
    fn ew_memory_bytes_accounts_counts_and_arenas() {
        let sampler = ExactWeightSampler::new(skewed_chain()).unwrap();
        let total = JoinSampler::memory_bytes(&sampler);
        let counts: usize = (0..3).map(|i| sampler.counts_of(i).len() * 8).sum();
        assert!(
            total > counts,
            "memory_bytes ({total}) must cover more than the raw count \
             columns ({counts}): key tables, arenas, indexes"
        );
        // And the trait default stays zero for samplers without state.
        let eo = OlkenSampler::new(skewed_chain()).unwrap();
        assert!(JoinSampler::memory_bytes(&eo) > 0);
    }
}
