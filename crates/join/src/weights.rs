//! Random sampling over a single join (the Zhao et al. framework, §3.2).
//!
//! Each tuple of each relation carries a *weight*: an upper bound on the
//! number of join results it can yield. Sampling walks the join tree
//! root→leaves, choosing tuples proportionally to weights, and rejects
//! to flatten any over-estimation — uniformity over the join result is
//! guaranteed for any valid weight function. Two instantiations:
//!
//! * **Exact Weight (EW)** — bottom-up dynamic program computing every
//!   tuple's exact result count. Zero rejections on acyclic joins; the
//!   root's total weight is the exact join size (used as ground truth
//!   throughout §9).
//! * **Extended Olken (EO)** — weights from maximum degrees
//!   (`M_{A_i}(R_{i+1})` products). Cheap to set up, rejects at rate
//!   `1 − |J|/bound`. Following §3.2 we additionally zero the weights of
//!   dangling tuples ("an extra linear search in the hash tables"):
//!   root tuples with no match in some child are excluded up front.
//!
//! Cyclic joins are sampled over a BFS *spanning tree* of the join graph
//! with the dropped cycle-closing equalities enforced by consistency
//! rejection on the output buffer — the cycle-breaking mechanism of Zhao
//! et al. that §8.2 adopts. Uniformity is preserved because each result
//! tuple of the cyclic join corresponds to exactly one spanning-join row
//! combination.

use crate::error::JoinError;
use crate::exec::execute;
use crate::graph::has_graph_cycle;
use crate::spec::JoinSpec;
use crate::tree::JoinTree;
use std::sync::Arc;
use suj_stats::{AliasTable, SujRng};
use suj_storage::{HashIndex, Tuple, Value};

/// Weight instantiation for the join-sampling subroutine (§3.2 lists
/// all three: "extended Olken's, exact, and Wander Join").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightKind {
    /// Exact per-tuple result counts (ground-truth weights, no rejection
    /// on acyclic joins).
    Exact,
    /// Extended Olken max-degree bounds (cheap setup, accept/reject).
    ExtendedOlken,
    /// Wander-join walks uniformized against the Olken bound (zero
    /// setup beyond indexes; rejection rate `1 − |J|/bound`).
    WanderJoin,
}

/// Outcome of one sampling attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SampleOutcome {
    /// A uniform result tuple (in the spec's output schema order).
    Accepted(Tuple),
    /// The attempt was rejected (dead end, failed acceptance test, or a
    /// cycle-consistency violation).
    Rejected,
}

/// A uniform sampler over one join's result.
pub trait JoinSampler: Send + Sync {
    /// The join being sampled.
    fn spec(&self) -> &JoinSpec;

    /// One sampling attempt.
    fn sample(&self, rng: &mut SujRng) -> SampleOutcome;

    /// Size information implied by the weights: the exact join size for
    /// EW on acyclic joins, an upper bound otherwise.
    fn join_size_hint(&self) -> f64;

    /// Draws until acceptance (or `max_tries`); returns the tuple and the
    /// number of attempts consumed.
    fn sample_until_accepted(&self, rng: &mut SujRng, max_tries: u64) -> (Option<Tuple>, u64) {
        for attempt in 1..=max_tries {
            if let SampleOutcome::Accepted(t) = self.sample(rng) {
                return (Some(t), attempt);
            }
        }
        (None, max_tries)
    }
}

/// Shared prepared structure: spanning-tree order, child hash indexes,
/// and the positions in each parent's schema supplying each child's
/// probe key.
#[derive(Debug)]
pub(crate) struct Prepared {
    pub(crate) spec: Arc<JoinSpec>,
    pub(crate) tree: JoinTree,
    /// Per relation: index on its probe attributes (None for the root).
    pub(crate) indexes: Vec<Option<HashIndex>>,
    /// Per relation: positions of its probe attributes in its parent's
    /// schema (empty for the root).
    pub(crate) parent_key_positions: Vec<Vec<usize>>,
    /// Whether the join graph was already a tree (no consistency checks
    /// needed during fill).
    pub(crate) exact_tree: bool,
}

impl Prepared {
    pub(crate) fn new(spec: Arc<JoinSpec>) -> Result<Self, JoinError> {
        let exact_tree = !has_graph_cycle(&spec);
        let tree = JoinTree::spanning(&spec, 0)?;
        let n = spec.n_relations();
        let mut indexes: Vec<Option<HashIndex>> = (0..n).map(|_| None).collect();
        let mut parent_key_positions: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &v in tree.order() {
            if let Some(p) = tree.parent(v) {
                let attrs = tree.probe_attrs(v).to_vec();
                indexes[v] = Some(HashIndex::build(spec.relation(v), &attrs));
                parent_key_positions[v] = attrs
                    .iter()
                    .map(|a| {
                        spec.relation(p)
                            .schema()
                            .position(a)
                            .expect("probe attr shared with parent")
                    })
                    .collect();
            }
        }
        Ok(Self {
            spec,
            tree,
            indexes,
            parent_key_positions,
            exact_tree,
        })
    }

    /// Fills an output buffer with one relation's row values, checking
    /// consistency with already-filled positions (the re-check of the
    /// equality constraints dropped by the spanning tree). Returns false
    /// on conflict.
    pub(crate) fn fill(
        &self,
        buf: &mut [Value],
        filled: &mut [bool],
        rel: usize,
        row: &Tuple,
    ) -> bool {
        for (k, &p) in self.spec.out_positions(rel).iter().enumerate() {
            let v = row.get(k);
            if filled[p] {
                if !self.exact_tree && &buf[p] != v {
                    return false;
                }
            } else {
                buf[p] = v.clone();
                filled[p] = true;
            }
        }
        true
    }

    /// Probe key for child `c` given its parent's chosen row.
    pub(crate) fn child_key<'a>(
        &self,
        c: usize,
        parent_row: &Tuple,
        scratch: &'a mut Vec<Value>,
    ) -> &'a [Value] {
        scratch.clear();
        for &p in &self.parent_key_positions[c] {
            scratch.push(parent_row.get(p).clone());
        }
        scratch.as_slice()
    }
}

/// Exact-weight sampler: zero rejections on acyclic joins, exact size.
#[derive(Debug)]
pub struct ExactWeightSampler {
    prepared: Prepared,
    /// Per relation: weight of each row (number of spanning-join results
    /// through that row's subtree).
    weights: Vec<Vec<f64>>,
    root_alias: Option<AliasTable>,
    total: f64,
}

impl ExactWeightSampler {
    /// Builds the sampler for any join shape.
    pub fn new(spec: Arc<JoinSpec>) -> Result<Self, JoinError> {
        let prepared = Prepared::new(spec)?;
        let spec = &prepared.spec;
        let n = spec.n_relations();
        let mut weights: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![1.0f64; spec.relation(i).len()])
            .collect();

        // Bottom-up DP: weight(row) = Π_child Σ_matching weight(child row).
        let mut scratch: Vec<Value> = Vec::new();
        for v in prepared.tree.bottom_up() {
            let children: Vec<usize> = prepared.tree.children(v).to_vec();
            if children.is_empty() {
                continue;
            }
            let rel = spec.relation(v).clone();
            for (ri, row) in rel.rows().iter().enumerate() {
                let mut w = 1.0f64;
                for &c in &children {
                    let key = prepared.child_key(c, row, &mut scratch);
                    let index = prepared.indexes[c].as_ref().expect("child has index");
                    let s: f64 = index
                        .rows_matching(key)
                        .iter()
                        .map(|&rid| weights[c][rid as usize])
                        .sum();
                    w *= s;
                    if w == 0.0 {
                        break;
                    }
                }
                weights[v][ri] = w;
            }
        }

        let root = prepared.tree.root();
        let total: f64 = weights[root].iter().sum();
        let root_alias = AliasTable::new(&weights[root]);
        Ok(Self {
            prepared,
            weights,
            root_alias,
            total,
        })
    }

    /// The exact join size for acyclic joins; for cyclic joins this is
    /// the spanning-join size, an upper bound on the true size.
    pub fn exact_size(&self) -> f64 {
        self.total
    }

    /// Whether [`ExactWeightSampler::exact_size`] is the true join size
    /// (acyclic specs) rather than a spanning-join upper bound.
    pub fn size_is_exact(&self) -> bool {
        self.prepared.exact_tree
    }

    /// Per-row weights of relation `i` (exposed for tests and the EO
    /// comparison benches).
    pub fn weights_of(&self, i: usize) -> &[f64] {
        &self.weights[i]
    }
}

impl JoinSampler for ExactWeightSampler {
    fn spec(&self) -> &JoinSpec {
        &self.prepared.spec
    }

    fn sample(&self, rng: &mut SujRng) -> SampleOutcome {
        let Some(alias) = &self.root_alias else {
            return SampleOutcome::Rejected; // empty join
        };
        if self.total <= 0.0 {
            return SampleOutcome::Rejected;
        }
        let spec = &self.prepared.spec;
        let root = self.prepared.tree.root();
        let arity = spec.output_schema().arity();
        let mut buf = vec![Value::Null; arity];
        let mut filled = vec![false; arity];

        let root_row = alias.draw(rng) as u32;
        // Alias tables cannot express zero-probability rows exactly in
        // the presence of FP residue; guard against picking a dead row.
        if self.weights[root][root_row as usize] <= 0.0 {
            return SampleOutcome::Rejected;
        }

        let mut scratch: Vec<Value> = Vec::new();
        let mut frontier = vec![(root, root_row)];
        while let Some((v, row_id)) = frontier.pop() {
            let row = spec.relation(v).row(row_id as usize);
            if !self.prepared.fill(&mut buf, &mut filled, v, row) {
                return SampleOutcome::Rejected; // cycle-consistency violation
            }
            for &c in self.prepared.tree.children(v) {
                let key = self.prepared.child_key(c, row, &mut scratch);
                let index = self.prepared.indexes[c].as_ref().expect("child index");
                let cands = index.rows_matching(key);
                let total: f64 = cands.iter().map(|&rid| self.weights[c][rid as usize]).sum();
                if total <= 0.0 {
                    // Impossible when weights are exact; defensive.
                    return SampleOutcome::Rejected;
                }
                let mut x = rng.next_f64() * total;
                let mut picked = None;
                for &rid in cands {
                    let w = self.weights[c][rid as usize];
                    if w <= 0.0 {
                        continue;
                    }
                    if x < w {
                        picked = Some(rid);
                        break;
                    }
                    x -= w;
                }
                let picked = match picked {
                    Some(r) => r,
                    None => {
                        // FP rounding: take the last positive candidate.
                        match cands
                            .iter()
                            .rev()
                            .find(|&&rid| self.weights[c][rid as usize] > 0.0)
                        {
                            Some(&r) => r,
                            None => return SampleOutcome::Rejected,
                        }
                    }
                };
                frontier.push((c, picked));
            }
        }
        SampleOutcome::Accepted(Tuple::new(buf))
    }

    fn join_size_hint(&self) -> f64 {
        self.total
    }
}

/// Extended-Olken sampler: max-degree weights plus dangling elimination.
#[derive(Debug)]
pub struct OlkenSampler {
    prepared: Prepared,
    /// Per relation: `M(probe attrs)` (1 for the root).
    max_degrees: Vec<f64>,
    /// Root rows that survive the one-level dangling check.
    live_roots: Vec<u32>,
    /// `|live_roots| · Π M` — the sampler's size upper bound.
    bound: f64,
}

impl OlkenSampler {
    /// Builds the sampler for any join shape.
    pub fn new(spec: Arc<JoinSpec>) -> Result<Self, JoinError> {
        let prepared = Prepared::new(spec)?;
        let spec = &prepared.spec;
        let n = spec.n_relations();
        let mut max_degrees = vec![1.0f64; n];
        for (v, index) in prepared.indexes.iter().enumerate() {
            if let Some(idx) = index.as_ref() {
                max_degrees[v] = idx.max_degree() as f64;
            }
        }

        // One-level dangling elimination at the root (§3.2's linear
        // search): root rows with an empty candidate list in any child
        // can never yield a result.
        let root = prepared.tree.root();
        let root_children: Vec<usize> = prepared.tree.children(root).to_vec();
        let mut scratch: Vec<Value> = Vec::new();
        let live_roots: Vec<u32> = spec
            .relation(root)
            .rows()
            .iter()
            .enumerate()
            .filter(|(_, row)| {
                root_children.iter().all(|&c| {
                    let key = prepared.child_key(c, row, &mut scratch);
                    let index = prepared.indexes[c].as_ref().expect("child index");
                    index.degree(key) > 0
                })
            })
            .map(|(i, _)| i as u32)
            .collect();

        let degree_product: f64 = (0..n)
            .filter(|&v| v != root)
            .map(|v| max_degrees[v])
            .product();
        let bound = live_roots.len() as f64 * degree_product;

        Ok(Self {
            prepared,
            max_degrees,
            live_roots,
            bound,
        })
    }

    /// The sampler's join-size upper bound (`|live roots| · Π M`).
    pub fn bound(&self) -> f64 {
        self.bound
    }

    /// Number of root rows surviving dangling elimination.
    pub fn live_root_count(&self) -> usize {
        self.live_roots.len()
    }
}

impl JoinSampler for OlkenSampler {
    fn spec(&self) -> &JoinSpec {
        &self.prepared.spec
    }

    fn sample(&self, rng: &mut SujRng) -> SampleOutcome {
        if self.live_roots.is_empty() || self.bound <= 0.0 {
            return SampleOutcome::Rejected;
        }
        let spec = &self.prepared.spec;
        let root = self.prepared.tree.root();
        let arity = spec.output_schema().arity();
        let mut buf = vec![Value::Null; arity];
        let mut filled = vec![false; arity];

        let root_row = self.live_roots[rng.index(self.live_roots.len())];
        let mut scratch: Vec<Value> = Vec::new();
        let mut frontier = vec![(root, root_row)];
        while let Some((v, row_id)) = frontier.pop() {
            let row = spec.relation(v).row(row_id as usize);
            if !self.prepared.fill(&mut buf, &mut filled, v, row) {
                return SampleOutcome::Rejected; // cycle-consistency violation
            }
            for &c in self.prepared.tree.children(v) {
                let key = self.prepared.child_key(c, row, &mut scratch);
                let index = self.prepared.indexes[c].as_ref().expect("child index");
                let cands = index.rows_matching(key);
                if cands.is_empty() {
                    return SampleOutcome::Rejected; // dead end
                }
                // Uniform candidate + accept with d/M keeps the overall
                // path probability constant: (1/d)·(d/M) = 1/M.
                let d = cands.len() as f64;
                if !rng.bernoulli(d / self.max_degrees[c]) {
                    return SampleOutcome::Rejected;
                }
                let picked = cands[rng.index(cands.len())];
                frontier.push((c, picked));
            }
        }
        SampleOutcome::Accepted(Tuple::new(buf))
    }

    fn join_size_hint(&self) -> f64 {
        self.bound
    }
}

/// Builds a uniform sampler for any join shape with the requested weight
/// instantiation.
pub fn build_sampler(
    spec: Arc<JoinSpec>,
    kind: WeightKind,
) -> Result<Box<dyn JoinSampler>, JoinError> {
    Ok(match kind {
        WeightKind::Exact => Box::new(ExactWeightSampler::new(spec)?),
        WeightKind::ExtendedOlken => Box::new(OlkenSampler::new(spec)?),
        WeightKind::WanderJoin => Box::new(crate::wander::WanderSampler::new(spec)?),
    })
}

/// The exact size of any join: EW total weight for acyclic specs; full
/// execution for cyclic specs (ground-truth path only).
pub fn exact_join_size(spec: &JoinSpec) -> Result<f64, JoinError> {
    if has_graph_cycle(spec) {
        Ok(execute(spec).len() as f64)
    } else {
        Ok(ExactWeightSampler::new(Arc::new(spec.clone()))?.exact_size())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use suj_storage::{FxHashMap, Relation, Schema};

    fn rel(name: &str, attrs: &[&str], rows: Vec<Vec<i64>>) -> Arc<Relation> {
        let schema = Schema::new(attrs.iter().copied()).unwrap();
        let tuples = rows
            .into_iter()
            .map(|vals| vals.into_iter().map(Value::int).collect())
            .collect();
        Arc::new(Relation::new(name, schema, tuples).unwrap())
    }

    fn skewed_chain() -> Arc<JoinSpec> {
        // Skewed degrees so EO rejects and EW must weight properly.
        let r = rel(
            "r",
            &["a", "b"],
            vec![vec![1, 10], vec![2, 10], vec![3, 20], vec![4, 30]],
        );
        let s = rel(
            "s",
            &["b", "c"],
            vec![
                vec![10, 100],
                vec![10, 101],
                vec![10, 102],
                vec![20, 200],
                vec![40, 400],
            ],
        );
        let t = rel(
            "t",
            &["c", "d"],
            vec![vec![100, 1], vec![100, 2], vec![101, 3], vec![200, 4]],
        );
        Arc::new(JoinSpec::chain("skew", vec![r, s, t]).unwrap())
    }

    #[test]
    fn ew_total_matches_execution() {
        let spec = skewed_chain();
        let sampler = ExactWeightSampler::new(spec.clone()).unwrap();
        let actual = execute(&spec).len() as f64;
        assert_eq!(sampler.exact_size(), actual);
        assert_eq!(sampler.join_size_hint(), actual);
        assert!(sampler.size_is_exact());
    }

    #[test]
    fn ew_never_rejects_on_nonempty_acyclic_join() {
        let spec = skewed_chain();
        let sampler = ExactWeightSampler::new(spec).unwrap();
        let mut rng = SujRng::seed_from_u64(1);
        for _ in 0..200 {
            assert!(matches!(
                sampler.sample(&mut rng),
                SampleOutcome::Accepted(_)
            ));
        }
    }

    fn empirical_counts(
        sampler: &dyn JoinSampler,
        draws: usize,
        seed: u64,
    ) -> FxHashMap<Tuple, u64> {
        let mut rng = SujRng::seed_from_u64(seed);
        let mut counts: FxHashMap<Tuple, u64> = FxHashMap::default();
        let mut accepted = 0usize;
        while accepted < draws {
            if let SampleOutcome::Accepted(t) = sampler.sample(&mut rng) {
                *counts.entry(t).or_insert(0) += 1;
                accepted += 1;
            }
        }
        counts
    }

    fn assert_uniform(sampler: &dyn JoinSampler, seed: u64) {
        let result = execute(sampler.spec());
        let universe = result.distinct_set();
        let k = universe.len();
        assert!(k >= 2, "need a multi-tuple join for the test");
        let draws = 2_000 * k;
        let counts = empirical_counts(sampler, draws, seed);
        // Every sampled tuple must be a real result tuple.
        for t in counts.keys() {
            assert!(universe.contains(t), "sampled non-member {t}");
        }
        let observed: Vec<u64> = result
            .tuples()
            .iter()
            .map(|t| counts.get(t).copied().unwrap_or(0))
            .collect();
        let outcome = suj_stats::chi_square_test(&observed).unwrap();
        assert!(
            outcome.p_value > 0.001,
            "sampler not uniform: chi2={} p={}",
            outcome.statistic,
            outcome.p_value
        );
    }

    #[test]
    fn ew_samples_uniformly() {
        let sampler = ExactWeightSampler::new(skewed_chain()).unwrap();
        assert_uniform(&sampler, 42);
    }

    #[test]
    fn eo_samples_uniformly() {
        let sampler = OlkenSampler::new(skewed_chain()).unwrap();
        assert_uniform(&sampler, 43);
    }

    #[test]
    fn eo_bound_dominates_exact_size() {
        let spec = skewed_chain();
        let eo = OlkenSampler::new(spec.clone()).unwrap();
        let ew = ExactWeightSampler::new(spec).unwrap();
        assert!(eo.bound() >= ew.exact_size());
    }

    #[test]
    fn eo_dangling_elimination_shrinks_bound() {
        // Root row with b=30 has no match in s: live roots = 3 of 4.
        let spec = skewed_chain();
        let eo = OlkenSampler::new(spec).unwrap();
        assert_eq!(eo.live_root_count(), 3);
    }

    #[test]
    fn star_join_sampling_uniform() {
        let spec = Arc::new(
            JoinSpec::natural(
                "star",
                vec![
                    rel("c", &["a", "b"], vec![vec![1, 2], vec![3, 2], vec![1, 4]]),
                    rel(
                        "l1",
                        &["a", "x"],
                        vec![vec![1, 10], vec![1, 11], vec![3, 12]],
                    ),
                    rel(
                        "l2",
                        &["b", "y"],
                        vec![vec![2, 20], vec![2, 21], vec![4, 22]],
                    ),
                ],
            )
            .unwrap(),
        );
        let ew = ExactWeightSampler::new(spec.clone()).unwrap();
        assert_uniform(&ew, 7);
        let eo = OlkenSampler::new(spec).unwrap();
        assert_uniform(&eo, 8);
    }

    fn triangle_spec() -> Arc<JoinSpec> {
        Arc::new(
            JoinSpec::natural(
                "tri",
                vec![
                    rel(
                        "x",
                        &["a", "b"],
                        vec![vec![1, 2], vec![1, 9], vec![5, 2], vec![5, 6]],
                    ),
                    rel(
                        "y",
                        &["b", "c"],
                        vec![vec![2, 3], vec![2, 4], vec![9, 4], vec![6, 3]],
                    ),
                    rel(
                        "z",
                        &["c", "a"],
                        vec![vec![3, 1], vec![4, 5], vec![4, 1], vec![3, 5]],
                    ),
                ],
            )
            .unwrap(),
        )
    }

    #[test]
    fn cyclic_join_sampling_uniform() {
        let spec = triangle_spec();
        assert!(execute(&spec).len() >= 2);
        let ew = build_sampler(spec.clone(), WeightKind::Exact).unwrap();
        assert_uniform(ew.as_ref(), 11);
        let eo = build_sampler(spec.clone(), WeightKind::ExtendedOlken).unwrap();
        assert_uniform(eo.as_ref(), 12);
        let wj = build_sampler(spec.clone(), WeightKind::WanderJoin).unwrap();
        assert_uniform(wj.as_ref(), 13);
    }

    #[test]
    fn wander_kind_samples_uniformly_on_chains() {
        let sampler = build_sampler(skewed_chain(), WeightKind::WanderJoin).unwrap();
        assert_uniform(sampler.as_ref(), 14);
    }

    #[test]
    fn cyclic_sizes_and_hints() {
        let spec = triangle_spec();
        let actual = execute(&spec).len() as f64;
        assert_eq!(exact_join_size(&spec).unwrap(), actual);
        // The EW hint on a cyclic spec is the spanning-join size — an
        // upper bound, flagged as inexact.
        let ew = ExactWeightSampler::new(spec).unwrap();
        assert!(!ew.size_is_exact());
        assert!(ew.join_size_hint() >= actual);
    }

    #[test]
    fn cyclic_samples_satisfy_all_edges() {
        let spec = triangle_spec();
        let universe = execute(&spec).distinct_set();
        let sampler = build_sampler(spec, WeightKind::Exact).unwrap();
        let mut rng = SujRng::seed_from_u64(19);
        let mut accepted = 0;
        for _ in 0..2000 {
            if let SampleOutcome::Accepted(t) = sampler.sample(&mut rng) {
                assert!(universe.contains(&t), "inconsistent cyclic sample {t}");
                accepted += 1;
            }
        }
        assert!(accepted > 0, "sampler never accepted");
    }

    #[test]
    fn empty_join_always_rejects() {
        let spec = Arc::new(
            JoinSpec::chain(
                "empty",
                vec![
                    rel("r", &["a", "b"], vec![vec![1, 10]]),
                    rel("s", &["b", "c"], vec![vec![99, 1]]),
                ],
            )
            .unwrap(),
        );
        let ew = ExactWeightSampler::new(spec.clone()).unwrap();
        let eo = OlkenSampler::new(spec).unwrap();
        let mut rng = SujRng::seed_from_u64(3);
        for _ in 0..50 {
            assert_eq!(ew.sample(&mut rng), SampleOutcome::Rejected);
            assert_eq!(eo.sample(&mut rng), SampleOutcome::Rejected);
        }
        let (t, tries) = ew.sample_until_accepted(&mut rng, 10);
        assert!(t.is_none());
        assert_eq!(tries, 10);
    }

    #[test]
    fn single_relation_sampling() {
        let spec = Arc::new(
            JoinSpec::natural(
                "one",
                vec![rel("r", &["a"], vec![vec![1], vec![2], vec![3]])],
            )
            .unwrap(),
        );
        let sampler = ExactWeightSampler::new(spec).unwrap();
        assert_eq!(sampler.exact_size(), 3.0);
        assert_uniform(&sampler, 5);
    }

    #[test]
    fn weights_expose_per_row_counts() {
        let spec = skewed_chain();
        let sampler = ExactWeightSampler::new(spec.clone()).unwrap();
        // Row (1,10) of r joins s-rows {100,101,102}; t matches:
        // 100→2, 101→1, 102→0 → weight 3.
        assert_eq!(sampler.weights_of(0)[0], 3.0);
        // Row (4,30) is dangling → 0.
        assert_eq!(sampler.weights_of(0)[3], 0.0);
    }
}
