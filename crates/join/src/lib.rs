//! Join specifications, execution, and random sampling over joins.
//!
//! This crate is the "sampling over a single join" substrate the union
//! framework builds on (§3.2 of the paper adopts Zhao et al.'s SIGMOD'18
//! framework as its subroutine; we implement it from scratch here):
//!
//! * [`spec`] — multi-way equi-join specifications over named relations
//!   with natural-join semantics and canonical output schemas.
//! * [`graph`] — join graph analysis: connectivity, GYO hypergraph
//!   acyclicity, chain/acyclic/cyclic classification.
//! * [`tree`] — rooted join trees (the processing order for execution
//!   and sampling).
//! * [`exec`] — full join materialization (the `FullJoinUnion` baseline's
//!   engine) via pipelined hash joins.
//! * [`membership`] — the membership oracle: decide `t ∈ J` with hash
//!   lookups only (§6.2's "(N−1)×(M−1) queries with key").
//! * [`bounds`] — extended Olken join-size upper bounds (§3.2).
//! * [`weights`] — Exact-Weight and Extended-Olken weight instantiation
//!   plus the accept/reject samplers built on them.
//! * [`wander`] — wander-join random walks and the walk-based uniform
//!   sampler (§6.1).
//! * [`cyclic`] — AGM-bound box-splitting sampling for graph-cyclic
//!   joins: LP-free fractional edge covers plus a box descent over
//!   sorted-index range oracles (exactly uniform, no residual
//!   re-check).
//! * [`residual`] — cyclic joins: cycle breaking into a skeleton join
//!   plus a materialized residual relation (§8.2).
//! * [`template`] — the splitting method: standard templates, pairwise
//!   attribute scores, two-attribute split joins with degree-bound
//!   propagation (§5.2, §8.1).
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use suj_join::{JoinSpec, JoinSampler, SampleOutcome, WeightKind};
//! use suj_join::weights::build_sampler;
//! use suj_stats::SujRng;
//! use suj_storage::{Relation, Schema, Tuple, Value};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let r = Arc::new(Relation::new("r", Schema::new(["a", "b"])?, vec![
//!     Tuple::new(vec![Value::int(1), Value::int(10)]),
//!     Tuple::new(vec![Value::int(2), Value::int(10)]),
//! ])?);
//! let s = Arc::new(Relation::new("s", Schema::new(["b", "c"])?, vec![
//!     Tuple::new(vec![Value::int(10), Value::int(7)]),
//! ])?);
//! let spec = Arc::new(JoinSpec::chain("demo", vec![r, s])?);
//!
//! // Exact-weight sampling: uniform over the join result, no rejection.
//! let sampler = build_sampler(spec, WeightKind::Exact)?;
//! assert_eq!(sampler.join_size_hint(), 2.0);
//! let mut rng = SujRng::seed_from_u64(1);
//! match sampler.sample(&mut rng) {
//!     SampleOutcome::Accepted(t) => assert_eq!(t.arity(), 3),
//!     SampleOutcome::Rejected => unreachable!("EW never rejects here"),
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod cyclic;
pub mod error;
pub mod exec;
pub mod graph;
pub mod membership;
pub mod residual;
pub mod spec;
pub mod template;
pub mod tree;
pub mod wander;
pub mod weights;

pub use cyclic::{CyclicJoinSampler, FractionalEdgeCover};
pub use error::JoinError;
pub use exec::JoinResult;
pub use graph::{JoinGraph, JoinShape};
pub use membership::MembershipOracle;
pub use spec::{JoinEdge, JoinSpec};
pub use tree::JoinTree;
pub use wander::{WalkOutcome, WanderJoin, WanderSampler};
pub use weights::{
    alias_builds, EwArtifacts, ExactWeightSampler, JoinSampler, OlkenSampler, RowDraw,
    SampleOutcome, SizeInfo, WeightKind,
};

/// Commonly used items.
pub mod prelude {
    pub use crate::bounds::olken_bound;
    pub use crate::cyclic::{CyclicJoinSampler, FractionalEdgeCover};
    pub use crate::error::JoinError;
    pub use crate::exec::JoinResult;
    pub use crate::graph::{JoinGraph, JoinShape};
    pub use crate::membership::MembershipOracle;
    pub use crate::residual::decompose_cyclic;
    pub use crate::spec::{JoinEdge, JoinSpec};
    pub use crate::template::{SplitJoin, Template};
    pub use crate::tree::JoinTree;
    pub use crate::wander::{WalkOutcome, WanderJoin, WanderSampler};
    pub use crate::weights::{
        alias_builds, EwArtifacts, ExactWeightSampler, JoinSampler, OlkenSampler, RowDraw,
        SampleOutcome, SizeInfo, WeightKind,
    };
}
