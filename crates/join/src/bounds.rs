//! Extended Olken join-size upper bounds.
//!
//! §3.2 extends Olken's bound to joins of arbitrary length:
//! `|J| ≤ |R_1| · Π_{i} M_{A_i}(R_{i+1})`, where `M_{A_i}(R_{i+1})` is
//! the maximum frequency of any join-attribute value in the next
//! relation. For tree-shaped joins the product runs over every non-root
//! node's probe attributes; for cyclic joins the bound over any spanning
//! tree remains valid (the dropped edges only filter tuples out).

use crate::error::JoinError;
use crate::spec::JoinSpec;
use suj_storage::HashIndex;

/// Per-node maximum degrees along a spanning tree of the join graph,
/// rooted at relation 0. `max_degrees[i]` is `M(probe attrs)(R_i)` for
/// non-root nodes and 1 for the root.
pub fn spanning_max_degrees(spec: &JoinSpec) -> Vec<usize> {
    let n = spec.n_relations();
    let mut degrees = vec![1usize; n];
    let mut visited = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(0usize);
    visited[0] = true;
    while let Some(v) = queue.pop_front() {
        for u in spec.neighbors(v) {
            if !visited[u] {
                visited[u] = true;
                let edge = spec.edge_between(v, u).expect("neighbor implies edge");
                let index = HashIndex::build(spec.relation(u), &edge.attrs);
                degrees[u] = index.max_degree();
                queue.push_back(u);
            }
        }
    }
    degrees
}

/// The extended Olken upper bound on the join size.
///
/// Exact-zero relations yield a bound of zero. Works for chain, acyclic,
/// and cyclic specs (spanning-tree relaxation).
pub fn olken_bound(spec: &JoinSpec) -> Result<f64, JoinError> {
    if spec.n_relations() == 0 {
        return Err(JoinError::NoRelations);
    }
    let root_size = spec.relation(0).len() as f64;
    let product: f64 = spanning_max_degrees(spec)
        .iter()
        .skip(1)
        .map(|&m| m as f64)
        .product();
    Ok(root_size * product)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use crate::spec::JoinSpec;
    use std::sync::Arc;
    use suj_storage::{Relation, Schema, Value};

    fn rel(name: &str, attrs: &[&str], rows: Vec<Vec<i64>>) -> Arc<Relation> {
        let schema = Schema::new(attrs.iter().copied()).unwrap();
        let tuples = rows
            .into_iter()
            .map(|vals| vals.into_iter().map(Value::int).collect())
            .collect();
        Arc::new(Relation::new(name, schema, tuples).unwrap())
    }

    #[test]
    fn bound_dominates_true_size_chain() {
        let spec = JoinSpec::chain(
            "j",
            vec![
                rel(
                    "r",
                    &["a", "b"],
                    vec![vec![1, 10], vec![2, 10], vec![3, 20]],
                ),
                rel(
                    "s",
                    &["b", "c"],
                    vec![vec![10, 100], vec![10, 101], vec![20, 200]],
                ),
                rel(
                    "t",
                    &["c", "d"],
                    vec![vec![100, 1], vec![200, 2], vec![200, 3]],
                ),
            ],
        )
        .unwrap();
        let bound = olken_bound(&spec).unwrap();
        let actual = execute(&spec).len() as f64;
        assert!(bound >= actual, "bound {bound} < actual {actual}");
        // |r|=3, M_b(s)=2, M_c(t)=2 → 12.
        assert_eq!(bound, 12.0);
        // r⋈s has 5 rows; joining t keeps c∈{100,200}: 2·1 + 1·2 = 4.
        assert_eq!(actual, 4.0);
    }

    #[test]
    fn bound_exact_for_key_joins() {
        // When every join attribute is a key on the probe side, the
        // Olken bound equals |R1| and the join is at most that size.
        let spec = JoinSpec::chain(
            "j",
            vec![
                rel(
                    "fact",
                    &["k", "x"],
                    vec![vec![1, 0], vec![2, 0], vec![3, 0]],
                ),
                rel("dim", &["k", "y"], vec![vec![1, 5], vec![2, 6]]),
            ],
        )
        .unwrap();
        let bound = olken_bound(&spec).unwrap();
        assert_eq!(bound, 3.0);
        assert_eq!(execute(&spec).len(), 2);
    }

    #[test]
    fn empty_relation_gives_zero_bound() {
        let spec = JoinSpec::chain(
            "j",
            vec![
                rel("r", &["a", "b"], vec![vec![1, 10]]),
                rel("s", &["b", "c"], vec![]),
            ],
        )
        .unwrap();
        assert_eq!(olken_bound(&spec).unwrap(), 0.0);
    }

    #[test]
    fn cyclic_bound_still_dominates() {
        let spec = JoinSpec::natural(
            "tri",
            vec![
                rel("x", &["a", "b"], vec![vec![1, 2], vec![1, 9], vec![5, 2]]),
                rel("y", &["b", "c"], vec![vec![2, 3], vec![2, 4], vec![9, 4]]),
                rel("z", &["c", "a"], vec![vec![3, 1], vec![4, 5], vec![4, 1]]),
            ],
        )
        .unwrap();
        let bound = olken_bound(&spec).unwrap();
        let actual = execute(&spec).len() as f64;
        assert!(bound >= actual, "bound {bound} < actual {actual}");
    }

    #[test]
    fn star_bound() {
        let spec = JoinSpec::natural(
            "star",
            vec![
                rel("c", &["a", "b"], vec![vec![1, 2], vec![3, 2]]),
                rel(
                    "l1",
                    &["a", "x"],
                    vec![vec![1, 10], vec![1, 11], vec![3, 12]],
                ),
                rel("l2", &["b", "y"], vec![vec![2, 20], vec![2, 21]]),
            ],
        )
        .unwrap();
        // |c|=2 × M_a(l1)=2 × M_b(l2)=2 = 8.
        assert_eq!(olken_bound(&spec).unwrap(), 8.0);
        assert!(execute(&spec).len() as f64 <= 8.0);
    }

    #[test]
    fn single_relation_bound_is_its_size() {
        let spec =
            JoinSpec::natural("one", vec![rel("r", &["a"], vec![vec![1], vec![2]])]).unwrap();
        assert_eq!(olken_bound(&spec).unwrap(), 2.0);
    }
}
