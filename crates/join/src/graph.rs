//! Join graph analysis.
//!
//! Classifies joins into the paper's three classes — chain, acyclic,
//! cyclic (§2) — and provides the acyclicity machinery: simple-graph
//! cycle detection over the relation graph and the GYO ear-removal test
//! for hypergraph (α-)acyclicity, which is the textbook-correct notion
//! for join queries.

use crate::spec::JoinSpec;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Topological class of a join.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinShape {
    /// Relations form a path: `R1 ⋈ R2 ⋈ … ⋈ Rn`.
    Chain,
    /// The join graph is a tree (but not a path), or trivially a single
    /// relation.
    Acyclic,
    /// The join graph contains a cycle (e.g. the self-join query `J_W` of
    /// Fig. 1 or a triangle query).
    Cyclic,
}

/// Classifies a join spec by the shape of its relation graph.
pub fn classify(spec: &JoinSpec) -> JoinShape {
    let n = spec.n_relations();
    if n <= 1 {
        return JoinShape::Chain;
    }
    if has_graph_cycle(spec) {
        return JoinShape::Cyclic;
    }
    // Tree: a chain iff every node has degree ≤ 2.
    let is_path = (0..n).all(|i| spec.neighbors(i).len() <= 2);
    if is_path {
        JoinShape::Chain
    } else {
        JoinShape::Acyclic
    }
}

/// Whether the relation graph (nodes = relations, edges = join edges)
/// contains a cycle.
pub fn has_graph_cycle(spec: &JoinSpec) -> bool {
    let n = spec.n_relations();
    // Distinct undirected edges.
    let mut edges: BTreeSet<(usize, usize)> = BTreeSet::new();
    for e in spec.edges() {
        if e.left != e.right {
            edges.insert((e.left.min(e.right), e.left.max(e.right)));
        }
    }
    // Union-find: a cycle exists iff some edge connects already-joined
    // components.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for (a, b) in edges {
        let ra = find(&mut parent, a);
        let rb = find(&mut parent, b);
        if ra == rb {
            return true;
        }
        parent[ra] = rb;
    }
    false
}

/// Analyzed join graph of one [`JoinSpec`]: the cyclicity facts the
/// planner and sampler routing consume, computed once.
///
/// Two notions of cyclicity coexist and both matter:
///
/// * **Graph cyclicity** ([`is_cyclic`](Self::is_cyclic)) — the simple
///   relation graph (nodes = relations, edges = join edges) contains a
///   cycle. This is the routing-relevant notion: a tree walk over such
///   a spec must *drop* the cycle-closing equalities and re-check them
///   as residual predicates, so the box-splitting sampler takes over
///   instead.
/// * **α-acyclicity** ([`is_alpha_acyclic`](Self::is_alpha_acyclic)) —
///   the GYO hypergraph notion. A graph-cyclic spec can still be
///   α-acyclic (ears absorbed by a wider relation); the distinction is
///   surfaced for diagnostics and planner explanations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinGraph {
    shape: JoinShape,
    graph_cyclic: bool,
    alpha_acyclic: bool,
}

impl JoinGraph {
    /// Analyzes `spec`.
    pub fn of(spec: &JoinSpec) -> Self {
        Self {
            shape: classify(spec),
            graph_cyclic: has_graph_cycle(spec),
            alpha_acyclic: gyo_acyclic(spec),
        }
    }

    /// The spec's topological class (chain / acyclic tree / cyclic).
    pub fn shape(&self) -> JoinShape {
        self.shape
    }

    /// Whether the relation graph contains a cycle — the condition
    /// under which a spanning-tree walk drops equalities and the
    /// planner routes to the AGM box-splitting sampler.
    pub fn is_cyclic(&self) -> bool {
        self.graph_cyclic
    }

    /// Whether the hypergraph is α-acyclic under GYO ear removal.
    pub fn is_alpha_acyclic(&self) -> bool {
        self.alpha_acyclic
    }
}

/// GYO ear-removal test for hypergraph α-acyclicity.
///
/// The hypergraph has one hyperedge per relation: its attribute set.
/// Repeat until fixpoint: (1) delete attributes that occur in exactly one
/// hyperedge; (2) delete a hyperedge that is a subset of another.
/// Acyclic iff everything is eventually deleted.
pub fn gyo_acyclic(spec: &JoinSpec) -> bool {
    let mut hyperedges: Vec<Option<BTreeSet<Arc<str>>>> = spec
        .relations()
        .iter()
        .map(|r| Some(r.schema().attrs().iter().cloned().collect()))
        .collect();

    loop {
        let mut changed = false;

        // Rule 1: remove attributes appearing in exactly one hyperedge.
        let mut attr_count: std::collections::HashMap<Arc<str>, usize> =
            std::collections::HashMap::new();
        for he in hyperedges.iter().flatten() {
            for a in he {
                *attr_count.entry(a.clone()).or_insert(0) += 1;
            }
        }
        for he in hyperedges.iter_mut().flatten() {
            let before = he.len();
            he.retain(|a| attr_count[a] > 1);
            if he.len() != before {
                changed = true;
            }
        }

        // Rule 2: remove a hyperedge contained in another (or now empty).
        let live: Vec<usize> = (0..hyperedges.len())
            .filter(|&i| hyperedges[i].is_some())
            .collect();
        'outer: for &i in &live {
            let hi = hyperedges[i].as_ref().unwrap().clone();
            if hi.is_empty() {
                hyperedges[i] = None;
                changed = true;
                continue;
            }
            for &j in &live {
                if i == j {
                    continue;
                }
                if let Some(hj) = hyperedges[j].as_ref() {
                    if hi.is_subset(hj) {
                        hyperedges[i] = None;
                        changed = true;
                        continue 'outer;
                    }
                }
            }
        }

        let remaining = hyperedges.iter().filter(|h| h.is_some()).count();
        if remaining <= 1 {
            return true;
        }
        if !changed {
            return false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::JoinSpec;
    use std::sync::Arc;
    use suj_storage::{Relation, Schema};

    fn rel(name: &str, attrs: &[&str]) -> Arc<Relation> {
        Arc::new(Relation::new(name, Schema::new(attrs.iter().copied()).unwrap(), vec![]).unwrap())
    }

    fn spec(name: &str, rels: Vec<Arc<Relation>>) -> JoinSpec {
        JoinSpec::natural(name, rels).unwrap()
    }

    #[test]
    fn chain_is_chain() {
        let s = spec(
            "c",
            vec![
                rel("r1", &["a", "b"]),
                rel("r2", &["b", "c"]),
                rel("r3", &["c", "d"]),
            ],
        );
        assert_eq!(classify(&s), JoinShape::Chain);
        assert!(!has_graph_cycle(&s));
        assert!(gyo_acyclic(&s));
    }

    #[test]
    fn star_is_acyclic_not_chain() {
        // Fig. 3a-like: center with three leaves.
        let s = spec(
            "star",
            vec![
                rel("c", &["a", "b", "d"]),
                rel("l1", &["a", "x"]),
                rel("l2", &["b", "y"]),
                rel("l3", &["d", "z"]),
            ],
        );
        assert_eq!(classify(&s), JoinShape::Acyclic);
        assert!(gyo_acyclic(&s));
    }

    #[test]
    fn triangle_is_cyclic() {
        let s = spec(
            "tri",
            vec![
                rel("x", &["a", "b"]),
                rel("y", &["b", "c"]),
                rel("z", &["c", "a"]),
            ],
        );
        assert_eq!(classify(&s), JoinShape::Cyclic);
        assert!(has_graph_cycle(&s));
        assert!(!gyo_acyclic(&s));
    }

    #[test]
    fn fig3b_cycle_is_cyclic() {
        // Fig. 3b: AB, BCD, DE, CF, EF — the EF relation closes a cycle.
        let s = spec(
            "fig3b",
            vec![
                rel("ab", &["a", "b"]),
                rel("bcd", &["b", "c", "d"]),
                rel("de", &["d", "e"]),
                rel("cf", &["c", "f"]),
                rel("ef", &["e", "f"]),
            ],
        );
        assert_eq!(classify(&s), JoinShape::Cyclic);
        assert!(!gyo_acyclic(&s));
    }

    #[test]
    fn single_relation_is_chain() {
        let s = spec("one", vec![rel("r", &["a"])]);
        assert_eq!(classify(&s), JoinShape::Chain);
        assert!(gyo_acyclic(&s));
    }

    #[test]
    fn two_relations_are_chain() {
        let s = spec("two", vec![rel("r", &["a", "b"]), rel("t", &["b", "c"])]);
        assert_eq!(classify(&s), JoinShape::Chain);
    }

    #[test]
    fn gyo_accepts_alpha_acyclic_nonsimple_case() {
        // R(a,b,c) with ears S(a,b), T(b,c): graph has a triangle of
        // pairwise shared attrs, but the hypergraph is α-acyclic (S and T
        // are subsets of R after rule application).
        let s = spec(
            "ears",
            vec![
                rel("r", &["a", "b", "c"]),
                rel("s", &["a", "b"]),
                rel("t", &["b", "c"]),
            ],
        );
        assert!(gyo_acyclic(&s));
        // The simple-graph classification is conservative here (sees a
        // cycle); this is exactly why the residual machinery treats
        // graph-cyclic specs by decomposition.
        assert_eq!(classify(&s), JoinShape::Cyclic);
    }

    #[test]
    fn join_graph_summarizes_both_notions() {
        let tri = spec(
            "tri",
            vec![
                rel("x", &["a", "b"]),
                rel("y", &["b", "c"]),
                rel("z", &["c", "a"]),
            ],
        );
        let g = JoinGraph::of(&tri);
        assert!(g.is_cyclic());
        assert!(!g.is_alpha_acyclic());
        assert_eq!(g.shape(), JoinShape::Cyclic);

        let chain = spec("c", vec![rel("r1", &["a", "b"]), rel("r2", &["b", "c"])]);
        let g = JoinGraph::of(&chain);
        assert!(!g.is_cyclic());
        assert!(g.is_alpha_acyclic());
        assert_eq!(g.shape(), JoinShape::Chain);

        // Graph-cyclic yet α-acyclic: the diagnostic distinction.
        let ears = spec(
            "ears",
            vec![
                rel("r", &["a", "b", "c"]),
                rel("s", &["a", "b"]),
                rel("t", &["b", "c"]),
            ],
        );
        let g = JoinGraph::of(&ears);
        assert!(g.is_cyclic());
        assert!(g.is_alpha_acyclic());
    }
}
