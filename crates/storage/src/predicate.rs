//! Selection predicates.
//!
//! §8.3 supports selections in two ways: push-down (filter base relations
//! before sampling — works for both estimator families) and
//! reject-during-sampling (an extra rejection factor — random-walk only).
//! [`Predicate`] is the schema-independent AST; [`CompiledPredicate`]
//! resolves attribute names to positions once so evaluation in sampling
//! inner loops is allocation-free.

use crate::error::StorageError;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompareOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CompareOp {
    fn eval(self, lhs: &Value, rhs: &Value) -> bool {
        match self {
            CompareOp::Eq => lhs == rhs,
            CompareOp::Ne => lhs != rhs,
            CompareOp::Lt => lhs < rhs,
            CompareOp::Le => lhs <= rhs,
            CompareOp::Gt => lhs > rhs,
            CompareOp::Ge => lhs >= rhs,
        }
    }
}

impl fmt::Display for CompareOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CompareOp::Eq => "=",
            CompareOp::Ne => "!=",
            CompareOp::Lt => "<",
            CompareOp::Le => "<=",
            CompareOp::Gt => ">",
            CompareOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// A selection predicate over attribute names.
#[derive(Debug, Clone)]
pub enum Predicate {
    /// Always true.
    True,
    /// `attr op constant`.
    Compare {
        /// Attribute name.
        attr: Arc<str>,
        /// Comparison operator.
        op: CompareOp,
        /// Constant to compare against.
        value: Value,
    },
    /// Conjunction.
    And(Vec<Predicate>),
    /// Disjunction.
    Or(Vec<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// `attr op value` shorthand.
    pub fn cmp(attr: impl AsRef<str>, op: CompareOp, value: Value) -> Self {
        Predicate::Compare {
            attr: Arc::from(attr.as_ref()),
            op,
            value,
        }
    }

    /// `attr = value` shorthand.
    pub fn eq(attr: impl AsRef<str>, value: Value) -> Self {
        Self::cmp(attr, CompareOp::Eq, value)
    }

    /// `attr BETWEEN lo AND hi` (inclusive) shorthand.
    pub fn between(attr: impl AsRef<str>, lo: Value, hi: Value) -> Self {
        let attr = attr.as_ref();
        Predicate::And(vec![
            Self::cmp(attr, CompareOp::Ge, lo),
            Self::cmp(attr, CompareOp::Le, hi),
        ])
    }

    /// Resolves attribute names against a schema.
    pub fn compile(&self, schema: &Schema) -> Result<CompiledPredicate, StorageError> {
        Ok(CompiledPredicate {
            node: self.compile_node(schema)?,
        })
    }

    fn compile_node(&self, schema: &Schema) -> Result<Node, StorageError> {
        Ok(match self {
            Predicate::True => Node::True,
            Predicate::Compare { attr, op, value } => Node::Compare {
                pos: schema.require(attr)?,
                op: *op,
                value: value.clone(),
            },
            Predicate::And(children) => Node::And(
                children
                    .iter()
                    .map(|c| c.compile_node(schema))
                    .collect::<Result<_, _>>()?,
            ),
            Predicate::Or(children) => Node::Or(
                children
                    .iter()
                    .map(|c| c.compile_node(schema))
                    .collect::<Result<_, _>>()?,
            ),
            Predicate::Not(child) => Node::Not(Box::new(child.compile_node(schema)?)),
        })
    }

    /// Attribute names referenced by this predicate.
    pub fn referenced_attrs(&self) -> Vec<Arc<str>> {
        let mut out = Vec::new();
        self.collect_attrs(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_attrs(&self, out: &mut Vec<Arc<str>>) {
        match self {
            Predicate::True => {}
            Predicate::Compare { attr, .. } => out.push(attr.clone()),
            Predicate::And(cs) | Predicate::Or(cs) => {
                for c in cs {
                    c.collect_attrs(out);
                }
            }
            Predicate::Not(c) => c.collect_attrs(out),
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    True,
    Compare {
        pos: usize,
        op: CompareOp,
        value: Value,
    },
    And(Vec<Node>),
    Or(Vec<Node>),
    Not(Box<Node>),
}

impl Node {
    fn eval(&self, tuple: &Tuple) -> bool {
        match self {
            Node::True => true,
            Node::Compare { pos, op, value } => op.eval(tuple.get(*pos), value),
            Node::And(cs) => cs.iter().all(|c| c.eval(tuple)),
            Node::Or(cs) => cs.iter().any(|c| c.eval(tuple)),
            Node::Not(c) => !c.eval(tuple),
        }
    }
}

/// A predicate with attribute positions resolved; evaluation allocates
/// nothing.
#[derive(Debug, Clone)]
pub struct CompiledPredicate {
    node: Node,
}

impl CompiledPredicate {
    /// Evaluates against a tuple.
    pub fn eval(&self, tuple: &Tuple) -> bool {
        self.node.eval(tuple)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn schema() -> Schema {
        Schema::new(["a", "b", "s"]).unwrap()
    }

    #[test]
    fn comparisons() {
        let s = schema();
        let t = tuple![5i64, 10i64, "mid"];
        for (op, expect) in [
            (CompareOp::Eq, false),
            (CompareOp::Ne, true),
            (CompareOp::Lt, true),
            (CompareOp::Le, true),
            (CompareOp::Gt, false),
            (CompareOp::Ge, false),
        ] {
            let p = Predicate::cmp("a", op, Value::int(7)).compile(&s).unwrap();
            assert_eq!(p.eval(&t), expect, "op {op}");
        }
    }

    #[test]
    fn boolean_composition() {
        let s = schema();
        let t = tuple![5i64, 10i64, "mid"];
        let p = Predicate::And(vec![
            Predicate::cmp("a", CompareOp::Ge, Value::int(1)),
            Predicate::Or(vec![
                Predicate::eq("s", Value::str("mid")),
                Predicate::eq("s", Value::str("high")),
            ]),
        ])
        .compile(&s)
        .unwrap();
        assert!(p.eval(&t));

        let n = Predicate::Not(Box::new(Predicate::True))
            .compile(&s)
            .unwrap();
        assert!(!n.eval(&t));
    }

    #[test]
    fn between_is_inclusive() {
        let s = schema();
        let p = Predicate::between("b", Value::int(10), Value::int(20))
            .compile(&s)
            .unwrap();
        assert!(p.eval(&tuple![0i64, 10i64, "x"]));
        assert!(p.eval(&tuple![0i64, 20i64, "x"]));
        assert!(!p.eval(&tuple![0i64, 21i64, "x"]));
    }

    #[test]
    fn unknown_attribute_fails_compile() {
        let s = schema();
        assert!(Predicate::eq("zz", Value::int(1)).compile(&s).is_err());
    }

    #[test]
    fn referenced_attrs_deduplicated() {
        let p = Predicate::And(vec![
            Predicate::eq("a", Value::int(1)),
            Predicate::eq("b", Value::int(2)),
            Predicate::eq("a", Value::int(3)),
        ]);
        let attrs = p.referenced_attrs();
        assert_eq!(attrs.len(), 2);
    }

    #[test]
    fn empty_and_or_edge_cases() {
        let s = schema();
        let t = tuple![1i64, 2i64, "x"];
        assert!(Predicate::And(vec![]).compile(&s).unwrap().eval(&t));
        assert!(!Predicate::Or(vec![]).compile(&s).unwrap().eval(&t));
    }

    #[test]
    fn cross_type_comparison_uses_type_order() {
        // Int < Str in the total order; predicates never panic.
        let s = schema();
        let p = Predicate::cmp("a", CompareOp::Lt, Value::str("zzz"))
            .compile(&s)
            .unwrap();
        assert!(p.eval(&tuple![1i64, 2i64, "x"]));
    }
}
