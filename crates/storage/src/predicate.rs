//! Selection predicates.
//!
//! §8.3 supports selections in two ways: push-down (filter base relations
//! before sampling — works for both estimator families) and
//! reject-during-sampling (an extra rejection factor — random-walk only).
//! [`Predicate`] is the schema-independent AST; [`CompiledPredicate`]
//! resolves attribute names to positions once so evaluation in sampling
//! inner loops is allocation-free.
//!
//! Two evaluation paths share one compiled tree:
//!
//! * [`CompiledPredicate::eval`] — tuple-at-a-time, for sampled output
//!   tuples (reject-during-sampling) and as the test oracle.
//! * [`CompiledPredicate::select`] — **column-at-a-time**: one
//!   [`SelectionBitmap`] per node, combined with word-wide boolean ops.
//!   Comparisons run as typed loops over the column payloads;
//!   dictionary-encoded string columns evaluate the comparison once per
//!   *distinct* string and map codes through the resulting lookup
//!   table. This is the path push-down filtering and catalog statistics
//!   run on.

use crate::column::Column;
use crate::error::StorageError;
use crate::relation::Relation;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompareOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CompareOp {
    fn eval(self, lhs: &Value, rhs: &Value) -> bool {
        self.matches(lhs.cmp(rhs))
    }

    /// Whether an `lhs.cmp(rhs)` outcome satisfies the operator.
    #[inline]
    fn matches(self, ord: Ordering) -> bool {
        match self {
            CompareOp::Eq => ord == Ordering::Equal,
            CompareOp::Ne => ord != Ordering::Equal,
            CompareOp::Lt => ord == Ordering::Less,
            CompareOp::Le => ord != Ordering::Greater,
            CompareOp::Gt => ord == Ordering::Greater,
            CompareOp::Ge => ord != Ordering::Less,
        }
    }
}

impl fmt::Display for CompareOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CompareOp::Eq => "=",
            CompareOp::Ne => "!=",
            CompareOp::Lt => "<",
            CompareOp::Le => "<=",
            CompareOp::Gt => ">",
            CompareOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// A selection predicate over attribute names.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Always true.
    True,
    /// `attr op constant`.
    Compare {
        /// Attribute name.
        attr: Arc<str>,
        /// Comparison operator.
        op: CompareOp,
        /// Constant to compare against.
        value: Value,
    },
    /// Conjunction.
    And(Vec<Predicate>),
    /// Disjunction.
    Or(Vec<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// `attr op value` shorthand.
    pub fn cmp(attr: impl AsRef<str>, op: CompareOp, value: Value) -> Self {
        Predicate::Compare {
            attr: Arc::from(attr.as_ref()),
            op,
            value,
        }
    }

    /// `attr = value` shorthand.
    pub fn eq(attr: impl AsRef<str>, value: Value) -> Self {
        Self::cmp(attr, CompareOp::Eq, value)
    }

    /// `attr BETWEEN lo AND hi` (inclusive) shorthand.
    pub fn between(attr: impl AsRef<str>, lo: Value, hi: Value) -> Self {
        let attr = attr.as_ref();
        Predicate::And(vec![
            Self::cmp(attr, CompareOp::Ge, lo),
            Self::cmp(attr, CompareOp::Le, hi),
        ])
    }

    /// Resolves attribute names against a schema.
    pub fn compile(&self, schema: &Schema) -> Result<CompiledPredicate, StorageError> {
        Ok(CompiledPredicate {
            node: self.compile_node(schema)?,
        })
    }

    fn compile_node(&self, schema: &Schema) -> Result<Node, StorageError> {
        Ok(match self {
            Predicate::True => Node::True,
            Predicate::Compare { attr, op, value } => Node::Compare {
                pos: schema.require(attr)?,
                op: *op,
                value: value.clone(),
            },
            Predicate::And(children) => Node::And(
                children
                    .iter()
                    .map(|c| c.compile_node(schema))
                    .collect::<Result<_, _>>()?,
            ),
            Predicate::Or(children) => Node::Or(
                children
                    .iter()
                    .map(|c| c.compile_node(schema))
                    .collect::<Result<_, _>>()?,
            ),
            Predicate::Not(child) => Node::Not(Box::new(child.compile_node(schema)?)),
        })
    }

    /// Attribute names referenced by this predicate.
    pub fn referenced_attrs(&self) -> Vec<Arc<str>> {
        let mut out = Vec::new();
        self.collect_attrs(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_attrs(&self, out: &mut Vec<Arc<str>>) {
        match self {
            Predicate::True => {}
            Predicate::Compare { attr, .. } => out.push(attr.clone()),
            Predicate::And(cs) | Predicate::Or(cs) => {
                for c in cs {
                    c.collect_attrs(out);
                }
            }
            Predicate::Not(c) => c.collect_attrs(out),
        }
    }
}

/// A packed row-selection bitmap: bit `i` set means row `i` passes.
/// Combined word-at-a-time by the vectorized predicate evaluator; the
/// tail bits past `len` are kept zero so population counts are exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectionBitmap {
    words: Vec<u64>,
    len: usize,
}

impl SelectionBitmap {
    /// An all-clear bitmap over `len` rows.
    pub fn none(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// An all-set bitmap over `len` rows.
    pub fn all(len: usize) -> Self {
        let mut s = Self {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        s.mask_tail();
        s
    }

    /// Number of rows covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap covers no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether row `i` is selected.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        self.words[i >> 6] & (1u64 << (i & 63)) != 0
    }

    #[inline]
    fn set(&mut self, i: usize) {
        self.words[i >> 6] |= 1u64 << (i & 63);
    }

    /// Number of selected rows (a popcount over the words).
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The selected row ids, ascending.
    pub fn to_row_ids(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.count());
        for (wi, &w) in self.words.iter().enumerate() {
            let mut bits = w;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                out.push((wi * 64 + b) as u32);
                bits &= bits - 1;
            }
        }
        out
    }

    fn and_assign(&mut self, other: &SelectionBitmap) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    fn or_assign(&mut self, other: &SelectionBitmap) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    fn not_assign(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.mask_tail();
    }

    /// Clears the bits past `len` (the invariant every constructor and
    /// `not` restores).
    fn mask_tail(&mut self) {
        let tail = self.len & 63;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    True,
    Compare {
        pos: usize,
        op: CompareOp,
        value: Value,
    },
    And(Vec<Node>),
    Or(Vec<Node>),
    Not(Box<Node>),
}

impl Node {
    fn eval(&self, tuple: &Tuple) -> bool {
        match self {
            Node::True => true,
            Node::Compare { pos, op, value } => op.eval(tuple.get(*pos), value),
            Node::And(cs) => cs.iter().all(|c| c.eval(tuple)),
            Node::Or(cs) => cs.iter().any(|c| c.eval(tuple)),
            Node::Not(c) => !c.eval(tuple),
        }
    }

    fn select(&self, relation: &Relation) -> SelectionBitmap {
        let len = relation.len();
        match self {
            Node::True => SelectionBitmap::all(len),
            Node::Compare { pos, op, value } => compare_column(relation.column(*pos), *op, value),
            Node::And(cs) => {
                let mut acc = SelectionBitmap::all(len);
                for c in cs {
                    acc.and_assign(&c.select(relation));
                }
                acc
            }
            Node::Or(cs) => {
                let mut acc = SelectionBitmap::none(len);
                for c in cs {
                    acc.or_assign(&c.select(relation));
                }
                acc
            }
            Node::Not(c) => {
                let mut b = c.select(relation);
                b.not_assign();
                b
            }
        }
    }
}

/// Vectorized `column op constant`: typed loop per layout, constant
/// fold for cross-variant comparisons (the total order ranks variants,
/// so every valid cell of a typed column compares the same way against
/// a constant of a different variant), and a per-distinct-string lookup
/// table for dictionary-encoded columns.
fn compare_column(col: &Column, op: CompareOp, constant: &Value) -> SelectionBitmap {
    let len = col.len();
    let mut bm = SelectionBitmap::none(len);
    // A NULL cell compares like Value::Null (rank 0): constant per node.
    let null_result = op.eval(&Value::Null, constant);
    match col {
        Column::Int64 { values, validity } => match constant {
            Value::Int(c) => {
                for (i, v) in values.iter().enumerate() {
                    let hit = if validity.is_valid(i) {
                        op.matches(v.cmp(c))
                    } else {
                        null_result
                    };
                    if hit {
                        bm.set(i);
                    }
                }
            }
            other => {
                let cross = op.eval(&Value::Int(0), other);
                fill_const(&mut bm, len, |i| validity.is_valid(i), cross, null_result);
            }
        },
        Column::Float64 { values, validity } => match constant {
            Value::Float(c) => {
                for (i, v) in values.iter().enumerate() {
                    let hit = if validity.is_valid(i) {
                        op.matches(v.total_cmp(c))
                    } else {
                        null_result
                    };
                    if hit {
                        bm.set(i);
                    }
                }
            }
            other => {
                let cross = op.eval(&Value::Float(0.0), other);
                fill_const(&mut bm, len, |i| validity.is_valid(i), cross, null_result);
            }
        },
        Column::Str {
            codes,
            pool,
            validity,
        } => match constant {
            Value::Str(c) => {
                // Evaluate once per distinct string, then map codes.
                let lut: Vec<bool> = pool
                    .strings()
                    .map(|s| op.matches(s.as_ref().cmp(c.as_ref())))
                    .collect();
                for (i, &code) in codes.iter().enumerate() {
                    let hit = if validity.is_valid(i) {
                        lut[code as usize]
                    } else {
                        null_result
                    };
                    if hit {
                        bm.set(i);
                    }
                }
            }
            other => {
                let cross = op.eval(&Value::str(""), other);
                fill_const(&mut bm, len, |i| validity.is_valid(i), cross, null_result);
            }
        },
        Column::Mixed { values } => {
            for (i, v) in values.iter().enumerate() {
                if op.eval(v, constant) {
                    bm.set(i);
                }
            }
        }
    }
    bm
}

/// Fills a bitmap where every valid cell yields `valid_result` and
/// every NULL yields `null_result`.
fn fill_const(
    bm: &mut SelectionBitmap,
    len: usize,
    is_valid: impl Fn(usize) -> bool,
    valid_result: bool,
    null_result: bool,
) {
    if valid_result && null_result {
        *bm = SelectionBitmap::all(len);
        return;
    }
    if !valid_result && !null_result {
        return;
    }
    for i in 0..len {
        if is_valid(i) == valid_result {
            // valid cells when valid_result, nulls when null_result —
            // exactly one of the two is true here.
            bm.set(i);
        }
    }
}

/// A predicate with attribute positions resolved; tuple evaluation
/// allocates nothing, and [`select`](Self::select) evaluates whole
/// relations column-at-a-time.
#[derive(Debug, Clone)]
pub struct CompiledPredicate {
    node: Node,
}

impl CompiledPredicate {
    /// Evaluates against a tuple.
    pub fn eval(&self, tuple: &Tuple) -> bool {
        self.node.eval(tuple)
    }

    /// Evaluates against every row of `relation` column-at-a-time,
    /// returning the selection bitmap. The relation must have the
    /// schema this predicate was compiled against (positions are
    /// resolved, not re-checked).
    pub fn select(&self, relation: &Relation) -> SelectionBitmap {
        self.node.select(relation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn schema() -> Schema {
        Schema::new(["a", "b", "s"]).unwrap()
    }

    fn rel(rows: Vec<Tuple>) -> Relation {
        Relation::new("r", schema(), rows).unwrap()
    }

    #[test]
    fn comparisons() {
        let s = schema();
        let t = tuple![5i64, 10i64, "mid"];
        for (op, expect) in [
            (CompareOp::Eq, false),
            (CompareOp::Ne, true),
            (CompareOp::Lt, true),
            (CompareOp::Le, true),
            (CompareOp::Gt, false),
            (CompareOp::Ge, false),
        ] {
            let p = Predicate::cmp("a", op, Value::int(7)).compile(&s).unwrap();
            assert_eq!(p.eval(&t), expect, "op {op}");
        }
    }

    #[test]
    fn boolean_composition() {
        let s = schema();
        let t = tuple![5i64, 10i64, "mid"];
        let p = Predicate::And(vec![
            Predicate::cmp("a", CompareOp::Ge, Value::int(1)),
            Predicate::Or(vec![
                Predicate::eq("s", Value::str("mid")),
                Predicate::eq("s", Value::str("high")),
            ]),
        ])
        .compile(&s)
        .unwrap();
        assert!(p.eval(&t));

        let n = Predicate::Not(Box::new(Predicate::True))
            .compile(&s)
            .unwrap();
        assert!(!n.eval(&t));
    }

    #[test]
    fn between_is_inclusive() {
        let s = schema();
        let p = Predicate::between("b", Value::int(10), Value::int(20))
            .compile(&s)
            .unwrap();
        assert!(p.eval(&tuple![0i64, 10i64, "x"]));
        assert!(p.eval(&tuple![0i64, 20i64, "x"]));
        assert!(!p.eval(&tuple![0i64, 21i64, "x"]));
    }

    #[test]
    fn unknown_attribute_fails_compile() {
        let s = schema();
        assert!(Predicate::eq("zz", Value::int(1)).compile(&s).is_err());
    }

    #[test]
    fn referenced_attrs_deduplicated() {
        let p = Predicate::And(vec![
            Predicate::eq("a", Value::int(1)),
            Predicate::eq("b", Value::int(2)),
            Predicate::eq("a", Value::int(3)),
        ]);
        let attrs = p.referenced_attrs();
        assert_eq!(attrs.len(), 2);
    }

    #[test]
    fn empty_and_or_edge_cases() {
        let s = schema();
        let t = tuple![1i64, 2i64, "x"];
        assert!(Predicate::And(vec![]).compile(&s).unwrap().eval(&t));
        assert!(!Predicate::Or(vec![]).compile(&s).unwrap().eval(&t));
    }

    #[test]
    fn cross_type_comparison_uses_type_order() {
        // Int < Str in the total order; predicates never panic.
        let s = schema();
        let p = Predicate::cmp("a", CompareOp::Lt, Value::str("zzz"))
            .compile(&s)
            .unwrap();
        assert!(p.eval(&tuple![1i64, 2i64, "x"]));
    }

    /// The vectorized select and the tuple-at-a-time eval must agree
    /// bit for bit.
    fn assert_select_matches_eval(r: &Relation, p: &Predicate) {
        let cp = p.compile(r.schema()).unwrap();
        let bm = cp.select(r);
        assert_eq!(bm.len(), r.len());
        let mut expected = 0usize;
        for i in 0..r.len() {
            let want = cp.eval(&r.tuple_at(i));
            assert_eq!(bm.get(i), want, "row {i} of {p:?}");
            expected += usize::from(want);
        }
        assert_eq!(bm.count(), expected);
        let ids = bm.to_row_ids();
        assert_eq!(ids.len(), expected);
        assert!(ids.iter().all(|&i| bm.get(i as usize)));
    }

    #[test]
    fn select_matches_eval_on_typed_columns() {
        let r = rel(vec![
            tuple![5i64, 10i64, "mid"],
            tuple![7i64, -3i64, "low"],
            tuple![2i64, 10i64, "high"],
            tuple![9i64, 0i64, "mid"],
        ]);
        let preds = vec![
            Predicate::True,
            Predicate::cmp("a", CompareOp::Ge, Value::int(5)),
            Predicate::eq("s", Value::str("mid")),
            Predicate::cmp("s", CompareOp::Gt, Value::str("low")),
            Predicate::Not(Box::new(Predicate::eq("b", Value::int(10)))),
            Predicate::And(vec![
                Predicate::cmp("a", CompareOp::Lt, Value::int(8)),
                Predicate::Or(vec![
                    Predicate::eq("s", Value::str("mid")),
                    Predicate::cmp("b", CompareOp::Le, Value::int(-1)),
                ]),
            ]),
            // Cross-variant comparisons (rank order).
            Predicate::cmp("a", CompareOp::Lt, Value::str("z")),
            Predicate::cmp("s", CompareOp::Lt, Value::int(1)),
            Predicate::eq("a", Value::Null),
        ];
        for p in &preds {
            assert_select_matches_eval(&r, p);
        }
    }

    #[test]
    fn select_handles_nulls_like_eval() {
        let r = rel(vec![
            Tuple::new(vec![Value::Null, Value::int(1), Value::str("x")]),
            Tuple::new(vec![Value::int(3), Value::Null, Value::Null]),
            Tuple::new(vec![Value::int(4), Value::int(2), Value::str("y")]),
        ]);
        for p in [
            Predicate::eq("a", Value::Null),
            Predicate::cmp("a", CompareOp::Ge, Value::Null),
            Predicate::cmp("b", CompareOp::Lt, Value::int(2)),
            Predicate::eq("s", Value::str("x")),
            Predicate::Not(Box::new(Predicate::eq("s", Value::Null))),
        ] {
            assert_select_matches_eval(&r, &p);
        }
    }

    #[test]
    fn select_on_mixed_column() {
        let r = rel(vec![
            Tuple::new(vec![Value::int(1), Value::int(0), Value::str("x")]),
            Tuple::new(vec![Value::str("s"), Value::int(0), Value::str("y")]),
            Tuple::new(vec![Value::float(1.5), Value::int(0), Value::str("z")]),
        ]);
        assert_eq!(r.column(0).kind(), "mixed");
        for p in [
            Predicate::eq("a", Value::int(1)),
            Predicate::cmp("a", CompareOp::Ge, Value::float(1.0)),
            Predicate::cmp("a", CompareOp::Lt, Value::str("t")),
        ] {
            assert_select_matches_eval(&r, &p);
        }
    }

    #[test]
    fn select_empty_relation() {
        let r = rel(vec![]);
        let p = Predicate::eq("a", Value::int(1))
            .compile(r.schema())
            .unwrap();
        let bm = p.select(&r);
        assert_eq!(bm.len(), 0);
        assert!(bm.is_empty());
        assert_eq!(bm.count(), 0);
        assert!(bm.to_row_ids().is_empty());
    }

    #[test]
    fn bitmap_word_boundary_and_not_masking() {
        // 65 rows: the NOT path must keep tail bits clear.
        let rows: Vec<Tuple> = (0..65i64).map(|i| tuple![i, i, "s"]).collect();
        let r = rel(rows);
        let p = Predicate::Not(Box::new(Predicate::cmp(
            "a",
            CompareOp::Lt,
            Value::int(1000),
        )));
        let cp = p.compile(r.schema()).unwrap();
        let bm = cp.select(&r);
        assert_eq!(bm.count(), 0);
        let all = Predicate::True.compile(r.schema()).unwrap().select(&r);
        assert_eq!(all.count(), 65);
        assert_eq!(all.to_row_ids().len(), 65);
    }
}
