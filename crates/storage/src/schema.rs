//! Attribute schemas.
//!
//! The paper assumes "all joins have the same output schema ... in terms
//! of the number and name of attributes" and that "join attributes are
//! standardized to have the same names" (§2). Schemas here are ordered
//! attribute-name lists with O(1) name lookup; self-joins are supported
//! by registering the same data under renamed schemas (e.g. `orderkey1`,
//! `orderkey2` as in Fig. 1's `DoubleOrders_E`).

use crate::error::StorageError;
use crate::hash::FxHashMap;
use std::fmt;
use std::sync::Arc;

/// An ordered list of attribute names with O(1) position lookup.
#[derive(Debug, Clone)]
pub struct Schema {
    attrs: Arc<[Arc<str>]>,
    positions: Arc<FxHashMap<Arc<str>, usize>>,
}

impl Schema {
    /// Builds a schema from attribute names. Fails on duplicates or an
    /// empty list.
    pub fn new<I, S>(names: I) -> Result<Self, StorageError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let attrs: Vec<Arc<str>> = names.into_iter().map(|s| Arc::from(s.as_ref())).collect();
        if attrs.is_empty() {
            return Err(StorageError::EmptySchema);
        }
        let mut positions = FxHashMap::default();
        for (i, a) in attrs.iter().enumerate() {
            if positions.insert(a.clone(), i).is_some() {
                return Err(StorageError::DuplicateAttribute(a.to_string()));
            }
        }
        Ok(Self {
            attrs: attrs.into(),
            positions: Arc::new(positions),
        })
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Attribute names in order.
    pub fn attrs(&self) -> &[Arc<str>] {
        &self.attrs
    }

    /// Name of the attribute at `pos`.
    pub fn attr(&self, pos: usize) -> &Arc<str> {
        &self.attrs[pos]
    }

    /// Position of an attribute by name.
    pub fn position(&self, name: &str) -> Option<usize> {
        self.positions.get(name).copied()
    }

    /// Position of an attribute, as an error if missing.
    pub fn require(&self, name: &str) -> Result<usize, StorageError> {
        self.position(name)
            .ok_or_else(|| StorageError::UnknownAttribute(name.to_string()))
    }

    /// Whether the schema contains an attribute.
    pub fn contains(&self, name: &str) -> bool {
        self.positions.contains_key(name)
    }

    /// Attribute names shared with another schema, in this schema's order.
    pub fn shared_with(&self, other: &Schema) -> Vec<Arc<str>> {
        self.attrs
            .iter()
            .filter(|a| other.contains(a))
            .cloned()
            .collect()
    }

    /// Ordered union of this schema's attributes with another's (first
    /// occurrence wins) — the output schema of a natural join.
    pub fn union(&self, other: &Schema) -> Result<Schema, StorageError> {
        let mut names: Vec<Arc<str>> = self.attrs.to_vec();
        for a in other.attrs.iter() {
            if !self.contains(a) {
                names.push(a.clone());
            }
        }
        Schema::new(names.iter().map(|a| a.as_ref()))
    }

    /// Positions of `names` within this schema, failing on any miss.
    pub fn positions_of(&self, names: &[Arc<str>]) -> Result<Vec<usize>, StorageError> {
        names.iter().map(|n| self.require(n)).collect()
    }

    /// A new schema with attributes renamed through `f`.
    pub fn rename(&self, mut f: impl FnMut(&str) -> String) -> Result<Schema, StorageError> {
        Schema::new(self.attrs.iter().map(|a| f(a)))
    }

    /// Whether two schemas have identical attribute names in identical
    /// order (the paper's "same output schema" requirement).
    pub fn same_as(&self, other: &Schema) -> bool {
        self.attrs.len() == other.attrs.len()
            && self
                .attrs
                .iter()
                .zip(other.attrs.iter())
                .all(|(a, b)| a == b)
    }
}

impl PartialEq for Schema {
    fn eq(&self, other: &Self) -> bool {
        self.same_as(other)
    }
}

impl Eq for Schema {}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_lookup() {
        let s = Schema::new(["a", "b", "c"]).unwrap();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.position("b"), Some(1));
        assert_eq!(s.position("z"), None);
        assert!(s.contains("c"));
        assert_eq!(s.attr(0).as_ref(), "a");
    }

    #[test]
    fn rejects_duplicates_and_empty() {
        assert!(matches!(
            Schema::new(["a", "a"]),
            Err(StorageError::DuplicateAttribute(_))
        ));
        assert!(matches!(
            Schema::new(Vec::<&str>::new()),
            Err(StorageError::EmptySchema)
        ));
    }

    #[test]
    fn shared_and_union() {
        let r = Schema::new(["a", "b"]).unwrap();
        let s = Schema::new(["b", "c"]).unwrap();
        let shared = r.shared_with(&s);
        assert_eq!(shared.len(), 1);
        assert_eq!(shared[0].as_ref(), "b");

        let u = r.union(&s).unwrap();
        assert_eq!(
            u.attrs().iter().map(|a| a.as_ref()).collect::<Vec<_>>(),
            vec!["a", "b", "c"]
        );
    }

    #[test]
    fn union_is_idempotent_on_same_schema() {
        let r = Schema::new(["x", "y"]).unwrap();
        let u = r.union(&r).unwrap();
        assert!(u.same_as(&r));
    }

    #[test]
    fn rename_supports_self_joins() {
        let orders = Schema::new(["orderkey", "custkey"]).unwrap();
        let orders2 = orders.rename(|a| format!("{a}2")).unwrap();
        assert!(orders2.contains("orderkey2"));
        assert!(!orders2.contains("orderkey"));
    }

    #[test]
    fn equality_is_order_sensitive() {
        let a = Schema::new(["x", "y"]).unwrap();
        let b = Schema::new(["y", "x"]).unwrap();
        let c = Schema::new(["x", "y"]).unwrap();
        assert_ne!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn positions_of_reports_missing() {
        let s = Schema::new(["a", "b"]).unwrap();
        let names = [Arc::from("a"), Arc::from("nope")];
        assert!(s.positions_of(&names).is_err());
    }

    #[test]
    fn display_is_parenthesized_list() {
        let s = Schema::new(["k", "v"]).unwrap();
        assert_eq!(s.to_string(), "(k, v)");
    }
}
