//! Typed columnar storage.
//!
//! The prepare path (index builds, histogram probes, §8.3 predicate
//! push-down, the EW weight DP) scans whole relations attribute by
//! attribute. A row-major `Arc<[Tuple]>` of boxed [`Value`]s pays two
//! pointer hops and an enum-tag branch per attribute read; a typed
//! [`Column`] stores the attribute contiguously, so the same scan is a
//! flat array walk. Four layouts cover the `Value` domain:
//!
//! * [`Column::Int64`] / [`Column::Float64`] — plain `Vec` payloads.
//! * [`Column::Str`] — dictionary encoded: dense `u32` codes into an
//!   interned [`StrPool`] of `Arc<str>`s. Cell reads are an index; cell
//!   materialization is an `Arc` bump; equality between two cells of
//!   the same column is a code compare.
//! * [`Column::Mixed`] — the row-store fallback for heterogeneous
//!   columns (dynamically typed inputs such as inferred CSV may mix
//!   variants in one attribute). Keeps the rows→columns→rows round
//!   trip exact for every input.
//!
//! Every typed layout carries a null-[`Validity`] bitmap; a cleared bit
//! reads back as [`Value::Null`].
//!
//! [`CellRef`] is the zero-copy cell view: it hashes and compares
//! exactly like the [`Value`] it denotes (pinned by tests), which is
//! what lets hash indexes and membership tables mix column-side and
//! tuple-side probes in one table.

use crate::hash::{FxHashMap, FxHasher};
use crate::value::Value;
use std::cmp::Ordering;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// An interned pool of distinct strings backing a [`Column::Str`].
///
/// Code `c` denotes `strings[c]`; interning returns the existing code
/// for a known string, so equal cells always carry equal codes.
#[derive(Debug, Clone, Default)]
pub struct StrPool {
    strings: Vec<Arc<str>>,
    lookup: FxHashMap<Arc<str>, u32>,
}

impl StrPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether the pool holds no strings.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// The string behind `code`.
    #[inline]
    pub fn get(&self, code: u32) -> &Arc<str> {
        &self.strings[code as usize]
    }

    /// The code of `s`, if interned.
    #[inline]
    pub fn code_of(&self, s: &str) -> Option<u32> {
        self.lookup.get(s).copied()
    }

    /// Interns `s`, allocating a new `Arc<str>` only for unseen strings.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&code) = self.lookup.get(s) {
            return code;
        }
        self.insert_new(Arc::from(s))
    }

    /// Interns an already-shared string (an `Arc` bump for new entries —
    /// no byte copy).
    pub fn intern_arc(&mut self, s: &Arc<str>) -> u32 {
        if let Some(&code) = self.lookup.get(s.as_ref()) {
            return code;
        }
        self.insert_new(s.clone())
    }

    fn insert_new(&mut self, s: Arc<str>) -> u32 {
        let code = self.strings.len() as u32;
        self.strings.push(s.clone());
        self.lookup.insert(s, code);
        code
    }

    /// Iterates the pooled strings in code order.
    pub fn strings(&self) -> impl Iterator<Item = &Arc<str>> {
        self.strings.iter()
    }

    /// Approximate resident bytes: string payloads, `Arc` headers, and
    /// both sides of the intern table.
    pub fn memory_bytes(&self) -> usize {
        let payload: usize = self.strings.iter().map(|s| s.len()).sum();
        // Each distinct string: one Arc header (2 words) + one Vec slot
        // + one table entry (Arc clone + code + bucket overhead).
        let per_entry = 16 + std::mem::size_of::<Arc<str>>() * 2 + 4 + 8;
        payload + self.strings.len() * per_entry
    }
}

/// Null-validity bitmap of one column. `None` bits mean every row is
/// valid (the common case costs nothing); otherwise bit `i` set means
/// row `i` holds a real value, cleared means NULL.
#[derive(Debug, Clone, Default)]
pub struct Validity {
    bits: Option<Vec<u64>>,
    len: usize,
    null_count: usize,
}

impl Validity {
    /// All-valid validity for `len` rows.
    pub fn all_valid(len: usize) -> Self {
        Self {
            bits: None,
            len,
            null_count: 0,
        }
    }

    /// Number of rows covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap covers no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether row `i` holds a real value (false = NULL).
    #[inline]
    pub fn is_valid(&self, i: usize) -> bool {
        match &self.bits {
            None => true,
            Some(words) => words[i >> 6] & (1u64 << (i & 63)) != 0,
        }
    }

    /// Number of NULL rows.
    pub fn null_count(&self) -> usize {
        self.null_count
    }

    /// Whether any row is NULL.
    pub fn has_nulls(&self) -> bool {
        self.null_count > 0
    }

    /// Appends one row's validity.
    pub fn push(&mut self, valid: bool) {
        if !valid && self.bits.is_none() {
            // First null: materialize the bitmap, all-set so far.
            let words = vec![u64::MAX; self.len.div_ceil(64).max(1)];
            let mut bits = words;
            // Clear the tail beyond `len` to keep the invariant simple.
            for i in self.len..bits.len() * 64 {
                bits[i >> 6] &= !(1u64 << (i & 63));
            }
            self.bits = Some(bits);
        }
        if let Some(bits) = &mut self.bits {
            let word = self.len >> 6;
            if word >= bits.len() {
                bits.push(0);
            }
            if valid {
                bits[word] |= 1u64 << (self.len & 63);
            }
        }
        if !valid {
            self.null_count += 1;
        }
        self.len += 1;
    }

    /// Validity restricted to rows `[lo, hi)`.
    pub fn slice(&self, lo: usize, hi: usize) -> Validity {
        let mut out = Validity::all_valid(0);
        for i in lo..hi {
            out.push(self.is_valid(i));
        }
        out
    }

    /// Validity of the gathered `rows`.
    pub fn gather(&self, rows: &[u32]) -> Validity {
        let mut out = Validity::all_valid(0);
        for &r in rows {
            out.push(self.is_valid(r as usize));
        }
        out
    }

    /// Resident bytes of the bitmap.
    pub fn memory_bytes(&self) -> usize {
        self.bits.as_ref().map_or(0, |b| b.len() * 8)
    }
}

/// Zero-copy view of one cell of one column.
///
/// Hashes and compares exactly like the [`Value`] it denotes: the hash
/// writes the same type rank and payload as [`Value`]'s `Hash` impl,
/// equality and ordering follow the same total order (floats via
/// `total_cmp`, cross-variant by type rank). This identity is what lets
/// [`HashIndex`](crate::index::HashIndex) build from columns while
/// serving `&[Value]` probes out of the same table.
#[derive(Debug, Clone, Copy)]
pub enum CellRef<'a> {
    /// SQL NULL.
    Null,
    /// 64-bit integer.
    Int(i64),
    /// Float (total order, NaN last).
    Float(f64),
    /// Borrowed string.
    Str(&'a str),
}

impl<'a> CellRef<'a> {
    #[inline]
    fn type_rank(&self) -> u8 {
        match self {
            CellRef::Null => 0,
            CellRef::Int(_) => 1,
            CellRef::Float(_) => 2,
            CellRef::Str(_) => 3,
        }
    }

    /// Whether this cell is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, CellRef::Null)
    }

    /// Materializes the cell (allocates for strings — prefer
    /// [`Column::value`], which bumps the pool's `Arc` instead).
    pub fn to_value(&self) -> Value {
        match self {
            CellRef::Null => Value::Null,
            CellRef::Int(i) => Value::Int(*i),
            CellRef::Float(f) => Value::Float(*f),
            CellRef::Str(s) => Value::str(s),
        }
    }

    /// Whether the cell denotes the same value as `v` (the [`Value`]
    /// equality relation).
    #[inline]
    pub fn eq_value(&self, v: &Value) -> bool {
        match (self, v) {
            (CellRef::Null, Value::Null) => true,
            (CellRef::Int(a), Value::Int(b)) => a == b,
            (CellRef::Float(a), Value::Float(b)) => a.total_cmp(b) == Ordering::Equal,
            (CellRef::Str(a), Value::Str(b)) => *a == b.as_ref(),
            _ => false,
        }
    }

    /// Total-order comparison against a [`Value`] (same order as
    /// [`Value::cmp`]).
    #[inline]
    pub fn cmp_value(&self, v: &Value) -> Ordering {
        match (self, v) {
            (CellRef::Null, Value::Null) => Ordering::Equal,
            (CellRef::Int(a), Value::Int(b)) => a.cmp(b),
            (CellRef::Float(a), Value::Float(b)) => a.total_cmp(b),
            (CellRef::Str(a), Value::Str(b)) => (*a).cmp(b.as_ref()),
            _ => self.type_rank().cmp(&value_rank(v)),
        }
    }
}

#[inline]
fn value_rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Int(_) => 1,
        Value::Float(_) => 2,
        Value::Str(_) => 3,
    }
}

impl PartialEq for CellRef<'_> {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (CellRef::Null, CellRef::Null) => true,
            (CellRef::Int(a), CellRef::Int(b)) => a == b,
            (CellRef::Float(a), CellRef::Float(b)) => a.total_cmp(b) == Ordering::Equal,
            (CellRef::Str(a), CellRef::Str(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for CellRef<'_> {}

impl Hash for CellRef<'_> {
    /// Identical to [`Value`]'s `Hash`: type rank, then payload.
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u8(self.type_rank());
        match self {
            CellRef::Null => {}
            CellRef::Int(i) => state.write_u64(*i as u64),
            CellRef::Float(f) => state.write_u64(f.to_bits()),
            CellRef::Str(s) => s.hash(state),
        }
    }
}

impl std::fmt::Display for CellRef<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CellRef::Null => write!(f, "NULL"),
            CellRef::Int(i) => write!(f, "{i}"),
            CellRef::Float(x) => write!(f, "{x}"),
            CellRef::Str(s) => write!(f, "{s}"),
        }
    }
}

/// Fx-hashes a sequence of cells in place — the column-side counterpart
/// of [`hash_values`](crate::hash::hash_values): equal value sequences
/// produce equal hashes no matter which side they are read from.
#[inline]
pub fn hash_cells<'a>(cells: impl IntoIterator<Item = CellRef<'a>>) -> u64 {
    let mut hasher = FxHasher::default();
    for c in cells {
        c.hash(&mut hasher);
    }
    hasher.finish()
}

/// One typed column of a relation (see the module docs for the layout
/// menu).
#[derive(Debug, Clone)]
pub enum Column {
    /// 64-bit integers with a validity bitmap.
    Int64 {
        /// Cell payloads (NULL slots hold 0).
        values: Vec<i64>,
        /// Null-validity bitmap.
        validity: Validity,
    },
    /// Floats with a validity bitmap.
    Float64 {
        /// Cell payloads (NULL slots hold 0.0).
        values: Vec<f64>,
        /// Null-validity bitmap.
        validity: Validity,
    },
    /// Dictionary-encoded strings: `u32` codes into an interned pool.
    Str {
        /// Per-row dictionary codes (NULL slots hold 0; consult the
        /// validity bitmap first).
        codes: Vec<u32>,
        /// The interned string dictionary, shared (`Arc`) across
        /// derived columns — slicing/gathering never copies it.
        pool: Arc<StrPool>,
        /// Null-validity bitmap.
        validity: Validity,
    },
    /// Heterogeneous fallback: the cells verbatim.
    Mixed {
        /// Cell payloads.
        values: Vec<Value>,
    },
}

impl Column {
    /// Number of cells.
    pub fn len(&self) -> usize {
        match self {
            Column::Int64 { values, .. } => values.len(),
            Column::Float64 { values, .. } => values.len(),
            Column::Str { codes, .. } => codes.len(),
            Column::Mixed { values } => values.len(),
        }
    }

    /// Whether the column holds no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Zero-copy view of cell `i`.
    #[inline]
    pub fn cell(&self, i: usize) -> CellRef<'_> {
        match self {
            Column::Int64 { values, validity } => {
                if validity.is_valid(i) {
                    CellRef::Int(values[i])
                } else {
                    CellRef::Null
                }
            }
            Column::Float64 { values, validity } => {
                if validity.is_valid(i) {
                    CellRef::Float(values[i])
                } else {
                    CellRef::Null
                }
            }
            Column::Str {
                codes,
                pool,
                validity,
            } => {
                if validity.is_valid(i) {
                    CellRef::Str(pool.get(codes[i]))
                } else {
                    CellRef::Null
                }
            }
            Column::Mixed { values } => match &values[i] {
                Value::Null => CellRef::Null,
                Value::Int(v) => CellRef::Int(*v),
                Value::Float(v) => CellRef::Float(*v),
                Value::Str(s) => CellRef::Str(s),
            },
        }
    }

    /// Materializes cell `i` (strings are an `Arc` bump out of the
    /// pool — no byte copy, no allocation).
    #[inline]
    pub fn value(&self, i: usize) -> Value {
        match self {
            Column::Int64 { values, validity } => {
                if validity.is_valid(i) {
                    Value::Int(values[i])
                } else {
                    Value::Null
                }
            }
            Column::Float64 { values, validity } => {
                if validity.is_valid(i) {
                    Value::Float(values[i])
                } else {
                    Value::Null
                }
            }
            Column::Str {
                codes,
                pool,
                validity,
            } => {
                if validity.is_valid(i) {
                    Value::Str(pool.get(codes[i]).clone())
                } else {
                    Value::Null
                }
            }
            Column::Mixed { values } => values[i].clone(),
        }
    }

    /// Whether cells `a` and `b` *of this column* are equal. For `Str`
    /// columns this is a dictionary-code compare — the fast path index
    /// builds rely on (both cells share the column's pool).
    #[inline]
    pub fn cells_eq(&self, a: usize, b: usize) -> bool {
        match self {
            Column::Int64 { values, validity } => {
                let (va, vb) = (validity.is_valid(a), validity.is_valid(b));
                va == vb && (!va || values[a] == values[b])
            }
            Column::Float64 { values, validity } => {
                let (va, vb) = (validity.is_valid(a), validity.is_valid(b));
                va == vb && (!va || values[a].total_cmp(&values[b]) == Ordering::Equal)
            }
            Column::Str {
                codes, validity, ..
            } => {
                let (va, vb) = (validity.is_valid(a), validity.is_valid(b));
                va == vb && (!va || codes[a] == codes[b])
            }
            Column::Mixed { values } => values[a] == values[b],
        }
    }

    /// Total-order comparison of cells `a` and `b` *of this column* —
    /// the same order as [`Value::cmp`] (floats via `total_cmp`, NULL
    /// first, cross-variant by type rank). `Str` cells compare by pool
    /// content, not dictionary code: codes are insertion-ordered and
    /// carry no value order.
    #[inline]
    pub fn cells_cmp(&self, a: usize, b: usize) -> Ordering {
        match self {
            Column::Int64 { values, validity } => {
                match (validity.is_valid(a), validity.is_valid(b)) {
                    (true, true) => values[a].cmp(&values[b]),
                    (va, vb) => va.cmp(&vb),
                }
            }
            Column::Float64 { values, validity } => {
                match (validity.is_valid(a), validity.is_valid(b)) {
                    (true, true) => values[a].total_cmp(&values[b]),
                    (va, vb) => va.cmp(&vb),
                }
            }
            Column::Str {
                codes,
                pool,
                validity,
            } => match (validity.is_valid(a), validity.is_valid(b)) {
                (true, true) => {
                    if codes[a] == codes[b] {
                        Ordering::Equal
                    } else {
                        pool.get(codes[a]).cmp(pool.get(codes[b]))
                    }
                }
                (va, vb) => va.cmp(&vb),
            },
            Column::Mixed { values } => values[a].cmp(&values[b]),
        }
    }

    /// The column's validity bitmap, if the layout carries one
    /// (`Mixed` stores NULLs inline).
    pub fn validity(&self) -> Option<&Validity> {
        match self {
            Column::Int64 { validity, .. }
            | Column::Float64 { validity, .. }
            | Column::Str { validity, .. } => Some(validity),
            Column::Mixed { .. } => None,
        }
    }

    /// Number of NULL cells.
    pub fn null_count(&self) -> usize {
        match self {
            Column::Mixed { values } => values.iter().filter(|v| v.is_null()).count(),
            other => other.validity().map_or(0, Validity::null_count),
        }
    }

    /// Cells `[lo, hi)` as a new column (the `Str` pool is shared by
    /// clone; codes stay valid).
    pub fn slice(&self, lo: usize, hi: usize) -> Column {
        match self {
            Column::Int64 { values, validity } => Column::Int64 {
                values: values[lo..hi].to_vec(),
                validity: validity.slice(lo, hi),
            },
            Column::Float64 { values, validity } => Column::Float64 {
                values: values[lo..hi].to_vec(),
                validity: validity.slice(lo, hi),
            },
            Column::Str {
                codes,
                pool,
                validity,
            } => Column::Str {
                codes: codes[lo..hi].to_vec(),
                pool: pool.clone(),
                validity: validity.slice(lo, hi),
            },
            Column::Mixed { values } => Column::Mixed {
                values: values[lo..hi].to_vec(),
            },
        }
    }

    /// The gathered `rows` as a new column (selection materialization).
    pub fn gather(&self, rows: &[u32]) -> Column {
        match self {
            Column::Int64 { values, validity } => Column::Int64 {
                values: rows.iter().map(|&r| values[r as usize]).collect(),
                validity: validity.gather(rows),
            },
            Column::Float64 { values, validity } => Column::Float64 {
                values: rows.iter().map(|&r| values[r as usize]).collect(),
                validity: validity.gather(rows),
            },
            Column::Str {
                codes,
                pool,
                validity,
            } => Column::Str {
                codes: rows.iter().map(|&r| codes[r as usize]).collect(),
                pool: pool.clone(),
                validity: validity.gather(rows),
            },
            Column::Mixed { values } => Column::Mixed {
                values: rows.iter().map(|&r| values[r as usize].clone()).collect(),
            },
        }
    }

    /// Approximate resident bytes of this column (payload vectors,
    /// dictionary pool, validity bitmap).
    pub fn memory_bytes(&self) -> usize {
        match self {
            Column::Int64 { values, validity } => values.len() * 8 + validity.memory_bytes(),
            Column::Float64 { values, validity } => values.len() * 8 + validity.memory_bytes(),
            Column::Str {
                codes,
                pool,
                validity,
            } => codes.len() * 4 + pool.memory_bytes() + validity.memory_bytes(),
            Column::Mixed { values } => {
                let heap: usize = values
                    .iter()
                    .map(|v| match v {
                        Value::Str(s) => 16 + s.len(),
                        _ => 0,
                    })
                    .sum();
                values.len() * std::mem::size_of::<Value>() + heap
            }
        }
    }

    /// Short layout name (diagnostics and reports).
    pub fn kind(&self) -> &'static str {
        match self {
            Column::Int64 { .. } => "i64",
            Column::Float64 { .. } => "f64",
            Column::Str { .. } => "str",
            Column::Mixed { .. } => "mixed",
        }
    }
}

/// Streaming builder for one [`Column`].
///
/// Starts untyped; the first non-NULL value fixes the layout
/// (`Int64` / `Float64` / `Str`), and any later variant conflict
/// demotes to [`Column::Mixed`] so arbitrary inputs always round-trip.
#[derive(Debug)]
pub struct ColumnBuilder {
    state: BuilderState,
}

#[derive(Debug)]
enum BuilderState {
    /// Only NULLs seen so far.
    Empty {
        nulls: usize,
    },
    Int64 {
        values: Vec<i64>,
        validity: Validity,
    },
    Float64 {
        values: Vec<f64>,
        validity: Validity,
    },
    Str {
        codes: Vec<u32>,
        pool: StrPool,
        validity: Validity,
    },
    Mixed {
        values: Vec<Value>,
    },
}

impl Default for ColumnBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ColumnBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self {
            state: BuilderState::Empty { nulls: 0 },
        }
    }

    /// Cells pushed so far.
    pub fn len(&self) -> usize {
        match &self.state {
            BuilderState::Empty { nulls } => *nulls,
            BuilderState::Int64 { values, .. } => values.len(),
            BuilderState::Float64 { values, .. } => values.len(),
            BuilderState::Str { codes, .. } => codes.len(),
            BuilderState::Mixed { values } => values.len(),
        }
    }

    /// Whether nothing was pushed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a NULL cell.
    pub fn push_null(&mut self) {
        match &mut self.state {
            BuilderState::Empty { nulls } => *nulls += 1,
            BuilderState::Int64 { values, validity } => {
                values.push(0);
                validity.push(false);
            }
            BuilderState::Float64 { values, validity } => {
                values.push(0.0);
                validity.push(false);
            }
            BuilderState::Str {
                codes, validity, ..
            } => {
                codes.push(0);
                validity.push(false);
            }
            BuilderState::Mixed { values } => values.push(Value::Null),
        }
    }

    /// Appends an integer cell.
    pub fn push_i64(&mut self, v: i64) {
        match &mut self.state {
            BuilderState::Empty { nulls } => {
                let n = *nulls;
                let mut values = Vec::with_capacity(n + 1);
                values.resize(n, 0);
                let mut validity = Validity::all_valid(0);
                for _ in 0..n {
                    validity.push(false);
                }
                values.push(v);
                validity.push(true);
                self.state = BuilderState::Int64 { values, validity };
            }
            BuilderState::Int64 { values, validity } => {
                values.push(v);
                validity.push(true);
            }
            _ => self.demote_push(Value::Int(v)),
        }
    }

    /// Appends a float cell.
    pub fn push_f64(&mut self, v: f64) {
        match &mut self.state {
            BuilderState::Empty { nulls } => {
                let n = *nulls;
                let mut values = Vec::with_capacity(n + 1);
                values.resize(n, 0.0);
                let mut validity = Validity::all_valid(0);
                for _ in 0..n {
                    validity.push(false);
                }
                values.push(v);
                validity.push(true);
                self.state = BuilderState::Float64 { values, validity };
            }
            BuilderState::Float64 { values, validity } => {
                values.push(v);
                validity.push(true);
            }
            _ => self.demote_push(Value::Float(v)),
        }
    }

    /// Appends a string cell (interned; the byte copy happens once per
    /// distinct string).
    pub fn push_str(&mut self, s: &str) {
        match &mut self.state {
            BuilderState::Empty { nulls } => {
                let n = *nulls;
                let mut pool = StrPool::new();
                let code = pool.intern(s);
                let mut codes = Vec::with_capacity(n + 1);
                codes.resize(n, 0);
                let mut validity = Validity::all_valid(0);
                for _ in 0..n {
                    validity.push(false);
                }
                codes.push(code);
                validity.push(true);
                self.state = BuilderState::Str {
                    codes,
                    pool,
                    validity,
                };
            }
            BuilderState::Str {
                codes,
                pool,
                validity,
            } => {
                codes.push(pool.intern(s));
                validity.push(true);
            }
            _ => self.demote_push(Value::str(s)),
        }
    }

    /// Appends an already-shared string cell (new distinct strings cost
    /// an `Arc` bump, not a byte copy).
    pub fn push_arc_str(&mut self, s: &Arc<str>) {
        match &mut self.state {
            BuilderState::Str {
                codes,
                pool,
                validity,
            } => {
                codes.push(pool.intern_arc(s));
                validity.push(true);
            }
            BuilderState::Empty { .. } => self.push_str(s),
            _ => self.demote_push(Value::Str(s.clone())),
        }
    }

    /// Appends a cell by value.
    pub fn push(&mut self, v: Value) {
        match v {
            Value::Null => self.push_null(),
            Value::Int(i) => self.push_i64(i),
            Value::Float(f) => self.push_f64(f),
            Value::Str(s) => self.push_arc_str(&s),
        }
    }

    /// Appends a cell by reference (no clone for scalar variants; an
    /// `Arc` bump for new distinct strings).
    pub fn push_ref(&mut self, v: &Value) {
        match v {
            Value::Null => self.push_null(),
            Value::Int(i) => self.push_i64(*i),
            Value::Float(f) => self.push_f64(*f),
            Value::Str(s) => self.push_arc_str(s),
        }
    }

    /// Demotes the builder to `Mixed`, materializing everything pushed
    /// so far, then appends `v`.
    fn demote_push(&mut self, v: Value) {
        let prior = std::mem::replace(&mut self.state, BuilderState::Empty { nulls: 0 });
        let mut values: Vec<Value> = match prior {
            BuilderState::Empty { nulls } => vec![Value::Null; nulls],
            BuilderState::Int64 { values, validity } => values
                .iter()
                .enumerate()
                .map(|(i, &x)| {
                    if validity.is_valid(i) {
                        Value::Int(x)
                    } else {
                        Value::Null
                    }
                })
                .collect(),
            BuilderState::Float64 { values, validity } => values
                .iter()
                .enumerate()
                .map(|(i, &x)| {
                    if validity.is_valid(i) {
                        Value::Float(x)
                    } else {
                        Value::Null
                    }
                })
                .collect(),
            BuilderState::Str {
                codes,
                pool,
                validity,
            } => codes
                .iter()
                .enumerate()
                .map(|(i, &c)| {
                    if validity.is_valid(i) {
                        Value::Str(pool.get(c).clone())
                    } else {
                        Value::Null
                    }
                })
                .collect(),
            BuilderState::Mixed { values } => values,
        };
        values.push(v);
        self.state = BuilderState::Mixed { values };
    }

    /// Finalizes the column. An all-NULL (or empty) builder yields an
    /// `Int64` column whose cells are all invalid — reads still return
    /// [`Value::Null`].
    pub fn finish(self) -> Column {
        match self.state {
            BuilderState::Empty { nulls } => {
                let mut validity = Validity::all_valid(0);
                for _ in 0..nulls {
                    validity.push(false);
                }
                Column::Int64 {
                    values: vec![0; nulls],
                    validity,
                }
            }
            BuilderState::Int64 { values, validity } => Column::Int64 { values, validity },
            BuilderState::Float64 { values, validity } => Column::Float64 { values, validity },
            BuilderState::Str {
                codes,
                pool,
                validity,
            } => Column::Str {
                codes,
                pool: Arc::new(pool),
                validity,
            },
            BuilderState::Mixed { values } => Column::Mixed { values },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::hash_values;

    fn build(values: &[Value]) -> Column {
        let mut b = ColumnBuilder::new();
        for v in values {
            b.push_ref(v);
        }
        b.finish()
    }

    #[test]
    fn typed_round_trip_all_variants() {
        let cases: Vec<Vec<Value>> = vec![
            vec![Value::int(1), Value::int(-7), Value::Null, Value::int(0)],
            vec![Value::float(1.5), Value::Null, Value::float(f64::NAN)],
            vec![
                Value::str("a"),
                Value::str("b"),
                Value::str("a"),
                Value::Null,
            ],
            vec![Value::Null, Value::Null],
            vec![],
            // Heterogeneous → Mixed.
            vec![
                Value::int(1),
                Value::str("x"),
                Value::float(2.0),
                Value::Null,
            ],
            // Leading nulls before the first typed value.
            vec![Value::Null, Value::str("tail")],
        ];
        for vals in cases {
            let col = build(&vals);
            assert_eq!(col.len(), vals.len());
            for (i, v) in vals.iter().enumerate() {
                assert_eq!(&col.value(i), v, "column {} cell {i}", col.kind());
                assert!(col.cell(i).eq_value(v));
            }
        }
    }

    #[test]
    fn builder_demotes_on_conflict() {
        let col = build(&[Value::int(1), Value::int(2), Value::float(3.0)]);
        assert_eq!(col.kind(), "mixed");
        assert_eq!(col.value(0), Value::int(1));
        assert_eq!(col.value(2), Value::float(3.0));
    }

    #[test]
    fn str_dictionary_reuses_codes() {
        let col = build(&[Value::str("x"), Value::str("y"), Value::str("x")]);
        match &col {
            Column::Str { codes, pool, .. } => {
                assert_eq!(pool.len(), 2);
                assert_eq!(codes[0], codes[2]);
                assert_ne!(codes[0], codes[1]);
            }
            other => panic!("expected Str column, got {}", other.kind()),
        }
        assert!(col.cells_eq(0, 2));
        assert!(!col.cells_eq(0, 1));
    }

    #[test]
    fn cell_hash_matches_value_hash() {
        let vals = vec![
            Value::Null,
            Value::int(42),
            Value::int(-1),
            Value::float(2.25),
            Value::float(f64::NAN),
            Value::str(""),
            Value::str("hello"),
            Value::str("héllo→"),
        ];
        let col = build(&vals);
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(
                hash_cells([col.cell(i)]),
                hash_values([v]),
                "hash mismatch at {i}"
            );
        }
    }

    #[test]
    fn cell_cmp_matches_value_cmp() {
        let universe = vec![
            Value::Null,
            Value::int(-3),
            Value::int(10),
            Value::float(0.5),
            Value::str("a"),
            Value::str("b"),
        ];
        let col = build(&universe);
        // Mixed layout: every cell vs every value must agree with
        // Value::cmp.
        for (i, a) in universe.iter().enumerate() {
            for b in &universe {
                assert_eq!(col.cell(i).cmp_value(b), a.cmp(b), "{a} vs {b}");
                assert_eq!(col.cell(i).eq_value(b), (a == b));
            }
        }
    }

    #[test]
    fn validity_tracks_nulls() {
        let col = build(&[Value::int(1), Value::Null, Value::int(3)]);
        let v = col.validity().unwrap();
        assert!(v.is_valid(0));
        assert!(!v.is_valid(1));
        assert!(v.is_valid(2));
        assert_eq!(v.null_count(), 1);
        assert_eq!(col.null_count(), 1);
        // No-null column carries no bitmap bytes.
        let dense = build(&[Value::int(1), Value::int(2)]);
        assert_eq!(dense.validity().unwrap().memory_bytes(), 0);
    }

    #[test]
    fn validity_across_word_boundary() {
        let mut vals = Vec::new();
        for i in 0..130i64 {
            vals.push(if i % 7 == 0 {
                Value::Null
            } else {
                Value::int(i)
            });
        }
        let col = build(&vals);
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(&col.value(i), v, "cell {i}");
        }
    }

    #[test]
    fn slice_and_gather_preserve_cells() {
        let vals = vec![
            Value::str("a"),
            Value::Null,
            Value::str("c"),
            Value::str("a"),
            Value::str("e"),
        ];
        let col = build(&vals);
        let s = col.slice(1, 4);
        assert_eq!(s.len(), 3);
        assert_eq!(s.value(0), Value::Null);
        assert_eq!(s.value(2), Value::str("a"));
        let g = col.gather(&[4, 0, 1]);
        assert_eq!(g.value(0), Value::str("e"));
        assert_eq!(g.value(1), Value::str("a"));
        assert_eq!(g.value(2), Value::Null);
    }

    #[test]
    fn memory_bytes_scales_with_rows() {
        let small = build(&(0..10).map(Value::int).collect::<Vec<_>>());
        let big = build(&(0..1000).map(Value::int).collect::<Vec<_>>());
        assert!(big.memory_bytes() > small.memory_bytes());
        assert_eq!(big.memory_bytes(), 8000);
    }

    #[test]
    fn pool_interning_is_stable() {
        let mut pool = StrPool::new();
        let a = pool.intern("abc");
        let b = pool.intern("xyz");
        assert_eq!(pool.intern("abc"), a);
        assert_eq!(pool.code_of("xyz"), Some(b));
        assert_eq!(pool.code_of("missing"), None);
        assert_eq!(pool.get(a).as_ref(), "abc");
        assert_eq!(pool.len(), 2);
    }
}
