//! Hash indexes.
//!
//! The paper replaces Zhao et al.'s B-tree index structures with "hash
//! tables for relations to maintain tuples' joinability information"
//! (§3.2). Two index shapes cover every access pattern in the framework:
//!
//! * [`HashIndex`] — join-attribute index: key (one or more attribute
//!   values) → row ids. Supplies degrees for Olken bounds, candidate
//!   lists for random walks, and per-value postings for exact weights.
//! * [`RowMembership`] — whole-row existence index, the building block of
//!   the join membership oracle (§6.2 checks "to see where t is contained
//!   in J_i ... it just requires (N−1)×(M−1) queries with key").

use crate::hash::FxHashMap;
use crate::relation::Relation;
use crate::tuple::Tuple;
use crate::value::Value;
use std::sync::Arc;

/// Index on one or more attributes of a relation: key values → row ids.
#[derive(Debug, Clone)]
pub struct HashIndex {
    attrs: Vec<Arc<str>>,
    positions: Vec<usize>,
    postings: FxHashMap<Box<[Value]>, Vec<u32>>,
    max_degree: usize,
}

impl HashIndex {
    /// Builds an index over `attrs` of `relation`.
    ///
    /// # Panics
    /// Panics if any attribute is missing from the relation's schema
    /// (callers validate schemas when constructing join specs).
    pub fn build(relation: &Relation, attrs: &[Arc<str>]) -> Self {
        let positions: Vec<usize> = attrs
            .iter()
            .map(|a| {
                relation
                    .schema()
                    .position(a)
                    .unwrap_or_else(|| panic!("attribute `{a}` not in {}", relation.schema()))
            })
            .collect();
        let mut postings: FxHashMap<Box<[Value]>, Vec<u32>> = FxHashMap::default();
        for (i, row) in relation.rows().iter().enumerate() {
            let key: Box<[Value]> = positions.iter().map(|&p| row.get(p).clone()).collect();
            postings.entry(key).or_default().push(i as u32);
        }
        let max_degree = postings.values().map(Vec::len).max().unwrap_or(0);
        Self {
            attrs: attrs.to_vec(),
            positions,
            postings,
            max_degree,
        }
    }

    /// Convenience: single-attribute index.
    pub fn build_single(relation: &Relation, attr: &str) -> Self {
        Self::build(relation, &[Arc::from(attr)])
    }

    /// Indexed attribute names.
    pub fn attrs(&self) -> &[Arc<str>] {
        &self.attrs
    }

    /// Positions of the indexed attributes in the base relation.
    pub fn positions(&self) -> &[usize] {
        &self.positions
    }

    /// Row ids matching a key, or an empty slice.
    pub fn rows_matching(&self, key: &[Value]) -> &[u32] {
        self.postings.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of rows matching a key — the degree `d_A(v, R)` of §5.
    pub fn degree(&self, key: &[Value]) -> usize {
        self.rows_matching(key).len()
    }

    /// Maximum degree over all keys — `M_A(R)` of §3.2/§5.
    pub fn max_degree(&self) -> usize {
        self.max_degree
    }

    /// Average degree over distinct keys.
    pub fn avg_degree(&self) -> f64 {
        if self.postings.is_empty() {
            0.0
        } else {
            let total: usize = self.postings.values().map(Vec::len).sum();
            total as f64 / self.postings.len() as f64
        }
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.postings.len()
    }

    /// Iterates `(key, row ids)` pairs.
    pub fn entries(&self) -> impl Iterator<Item = (&[Value], &[u32])> {
        self.postings
            .iter()
            .map(|(k, v)| (k.as_ref(), v.as_slice()))
    }

    /// Extracts this index's key from a row of the base relation.
    pub fn key_of<'a>(&self, row: &'a Tuple, scratch: &'a mut Vec<Value>) -> &'a [Value] {
        scratch.clear();
        for &p in &self.positions {
            scratch.push(row.get(p).clone());
        }
        scratch.as_slice()
    }
}

/// Whole-row existence index over a relation (set semantics), keyed by
/// the row's full value sequence.
#[derive(Debug, Clone, Default)]
pub struct RowMembership {
    rows: crate::hash::FxHashSet<Tuple>,
}

impl RowMembership {
    /// Builds a membership index for all rows of a relation.
    pub fn build(relation: &Relation) -> Self {
        let mut rows = crate::hash::FxHashSet::default();
        rows.reserve(relation.len());
        for row in relation.rows() {
            rows.insert(row.clone());
        }
        Self { rows }
    }

    /// Whether the exact row exists in the relation.
    pub fn contains(&self, row: &Tuple) -> bool {
        self.rows.contains(row)
    }

    /// Whether a row with exactly these values exists (no allocation).
    pub fn contains_values(&self, values: &[Value]) -> bool {
        self.rows.contains(values)
    }

    /// Number of distinct rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::tuple;

    fn rel() -> Relation {
        let schema = Schema::new(["k", "v"]).unwrap();
        Relation::new(
            "r",
            schema,
            vec![
                tuple![1i64, 10i64],
                tuple![1i64, 11i64],
                tuple![2i64, 20i64],
                tuple![1i64, 12i64],
            ],
        )
        .unwrap()
    }

    #[test]
    fn postings_and_degrees() {
        let r = rel();
        let idx = HashIndex::build_single(&r, "k");
        assert_eq!(idx.degree(&[Value::int(1)]), 3);
        assert_eq!(idx.degree(&[Value::int(2)]), 1);
        assert_eq!(idx.degree(&[Value::int(9)]), 0);
        assert_eq!(idx.max_degree(), 3);
        assert_eq!(idx.distinct_keys(), 2);
        assert!((idx.avg_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rows_matching_returns_ids_in_insertion_order() {
        let r = rel();
        let idx = HashIndex::build_single(&r, "k");
        assert_eq!(idx.rows_matching(&[Value::int(1)]), &[0, 1, 3]);
        assert!(idx.rows_matching(&[Value::int(42)]).is_empty());
    }

    #[test]
    fn multi_attribute_keys() {
        let schema = Schema::new(["a", "b", "c"]).unwrap();
        let r = Relation::new(
            "r",
            schema,
            vec![
                tuple![1i64, 2i64, 100i64],
                tuple![1i64, 2i64, 200i64],
                tuple![1i64, 3i64, 300i64],
            ],
        )
        .unwrap();
        let idx = HashIndex::build(&r, &[Arc::from("a"), Arc::from("b")]);
        assert_eq!(idx.degree(&[Value::int(1), Value::int(2)]), 2);
        assert_eq!(idx.degree(&[Value::int(1), Value::int(3)]), 1);
        assert_eq!(idx.max_degree(), 2);
    }

    #[test]
    fn empty_relation_index() {
        let r = Relation::new("e", Schema::new(["x"]).unwrap(), vec![]).unwrap();
        let idx = HashIndex::build_single(&r, "x");
        assert_eq!(idx.max_degree(), 0);
        assert_eq!(idx.distinct_keys(), 0);
        assert_eq!(idx.avg_degree(), 0.0);
    }

    #[test]
    fn key_of_extracts_positions() {
        let r = rel();
        let idx = HashIndex::build_single(&r, "v");
        let mut scratch = Vec::new();
        let key = idx.key_of(r.row(2), &mut scratch);
        assert_eq!(key, &[Value::int(20)]);
    }

    #[test]
    fn membership_contains() {
        let r = rel();
        let m = RowMembership::build(&r);
        assert!(m.contains(&tuple![1i64, 11i64]));
        assert!(!m.contains(&tuple![1i64, 99i64]));
        assert!(m.contains_values(&[Value::int(2), Value::int(20)]));
        assert!(!m.contains_values(&[Value::int(2)]));
        assert_eq!(m.len(), 4);
    }

    #[test]
    fn membership_deduplicates() {
        let schema = Schema::new(["x"]).unwrap();
        let r = Relation::new("d", schema, vec![tuple![1i64], tuple![1i64]]).unwrap();
        let m = RowMembership::build(&r);
        assert_eq!(m.len(), 1);
    }

    #[test]
    #[should_panic(expected = "not in")]
    fn unknown_attribute_panics() {
        let r = rel();
        HashIndex::build_single(&r, "missing");
    }
}
