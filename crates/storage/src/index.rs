//! Hash indexes.
//!
//! The paper replaces Zhao et al.'s B-tree index structures with "hash
//! tables for relations to maintain tuples' joinability information"
//! (§3.2). Two index shapes cover every access pattern in the framework:
//!
//! * [`HashIndex`] — join-attribute index: key (one or more attribute
//!   values) → row ids. Supplies degrees for Olken bounds, candidate
//!   lists for random walks, and per-value postings for exact weights.
//! * [`RowMembership`] — whole-row existence index, the building block of
//!   the join membership oracle (§6.2 checks "to see where t is contained
//!   in J_i ... it just requires (N−1)×(M−1) queries with key").
//!
//! # Hot-path layout
//!
//! Both indexes are built for the samplers' per-attempt inner loop,
//! where a probe must not allocate:
//!
//! * Join-attribute keys are **dictionary encoded** at build time: each
//!   distinct key value sequence gets a dense `u32` key id. Postings
//!   live in a **CSR layout** — one flat `row_ids` array plus an
//!   `offsets` array indexed by key id — so degree lookups and
//!   candidate enumeration are two integer array reads.
//! * The dictionary itself is a flat open-addressing table (power-of-two
//!   capacity, linear probing, cached hashes) over the locally
//!   implemented [Fx hasher](crate::hash::FxHasher). Probes hash the
//!   key values **in place** — [`HashIndex::key_id_projected`] reads
//!   them through a position list from any buffer, and
//!   [`HashIndex::key_id_at`] straight off another relation's columns —
//!   so no `Box<[Value]>` key is ever materialized.
//! * Builds read the base relation's **columns** directly: the per-row
//!   key hash is computed from [`CellRef`] views
//!   (whose hashes match [`Value`] hashes bit for bit), and in-build
//!   equality compares candidate rows cell-to-cell — for
//!   dictionary-encoded string columns that is a `u32` code compare,
//!   not a string compare.
//! * [`RowMembership`] uses the same table shape over whole rows,
//!   storing only distinct *row ids* against a shared column snapshot;
//!   [`RowMembership::contains_projection`] answers `π_R(t) ∈ R`
//!   straight off the canonical tuple, which is what makes the
//!   membership oracle's `t ∈ Jᵢ` checks allocation-free.

use crate::column::{hash_cells, CellRef, Column, StrPool, Validity};
use crate::hash::{hash_values, FxHasher};
use crate::relation::Relation;
use crate::snapshot::{decode_value, encode_value, ByteReader, ByteWriter, SnapshotError};
use crate::tuple::Tuple;
use crate::value::Value;
use std::hash::Hasher;
use std::sync::Arc;

/// Sentinel key id: "this key is not in the dictionary" (no posting).
pub const NO_KEY: u32 = u32::MAX;

/// Empty slot marker inside the open-addressing tables.
const EMPTY: u32 = u32::MAX;

/// A minimal open-addressing id table: hash → dense `u32` id, with the
/// caller supplying value equality. Power-of-two capacity, linear
/// probing, load factor ≤ ½ (capacity is fixed up front from the row
/// count, which bounds the number of distinct ids).
#[derive(Debug, Clone)]
struct IdTable {
    ids: Vec<u32>,
    hashes: Vec<u64>,
    mask: usize,
}

impl Default for IdTable {
    /// A valid empty table (all slots empty), so probing a
    /// default-constructed index is a miss rather than an
    /// out-of-bounds read.
    fn default() -> Self {
        Self::with_capacity_for(0)
    }
}

impl IdTable {
    fn with_capacity_for(n: usize) -> Self {
        let cap = (n.max(1) * 2).next_power_of_two();
        Self {
            ids: vec![EMPTY; cap],
            hashes: vec![0; cap],
            mask: cap - 1,
        }
    }

    /// Finds the id whose entry matches `hash` and `eq`, if present.
    #[inline]
    fn lookup(&self, hash: u64, eq: impl Fn(u32) -> bool) -> Option<u32> {
        let mut slot = hash as usize & self.mask;
        loop {
            let id = self.ids[slot];
            if id == EMPTY {
                return None;
            }
            if self.hashes[slot] == hash && eq(id) {
                return Some(id);
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Looks up `hash`/`eq`, inserting `next_id` on a miss. Returns the
    /// resident or inserted id.
    fn lookup_or_insert(&mut self, hash: u64, next_id: u32, eq: impl Fn(u32) -> bool) -> u32 {
        let mut slot = hash as usize & self.mask;
        loop {
            let id = self.ids[slot];
            if id == EMPTY {
                self.ids[slot] = next_id;
                self.hashes[slot] = hash;
                return next_id;
            }
            if self.hashes[slot] == hash && eq(id) {
                return id;
            }
            slot = (slot + 1) & self.mask;
        }
    }
}

/// How probes map key values to dense key ids. Hashing is the general
/// mechanism; single-attribute typed layouts get direct structures —
/// the columnar analogue of "reuse the column's dictionary codes":
///
/// * [`Probe::DenseInt`] — integer keys whose span is comparable to
///   the row count resolve through a flat `value − min → key id`
///   array: no hashing at build time *or* probe time.
/// * [`Probe::StrCodes`] — string keys resolve through the column's
///   own interned pool (`string → code → key id`), so the build never
///   hashes a string and probes pay one pool lookup.
#[derive(Debug, Clone)]
enum Probe {
    /// Open-addressing table over cached hashes (multi-attribute,
    /// float, sparse-int, mixed, and nullable-int keys).
    Hash(IdTable),
    /// Direct-array mapping for dense, null-free integer keys.
    DenseInt {
        /// Smallest key value (array offset base).
        min: i64,
        /// `val_kid[v - min]` → key id ([`NO_KEY`] when absent).
        val_kid: Vec<u32>,
    },
    /// Dictionary-code mapping for string keys: the key column is
    /// shared (`Arc`), and `code_kid` maps its pool codes to key ids.
    StrCodes {
        /// The indexed relation's columns (shared, not copied).
        columns: Arc<[Column]>,
        /// Position of the key column.
        pos: usize,
        /// Pool code → key id ([`NO_KEY`] for codes with no rows).
        code_kid: Vec<u32>,
        /// Key id of the NULL key ([`NO_KEY`] when no row is NULL).
        null_kid: u32,
    },
}

/// Result of the dictionary-encoding pass: the probe structure, the
/// first-seen representative row of each key, per-key row counts, and
/// every row's key id.
struct Encoded {
    probe: Probe,
    rep_rows: Vec<u32>,
    counts: Vec<u32>,
    row_keys: Vec<u32>,
}

/// Fx-hash of one non-null integer cell — must equal
/// `hash_values([&Value::Int(v)])`.
#[inline(always)]
fn fx_hash_i64(v: i64) -> u64 {
    let mut h = FxHasher::default();
    h.write_u8(1);
    h.write_u64(v as u64);
    h.finish()
}

/// Fx-hash of one non-null float cell (bit pattern keyed, like
/// `Value::Float`'s `Hash`).
#[inline(always)]
fn fx_hash_f64_bits(bits: u64) -> u64 {
    let mut h = FxHasher::default();
    h.write_u8(2);
    h.write_u64(bits);
    h.finish()
}

/// Fx-hash of a NULL cell.
#[inline(always)]
fn fx_hash_null() -> u64 {
    let mut h = FxHasher::default();
    h.write_u8(0);
    h.finish()
}

/// `Str` key encoding: the column is already dictionary encoded, so key
/// ids are a remap of the column's codes — one array read per row, no
/// hashing, no string compares, and the code map doubles as the probe
/// structure.
fn encode_str_column(
    codes: &[u32],
    pool: &StrPool,
    validity: &Validity,
    columns: Arc<[Column]>,
    pos: usize,
) -> Encoded {
    // Slot per pool code, plus one trailing slot for NULL.
    let null_slot = pool.len();
    let mut code_kid: Vec<u32> = vec![NO_KEY; pool.len() + 1];
    let mut rep_rows: Vec<u32> = Vec::new();
    let mut counts: Vec<u32> = Vec::new();
    let mut row_keys: Vec<u32> = Vec::with_capacity(codes.len());
    let has_nulls = validity.has_nulls();
    for (i, &c) in codes.iter().enumerate() {
        let slot = if has_nulls && !validity.is_valid(i) {
            null_slot
        } else {
            c as usize
        };
        let mut kid = code_kid[slot];
        if kid == NO_KEY {
            kid = counts.len() as u32;
            code_kid[slot] = kid;
            rep_rows.push(i as u32);
            counts.push(0);
        }
        counts[kid as usize] += 1;
        row_keys.push(kid);
    }
    let null_kid = code_kid.pop().expect("null slot");
    Encoded {
        probe: Probe::StrCodes {
            columns,
            pos,
            code_kid,
            null_kid,
        },
        rep_rows,
        counts,
        row_keys,
    }
}

/// Scalar key encoding shared by the `Int64` and `Float64` layouts:
/// a tight slice loop, no cell views, no enum dispatch. `$eq_key` maps
/// a payload to a `u64` whose equality is the layout's cell equality
/// (identity bits for ints, `to_bits` for floats — `total_cmp`
/// equality is exactly bit equality).
macro_rules! encode_scalar_column {
    ($name:ident, $t:ty, $hash:expr, $eq_key:expr) => {
        fn $name(values: &[$t], validity: &Validity) -> Encoded {
            let hash_of: fn($t) -> u64 = $hash;
            let key_of: fn($t) -> u64 = $eq_key;
            let mut table = IdTable::with_capacity_for(values.len());
            let mut rep_rows: Vec<u32> = Vec::new();
            let mut counts: Vec<u32> = Vec::new();
            let mut row_keys: Vec<u32> = Vec::with_capacity(values.len());
            if !validity.has_nulls() {
                for (i, &v) in values.iter().enumerate() {
                    let hash = hash_of(v);
                    let next_id = counts.len() as u32;
                    let kid = table.lookup_or_insert(hash, next_id, |k| {
                        key_of(values[rep_rows[k as usize] as usize]) == key_of(v)
                    });
                    if kid == next_id {
                        rep_rows.push(i as u32);
                        counts.push(0);
                    }
                    counts[kid as usize] += 1;
                    row_keys.push(kid);
                }
            } else {
                for (i, &v) in values.iter().enumerate() {
                    let valid = validity.is_valid(i);
                    let hash = if valid { hash_of(v) } else { fx_hash_null() };
                    let next_id = counts.len() as u32;
                    let kid = table.lookup_or_insert(hash, next_id, |k| {
                        let rep = rep_rows[k as usize] as usize;
                        let rep_valid = validity.is_valid(rep);
                        rep_valid == valid && (!valid || key_of(values[rep]) == key_of(v))
                    });
                    if kid == next_id {
                        rep_rows.push(i as u32);
                        counts.push(0);
                    }
                    counts[kid as usize] += 1;
                    row_keys.push(kid);
                }
            }
            Encoded {
                probe: Probe::Hash(table),
                rep_rows,
                counts,
                row_keys,
            }
        }
    };
}

encode_scalar_column!(encode_i64_hashed, i64, fx_hash_i64, |v| v as u64);
encode_scalar_column!(
    encode_f64_column,
    f64,
    |v: f64| fx_hash_f64_bits(v.to_bits()),
    f64::to_bits
);

/// `Int64` key encoding. Dense domains (the common shape of generated
/// and surrogate keys: values spanning a range comparable to the row
/// count) encode through a direct `value → key id` array — two array
/// reads per row, no hashing at all; the array doubles as the probe
/// structure. Sparse domains and nullable columns fall back to the
/// hashed tight loop.
fn encode_i64_column(values: &[i64], validity: &Validity) -> Encoded {
    if validity.has_nulls() || values.is_empty() {
        return encode_i64_hashed(values, validity);
    }
    let (mut min, mut max) = (i64::MAX, i64::MIN);
    for &v in values {
        min = min.min(v);
        max = max.max(v);
    }
    let range = match max.checked_sub(min).and_then(|r| r.checked_add(1)) {
        Some(r) if (r as u128) <= 8 * values.len() as u128 + 4096 => r as usize,
        _ => return encode_i64_hashed(values, validity),
    };
    let mut val_kid: Vec<u32> = vec![NO_KEY; range];
    let mut rep_rows: Vec<u32> = Vec::new();
    let mut counts: Vec<u32> = Vec::new();
    let mut row_keys: Vec<u32> = Vec::with_capacity(values.len());
    for (i, &v) in values.iter().enumerate() {
        let slot = (v - min) as usize;
        let mut kid = val_kid[slot];
        if kid == NO_KEY {
            kid = counts.len() as u32;
            val_kid[slot] = kid;
            rep_rows.push(i as u32);
            counts.push(0);
        }
        counts[kid as usize] += 1;
        row_keys.push(kid);
    }
    Encoded {
        probe: Probe::DenseInt { min, val_kid },
        rep_rows,
        counts,
        row_keys,
    }
}

/// Materializes each distinct key's values from its representative
/// row — monomorphic loop per single-column layout, generic cell walk
/// otherwise.
fn materialize_key_values(cols: &[&Column], rep_rows: &[u32], key_arity: usize) -> Vec<Value> {
    match cols {
        [Column::Int64 { values, validity }] => rep_rows
            .iter()
            .map(|&rep| {
                if validity.is_valid(rep as usize) {
                    Value::Int(values[rep as usize])
                } else {
                    Value::Null
                }
            })
            .collect(),
        [Column::Float64 { values, validity }] => rep_rows
            .iter()
            .map(|&rep| {
                if validity.is_valid(rep as usize) {
                    Value::Float(values[rep as usize])
                } else {
                    Value::Null
                }
            })
            .collect(),
        [Column::Str {
            codes,
            pool,
            validity,
        }] => rep_rows
            .iter()
            .map(|&rep| {
                if validity.is_valid(rep as usize) {
                    Value::Str(pool.get(codes[rep as usize]).clone())
                } else {
                    Value::Null
                }
            })
            .collect(),
        _ => {
            let mut key_values: Vec<Value> = Vec::with_capacity(rep_rows.len() * key_arity);
            for &rep in rep_rows {
                key_values.extend(cols.iter().map(|c| c.value(rep as usize)));
            }
            key_values
        }
    }
}

/// Generic key encoding (multi-attribute keys and `Mixed` columns):
/// hash the cells in place, compare against the representative row.
fn encode_generic(cols: &[&Column], n: usize) -> Encoded {
    let mut table = IdTable::with_capacity_for(n);
    let mut rep_rows: Vec<u32> = Vec::new();
    let mut counts: Vec<u32> = Vec::new();
    let mut row_keys: Vec<u32> = Vec::with_capacity(n);
    for row in 0..n {
        let hash = hash_cells(cols.iter().map(|c| c.cell(row)));
        let next_id = counts.len() as u32;
        let kid = table.lookup_or_insert(hash, next_id, |k| {
            let rep = rep_rows[k as usize] as usize;
            cols.iter().all(|c| c.cells_eq(rep, row))
        });
        if kid == next_id {
            rep_rows.push(row as u32);
            counts.push(0);
        }
        counts[kid as usize] += 1;
        row_keys.push(kid);
    }
    Encoded {
        probe: Probe::Hash(table),
        rep_rows,
        counts,
        row_keys,
    }
}

/// Index on one or more attributes of a relation: key values → row ids,
/// dictionary encoded with CSR postings (see the module docs).
#[derive(Debug, Clone)]
pub struct HashIndex {
    attrs: Vec<Arc<str>>,
    positions: Vec<usize>,
    key_arity: usize,
    /// Dictionary storage: key id `k`'s values occupy
    /// `key_values[k * key_arity .. (k + 1) * key_arity]`.
    key_values: Vec<Value>,
    /// Key → key-id probe structure (hash table, dense-int array, or
    /// dictionary-code map — see [`Probe`]).
    probe: Probe,
    /// CSR postings: key id `k`'s row ids occupy
    /// `row_ids[offsets[k] .. offsets[k + 1]]`, in insertion order.
    offsets: Vec<u32>,
    row_ids: Vec<u32>,
    /// Per base-relation row: its encoded key id (every row has one).
    row_keys: Vec<u32>,
    max_degree: usize,
}

impl HashIndex {
    /// Builds an index over `attrs` of `relation`, reading the typed
    /// columns directly (no per-row tuple materialization).
    ///
    /// # Panics
    /// Panics if any attribute is missing from the relation's schema
    /// (callers validate schemas when constructing join specs).
    pub fn build(relation: &Relation, attrs: &[Arc<str>]) -> Self {
        let positions: Vec<usize> = attrs
            .iter()
            .map(|a| {
                relation
                    .schema()
                    .position(a)
                    .unwrap_or_else(|| panic!("attribute `{a}` not in {}", relation.schema()))
            })
            .collect();
        let key_arity = positions.len();
        let n = relation.len();
        let cols: Vec<&Column> = positions.iter().map(|&p| relation.column(p)).collect();

        // Pass 1: dictionary-encode every row's key. Single-attribute
        // keys dispatch to a typed loop per column layout — `Str`
        // columns *reuse the column's own dictionary codes* (no hashing
        // or string compares per row at all); scalar columns run tight
        // slice loops. The generic path compares a candidate row to the
        // key's first-seen representative cell-to-cell.
        let Encoded {
            probe,
            rep_rows,
            counts,
            row_keys,
        } = match cols.as_slice() {
            [Column::Str {
                codes,
                pool,
                validity,
            }] => encode_str_column(
                codes,
                pool,
                validity,
                relation.shared_columns(),
                positions[0],
            ),
            [Column::Int64 { values, validity }] => encode_i64_column(values, validity),
            [Column::Float64 { values, validity }] => encode_f64_column(values, validity),
            _ => encode_generic(&cols, n),
        };

        // Materialize the dictionary values once per distinct key (the
        // representation `entries` and the hashed probes compare
        // against), through a monomorphic loop per layout.
        let key_values = materialize_key_values(&cols, &rep_rows, key_arity);

        // Pass 2: prefix sums + scatter into the CSR arrays (stable, so
        // each key's postings keep insertion order).
        let n_keys = counts.len();
        let mut offsets: Vec<u32> = Vec::with_capacity(n_keys + 1);
        let mut total = 0u32;
        offsets.push(0);
        for &c in &counts {
            total += c;
            offsets.push(total);
        }
        let mut cursor: Vec<u32> = offsets[..n_keys].to_vec();
        let mut row_ids = vec![0u32; n];
        for (rid, &kid) in row_keys.iter().enumerate() {
            let c = &mut cursor[kid as usize];
            row_ids[*c as usize] = rid as u32;
            *c += 1;
        }
        let max_degree = counts.iter().copied().max().unwrap_or(0) as usize;

        Self {
            attrs: attrs.to_vec(),
            positions,
            key_arity,
            key_values,
            probe,
            offsets,
            row_ids,
            row_keys,
            max_degree,
        }
    }

    /// Convenience: single-attribute index.
    pub fn build_single(relation: &Relation, attr: &str) -> Self {
        Self::build(relation, &[Arc::from(attr)])
    }

    /// Indexed attribute names.
    pub fn attrs(&self) -> &[Arc<str>] {
        &self.attrs
    }

    /// Positions of the indexed attributes in the base relation.
    pub fn positions(&self) -> &[usize] {
        &self.positions
    }

    /// Number of distinct keys (the dictionary size).
    #[inline]
    pub fn n_keys(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The dictionary values of key id `kid`.
    #[inline]
    pub fn key_values(&self, kid: u32) -> &[Value] {
        let base = kid as usize * self.key_arity;
        &self.key_values[base..base + self.key_arity]
    }

    /// Dictionary lookup: the dense key id of `key`, if indexed.
    #[inline]
    pub fn key_id(&self, key: &[Value]) -> Option<u32> {
        if key.len() != self.key_arity {
            return None;
        }
        let kid = match &self.probe {
            Probe::Hash(table) => {
                let hash = hash_values(key.iter());
                table.lookup(hash, |k| self.key_values(k) == key)?
            }
            _ => self.probe_single(&key[0])?,
        };
        debug_assert_eq!(self.key_values(kid), key, "key id must round-trip");
        Some(kid)
    }

    /// Resolves a single-attribute key through a direct probe
    /// structure (`DenseInt` / `StrCodes`).
    #[inline]
    fn probe_single(&self, key: &Value) -> Option<u32> {
        let kid = match &self.probe {
            Probe::Hash(_) => unreachable!("probe_single on hashed index"),
            Probe::DenseInt { min, val_kid } => match key {
                Value::Int(v) => {
                    let off = usize::try_from(v.checked_sub(*min)?).ok()?;
                    *val_kid.get(off)?
                }
                _ => return None,
            },
            Probe::StrCodes {
                columns,
                pos,
                code_kid,
                null_kid,
            } => match key {
                Value::Str(s) => match &columns[*pos] {
                    Column::Str { pool, .. } => code_kid[pool.code_of(s)? as usize],
                    _ => unreachable!("StrCodes probe over non-Str column"),
                },
                Value::Null => *null_kid,
                _ => return None,
            },
        };
        (kid != NO_KEY).then_some(kid)
    }

    /// Like [`probe_single`](Self::probe_single), reading the key from
    /// a cell view.
    #[inline]
    fn probe_single_cell(&self, cell: CellRef<'_>) -> Option<u32> {
        let kid = match &self.probe {
            Probe::Hash(_) => unreachable!("probe_single_cell on hashed index"),
            Probe::DenseInt { min, val_kid } => match cell {
                CellRef::Int(v) => {
                    let off = usize::try_from(v.checked_sub(*min)?).ok()?;
                    *val_kid.get(off)?
                }
                _ => return None,
            },
            Probe::StrCodes {
                columns,
                pos,
                code_kid,
                null_kid,
            } => match cell {
                CellRef::Str(s) => match &columns[*pos] {
                    Column::Str { pool, .. } => code_kid[pool.code_of(s)? as usize],
                    _ => unreachable!("StrCodes probe over non-Str column"),
                },
                CellRef::Null => *null_kid,
                _ => return None,
            },
        };
        (kid != NO_KEY).then_some(kid)
    }

    /// Dictionary lookup through a projection: encodes the key read from
    /// `source[positions[0]], source[positions[1]], …` without
    /// materializing it — the samplers' allocation-free probe.
    #[inline]
    pub fn key_id_projected(&self, source: &[Value], positions: &[usize]) -> Option<u32> {
        debug_assert_eq!(positions.len(), self.key_arity, "probe arity mismatch");
        let table = match &self.probe {
            Probe::Hash(table) => table,
            _ => return self.probe_single(&source[positions[0]]),
        };
        let hash = hash_values(positions.iter().map(|&p| &source[p]));
        let kid = table.lookup(hash, |k| {
            let stored = self.key_values(k);
            positions.iter().zip(stored).all(|(&p, v)| &source[p] == v)
        })?;
        debug_assert!(
            self.key_values(kid)
                .iter()
                .zip(positions)
                .all(|(v, &p)| v == &source[p]),
            "projected key id must round-trip"
        );
        Some(kid)
    }

    /// Dictionary lookup straight off another relation's columns: the
    /// key is read from row `row` of `relation` at `positions` — no
    /// value is materialized. This is how prepared join structures
    /// encode every parent row's probe key at build time.
    #[inline]
    pub fn key_id_at(&self, relation: &Relation, positions: &[usize], row: usize) -> Option<u32> {
        debug_assert_eq!(positions.len(), self.key_arity, "probe arity mismatch");
        let table = match &self.probe {
            Probe::Hash(table) => table,
            _ => return self.probe_single_cell(relation.column(positions[0]).cell(row)),
        };
        let hash = hash_cells(positions.iter().map(|&p| relation.column(p).cell(row)));
        table.lookup(hash, |k| {
            let stored = self.key_values(k);
            positions
                .iter()
                .zip(stored)
                .all(|(&p, v)| relation.column(p).cell(row).eq_value(v))
        })
    }

    /// The encoded key id of base-relation row `rid`.
    #[inline]
    pub fn key_id_of_row(&self, rid: u32) -> u32 {
        self.row_keys[rid as usize]
    }

    /// CSR postings of key id `kid`: matching row ids in insertion
    /// order.
    #[inline]
    pub fn postings(&self, kid: u32) -> &[u32] {
        let lo = self.offsets[kid as usize] as usize;
        let hi = self.offsets[kid as usize + 1] as usize;
        &self.row_ids[lo..hi]
    }

    /// Degree of key id `kid` — a single subtraction of offsets.
    #[inline]
    pub fn degree_of(&self, kid: u32) -> usize {
        (self.offsets[kid as usize + 1] - self.offsets[kid as usize]) as usize
    }

    /// Row ids matching a key, or an empty slice.
    #[inline]
    pub fn rows_matching(&self, key: &[Value]) -> &[u32] {
        match self.key_id(key) {
            Some(kid) => self.postings(kid),
            None => &[],
        }
    }

    /// Row ids matching the key projected out of `source` at
    /// `positions`, or an empty slice (allocation-free).
    #[inline]
    pub fn rows_matching_projected(&self, source: &[Value], positions: &[usize]) -> &[u32] {
        match self.key_id_projected(source, positions) {
            Some(kid) => self.postings(kid),
            None => &[],
        }
    }

    /// Number of rows matching a key — the degree `d_A(v, R)` of §5.
    #[inline]
    pub fn degree(&self, key: &[Value]) -> usize {
        self.rows_matching(key).len()
    }

    /// Maximum degree over all keys — `M_A(R)` of §3.2/§5.
    #[inline]
    pub fn max_degree(&self) -> usize {
        self.max_degree
    }

    /// Average degree over distinct keys.
    pub fn avg_degree(&self) -> f64 {
        if self.n_keys() == 0 {
            0.0
        } else {
            self.row_ids.len() as f64 / self.n_keys() as f64
        }
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.n_keys()
    }

    /// Iterates `(key, row ids)` pairs in key-id (first-seen) order.
    pub fn entries(&self) -> impl Iterator<Item = (&[Value], &[u32])> {
        (0..self.n_keys() as u32).map(|kid| (self.key_values(kid), self.postings(kid)))
    }

    /// Approximate resident bytes of the index (dictionary, table, CSR
    /// arrays).
    pub fn memory_bytes(&self) -> usize {
        let dict: usize = self
            .key_values
            .iter()
            .map(|v| match v {
                Value::Str(s) => std::mem::size_of::<Value>() + 16 + s.len(),
                _ => std::mem::size_of::<Value>(),
            })
            .sum();
        let probe_bytes = match &self.probe {
            Probe::Hash(table) => table.ids.len() * (4 + 8),
            Probe::DenseInt { val_kid, .. } => val_kid.len() * 4,
            // The columns are shared with the relation; only the code
            // map is owned.
            Probe::StrCodes { code_kid, .. } => code_kid.len() * 4,
        };
        dict + probe_bytes + (self.offsets.len() + self.row_ids.len() + self.row_keys.len()) * 4
    }

    /// Serializes the index for the snapshot codec: attributes,
    /// dictionary values, probe structure, and the CSR arrays as
    /// aligned slabs. The open-addressing table behind [`Probe::Hash`]
    /// is *not* stored — key ids are fixed by dictionary order, so the
    /// table is rebuilt deterministically on read.
    pub(crate) fn snapshot_write(&self, w: &mut ByteWriter) {
        w.put_u64(self.attrs.len() as u64);
        for a in &self.attrs {
            w.put_str(a);
        }
        w.put_u64(self.n_keys() as u64);
        for v in &self.key_values {
            encode_value(v, w);
        }
        match &self.probe {
            Probe::Hash(_) => w.put_u8(0),
            Probe::DenseInt { min, val_kid } => {
                w.put_u8(1);
                w.put_i64(*min);
                w.put_u32_slab(val_kid);
            }
            Probe::StrCodes {
                pos,
                code_kid,
                null_kid,
                ..
            } => {
                w.put_u8(2);
                w.put_u64(*pos as u64);
                w.put_u32_slab(code_kid);
                w.put_u32(*null_kid);
            }
        }
        w.put_u32_slab(&self.offsets);
        w.put_u32_slab(&self.row_ids);
        w.put_u32_slab(&self.row_keys);
    }

    /// Deserializes an index written by
    /// [`snapshot_write`](Self::snapshot_write) against the relation it
    /// indexes (string-code probes share the relation's columns; every
    /// stored attribute must exist in its schema). All cross-references
    /// — attribute names, key ids, row ids, CSR offsets — are validated,
    /// so corrupt input yields [`SnapshotError::Corrupt`], never a
    /// panic or an out-of-bounds probe at query time.
    pub(crate) fn snapshot_read(
        r: &mut ByteReader<'_>,
        relation: &Relation,
    ) -> Result<Self, SnapshotError> {
        fn corrupt(msg: impl Into<String>) -> SnapshotError {
            SnapshotError::Corrupt(format!("index: {}", msg.into()))
        }
        let n_attrs = r.get_u64()?;
        if n_attrs == 0 || n_attrs > relation.schema().arity() as u64 {
            return Err(corrupt("attribute count out of range"));
        }
        let mut attrs: Vec<Arc<str>> = Vec::with_capacity(n_attrs as usize);
        let mut positions: Vec<usize> = Vec::with_capacity(n_attrs as usize);
        for _ in 0..n_attrs {
            let name = r.get_str()?;
            let pos = relation
                .schema()
                .position(name)
                .ok_or_else(|| corrupt(format!("attribute `{name}` not in relation schema")))?;
            attrs.push(Arc::from(name));
            positions.push(pos);
        }
        let key_arity = attrs.len();
        let n_keys_claimed = r.get_u64()?;
        // Every dictionary value costs at least its one-byte tag.
        if n_keys_claimed.saturating_mul(key_arity as u64) > r.remaining() as u64 {
            return Err(SnapshotError::Truncated);
        }
        let n_keys = n_keys_claimed as usize;
        let mut key_values: Vec<Value> = Vec::with_capacity(n_keys * key_arity);
        for _ in 0..n_keys * key_arity {
            key_values.push(decode_value(r)?);
        }
        let probe_tag = r.get_u8()?;
        let mut probe = match probe_tag {
            0 => None,
            1 => {
                let min = r.get_i64()?;
                let val_kid = r.get_u32_slab()?;
                if val_kid.iter().any(|&k| k != NO_KEY && k as usize >= n_keys) {
                    return Err(corrupt("dense-int probe key id out of range"));
                }
                Some(Probe::DenseInt { min, val_kid })
            }
            2 => {
                let pos = r.get_u64()? as usize;
                if key_arity != 1 || pos != positions[0] {
                    return Err(corrupt("string probe position mismatch"));
                }
                let code_kid = r.get_u32_slab()?;
                let null_kid = r.get_u32()?;
                let columns = relation.shared_columns();
                let pool_len = match &columns[pos] {
                    Column::Str { pool, .. } => pool.len(),
                    _ => return Err(corrupt("string probe over a non-string column")),
                };
                if code_kid.len() != pool_len {
                    return Err(corrupt("string probe code map length mismatch"));
                }
                if code_kid
                    .iter()
                    .chain(std::iter::once(&null_kid))
                    .any(|&k| k != NO_KEY && k as usize >= n_keys)
                {
                    return Err(corrupt("string probe key id out of range"));
                }
                Some(Probe::StrCodes {
                    columns,
                    pos,
                    code_kid,
                    null_kid,
                })
            }
            tag => return Err(corrupt(format!("unknown probe tag {tag}"))),
        };
        let offsets = r.get_u32_slab()?;
        let row_ids = r.get_u32_slab()?;
        let row_keys = r.get_u32_slab()?;
        let n = relation.len();
        if row_keys.len() != n || row_ids.len() != n {
            return Err(corrupt("postings length does not match relation"));
        }
        if offsets.len() != n_keys + 1 || offsets.first() != Some(&0) {
            return Err(corrupt("offsets shape mismatch"));
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) || offsets[n_keys] as usize != n {
            return Err(corrupt("offsets not monotone over the row count"));
        }
        if row_keys.iter().any(|&k| k as usize >= n_keys) {
            return Err(corrupt("row key id out of range"));
        }
        // CSR consistency: every posting's row must carry that key id.
        for kid in 0..n_keys {
            let (lo, hi) = (offsets[kid] as usize, offsets[kid + 1] as usize);
            for &rid in &row_ids[lo..hi] {
                if rid as usize >= n || row_keys[rid as usize] as usize != kid {
                    return Err(corrupt("postings inconsistent with row keys"));
                }
            }
        }
        if probe.is_none() {
            // Rebuild the open-addressing table: key ids are fixed by
            // dictionary order, and the build paths size the table from
            // the row count, so inserting kid 0..n_keys with the same
            // value hashes reproduces an equivalent table.
            let mut table = IdTable::with_capacity_for(row_keys.len());
            for kid in 0..n_keys as u32 {
                let base = kid as usize * key_arity;
                let key = &key_values[base..base + key_arity];
                let hash = hash_values(key.iter());
                let got = table.lookup_or_insert(hash, kid, |k| {
                    let kb = k as usize * key_arity;
                    &key_values[kb..kb + key_arity] == key
                });
                if got != kid {
                    return Err(corrupt("duplicate key in dictionary"));
                }
            }
            probe = Some(Probe::Hash(table));
        }
        let max_degree = (0..n_keys)
            .map(|kid| (offsets[kid + 1] - offsets[kid]) as usize)
            .max()
            .unwrap_or(0);
        Ok(Self {
            attrs,
            positions,
            key_arity,
            key_values,
            probe: probe.expect("probe decoded or rebuilt"),
            offsets,
            row_ids,
            row_keys,
            max_degree,
        })
    }
}

/// Whole-row existence index over a relation (set semantics), keyed by
/// the row's full value sequence. Stores distinct *row ids* against a
/// shared snapshot of the relation's columns; open-addressing over
/// cached hashes; probes never allocate (see the module docs).
#[derive(Debug, Clone, Default)]
pub struct RowMembership {
    /// The indexed relation's columns (shared, not copied).
    columns: Arc<[Column]>,
    arity: usize,
    /// Distinct row ids, first-seen order.
    distinct: Vec<u32>,
    table: IdTable,
}

impl RowMembership {
    /// Builds a membership index for all rows of a relation.
    pub fn build(relation: &Relation) -> Self {
        let columns: Arc<[Column]> = relation.shared_columns();
        let arity = relation.schema().arity();
        let mut table = IdTable::with_capacity_for(relation.len());
        let mut distinct: Vec<u32> = Vec::new();
        for row in 0..relation.len() {
            let hash = hash_cells(columns.iter().map(|c| c.cell(row)));
            let next_id = distinct.len() as u32;
            let id = table.lookup_or_insert(hash, next_id, |i| {
                let rep = distinct[i as usize] as usize;
                columns.iter().all(|c| c.cells_eq(rep, row))
            });
            if id == next_id {
                distinct.push(row as u32);
            }
        }
        Self {
            columns,
            arity,
            distinct,
            table,
        }
    }

    /// Whether the exact row exists in the relation.
    #[inline]
    pub fn contains(&self, row: &Tuple) -> bool {
        self.contains_values(row.values())
    }

    /// Whether a row with exactly these values exists (no allocation).
    #[inline]
    pub fn contains_values(&self, values: &[Value]) -> bool {
        if values.len() != self.arity {
            return false;
        }
        let hash = hash_values(values.iter());
        self.table
            .lookup(hash, |i| {
                let rep = self.distinct[i as usize] as usize;
                self.columns
                    .iter()
                    .zip(values)
                    .all(|(c, v)| c.cell(rep).eq_value(v))
            })
            .is_some()
    }

    /// Whether the projection of `source` onto `positions` is a row —
    /// the membership oracle's `π_R(t) ∈ R` probe, answered straight
    /// off the canonical tuple with zero allocation.
    #[inline]
    pub fn contains_projection(&self, source: &Tuple, positions: &[usize]) -> bool {
        if positions.len() != self.arity {
            return false;
        }
        let hash = hash_values(positions.iter().map(|&p| source.get(p)));
        self.table
            .lookup(hash, |i| {
                let rep = self.distinct[i as usize] as usize;
                self.columns
                    .iter()
                    .zip(positions)
                    .all(|(c, &p)| c.cell(rep).eq_value(source.get(p)))
            })
            .is_some()
    }

    /// Number of distinct rows.
    pub fn len(&self) -> usize {
        self.distinct.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.distinct.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::tuple;

    fn rel() -> Relation {
        let schema = Schema::new(["k", "v"]).unwrap();
        Relation::new(
            "r",
            schema,
            vec![
                tuple![1i64, 10i64],
                tuple![1i64, 11i64],
                tuple![2i64, 20i64],
                tuple![1i64, 12i64],
            ],
        )
        .unwrap()
    }

    fn str_rel() -> Relation {
        let schema = Schema::new(["k", "v"]).unwrap();
        Relation::new(
            "s",
            schema,
            vec![
                tuple!["apple", 1i64],
                tuple!["pear", 2i64],
                tuple!["apple", 3i64],
            ],
        )
        .unwrap()
    }

    #[test]
    fn postings_and_degrees() {
        let r = rel();
        let idx = HashIndex::build_single(&r, "k");
        assert_eq!(idx.degree(&[Value::int(1)]), 3);
        assert_eq!(idx.degree(&[Value::int(2)]), 1);
        assert_eq!(idx.degree(&[Value::int(9)]), 0);
        assert_eq!(idx.max_degree(), 3);
        assert_eq!(idx.distinct_keys(), 2);
        assert!((idx.avg_degree() - 2.0).abs() < 1e-12);
        assert!(idx.memory_bytes() > 0);
    }

    #[test]
    fn rows_matching_returns_ids_in_insertion_order() {
        let r = rel();
        let idx = HashIndex::build_single(&r, "k");
        assert_eq!(idx.rows_matching(&[Value::int(1)]), &[0, 1, 3]);
        assert!(idx.rows_matching(&[Value::int(42)]).is_empty());
    }

    #[test]
    fn dictionary_encoding_round_trips() {
        let r = rel();
        let idx = HashIndex::build_single(&r, "k");
        assert_eq!(idx.n_keys(), 2);
        let kid = idx.key_id(&[Value::int(1)]).unwrap();
        assert_eq!(idx.key_values(kid), &[Value::int(1)]);
        assert_eq!(idx.postings(kid), &[0, 1, 3]);
        assert_eq!(idx.degree_of(kid), 3);
        assert_eq!(idx.key_id(&[Value::int(7)]), None);
        // Wrong arity can never match.
        assert_eq!(idx.key_id(&[Value::int(1), Value::int(1)]), None);
        // Row → key id mapping covers every row.
        for rid in 0..r.len() as u32 {
            let kid = idx.key_id_of_row(rid);
            assert_eq!(idx.key_values(kid), &[r.column(0).value(rid as usize)]);
            assert!(idx.postings(kid).contains(&rid));
        }
    }

    #[test]
    fn str_keys_reuse_dictionary_codes() {
        let r = str_rel();
        let idx = HashIndex::build_single(&r, "k");
        assert_eq!(idx.n_keys(), 2);
        assert_eq!(idx.rows_matching(&[Value::str("apple")]), &[0, 2]);
        assert_eq!(idx.rows_matching(&[Value::str("pear")]), &[1]);
        assert_eq!(idx.rows_matching(&[Value::str("plum")]), &[] as &[u32]);
    }

    #[test]
    fn projected_probe_matches_value_probe() {
        let r = rel();
        let idx = HashIndex::build_single(&r, "k");
        // Probe with the key sitting at position 2 of a wider buffer.
        let buffer = vec![Value::int(99), Value::str("pad"), Value::int(1)];
        assert_eq!(
            idx.key_id_projected(&buffer, &[2]),
            idx.key_id(&[Value::int(1)])
        );
        assert_eq!(idx.rows_matching_projected(&buffer, &[2]), &[0, 1, 3]);
        let miss = vec![Value::int(42)];
        assert_eq!(idx.key_id_projected(&miss, &[0]), None);
    }

    #[test]
    fn column_probe_matches_value_probe() {
        // key_id_at reads another relation's columns in place.
        let r = rel();
        let idx = HashIndex::build_single(&r, "k");
        let other = Relation::new(
            "probe",
            Schema::new(["x", "k"]).unwrap(),
            vec![tuple![0i64, 1i64], tuple![0i64, 2i64], tuple![0i64, 9i64]],
        )
        .unwrap();
        assert_eq!(idx.key_id_at(&other, &[1], 0), idx.key_id(&[Value::int(1)]));
        assert_eq!(idx.key_id_at(&other, &[1], 1), idx.key_id(&[Value::int(2)]));
        assert_eq!(idx.key_id_at(&other, &[1], 2), None);

        // Str keys probed from a different relation (different pool).
        let s = str_rel();
        let sidx = HashIndex::build_single(&s, "k");
        let probe = Relation::new(
            "p",
            Schema::new(["k"]).unwrap(),
            vec![tuple!["pear"], tuple!["plum"]],
        )
        .unwrap();
        assert_eq!(
            sidx.key_id_at(&probe, &[0], 0),
            sidx.key_id(&[Value::str("pear")])
        );
        assert_eq!(sidx.key_id_at(&probe, &[0], 1), None);
    }

    #[test]
    fn multi_attribute_keys() {
        let schema = Schema::new(["a", "b", "c"]).unwrap();
        let r = Relation::new(
            "r",
            schema,
            vec![
                tuple![1i64, 2i64, 100i64],
                tuple![1i64, 2i64, 200i64],
                tuple![1i64, 3i64, 300i64],
            ],
        )
        .unwrap();
        let idx = HashIndex::build(&r, &[Arc::from("a"), Arc::from("b")]);
        assert_eq!(idx.degree(&[Value::int(1), Value::int(2)]), 2);
        assert_eq!(idx.degree(&[Value::int(1), Value::int(3)]), 1);
        assert_eq!(idx.max_degree(), 2);
    }

    #[test]
    fn empty_relation_index() {
        let r = Relation::new("e", Schema::new(["x"]).unwrap(), vec![]).unwrap();
        let idx = HashIndex::build_single(&r, "x");
        assert_eq!(idx.max_degree(), 0);
        assert_eq!(idx.distinct_keys(), 0);
        assert_eq!(idx.avg_degree(), 0.0);
        assert_eq!(idx.key_id(&[Value::int(1)]), None);
        assert!(idx.entries().next().is_none());
    }

    #[test]
    fn entries_enumerate_all_keys() {
        let r = rel();
        let idx = HashIndex::build_single(&r, "k");
        let collected: Vec<(Vec<Value>, Vec<u32>)> = idx
            .entries()
            .map(|(k, rows)| (k.to_vec(), rows.to_vec()))
            .collect();
        assert_eq!(collected.len(), 2);
        // First-seen order: key 1 then key 2.
        assert_eq!(collected[0].0, vec![Value::int(1)]);
        assert_eq!(collected[0].1, vec![0, 1, 3]);
        assert_eq!(collected[1].0, vec![Value::int(2)]);
        assert_eq!(collected[1].1, vec![2]);
    }

    #[test]
    fn null_keys_index_like_values() {
        let schema = Schema::new(["k"]).unwrap();
        let r = Relation::new(
            "n",
            schema,
            vec![
                Tuple::new(vec![Value::Null]),
                Tuple::new(vec![Value::int(1)]),
                Tuple::new(vec![Value::Null]),
            ],
        )
        .unwrap();
        let idx = HashIndex::build_single(&r, "k");
        assert_eq!(idx.rows_matching(&[Value::Null]), &[0, 2]);
        assert_eq!(idx.max_degree(), 2);
    }

    #[test]
    fn membership_contains() {
        let r = rel();
        let m = RowMembership::build(&r);
        assert!(m.contains(&tuple![1i64, 11i64]));
        assert!(!m.contains(&tuple![1i64, 99i64]));
        assert!(m.contains_values(&[Value::int(2), Value::int(20)]));
        assert!(!m.contains_values(&[Value::int(2)]));
        assert_eq!(m.len(), 4);
    }

    #[test]
    fn membership_projection_probe() {
        let r = rel();
        let m = RowMembership::build(&r);
        // Canonical tuple (v, pad, k): project positions [2, 0] → (k, v).
        let canonical = tuple![11i64, 7i64, 1i64];
        assert!(m.contains_projection(&canonical, &[2, 0]));
        assert!(!m.contains_projection(&canonical, &[0, 2]));
        // Arity mismatch never matches.
        assert!(!m.contains_projection(&canonical, &[2]));
    }

    #[test]
    fn membership_over_strings() {
        let s = str_rel();
        let m = RowMembership::build(&s);
        assert!(m.contains(&tuple!["apple", 3i64]));
        assert!(!m.contains(&tuple!["apple", 2i64]));
        assert!(m.contains_projection(&tuple![1i64, "apple"], &[1, 0]));
    }

    #[test]
    fn default_membership_is_empty_and_probe_safe() {
        let m = RowMembership::default();
        assert!(m.is_empty());
        assert!(!m.contains_values(&[Value::int(1)]));
        assert!(!m.contains(&tuple![1i64]));
    }

    #[test]
    fn membership_deduplicates() {
        let schema = Schema::new(["x"]).unwrap();
        let r = Relation::new("d", schema, vec![tuple![1i64], tuple![1i64]]).unwrap();
        let m = RowMembership::build(&r);
        assert_eq!(m.len(), 1);
    }

    #[test]
    #[should_panic(expected = "not in")]
    fn unknown_attribute_panics() {
        let r = rel();
        HashIndex::build_single(&r, "missing");
    }
}
