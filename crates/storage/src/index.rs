//! Hash indexes.
//!
//! The paper replaces Zhao et al.'s B-tree index structures with "hash
//! tables for relations to maintain tuples' joinability information"
//! (§3.2). Two index shapes cover every access pattern in the framework:
//!
//! * [`HashIndex`] — join-attribute index: key (one or more attribute
//!   values) → row ids. Supplies degrees for Olken bounds, candidate
//!   lists for random walks, and per-value postings for exact weights.
//! * [`RowMembership`] — whole-row existence index, the building block of
//!   the join membership oracle (§6.2 checks "to see where t is contained
//!   in J_i ... it just requires (N−1)×(M−1) queries with key").
//!
//! # Hot-path layout
//!
//! Both indexes are built for the samplers' per-attempt inner loop,
//! where a probe must not allocate:
//!
//! * Join-attribute keys are **dictionary encoded** at build time: each
//!   distinct key value sequence gets a dense `u32` key id. Postings
//!   live in a **CSR layout** — one flat `row_ids` array plus an
//!   `offsets` array indexed by key id — so degree lookups and
//!   candidate enumeration are two integer array reads.
//! * The dictionary itself is a flat open-addressing table (power-of-two
//!   capacity, linear probing, cached hashes) over the locally
//!   implemented [Fx hasher](crate::hash::FxHasher). Probes hash the
//!   key values **in place** — [`HashIndex::key_id_projected`] reads
//!   them through a position list from any row or buffer, so no
//!   `Box<[Value]>` key is ever materialized.
//! * [`RowMembership`] uses the same table shape over whole rows;
//!   [`RowMembership::contains_projection`] answers `π_R(t) ∈ R`
//!   straight off the canonical tuple, which is what makes the
//!   membership oracle's `t ∈ Jᵢ` checks allocation-free.

use crate::hash::hash_values;
use crate::relation::Relation;
use crate::tuple::Tuple;
use crate::value::Value;
use std::sync::Arc;

/// Sentinel key id: "this key is not in the dictionary" (no posting).
pub const NO_KEY: u32 = u32::MAX;

/// Empty slot marker inside the open-addressing tables.
const EMPTY: u32 = u32::MAX;

/// A minimal open-addressing id table: hash → dense `u32` id, with the
/// caller supplying value equality. Power-of-two capacity, linear
/// probing, load factor ≤ ½ (capacity is fixed up front from the row
/// count, which bounds the number of distinct ids).
#[derive(Debug, Clone)]
struct IdTable {
    ids: Vec<u32>,
    hashes: Vec<u64>,
    mask: usize,
}

impl Default for IdTable {
    /// A valid empty table (all slots empty), so probing a
    /// default-constructed index is a miss rather than an
    /// out-of-bounds read.
    fn default() -> Self {
        Self::with_capacity_for(0)
    }
}

impl IdTable {
    fn with_capacity_for(n: usize) -> Self {
        let cap = (n.max(1) * 2).next_power_of_two();
        Self {
            ids: vec![EMPTY; cap],
            hashes: vec![0; cap],
            mask: cap - 1,
        }
    }

    /// Finds the id whose entry matches `hash` and `eq`, if present.
    #[inline]
    fn lookup(&self, hash: u64, eq: impl Fn(u32) -> bool) -> Option<u32> {
        let mut slot = hash as usize & self.mask;
        loop {
            let id = self.ids[slot];
            if id == EMPTY {
                return None;
            }
            if self.hashes[slot] == hash && eq(id) {
                return Some(id);
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Looks up `hash`/`eq`, inserting `next_id` on a miss. Returns the
    /// resident or inserted id.
    fn lookup_or_insert(&mut self, hash: u64, next_id: u32, eq: impl Fn(u32) -> bool) -> u32 {
        let mut slot = hash as usize & self.mask;
        loop {
            let id = self.ids[slot];
            if id == EMPTY {
                self.ids[slot] = next_id;
                self.hashes[slot] = hash;
                return next_id;
            }
            if self.hashes[slot] == hash && eq(id) {
                return id;
            }
            slot = (slot + 1) & self.mask;
        }
    }
}

/// Index on one or more attributes of a relation: key values → row ids,
/// dictionary encoded with CSR postings (see the module docs).
#[derive(Debug, Clone)]
pub struct HashIndex {
    attrs: Vec<Arc<str>>,
    positions: Vec<usize>,
    key_arity: usize,
    /// Dictionary storage: key id `k`'s values occupy
    /// `key_values[k * key_arity .. (k + 1) * key_arity]`.
    key_values: Vec<Value>,
    /// Open-addressing dictionary lookup.
    table: IdTable,
    /// CSR postings: key id `k`'s row ids occupy
    /// `row_ids[offsets[k] .. offsets[k + 1]]`, in insertion order.
    offsets: Vec<u32>,
    row_ids: Vec<u32>,
    /// Per base-relation row: its encoded key id (every row has one).
    row_keys: Vec<u32>,
    max_degree: usize,
}

impl HashIndex {
    /// Builds an index over `attrs` of `relation`.
    ///
    /// # Panics
    /// Panics if any attribute is missing from the relation's schema
    /// (callers validate schemas when constructing join specs).
    pub fn build(relation: &Relation, attrs: &[Arc<str>]) -> Self {
        let positions: Vec<usize> = attrs
            .iter()
            .map(|a| {
                relation
                    .schema()
                    .position(a)
                    .unwrap_or_else(|| panic!("attribute `{a}` not in {}", relation.schema()))
            })
            .collect();
        let key_arity = positions.len();
        let rows = relation.rows();

        // Pass 1: dictionary-encode every row's key.
        let mut table = IdTable::with_capacity_for(rows.len());
        let mut key_values: Vec<Value> = Vec::new();
        let mut counts: Vec<u32> = Vec::new();
        let mut row_keys: Vec<u32> = Vec::with_capacity(rows.len());
        for row in rows {
            let hash = hash_values(positions.iter().map(|&p| row.get(p)));
            let next_id = counts.len() as u32;
            let kid = table.lookup_or_insert(hash, next_id, |k| {
                let base = k as usize * key_arity;
                positions
                    .iter()
                    .enumerate()
                    .all(|(i, &p)| &key_values[base + i] == row.get(p))
            });
            if kid == next_id {
                key_values.extend(positions.iter().map(|&p| row.get(p).clone()));
                counts.push(0);
            }
            counts[kid as usize] += 1;
            row_keys.push(kid);
        }

        // Pass 2: prefix sums + scatter into the CSR arrays (stable, so
        // each key's postings keep insertion order).
        let n_keys = counts.len();
        let mut offsets: Vec<u32> = Vec::with_capacity(n_keys + 1);
        let mut total = 0u32;
        offsets.push(0);
        for &c in &counts {
            total += c;
            offsets.push(total);
        }
        let mut cursor: Vec<u32> = offsets[..n_keys].to_vec();
        let mut row_ids = vec![0u32; rows.len()];
        for (rid, &kid) in row_keys.iter().enumerate() {
            let c = &mut cursor[kid as usize];
            row_ids[*c as usize] = rid as u32;
            *c += 1;
        }
        let max_degree = counts.iter().copied().max().unwrap_or(0) as usize;

        Self {
            attrs: attrs.to_vec(),
            positions,
            key_arity,
            key_values,
            table,
            offsets,
            row_ids,
            row_keys,
            max_degree,
        }
    }

    /// Convenience: single-attribute index.
    pub fn build_single(relation: &Relation, attr: &str) -> Self {
        Self::build(relation, &[Arc::from(attr)])
    }

    /// Indexed attribute names.
    pub fn attrs(&self) -> &[Arc<str>] {
        &self.attrs
    }

    /// Positions of the indexed attributes in the base relation.
    pub fn positions(&self) -> &[usize] {
        &self.positions
    }

    /// Number of distinct keys (the dictionary size).
    #[inline]
    pub fn n_keys(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The dictionary values of key id `kid`.
    #[inline]
    pub fn key_values(&self, kid: u32) -> &[Value] {
        let base = kid as usize * self.key_arity;
        &self.key_values[base..base + self.key_arity]
    }

    /// Dictionary lookup: the dense key id of `key`, if indexed.
    #[inline]
    pub fn key_id(&self, key: &[Value]) -> Option<u32> {
        if key.len() != self.key_arity {
            return None;
        }
        let hash = hash_values(key.iter());
        let kid = self.table.lookup(hash, |k| self.key_values(k) == key)?;
        debug_assert_eq!(self.key_values(kid), key, "key id must round-trip");
        Some(kid)
    }

    /// Dictionary lookup through a projection: encodes the key read from
    /// `source[positions[0]], source[positions[1]], …` without
    /// materializing it — the samplers' allocation-free probe.
    #[inline]
    pub fn key_id_projected(&self, source: &[Value], positions: &[usize]) -> Option<u32> {
        debug_assert_eq!(positions.len(), self.key_arity, "probe arity mismatch");
        let hash = hash_values(positions.iter().map(|&p| &source[p]));
        let kid = self.table.lookup(hash, |k| {
            let stored = self.key_values(k);
            positions.iter().zip(stored).all(|(&p, v)| &source[p] == v)
        })?;
        debug_assert!(
            self.key_values(kid)
                .iter()
                .zip(positions)
                .all(|(v, &p)| v == &source[p]),
            "projected key id must round-trip"
        );
        Some(kid)
    }

    /// The encoded key id of base-relation row `rid`.
    #[inline]
    pub fn key_id_of_row(&self, rid: u32) -> u32 {
        self.row_keys[rid as usize]
    }

    /// CSR postings of key id `kid`: matching row ids in insertion
    /// order.
    #[inline]
    pub fn postings(&self, kid: u32) -> &[u32] {
        let lo = self.offsets[kid as usize] as usize;
        let hi = self.offsets[kid as usize + 1] as usize;
        &self.row_ids[lo..hi]
    }

    /// Degree of key id `kid` — a single subtraction of offsets.
    #[inline]
    pub fn degree_of(&self, kid: u32) -> usize {
        (self.offsets[kid as usize + 1] - self.offsets[kid as usize]) as usize
    }

    /// Row ids matching a key, or an empty slice.
    #[inline]
    pub fn rows_matching(&self, key: &[Value]) -> &[u32] {
        match self.key_id(key) {
            Some(kid) => self.postings(kid),
            None => &[],
        }
    }

    /// Row ids matching the key projected out of `source` at
    /// `positions`, or an empty slice (allocation-free).
    #[inline]
    pub fn rows_matching_projected(&self, source: &[Value], positions: &[usize]) -> &[u32] {
        match self.key_id_projected(source, positions) {
            Some(kid) => self.postings(kid),
            None => &[],
        }
    }

    /// Number of rows matching a key — the degree `d_A(v, R)` of §5.
    #[inline]
    pub fn degree(&self, key: &[Value]) -> usize {
        self.rows_matching(key).len()
    }

    /// Maximum degree over all keys — `M_A(R)` of §3.2/§5.
    #[inline]
    pub fn max_degree(&self) -> usize {
        self.max_degree
    }

    /// Average degree over distinct keys.
    pub fn avg_degree(&self) -> f64 {
        if self.n_keys() == 0 {
            0.0
        } else {
            self.row_ids.len() as f64 / self.n_keys() as f64
        }
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.n_keys()
    }

    /// Iterates `(key, row ids)` pairs in key-id (first-seen) order.
    pub fn entries(&self) -> impl Iterator<Item = (&[Value], &[u32])> {
        (0..self.n_keys() as u32).map(|kid| (self.key_values(kid), self.postings(kid)))
    }

    /// Extracts this index's key from a row of the base relation.
    pub fn key_of<'a>(&self, row: &'a Tuple, scratch: &'a mut Vec<Value>) -> &'a [Value] {
        scratch.clear();
        for &p in &self.positions {
            scratch.push(row.get(p).clone());
        }
        scratch.as_slice()
    }
}

/// Whole-row existence index over a relation (set semantics), keyed by
/// the row's full value sequence. Open-addressing over cached hashes;
/// probes never allocate (see the module docs).
#[derive(Debug, Clone, Default)]
pub struct RowMembership {
    /// Distinct rows, first-seen order (`Tuple` clones are `Arc` bumps).
    rows: Vec<Tuple>,
    table: IdTable,
}

impl RowMembership {
    /// Builds a membership index for all rows of a relation.
    pub fn build(relation: &Relation) -> Self {
        let mut table = IdTable::with_capacity_for(relation.len());
        let mut rows: Vec<Tuple> = Vec::new();
        for row in relation.rows() {
            let hash = hash_values(row.values().iter());
            let next_id = rows.len() as u32;
            let id = table
                .lookup_or_insert(hash, next_id, |i| rows[i as usize].values() == row.values());
            if id == next_id {
                rows.push(row.clone());
            }
        }
        Self { rows, table }
    }

    /// Whether the exact row exists in the relation.
    #[inline]
    pub fn contains(&self, row: &Tuple) -> bool {
        self.contains_values(row.values())
    }

    /// Whether a row with exactly these values exists (no allocation).
    #[inline]
    pub fn contains_values(&self, values: &[Value]) -> bool {
        let hash = hash_values(values.iter());
        self.table
            .lookup(hash, |i| self.rows[i as usize].values() == values)
            .is_some()
    }

    /// Whether the projection of `source` onto `positions` is a row —
    /// the membership oracle's `π_R(t) ∈ R` probe, answered straight
    /// off the canonical tuple with zero allocation.
    #[inline]
    pub fn contains_projection(&self, source: &Tuple, positions: &[usize]) -> bool {
        let hash = hash_values(positions.iter().map(|&p| source.get(p)));
        self.table
            .lookup(hash, |i| {
                let stored = self.rows[i as usize].values();
                stored.len() == positions.len()
                    && positions
                        .iter()
                        .zip(stored)
                        .all(|(&p, v)| source.get(p) == v)
            })
            .is_some()
    }

    /// Number of distinct rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::tuple;

    fn rel() -> Relation {
        let schema = Schema::new(["k", "v"]).unwrap();
        Relation::new(
            "r",
            schema,
            vec![
                tuple![1i64, 10i64],
                tuple![1i64, 11i64],
                tuple![2i64, 20i64],
                tuple![1i64, 12i64],
            ],
        )
        .unwrap()
    }

    #[test]
    fn postings_and_degrees() {
        let r = rel();
        let idx = HashIndex::build_single(&r, "k");
        assert_eq!(idx.degree(&[Value::int(1)]), 3);
        assert_eq!(idx.degree(&[Value::int(2)]), 1);
        assert_eq!(idx.degree(&[Value::int(9)]), 0);
        assert_eq!(idx.max_degree(), 3);
        assert_eq!(idx.distinct_keys(), 2);
        assert!((idx.avg_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rows_matching_returns_ids_in_insertion_order() {
        let r = rel();
        let idx = HashIndex::build_single(&r, "k");
        assert_eq!(idx.rows_matching(&[Value::int(1)]), &[0, 1, 3]);
        assert!(idx.rows_matching(&[Value::int(42)]).is_empty());
    }

    #[test]
    fn dictionary_encoding_round_trips() {
        let r = rel();
        let idx = HashIndex::build_single(&r, "k");
        assert_eq!(idx.n_keys(), 2);
        let kid = idx.key_id(&[Value::int(1)]).unwrap();
        assert_eq!(idx.key_values(kid), &[Value::int(1)]);
        assert_eq!(idx.postings(kid), &[0, 1, 3]);
        assert_eq!(idx.degree_of(kid), 3);
        assert_eq!(idx.key_id(&[Value::int(7)]), None);
        // Wrong arity can never match.
        assert_eq!(idx.key_id(&[Value::int(1), Value::int(1)]), None);
        // Row → key id mapping covers every row.
        for (rid, row) in r.rows().iter().enumerate() {
            let kid = idx.key_id_of_row(rid as u32);
            assert_eq!(idx.key_values(kid), &[row.get(0).clone()]);
            assert!(idx.postings(kid).contains(&(rid as u32)));
        }
    }

    #[test]
    fn projected_probe_matches_value_probe() {
        let r = rel();
        let idx = HashIndex::build_single(&r, "k");
        // Probe with the key sitting at position 2 of a wider buffer.
        let buffer = vec![Value::int(99), Value::str("pad"), Value::int(1)];
        assert_eq!(
            idx.key_id_projected(&buffer, &[2]),
            idx.key_id(&[Value::int(1)])
        );
        assert_eq!(idx.rows_matching_projected(&buffer, &[2]), &[0, 1, 3]);
        let miss = vec![Value::int(42)];
        assert_eq!(idx.key_id_projected(&miss, &[0]), None);
    }

    #[test]
    fn multi_attribute_keys() {
        let schema = Schema::new(["a", "b", "c"]).unwrap();
        let r = Relation::new(
            "r",
            schema,
            vec![
                tuple![1i64, 2i64, 100i64],
                tuple![1i64, 2i64, 200i64],
                tuple![1i64, 3i64, 300i64],
            ],
        )
        .unwrap();
        let idx = HashIndex::build(&r, &[Arc::from("a"), Arc::from("b")]);
        assert_eq!(idx.degree(&[Value::int(1), Value::int(2)]), 2);
        assert_eq!(idx.degree(&[Value::int(1), Value::int(3)]), 1);
        assert_eq!(idx.max_degree(), 2);
    }

    #[test]
    fn empty_relation_index() {
        let r = Relation::new("e", Schema::new(["x"]).unwrap(), vec![]).unwrap();
        let idx = HashIndex::build_single(&r, "x");
        assert_eq!(idx.max_degree(), 0);
        assert_eq!(idx.distinct_keys(), 0);
        assert_eq!(idx.avg_degree(), 0.0);
        assert_eq!(idx.key_id(&[Value::int(1)]), None);
        assert!(idx.entries().next().is_none());
    }

    #[test]
    fn entries_enumerate_all_keys() {
        let r = rel();
        let idx = HashIndex::build_single(&r, "k");
        let collected: Vec<(Vec<Value>, Vec<u32>)> = idx
            .entries()
            .map(|(k, rows)| (k.to_vec(), rows.to_vec()))
            .collect();
        assert_eq!(collected.len(), 2);
        // First-seen order: key 1 then key 2.
        assert_eq!(collected[0].0, vec![Value::int(1)]);
        assert_eq!(collected[0].1, vec![0, 1, 3]);
        assert_eq!(collected[1].0, vec![Value::int(2)]);
        assert_eq!(collected[1].1, vec![2]);
    }

    #[test]
    fn key_of_extracts_positions() {
        let r = rel();
        let idx = HashIndex::build_single(&r, "v");
        let mut scratch = Vec::new();
        let key = idx.key_of(r.row(2), &mut scratch);
        assert_eq!(key, &[Value::int(20)]);
    }

    #[test]
    fn membership_contains() {
        let r = rel();
        let m = RowMembership::build(&r);
        assert!(m.contains(&tuple![1i64, 11i64]));
        assert!(!m.contains(&tuple![1i64, 99i64]));
        assert!(m.contains_values(&[Value::int(2), Value::int(20)]));
        assert!(!m.contains_values(&[Value::int(2)]));
        assert_eq!(m.len(), 4);
    }

    #[test]
    fn membership_projection_probe() {
        let r = rel();
        let m = RowMembership::build(&r);
        // Canonical tuple (v, pad, k): project positions [2, 0] → (k, v).
        let canonical = tuple![11i64, 7i64, 1i64];
        assert!(m.contains_projection(&canonical, &[2, 0]));
        assert!(!m.contains_projection(&canonical, &[0, 2]));
        // Arity mismatch never matches.
        assert!(!m.contains_projection(&canonical, &[2]));
    }

    #[test]
    fn default_membership_is_empty_and_probe_safe() {
        let m = RowMembership::default();
        assert!(m.is_empty());
        assert!(!m.contains_values(&[Value::int(1)]));
        assert!(!m.contains(&tuple![1i64]));
    }

    #[test]
    fn membership_deduplicates() {
        let schema = Schema::new(["x"]).unwrap();
        let r = Relation::new("d", schema, vec![tuple![1i64], tuple![1i64]]).unwrap();
        let m = RowMembership::build(&r);
        assert_eq!(m.len(), 1);
    }

    #[test]
    #[should_panic(expected = "not in")]
    fn unknown_attribute_panics() {
        let r = rel();
        HashIndex::build_single(&r, "missing");
    }
}
