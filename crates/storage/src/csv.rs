//! CSV import/export for relations.
//!
//! The framework targets "open data, data markets, proprietary
//! databases, or web databases" (§10 of the paper) — data that usually
//! arrives as delimited text. This module reads and writes relations in
//! RFC-4180-style CSV with a header row, using standard library I/O
//! only.
//!
//! # Type inference
//!
//! Fields are inferred in a fixed order: **integer first, then float,
//! then string**; the **empty field is NULL**. Inference is per field;
//! a column mixing inferred variants lands in the
//! [`Column::Mixed`](crate::column::Column) fallback layout, so every
//! input round-trips. Quoted fields support embedded commas, quotes
//! (doubled), and newlines.
//!
//! # Streaming import
//!
//! [`read_csv`] parses records by **scanning bytes** (the delimiter and
//! quote are ASCII, so byte scanning is UTF-8-safe and skips both the
//! per-record `Vec<char>` collection and O(n) char indexing of a
//! char-based parser) and streams each record's fields straight into
//! per-attribute [`ColumnBuilder`]s — the file is never buffered as
//! tuples.

use crate::column::ColumnBuilder;
use crate::error::StorageError;
use crate::relation::Relation;
use crate::schema::Schema;
use crate::value::Value;
use std::io::{BufRead, BufReader, Read, Write};

/// Scans one physical line of a record. Returns `true` when the record
/// continues on the next line (an unterminated quoted field). Completed
/// fields are pushed to `fields`; `field` accumulates the in-progress
/// one. On `false`, the record is complete and the final field has been
/// pushed.
fn scan_line(
    line: &str,
    fields: &mut Vec<String>,
    field: &mut String,
    mut in_quotes: bool,
) -> bool {
    let bytes = line.as_bytes();
    let mut i = 0;
    // Start of the current verbatim byte run (flushed at special bytes).
    let mut start = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if in_quotes {
            if b == b'"' {
                field.push_str(&line[start..i]);
                if bytes.get(i + 1) == Some(&b'"') {
                    // Doubled quote: literal `"`.
                    field.push('"');
                    i += 2;
                } else {
                    in_quotes = false;
                    i += 1;
                }
                start = i;
            } else {
                i += 1;
            }
        } else if b == b'"' && field.is_empty() && start == i {
            // Opening quote (only at field start, like the char parser).
            in_quotes = true;
            i += 1;
            start = i;
        } else if b == b',' {
            field.push_str(&line[start..i]);
            fields.push(std::mem::take(field));
            i += 1;
            start = i;
        } else {
            i += 1;
        }
    }
    field.push_str(&line[start..]);
    if in_quotes {
        return true;
    }
    fields.push(std::mem::take(field));
    false
}

/// Parses one CSV record (handles quotes); returns fields and consumes
/// the record's continuation lines from `lines` when a quoted field
/// embeds newlines.
fn parse_record(
    first_line: &str,
    lines: &mut impl Iterator<Item = std::io::Result<String>>,
) -> Result<Vec<String>, StorageError> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut continues = scan_line(first_line, &mut fields, &mut field, false);
    while continues {
        match lines.next() {
            Some(Ok(next)) => {
                field.push('\n');
                continues = scan_line(&next, &mut fields, &mut field, true);
            }
            _ => {
                return Err(StorageError::Invalid(
                    "unterminated quoted CSV field".into(),
                ))
            }
        }
    }
    Ok(fields)
}

/// Infers a [`Value`] from a CSV field: empty → NULL, integer, float,
/// else string (the documented Int → Float → Str order).
pub fn infer_value(field: &str) -> Value {
    if field.is_empty() {
        return Value::Null;
    }
    if let Ok(i) = field.parse::<i64>() {
        return Value::Int(i);
    }
    if let Ok(f) = field.parse::<f64>() {
        return Value::Float(f);
    }
    Value::str(field)
}

/// Pushes one inferred field into a column builder without building an
/// intermediate [`Value`] for scalar variants.
fn push_inferred(builder: &mut ColumnBuilder, field: &str) {
    if field.is_empty() {
        builder.push_null();
    } else if let Ok(i) = field.parse::<i64>() {
        builder.push_i64(i);
    } else if let Ok(f) = field.parse::<f64>() {
        builder.push_f64(f);
    } else {
        builder.push_str(field);
    }
}

/// Reads a relation from CSV with a header row, streaming records into
/// typed [`ColumnBuilder`]s (see the module docs for the inference
/// order; the whole file is never materialized as tuples).
pub fn read_csv(name: impl AsRef<str>, reader: impl Read) -> Result<Relation, StorageError> {
    let buf = BufReader::new(reader);
    let mut lines = buf.lines();
    let header_line = lines
        .next()
        .ok_or_else(|| StorageError::Invalid("empty CSV input".into()))?
        .map_err(|e| StorageError::Invalid(format!("CSV read error: {e}")))?;
    let headers = parse_record(&header_line, &mut lines)?;
    let schema = Schema::new(headers.iter().map(String::as_str))?;

    let mut builders: Vec<ColumnBuilder> =
        (0..schema.arity()).map(|_| ColumnBuilder::new()).collect();
    while let Some(line) = lines.next() {
        let line = line.map_err(|e| StorageError::Invalid(format!("CSV read error: {e}")))?;
        if line.is_empty() {
            continue;
        }
        let fields = parse_record(&line, &mut lines)?;
        if fields.len() != schema.arity() {
            return Err(StorageError::ArityMismatch {
                expected: schema.arity(),
                actual: fields.len(),
            });
        }
        for (b, f) in builders.iter_mut().zip(&fields) {
            push_inferred(b, f);
        }
    }
    let columns = builders.into_iter().map(ColumnBuilder::finish).collect();
    Relation::from_columns(name, schema, columns)
}

/// Escapes one value for CSV output.
fn escape(value: &Value) -> String {
    let s = match value {
        Value::Null => return String::new(),
        other => other.to_string(),
    };
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s
    }
}

/// Writes a relation as CSV with a header row.
pub fn write_csv(relation: &Relation, mut writer: impl Write) -> Result<(), StorageError> {
    let io_err = |e: std::io::Error| StorageError::Invalid(format!("CSV write error: {e}"));
    let header = relation
        .schema()
        .attrs()
        .iter()
        .map(|a| a.as_ref().to_string())
        .collect::<Vec<_>>()
        .join(",");
    writeln!(writer, "{header}").map_err(io_err)?;
    for i in 0..relation.len() {
        let line = relation
            .columns()
            .iter()
            .map(|c| escape(&c.value(i)))
            .collect::<Vec<_>>()
            .join(",");
        writeln!(writer, "{line}").map_err(io_err)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;
    use crate::tuple::Tuple;

    fn sample() -> Relation {
        let schema = Schema::new(["k", "name", "score"]).unwrap();
        Relation::new(
            "r",
            schema,
            vec![
                Tuple::new(vec![Value::int(1), Value::str("alpha"), Value::float(1.5)]),
                Tuple::new(vec![Value::int(2), Value::str("has,comma"), Value::Null]),
                Tuple::new(vec![
                    Value::int(3),
                    Value::str("has \"quotes\""),
                    Value::float(-2.25),
                ]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn round_trip_preserves_rows() {
        let r = sample();
        let mut buf = Vec::new();
        write_csv(&r, &mut buf).unwrap();
        let back = read_csv("r", buf.as_slice()).unwrap();
        assert_eq!(back.schema(), r.schema());
        assert_eq!(back.tuples(), r.tuples());
    }

    #[test]
    fn value_inference() {
        assert_eq!(infer_value("42"), Value::int(42));
        assert_eq!(infer_value("-7"), Value::int(-7));
        assert_eq!(infer_value("2.5"), Value::float(2.5));
        assert_eq!(infer_value("abc"), Value::str("abc"));
        assert_eq!(infer_value(""), Value::Null);
        // Leading zeros still parse as ints per Rust's parser.
        assert_eq!(infer_value("007"), Value::int(7));
    }

    #[test]
    fn quoted_fields_with_commas_and_quotes() {
        let csv = "a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n";
        let r = read_csv("q", csv.as_bytes()).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.value(0, "a").unwrap(), Value::str("x,y"));
        assert_eq!(r.value(0, "b").unwrap(), Value::str("he said \"hi\""));
    }

    #[test]
    fn multiline_quoted_field() {
        let csv = "a,b\n\"line1\nline2\",5\n";
        let r = read_csv("m", csv.as_bytes()).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.value(0, "a").unwrap(), Value::str("line1\nline2"));
        assert_eq!(r.value(0, "b").unwrap(), Value::int(5));
    }

    #[test]
    fn multibyte_utf8_round_trip() {
        // Multibyte payloads around every special byte the scanner
        // looks at: delimiters inside quotes, quotes inside quotes,
        // multibyte runs crossing field boundaries.
        let schema = Schema::new(["city", "note"]).unwrap();
        let r = Relation::new(
            "u",
            schema,
            vec![
                Tuple::new(vec![Value::str("Zürich"), Value::str("naïve, café")]),
                Tuple::new(vec![Value::str("東京"), Value::str("寿司 \"旨い\"")]),
                Tuple::new(vec![Value::str("Санкт-Петербург"), Value::str("→←↑↓")]),
                Tuple::new(vec![Value::str("emoji 🦀"), Value::Null]),
            ],
        )
        .unwrap();
        let mut buf = Vec::new();
        write_csv(&r, &mut buf).unwrap();
        let back = read_csv("u", buf.as_slice()).unwrap();
        assert_eq!(back.tuples(), r.tuples());
        // And a hand-written quoted multibyte record with an embedded
        // newline.
        let csv = "a,b\n\"héllo\nwörld\",Ωmega\n";
        let q = read_csv("q", csv.as_bytes()).unwrap();
        assert_eq!(q.value(0, "a").unwrap(), Value::str("héllo\nwörld"));
        assert_eq!(q.value(0, "b").unwrap(), Value::str("Ωmega"));
    }

    #[test]
    fn nulls_round_trip() {
        let csv = "x,y\n1,\n,2\n";
        let r = read_csv("n", csv.as_bytes()).unwrap();
        assert_eq!(r.value(0, "y").unwrap(), Value::Null);
        assert_eq!(r.value(1, "x").unwrap(), Value::Null);
        let mut buf = Vec::new();
        write_csv(&r, &mut buf).unwrap();
        let back = read_csv("n", buf.as_slice()).unwrap();
        assert_eq!(back.tuples(), r.tuples());
    }

    #[test]
    fn mixed_inference_lands_in_mixed_column() {
        // "007" parses as int, "abc" stays a string → heterogeneous.
        let csv = "x\n007\nabc\n";
        let r = read_csv("m", csv.as_bytes()).unwrap();
        assert_eq!(r.column(0).kind(), "mixed");
        assert_eq!(r.value(0, "x").unwrap(), Value::int(7));
        assert_eq!(r.value(1, "x").unwrap(), Value::str("abc"));
    }

    #[test]
    fn typed_columns_from_uniform_csv() {
        let csv = "i,f,s\n1,1.5,ab\n2,2.5,cd\n";
        let r = read_csv("t", csv.as_bytes()).unwrap();
        assert_eq!(r.column(0).kind(), "i64");
        assert_eq!(r.column(1).kind(), "f64");
        assert_eq!(r.column(2).kind(), "str");
    }

    #[test]
    fn arity_mismatch_rejected() {
        let csv = "a,b\n1,2,3\n";
        assert!(matches!(
            read_csv("bad", csv.as_bytes()),
            Err(StorageError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn unterminated_quote_rejected() {
        let csv = "a\n\"open\n";
        assert!(read_csv("u", csv.as_bytes()).is_err());
    }

    #[test]
    fn empty_input_rejected() {
        assert!(read_csv("e", "".as_bytes()).is_err());
    }

    #[test]
    fn blank_lines_skipped() {
        let csv = "a\n1\n\n2\n";
        let r = read_csv("s", csv.as_bytes()).unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn csv_relation_joins_like_any_other() {
        // End-to-end: load two CSV relations and use them in the
        // relational machinery.
        let r = read_csv("r", "a,b\n1,10\n2,20\n".as_bytes()).unwrap();
        let pred = crate::predicate::Predicate::eq("a", Value::int(1))
            .compile(r.schema())
            .unwrap();
        assert_eq!(r.filter("f", &pred).len(), 1);
        let _ = tuple![1i64];
    }
}
