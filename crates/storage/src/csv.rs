//! CSV import/export for relations.
//!
//! The framework targets "open data, data markets, proprietary
//! databases, or web databases" (§10 of the paper) — data that usually
//! arrives as delimited text. This module reads and writes relations in
//! RFC-4180-style CSV with a header row, using standard library I/O
//! only. Values are parsed with simple inference: integers, then
//! floats, with empty fields as NULL and everything else as strings.
//! Quoted fields support embedded commas, quotes (doubled), and
//! newlines.

use crate::error::StorageError;
use crate::relation::Relation;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;
use std::io::{BufRead, BufReader, Read, Write};

/// Parses one CSV record (handles quotes); returns fields and consumes
/// the record's lines from `lines`.
fn parse_record(
    first_line: &str,
    lines: &mut impl Iterator<Item = std::io::Result<String>>,
) -> Result<Vec<String>, StorageError> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut line = first_line.to_string();
    let mut chars: Vec<char> = line.chars().collect();
    let mut i = 0;
    loop {
        if i >= chars.len() {
            if in_quotes {
                // Quoted field continues on the next line.
                match lines.next() {
                    Some(Ok(next)) => {
                        field.push('\n');
                        line = next;
                        chars = line.chars().collect();
                        i = 0;
                        continue;
                    }
                    _ => {
                        return Err(StorageError::Invalid(
                            "unterminated quoted CSV field".into(),
                        ))
                    }
                }
            }
            fields.push(std::mem::take(&mut field));
            break;
        }
        let c = chars[i];
        if in_quotes {
            if c == '"' {
                if i + 1 < chars.len() && chars[i + 1] == '"' {
                    field.push('"');
                    i += 2;
                    continue;
                }
                in_quotes = false;
                i += 1;
                continue;
            }
            field.push(c);
            i += 1;
        } else if c == '"' && field.is_empty() {
            in_quotes = true;
            i += 1;
        } else if c == ',' {
            fields.push(std::mem::take(&mut field));
            i += 1;
        } else {
            field.push(c);
            i += 1;
        }
    }
    Ok(fields)
}

/// Infers a [`Value`] from a CSV field: empty → NULL, integer, float,
/// else string.
pub fn infer_value(field: &str) -> Value {
    if field.is_empty() {
        return Value::Null;
    }
    if let Ok(i) = field.parse::<i64>() {
        return Value::Int(i);
    }
    if let Ok(f) = field.parse::<f64>() {
        return Value::Float(f);
    }
    Value::str(field)
}

/// Reads a relation from CSV with a header row.
pub fn read_csv(name: impl AsRef<str>, reader: impl Read) -> Result<Relation, StorageError> {
    let buf = BufReader::new(reader);
    let mut lines = buf.lines();
    let header_line = lines
        .next()
        .ok_or_else(|| StorageError::Invalid("empty CSV input".into()))?
        .map_err(|e| StorageError::Invalid(format!("CSV read error: {e}")))?;
    let headers = parse_record(&header_line, &mut lines)?;
    let schema = Schema::new(headers.iter().map(String::as_str))?;

    let mut rows: Vec<Tuple> = Vec::new();
    while let Some(line) = lines.next() {
        let line = line.map_err(|e| StorageError::Invalid(format!("CSV read error: {e}")))?;
        if line.is_empty() {
            continue;
        }
        let fields = parse_record(&line, &mut lines)?;
        if fields.len() != schema.arity() {
            return Err(StorageError::ArityMismatch {
                expected: schema.arity(),
                actual: fields.len(),
            });
        }
        rows.push(Tuple::new(fields.iter().map(|f| infer_value(f)).collect()));
    }
    Relation::new(name, schema, rows)
}

/// Escapes one value for CSV output.
fn escape(value: &Value) -> String {
    let s = match value {
        Value::Null => return String::new(),
        other => other.to_string(),
    };
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s
    }
}

/// Writes a relation as CSV with a header row.
pub fn write_csv(relation: &Relation, mut writer: impl Write) -> Result<(), StorageError> {
    let io_err = |e: std::io::Error| StorageError::Invalid(format!("CSV write error: {e}"));
    let header = relation
        .schema()
        .attrs()
        .iter()
        .map(|a| a.as_ref().to_string())
        .collect::<Vec<_>>()
        .join(",");
    writeln!(writer, "{header}").map_err(io_err)?;
    for row in relation.rows() {
        let line = row
            .values()
            .iter()
            .map(escape)
            .collect::<Vec<_>>()
            .join(",");
        writeln!(writer, "{line}").map_err(io_err)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn sample() -> Relation {
        let schema = Schema::new(["k", "name", "score"]).unwrap();
        Relation::new(
            "r",
            schema,
            vec![
                Tuple::new(vec![Value::int(1), Value::str("alpha"), Value::float(1.5)]),
                Tuple::new(vec![Value::int(2), Value::str("has,comma"), Value::Null]),
                Tuple::new(vec![
                    Value::int(3),
                    Value::str("has \"quotes\""),
                    Value::float(-2.25),
                ]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn round_trip_preserves_rows() {
        let r = sample();
        let mut buf = Vec::new();
        write_csv(&r, &mut buf).unwrap();
        let back = read_csv("r", buf.as_slice()).unwrap();
        assert_eq!(back.schema(), r.schema());
        assert_eq!(back.rows(), r.rows());
    }

    #[test]
    fn value_inference() {
        assert_eq!(infer_value("42"), Value::int(42));
        assert_eq!(infer_value("-7"), Value::int(-7));
        assert_eq!(infer_value("2.5"), Value::float(2.5));
        assert_eq!(infer_value("abc"), Value::str("abc"));
        assert_eq!(infer_value(""), Value::Null);
        // Leading zeros still parse as ints per Rust's parser.
        assert_eq!(infer_value("007"), Value::int(7));
    }

    #[test]
    fn quoted_fields_with_commas_and_quotes() {
        let csv = "a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n";
        let r = read_csv("q", csv.as_bytes()).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.row(0).get(0), &Value::str("x,y"));
        assert_eq!(r.row(0).get(1), &Value::str("he said \"hi\""));
    }

    #[test]
    fn multiline_quoted_field() {
        let csv = "a,b\n\"line1\nline2\",5\n";
        let r = read_csv("m", csv.as_bytes()).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.row(0).get(0), &Value::str("line1\nline2"));
        assert_eq!(r.row(0).get(1), &Value::int(5));
    }

    #[test]
    fn nulls_round_trip() {
        let csv = "x,y\n1,\n,2\n";
        let r = read_csv("n", csv.as_bytes()).unwrap();
        assert_eq!(r.row(0).get(1), &Value::Null);
        assert_eq!(r.row(1).get(0), &Value::Null);
        let mut buf = Vec::new();
        write_csv(&r, &mut buf).unwrap();
        let back = read_csv("n", buf.as_slice()).unwrap();
        assert_eq!(back.rows(), r.rows());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let csv = "a,b\n1,2,3\n";
        assert!(matches!(
            read_csv("bad", csv.as_bytes()),
            Err(StorageError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn empty_input_rejected() {
        assert!(read_csv("e", "".as_bytes()).is_err());
    }

    #[test]
    fn blank_lines_skipped() {
        let csv = "a\n1\n\n2\n";
        let r = read_csv("s", csv.as_bytes()).unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn csv_relation_joins_like_any_other() {
        // End-to-end: load two CSV relations and use them in the
        // relational machinery.
        let r = read_csv("r", "a,b\n1,10\n2,20\n".as_bytes()).unwrap();
        let pred = crate::predicate::Predicate::eq("a", Value::int(1))
            .compile(r.schema())
            .unwrap();
        assert_eq!(r.filter("f", &pred).len(), 1);
        let _ = tuple![1i64];
    }
}
