//! Sorted permutations over relation columns: the range-count and
//! median oracles behind the cyclic-join box-splitting sampler.
//!
//! A [`SortedIndex`] stores a permutation of a relation's row ids
//! sorted lexicographically by a chosen attribute list (ties broken by
//! row id, so the permutation is fully deterministic). On top of the
//! permutation it keeps a *duplicate-block* prefix-sum array: position
//! `j` starts a new block iff row `perm[j]` differs from `perm[j-1]`
//! on any sort attribute. Together these answer, all in O(log n) or
//! O(1):
//!
//! * [`count_in_range`](SortedIndex::count_in_range) — how many rows
//!   have their first sort attribute inside a closed value interval;
//! * [`median_in_range`](SortedIndex::median_in_range) — the
//!   lower-median first-attribute value inside that interval (the
//!   split point of the AGM box recursion);
//! * [`lower_bound_in`](SortedIndex::lower_bound_in) /
//!   [`upper_bound_in`](SortedIndex::upper_bound_in) — binary searches
//!   on *any* sort attribute restricted to a positional run, which is
//!   how the sampler narrows a box constraint to a contiguous slice of
//!   the permutation;
//! * [`distinct_in`](SortedIndex::distinct_in) — the number of
//!   distinct sort-key tuples in a run, the quantity the AGM bound is
//!   computed over (bag semantics would inflate it).
//!
//! The value order is [`Value`]'s total order (NULL first, then Int <
//! Float < Str by type rank; floats via `total_cmp`), so `Str` columns
//! are served through their dictionary: codes are insertion-ordered
//! and carry no value order, so comparisons go through the pool while
//! equality stays a code compare.

use crate::column::Column;
use crate::relation::Relation;
use crate::snapshot::{ByteReader, ByteWriter, SnapshotError};
use crate::value::Value;
use std::cmp::Ordering;
use std::sync::Arc;

/// A sorted row-id permutation over one relation plus duplicate-block
/// prefix sums. See the [module docs](self) for the oracle menu.
#[derive(Debug, Clone)]
pub struct SortedIndex {
    /// Sort attributes, most-significant first.
    attrs: Vec<Arc<str>>,
    /// Column positions of `attrs` in the relation.
    positions: Vec<usize>,
    /// The relation's columns (shared, never copied).
    columns: Arc<[Column]>,
    /// Row ids sorted lexicographically by `attrs`, ties by row id.
    perm: Vec<u32>,
    /// `head_prefix[j]` = number of duplicate-block heads among
    /// `perm[0..j]`; length `n + 1`.
    head_prefix: Vec<u32>,
    /// Length of the longest duplicate block (0 for an empty relation).
    max_block: u32,
}

impl SortedIndex {
    /// Builds the index over `attrs` (most-significant first).
    ///
    /// # Panics
    /// If any attribute is not in the relation's schema (same contract
    /// as [`HashIndex::build`](crate::index::HashIndex::build)).
    pub fn build(relation: &Relation, attrs: &[Arc<str>]) -> Self {
        let positions: Vec<usize> = attrs
            .iter()
            .map(|a| {
                relation
                    .schema()
                    .position(a)
                    .unwrap_or_else(|| panic!("attribute `{a}` not in {}", relation.schema()))
            })
            .collect();
        let columns = relation.shared_columns();
        let n = relation.len();
        let mut perm: Vec<u32> = (0..n as u32).collect();
        perm.sort_unstable_by(|&a, &b| {
            for &p in &positions {
                match columns[p].cells_cmp(a as usize, b as usize) {
                    Ordering::Equal => continue,
                    non_eq => return non_eq,
                }
            }
            a.cmp(&b)
        });
        let (head_prefix, max_block) = block_stats(&columns, &positions, &perm);
        Self {
            attrs: attrs.to_vec(),
            positions,
            columns,
            perm,
            head_prefix,
            max_block,
        }
    }

    /// Convenience: a single-attribute index.
    pub fn build_single(relation: &Relation, attr: &str) -> Self {
        Self::build(relation, &[Arc::from(attr)])
    }

    /// Number of rows covered.
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }

    /// Sort attributes, most-significant first.
    pub fn attrs(&self) -> &[Arc<str>] {
        &self.attrs
    }

    /// Column positions of the sort attributes.
    pub fn positions(&self) -> &[usize] {
        &self.positions
    }

    /// Row id at sorted position `pos`.
    #[inline]
    pub fn row_at(&self, pos: usize) -> u32 {
        self.perm[pos]
    }

    /// Materializes sort attribute `key` of the row at sorted position
    /// `pos` (strings are an `Arc` bump — no byte copy).
    #[inline]
    pub fn value_at(&self, key: usize, pos: usize) -> Value {
        self.columns[self.positions[key]].value(self.perm[pos] as usize)
    }

    /// Length of the longest duplicate block (rows equal on *all* sort
    /// attributes); 0 when the relation is empty.
    pub fn max_block(&self) -> usize {
        self.max_block as usize
    }

    /// Number of distinct sort-key tuples intersecting positions
    /// `[lo, hi)`. O(1) via the block prefix sums.
    #[inline]
    pub fn distinct_in(&self, lo: usize, hi: usize) -> usize {
        if lo >= hi {
            return 0;
        }
        // Heads strictly inside (lo, hi), plus the block covering `lo`.
        (self.head_prefix[hi] - self.head_prefix[lo + 1]) as usize + 1
    }

    /// First position in `[lo, hi)` whose `key`-th sort attribute is
    /// `>= v`, assuming those positions are sorted by that attribute
    /// (true whenever attributes `0..key` are constant over the run —
    /// the box-descent invariant).
    pub fn lower_bound_in(&self, key: usize, lo: usize, hi: usize, v: &Value) -> usize {
        let col = &self.columns[self.positions[key]];
        let (mut lo, mut hi) = (lo, hi);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if col.cell(self.perm[mid] as usize).cmp_value(v) == Ordering::Less {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// First position in `[lo, hi)` whose `key`-th sort attribute is
    /// `> v` (same sortedness precondition as
    /// [`lower_bound_in`](Self::lower_bound_in)).
    pub fn upper_bound_in(&self, key: usize, lo: usize, hi: usize, v: &Value) -> usize {
        let col = &self.columns[self.positions[key]];
        let (mut lo, mut hi) = (lo, hi);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if col.cell(self.perm[mid] as usize).cmp_value(v) == Ordering::Greater {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo
    }

    /// Number of rows whose *first* sort attribute lies in the closed
    /// interval `[lo, hi]`. O(log n).
    pub fn count_in_range(&self, lo: &Value, hi: &Value) -> usize {
        let n = self.len();
        let start = self.lower_bound_in(0, 0, n, lo);
        let end = self.upper_bound_in(0, 0, n, hi);
        end.saturating_sub(start)
    }

    /// Lower-median first-attribute value among rows whose first sort
    /// attribute lies in `[lo, hi]`; `None` if no row qualifies.
    /// O(log n) — the median of a value range is just the middle of its
    /// positional span.
    pub fn median_in_range(&self, lo: &Value, hi: &Value) -> Option<Value> {
        let n = self.len();
        let start = self.lower_bound_in(0, 0, n, lo);
        let end = self.upper_bound_in(0, 0, n, hi);
        if start >= end {
            return None;
        }
        Some(self.value_at(0, start + (end - start - 1) / 2))
    }

    /// Approximate resident bytes of the permutation and prefix sums
    /// (the columns are shared with the relation).
    pub fn memory_bytes(&self) -> usize {
        self.perm.len() * 4 + self.head_prefix.len() * 4
    }

    /// Serializes the index (attributes, row count, permutation, block
    /// prefix sums). The columns are not stored — on read the index is
    /// rewired to the restored relation and fully re-validated against
    /// its cells.
    pub(crate) fn snapshot_write(&self, w: &mut ByteWriter) {
        w.put_u32(self.attrs.len() as u32);
        for a in &self.attrs {
            w.put_str(a);
        }
        w.put_u64(self.perm.len() as u64);
        w.put_u32_slab(&self.perm);
        w.put_u32_slab(&self.head_prefix);
        w.put_u32(self.max_block);
    }

    /// Deserializes an index against the relation it sorts, validating
    /// every structural invariant: the attributes resolve, `perm` is a
    /// permutation of the relation's row ids, the permutation really is
    /// sorted (ties by row id), and the block prefix sums plus
    /// `max_block` match the actual cells.
    pub(crate) fn snapshot_read(
        r: &mut ByteReader<'_>,
        relation: &Relation,
    ) -> Result<Self, SnapshotError> {
        let corrupt = |msg: String| SnapshotError::Corrupt(format!("sorted index: {msg}"));
        let n_attrs = r.get_u32()? as usize;
        if n_attrs == 0 || n_attrs > relation.schema().arity() {
            return Err(corrupt(format!("bad attribute count {n_attrs}")));
        }
        let mut attrs = Vec::with_capacity(n_attrs);
        let mut positions = Vec::with_capacity(n_attrs);
        for _ in 0..n_attrs {
            let name = r.get_str()?;
            let pos = relation.schema().position(name).ok_or_else(|| {
                corrupt(format!(
                    "attribute `{name}` not in relation `{}`",
                    relation.name()
                ))
            })?;
            attrs.push(Arc::from(name));
            positions.push(pos);
        }
        let n = r.get_u64()?;
        if n as usize != relation.len() {
            return Err(corrupt(format!(
                "row count {n} does not match relation `{}` ({})",
                relation.name(),
                relation.len()
            )));
        }
        let n = n as usize;
        let perm = r.get_u32_slab()?;
        if perm.len() != n {
            return Err(corrupt(format!(
                "permutation has {} entries for {n} rows",
                perm.len()
            )));
        }
        let mut seen = vec![false; n];
        for &row in &perm {
            let slot = seen
                .get_mut(row as usize)
                .ok_or_else(|| corrupt(format!("row id {row} out of range")))?;
            if std::mem::replace(slot, true) {
                return Err(corrupt(format!("row id {row} appears twice")));
            }
        }
        let columns = relation.shared_columns();
        for pair in perm.windows(2) {
            let (a, b) = (pair[0] as usize, pair[1] as usize);
            let mut cmp = Ordering::Equal;
            for &p in &positions {
                cmp = columns[p].cells_cmp(a, b);
                if cmp != Ordering::Equal {
                    break;
                }
            }
            if cmp == Ordering::Greater || (cmp == Ordering::Equal && a >= b) {
                return Err(corrupt("permutation is not sorted".into()));
            }
        }
        let head_prefix = r.get_u32_slab()?;
        let max_block = r.get_u32()?;
        let (expect_prefix, expect_max) = block_stats(&columns, &positions, &perm);
        if head_prefix != expect_prefix {
            return Err(corrupt("block prefix sums do not match cells".into()));
        }
        if max_block != expect_max {
            return Err(corrupt(format!(
                "max block {max_block} does not match cells ({expect_max})"
            )));
        }
        Ok(Self {
            attrs,
            positions,
            columns,
            perm,
            head_prefix,
            max_block,
        })
    }
}

/// Computes the duplicate-block head prefix sums and the longest block
/// length of a sorted permutation.
fn block_stats(columns: &[Column], positions: &[usize], perm: &[u32]) -> (Vec<u32>, u32) {
    let mut head_prefix = Vec::with_capacity(perm.len() + 1);
    head_prefix.push(0u32);
    let mut heads = 0u32;
    let mut block_start = 0usize;
    let mut max_block = 0u32;
    for (j, &row) in perm.iter().enumerate() {
        let head = j == 0
            || positions
                .iter()
                .any(|&p| !columns[p].cells_eq(perm[j - 1] as usize, row as usize));
        if head {
            heads += 1;
            max_block = max_block.max((j - block_start) as u32);
            block_start = j;
        }
        head_prefix.push(heads);
    }
    max_block = max_block.max((perm.len() - block_start) as u32);
    if perm.is_empty() {
        max_block = 0;
    }
    (head_prefix, max_block)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Relation;
    use crate::schema::Schema;
    use crate::tuple;
    use crate::tuple::Tuple;

    fn rel() -> Relation {
        let schema = Schema::new(["k", "v"]).unwrap();
        Relation::new(
            "r",
            schema,
            vec![
                tuple![5i64, "b"],
                tuple![1i64, "a"],
                tuple![5i64, "a"],
                tuple![3i64, "c"],
                tuple![5i64, "a"],
                tuple![1i64, "a"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn sorts_lexicographically_with_row_id_ties() {
        let idx = SortedIndex::build(&rel(), &[Arc::from("k"), Arc::from("v")]);
        // Sorted (k, v) with ties by row id: (1,a)#1, (1,a)#5, (3,c)#3,
        // (5,a)#2, (5,a)#4, (5,b)#0.
        let order: Vec<u32> = (0..idx.len()).map(|p| idx.row_at(p)).collect();
        assert_eq!(order, vec![1, 5, 3, 2, 4, 0]);
    }

    #[test]
    fn count_and_median_in_range() {
        let idx = SortedIndex::build_single(&rel(), "k");
        assert_eq!(idx.count_in_range(&Value::int(1), &Value::int(5)), 6);
        assert_eq!(idx.count_in_range(&Value::int(2), &Value::int(4)), 1);
        assert_eq!(idx.count_in_range(&Value::int(4), &Value::int(4)), 0);
        assert_eq!(idx.count_in_range(&Value::int(5), &Value::int(5)), 3);
        assert_eq!(
            idx.median_in_range(&Value::int(1), &Value::int(5)),
            Some(Value::int(3))
        );
        assert_eq!(
            idx.median_in_range(&Value::int(5), &Value::int(9)),
            Some(Value::int(5))
        );
        assert_eq!(idx.median_in_range(&Value::int(6), &Value::int(9)), None);
    }

    #[test]
    fn distinct_and_blocks() {
        let idx = SortedIndex::build(&rel(), &[Arc::from("k"), Arc::from("v")]);
        // Blocks: (1,a)×2, (3,c)×1, (5,a)×2, (5,b)×1.
        assert_eq!(idx.distinct_in(0, idx.len()), 4);
        assert_eq!(idx.distinct_in(0, 2), 1);
        assert_eq!(idx.distinct_in(0, 3), 2);
        assert_eq!(idx.distinct_in(3, 3), 0);
        assert_eq!(idx.max_block(), 2);
    }

    #[test]
    fn bounds_restricted_to_runs() {
        let idx = SortedIndex::build(&rel(), &[Arc::from("k"), Arc::from("v")]);
        // Within the k=5 run (positions 3..6), search the second key.
        let lo = idx.lower_bound_in(0, 0, idx.len(), &Value::int(5));
        let hi = idx.upper_bound_in(0, 0, idx.len(), &Value::int(5));
        assert_eq!((lo, hi), (3, 6));
        assert_eq!(idx.upper_bound_in(1, lo, hi, &Value::str("a")), 5);
        assert_eq!(idx.lower_bound_in(1, lo, hi, &Value::str("b")), 5);
    }

    #[test]
    fn nulls_sort_first_and_match_each_other() {
        let schema = Schema::new(["k"]).unwrap();
        let r = Relation::new(
            "n",
            schema,
            vec![
                tuple![2i64],
                Tuple::new(vec![Value::Null]),
                tuple![1i64],
                Tuple::new(vec![Value::Null]),
            ],
        )
        .unwrap();
        let idx = SortedIndex::build_single(&r, "k");
        assert_eq!(idx.row_at(0), 1);
        assert_eq!(idx.row_at(1), 3);
        assert_eq!(idx.count_in_range(&Value::Null, &Value::Null), 2);
        assert_eq!(idx.distinct_in(0, 4), 3);
        assert_eq!(idx.max_block(), 2);
    }

    #[test]
    fn empty_relation() {
        let r = Relation::new("e", Schema::new(["k"]).unwrap(), vec![]).unwrap();
        let idx = SortedIndex::build_single(&r, "k");
        assert_eq!(idx.len(), 0);
        assert_eq!(idx.max_block(), 0);
        assert_eq!(idx.count_in_range(&Value::int(0), &Value::int(9)), 0);
        assert_eq!(idx.median_in_range(&Value::int(0), &Value::int(9)), None);
        assert_eq!(idx.distinct_in(0, 0), 0);
    }

    #[test]
    #[should_panic(expected = "attribute `ghost` not in")]
    fn unknown_attribute_panics() {
        SortedIndex::build_single(&rel(), "ghost");
    }

    #[test]
    fn str_ranges_use_value_order_not_code_order() {
        let schema = Schema::new(["s"]).unwrap();
        // Insertion order deliberately differs from lexicographic order.
        let r = Relation::new(
            "s",
            schema,
            vec![tuple!["zebra"], tuple!["ant"], tuple!["moth"]],
        )
        .unwrap();
        let idx = SortedIndex::build_single(&r, "s");
        assert_eq!(idx.row_at(0), 1); // ant
        assert_eq!(idx.row_at(1), 2); // moth
        assert_eq!(idx.row_at(2), 0); // zebra
        assert_eq!(
            idx.count_in_range(&Value::str("ant"), &Value::str("moth")),
            2
        );
    }
}
