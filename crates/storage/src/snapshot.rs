//! Sectioned, checksummed on-disk snapshots of prepared artifacts.
//!
//! A replica that cold-starts from a snapshot skips the prepare-path
//! work the artifacts embody: column transposition and dictionary
//! interning, `HashIndex` builds, histogram scans. The format is built
//! for that read path:
//!
//! * **Sectioned** — a flat list of `(kind, payload)` sections behind
//!   one magic/version header. Readers skip or reject unknown kinds
//!   without parsing them; writers append new kinds without breaking
//!   old payloads.
//! * **Checksummed** — every section carries a CRC-32 of its payload,
//!   verified before any decoding. Corruption surfaces as a named
//!   [`SnapshotError`], never as a panic or a garbage artifact.
//! * **Little-endian, aligned slabs** — fixed-width payloads (`i64` /
//!   `f64` values, `u32` codes and CSR arrays, validity words) are
//!   written as raw slabs at 8-byte-aligned offsets, so a later PR can
//!   mmap a snapshot and point columns straight into the mapping
//!   instead of copying.
//!
//! The composition root is [`Snapshot`]: a bag of relations, hash
//! indexes, and frequency histograms with `write`/`read` round-trips.
//! The engine-level snapshot (catalog + prepared-query cache) in
//! `suj-core` reuses the same primitives via [`ByteWriter`] /
//! [`ByteReader`] / [`write_sections`] / [`read_sections`].

use crate::column::{Column, StrPool, Validity};
use crate::histogram::FrequencyHistogram;
use crate::index::HashIndex;
use crate::predicate::{CompareOp, Predicate};
use crate::relation::Relation;
use crate::schema::Schema;
use crate::sorted::SortedIndex;
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// Snapshot file magic: identifies the container, not any section.
pub const MAGIC: [u8; 8] = *b"SUJSNAP\0";

/// Container format version. Readers reject anything newer.
pub const VERSION: u32 = 1;

/// Section kind: one serialized [`Relation`].
pub const SECTION_RELATION: u32 = 1;
/// Section kind: one serialized [`HashIndex`] (prefixed by the name of
/// the relation it indexes).
pub const SECTION_INDEX: u32 = 2;
/// Section kind: one serialized [`FrequencyHistogram`] (prefixed by
/// relation and attribute names).
pub const SECTION_HISTOGRAM: u32 = 3;
/// Section kind: one serialized [`SortedIndex`] (prefixed by the name
/// of the relation it sorts).
pub const SECTION_SORTED_INDEX: u32 = 4;

/// Hard cap on any single length prefix (rows, strings, sections).
/// Corrupt files can claim absurd lengths; decoding validates every
/// claimed length against the bytes actually present, and this cap
/// additionally bounds any up-front allocation.
const MAX_LEN: u64 = 1 << 40;

/// Errors raised while writing or reading snapshots. Corrupt input
/// always lands in one of the named variants — decoding never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The container version is newer than this reader supports.
    UnsupportedVersion(u32),
    /// A section's payload does not match its stored CRC-32.
    ChecksumMismatch {
        /// Kind of the damaged section.
        kind: u32,
    },
    /// The input ended before a declared length was satisfied.
    Truncated,
    /// Structurally invalid content (bad tags, inconsistent lengths,
    /// out-of-range references) with context.
    Corrupt(String),
    /// An underlying I/O failure (message of the `std::io::Error`).
    Io(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (reader supports {VERSION})"
                )
            }
            SnapshotError::ChecksumMismatch { kind } => {
                write!(f, "checksum mismatch in section kind {kind}")
            }
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::Corrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
            SnapshotError::Io(msg) => write!(f, "snapshot i/o error: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e.to_string())
    }
}

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = build_crc_table();

/// CRC-32 (IEEE 802.3 polynomial) of `bytes` — the per-section
/// checksum. Implemented locally; no external crates.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Little-endian byte sink with 8-byte alignment control. All snapshot
/// encoders write through this, so alignment invariants live in one
/// place.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing was written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64`, little-endian.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` by bit pattern, little-endian.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends raw bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Pads with zero bytes to the next 8-byte boundary — slabs written
    /// after this sit at aligned offsets (relative to the payload
    /// start, which the section container also keeps 8-aligned).
    pub fn align8(&mut self) {
        while !self.buf.len().is_multiple_of(8) {
            self.buf.push(0);
        }
    }

    /// Appends a `u32` slab (aligned, raw little-endian values).
    pub fn put_u32_slab(&mut self, values: &[u32]) {
        self.align8();
        self.put_u64(values.len() as u64);
        for &v in values {
            self.put_u32(v);
        }
    }

    /// Appends a `u64` slab (aligned, raw little-endian values).
    pub fn put_u64_slab(&mut self, values: &[u64]) {
        self.align8();
        self.put_u64(values.len() as u64);
        for &v in values {
            self.put_u64(v);
        }
    }

    /// Appends an `i64` slab (aligned, raw little-endian values).
    pub fn put_i64_slab(&mut self, values: &[i64]) {
        self.align8();
        self.put_u64(values.len() as u64);
        for &v in values {
            self.put_i64(v);
        }
    }

    /// Appends an `f64` slab (aligned, raw bit patterns).
    pub fn put_f64_slab(&mut self, values: &[f64]) {
        self.align8();
        self.put_u64(values.len() as u64);
        for &v in values {
            self.put_f64(v);
        }
    }
}

/// Bounds-checked little-endian reader over a snapshot payload. Every
/// read returns [`SnapshotError::Truncated`] instead of running off the
/// end; length prefixes are validated against the bytes remaining
/// before any allocation sized by them.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte was consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Takes the next `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64, SnapshotError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f64` bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a length prefix, validating it against `bytes_per_item`
    /// still available.
    fn get_len(&mut self, bytes_per_item: usize) -> Result<usize, SnapshotError> {
        let n = self.get_u64()?;
        if n > MAX_LEN || (n as usize).saturating_mul(bytes_per_item) > self.remaining() {
            return Err(SnapshotError::Truncated);
        }
        Ok(n as usize)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<&'a str, SnapshotError> {
        let n = self.get_len(1)?;
        std::str::from_utf8(self.take(n)?)
            .map_err(|_| SnapshotError::Corrupt("invalid utf-8 in string".into()))
    }

    /// Skips padding to the next 8-byte boundary (mirrors
    /// [`ByteWriter::align8`]).
    pub fn align8(&mut self) -> Result<(), SnapshotError> {
        while !self.pos.is_multiple_of(8) {
            self.take(1)?;
        }
        Ok(())
    }

    /// Reads a `u32` slab written by [`ByteWriter::put_u32_slab`].
    pub fn get_u32_slab(&mut self) -> Result<Vec<u32>, SnapshotError> {
        self.align8()?;
        let n = self.get_len(4)?;
        let raw = self.take(n * 4)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Reads a `u64` slab written by [`ByteWriter::put_u64_slab`].
    pub fn get_u64_slab(&mut self) -> Result<Vec<u64>, SnapshotError> {
        self.align8()?;
        let n = self.get_len(8)?;
        let raw = self.take(n * 8)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Reads an `i64` slab written by [`ByteWriter::put_i64_slab`].
    pub fn get_i64_slab(&mut self) -> Result<Vec<i64>, SnapshotError> {
        self.align8()?;
        let n = self.get_len(8)?;
        let raw = self.take(n * 8)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| i64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Reads an `f64` slab written by [`ByteWriter::put_f64_slab`].
    pub fn get_f64_slab(&mut self) -> Result<Vec<f64>, SnapshotError> {
        self.align8()?;
        let n = self.get_len(8)?;
        let raw = self.take(n * 8)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().unwrap())))
            .collect())
    }
}

/// Assembles a snapshot container from `(kind, payload)` sections:
/// magic, version, section count, then per section a 16-byte header
/// (`kind: u32`, `len: u64`, `crc: u32`) followed by the payload padded
/// to 8 bytes. Headers are 16 bytes and the preamble is 16 bytes, so
/// every payload starts 8-aligned in the file.
pub fn write_sections(sections: &[(u32, Vec<u8>)]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    for (kind, payload) in sections {
        out.extend_from_slice(&kind.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&crc32(payload).to_le_bytes());
        out.extend_from_slice(payload);
        while out.len() % 8 != 0 {
            out.push(0);
        }
    }
    out
}

/// Parses a snapshot container, validating magic, version, bounds, and
/// every section checksum. Returns `(kind, payload)` views in file
/// order.
pub fn read_sections(bytes: &[u8]) -> Result<Vec<(u32, &[u8])>, SnapshotError> {
    let mut r = ByteReader::new(bytes);
    let magic = r.take(8).map_err(|_| SnapshotError::BadMagic)?;
    if magic != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = r.get_u32()?;
    if version != VERSION {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    let n_sections = r.get_u32()?;
    let mut sections = Vec::new();
    for _ in 0..n_sections {
        let kind = r.get_u32()?;
        let len = r.get_u64()?;
        let crc = r.get_u32()?;
        if len > MAX_LEN || len as usize > r.remaining() {
            return Err(SnapshotError::Truncated);
        }
        let payload = r.take(len as usize)?;
        if crc32(payload) != crc {
            return Err(SnapshotError::ChecksumMismatch { kind });
        }
        r.align8()?;
        sections.push((kind, payload));
    }
    if r.remaining() != 0 {
        // A corrupted section count can otherwise decode "successfully"
        // with sections silently dropped; the writer never leaves
        // trailing bytes, so any remainder is corruption.
        return Err(SnapshotError::Corrupt(format!(
            "{} trailing bytes after the last section",
            r.remaining()
        )));
    }
    Ok(sections)
}

/// Serializes one [`Value`] (tag byte + payload).
pub fn encode_value(v: &Value, w: &mut ByteWriter) {
    match v {
        Value::Null => w.put_u8(0),
        Value::Int(i) => {
            w.put_u8(1);
            w.put_i64(*i);
        }
        Value::Float(x) => {
            w.put_u8(2);
            w.put_f64(*x);
        }
        Value::Str(s) => {
            w.put_u8(3);
            w.put_str(s);
        }
    }
}

/// Deserializes one [`Value`].
pub fn decode_value(r: &mut ByteReader<'_>) -> Result<Value, SnapshotError> {
    match r.get_u8()? {
        0 => Ok(Value::Null),
        1 => Ok(Value::Int(r.get_i64()?)),
        2 => Ok(Value::Float(r.get_f64()?)),
        3 => Ok(Value::str(r.get_str()?)),
        tag => Err(SnapshotError::Corrupt(format!("unknown value tag {tag}"))),
    }
}

/// Serializes a validity bitmap: a has-nulls flag, then (only when any
/// row is NULL) the packed `u64` words as an aligned slab.
fn encode_validity(validity: &Validity, w: &mut ByteWriter) {
    if !validity.has_nulls() {
        w.put_u8(0);
        return;
    }
    w.put_u8(1);
    let len = validity.len();
    let mut words = vec![0u64; len.div_ceil(64)];
    for i in 0..len {
        if validity.is_valid(i) {
            words[i >> 6] |= 1u64 << (i & 63);
        }
    }
    w.put_u64_slab(&words);
}

/// Deserializes a validity bitmap for `len` rows.
fn decode_validity(r: &mut ByteReader<'_>, len: usize) -> Result<Validity, SnapshotError> {
    match r.get_u8()? {
        0 => Ok(Validity::all_valid(len)),
        1 => {
            let words = r.get_u64_slab()?;
            if words.len() != len.div_ceil(64) {
                return Err(SnapshotError::Corrupt(format!(
                    "validity bitmap has {} words for {len} rows",
                    words.len()
                )));
            }
            let mut validity = Validity::all_valid(0);
            for i in 0..len {
                validity.push(words[i >> 6] & (1u64 << (i & 63)) != 0);
            }
            Ok(validity)
        }
        tag => Err(SnapshotError::Corrupt(format!(
            "unknown validity tag {tag}"
        ))),
    }
}

/// Serializes one [`Column`]. Fixed-width payloads (`i64`/`f64` values,
/// `u32` dictionary codes, validity words) land as aligned raw slabs.
pub fn encode_column(col: &Column, w: &mut ByteWriter) {
    match col {
        Column::Int64 { values, validity } => {
            w.put_u8(0);
            encode_validity(validity, w);
            w.put_i64_slab(values);
        }
        Column::Float64 { values, validity } => {
            w.put_u8(1);
            encode_validity(validity, w);
            w.put_f64_slab(values);
        }
        Column::Str {
            codes,
            pool,
            validity,
        } => {
            w.put_u8(2);
            encode_validity(validity, w);
            w.put_u64(pool.len() as u64);
            for s in pool.strings() {
                w.put_str(s);
            }
            w.put_u32_slab(codes);
        }
        Column::Mixed { values } => {
            w.put_u8(3);
            w.put_u64(values.len() as u64);
            for v in values {
                encode_value(v, w);
            }
        }
    }
}

/// Deserializes one [`Column`] of `len` rows.
pub fn decode_column(r: &mut ByteReader<'_>, len: usize) -> Result<Column, SnapshotError> {
    let tag = r.get_u8()?;
    match tag {
        0 => {
            let validity = decode_validity(r, len)?;
            let values = r.get_i64_slab()?;
            if values.len() != len {
                return Err(SnapshotError::Corrupt("int column length mismatch".into()));
            }
            Ok(Column::Int64 { values, validity })
        }
        1 => {
            let validity = decode_validity(r, len)?;
            let values = r.get_f64_slab()?;
            if values.len() != len {
                return Err(SnapshotError::Corrupt(
                    "float column length mismatch".into(),
                ));
            }
            Ok(Column::Float64 { values, validity })
        }
        2 => {
            let validity = decode_validity(r, len)?;
            let n_strings = r.get_u64()?;
            if n_strings > MAX_LEN || n_strings as usize > r.remaining() {
                return Err(SnapshotError::Truncated);
            }
            let mut pool = StrPool::new();
            for _ in 0..n_strings {
                let s = r.get_str()?;
                let code = pool.intern(s);
                if code as u64 + 1 != pool.len() as u64 {
                    return Err(SnapshotError::Corrupt(
                        "duplicate string in dictionary pool".into(),
                    ));
                }
            }
            let codes = r.get_u32_slab()?;
            if codes.len() != len {
                return Err(SnapshotError::Corrupt("str column length mismatch".into()));
            }
            for (i, &c) in codes.iter().enumerate() {
                if validity.is_valid(i) && c as usize >= pool.len() {
                    return Err(SnapshotError::Corrupt(format!(
                        "dictionary code {c} out of range (pool has {})",
                        pool.len()
                    )));
                }
            }
            Ok(Column::Str {
                codes,
                pool: Arc::new(pool),
                validity,
            })
        }
        3 => {
            let n = r.get_len(1)?;
            let mut values = Vec::with_capacity(n);
            for _ in 0..n {
                values.push(decode_value(r)?);
            }
            if values.len() != len {
                return Err(SnapshotError::Corrupt(
                    "mixed column length mismatch".into(),
                ));
            }
            Ok(Column::Mixed { values })
        }
        tag => Err(SnapshotError::Corrupt(format!("unknown column tag {tag}"))),
    }
}

/// Serializes one [`Relation`]: name, schema, original size, row count,
/// then each column.
pub fn encode_relation(rel: &Relation, w: &mut ByteWriter) {
    w.put_str(rel.name());
    w.put_u32(rel.schema().arity() as u32);
    for attr in rel.schema().attrs() {
        w.put_str(attr);
    }
    w.put_u64(rel.original_size() as u64);
    w.put_u64(rel.len() as u64);
    for p in 0..rel.schema().arity() {
        encode_column(rel.column(p), w);
    }
}

/// Deserializes one [`Relation`].
pub fn decode_relation(r: &mut ByteReader<'_>) -> Result<Relation, SnapshotError> {
    let name = r.get_str()?.to_string();
    let arity = r.get_u32()? as usize;
    if arity > r.remaining() {
        return Err(SnapshotError::Truncated);
    }
    let mut attrs = Vec::with_capacity(arity);
    for _ in 0..arity {
        attrs.push(r.get_str()?.to_string());
    }
    let schema =
        Schema::new(attrs).map_err(|e| SnapshotError::Corrupt(format!("invalid schema: {e}")))?;
    let original_size = r.get_u64()?;
    let len = r.get_len(1)?;
    let mut columns = Vec::with_capacity(arity);
    for _ in 0..arity {
        columns.push(decode_column(r, len)?);
    }
    let rel = Relation::from_columns(&name, schema, columns)
        .map_err(|e| SnapshotError::Corrupt(format!("invalid relation: {e}")))?;
    if original_size > MAX_LEN {
        return Err(SnapshotError::Corrupt("original size out of range".into()));
    }
    Ok(rel.with_original_size(original_size as usize))
}

/// Serializes one [`Predicate`] (tag byte per node, recursive).
pub fn encode_predicate(p: &Predicate, w: &mut ByteWriter) {
    match p {
        Predicate::True => w.put_u8(0),
        Predicate::Compare { attr, op, value } => {
            w.put_u8(1);
            w.put_str(attr);
            w.put_u8(match op {
                CompareOp::Eq => 0,
                CompareOp::Ne => 1,
                CompareOp::Lt => 2,
                CompareOp::Le => 3,
                CompareOp::Gt => 4,
                CompareOp::Ge => 5,
            });
            encode_value(value, w);
        }
        Predicate::And(ps) => {
            w.put_u8(2);
            w.put_u64(ps.len() as u64);
            for q in ps {
                encode_predicate(q, w);
            }
        }
        Predicate::Or(ps) => {
            w.put_u8(3);
            w.put_u64(ps.len() as u64);
            for q in ps {
                encode_predicate(q, w);
            }
        }
        Predicate::Not(q) => {
            w.put_u8(4);
            encode_predicate(q, w);
        }
    }
}

/// Deserializes one [`Predicate`].
pub fn decode_predicate(r: &mut ByteReader<'_>) -> Result<Predicate, SnapshotError> {
    match r.get_u8()? {
        0 => Ok(Predicate::True),
        1 => {
            let attr: Arc<str> = Arc::from(r.get_str()?);
            let op = match r.get_u8()? {
                0 => CompareOp::Eq,
                1 => CompareOp::Ne,
                2 => CompareOp::Lt,
                3 => CompareOp::Le,
                4 => CompareOp::Gt,
                5 => CompareOp::Ge,
                tag => {
                    return Err(SnapshotError::Corrupt(format!("unknown compare op {tag}")));
                }
            };
            let value = decode_value(r)?;
            Ok(Predicate::Compare { attr, op, value })
        }
        2 => {
            let n = r.get_len(1)?;
            let mut ps = Vec::with_capacity(n);
            for _ in 0..n {
                ps.push(decode_predicate(r)?);
            }
            Ok(Predicate::And(ps))
        }
        3 => {
            let n = r.get_len(1)?;
            let mut ps = Vec::with_capacity(n);
            for _ in 0..n {
                ps.push(decode_predicate(r)?);
            }
            Ok(Predicate::Or(ps))
        }
        4 => Ok(Predicate::Not(Box::new(decode_predicate(r)?))),
        tag => Err(SnapshotError::Corrupt(format!(
            "unknown predicate tag {tag}"
        ))),
    }
}

/// Serializes one [`HashIndex`] (dictionary, probe structure, CSR
/// postings). The open-addressing table itself is *not* stored — it is
/// rebuilt deterministically on read (see
/// [`decode_index`]), which keeps the section compact and the rebuild
/// bit-identical.
pub fn encode_index(idx: &HashIndex, w: &mut ByteWriter) {
    idx.snapshot_write(w);
}

/// Deserializes one [`HashIndex`] against the relation it indexes
/// (dictionary-code probes share the relation's columns, so the
/// relation must be restored first).
pub fn decode_index(
    r: &mut ByteReader<'_>,
    relation: &Relation,
) -> Result<HashIndex, SnapshotError> {
    HashIndex::snapshot_read(r, relation)
}

/// Serializes one [`SortedIndex`] (sort attributes, permutation, block
/// prefix sums). The columns are not stored — on read the index is
/// rewired to the restored relation (see [`decode_sorted_index`]).
pub fn encode_sorted_index(idx: &SortedIndex, w: &mut ByteWriter) {
    idx.snapshot_write(w);
}

/// Deserializes one [`SortedIndex`] against the relation it sorts,
/// re-validating the permutation and block sums against the restored
/// cells.
pub fn decode_sorted_index(
    r: &mut ByteReader<'_>,
    relation: &Relation,
) -> Result<SortedIndex, SnapshotError> {
    SortedIndex::snapshot_read(r, relation)
}

/// Serializes one [`FrequencyHistogram`]. Entries are sorted by value
/// so the encoding is deterministic (the in-memory map iterates in
/// arbitrary order).
pub fn encode_histogram(h: &FrequencyHistogram, w: &mut ByteWriter) {
    let mut entries: Vec<(&Value, u64)> = h.entries().collect();
    entries.sort_by(|a, b| a.0.cmp(b.0));
    w.put_u64(h.total());
    w.put_u64(entries.len() as u64);
    for (v, c) in entries {
        encode_value(v, w);
        w.put_u64(c);
    }
}

/// Deserializes one [`FrequencyHistogram`].
pub fn decode_histogram(r: &mut ByteReader<'_>) -> Result<FrequencyHistogram, SnapshotError> {
    let total = r.get_u64()?;
    let n = r.get_len(1)?;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let v = decode_value(r)?;
        let c = r.get_u64()?;
        entries.push((v, c));
    }
    FrequencyHistogram::from_entries(entries, total)
        .map_err(|msg| SnapshotError::Corrupt(msg.to_string()))
}

/// A bag of prepared artifacts with a sectioned on-disk round-trip:
/// relations, hash indexes (named by the relation they index), and
/// frequency histograms (named by relation and attribute).
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Restored or to-be-written relations, in file order.
    pub relations: Vec<Relation>,
    /// `(relation name, index)` pairs. On read, each index is rewired
    /// to the relation of that name restored from the same file.
    pub indexes: Vec<(String, HashIndex)>,
    /// `(relation name, attribute, histogram)` triples.
    pub histograms: Vec<(String, String, FrequencyHistogram)>,
    /// `(relation name, sorted index)` pairs. On read, each index is
    /// rewired to the relation of that name restored from the same
    /// file and re-validated against its cells.
    pub sorted: Vec<(String, SortedIndex)>,
}

impl Snapshot {
    /// Serializes the snapshot to bytes (one section per artifact).
    pub fn write_bytes(&self) -> Vec<u8> {
        let mut sections: Vec<(u32, Vec<u8>)> = Vec::new();
        for rel in &self.relations {
            let mut w = ByteWriter::new();
            encode_relation(rel, &mut w);
            sections.push((SECTION_RELATION, w.into_bytes()));
        }
        for (rel_name, idx) in &self.indexes {
            let mut w = ByteWriter::new();
            w.put_str(rel_name);
            encode_index(idx, &mut w);
            sections.push((SECTION_INDEX, w.into_bytes()));
        }
        for (rel_name, attr, hist) in &self.histograms {
            let mut w = ByteWriter::new();
            w.put_str(rel_name);
            w.put_str(attr);
            encode_histogram(hist, &mut w);
            sections.push((SECTION_HISTOGRAM, w.into_bytes()));
        }
        for (rel_name, idx) in &self.sorted {
            let mut w = ByteWriter::new();
            w.put_str(rel_name);
            encode_sorted_index(idx, &mut w);
            sections.push((SECTION_SORTED_INDEX, w.into_bytes()));
        }
        write_sections(&sections)
    }

    /// Deserializes a snapshot from bytes, verifying every checksum.
    /// Index sections are resolved against relations restored from the
    /// same file; a dangling relation name is [`SnapshotError::Corrupt`].
    pub fn read_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let sections = read_sections(bytes)?;
        let mut snapshot = Snapshot::default();
        // Relations first: index sections reference them by name.
        for (kind, payload) in &sections {
            if *kind == SECTION_RELATION {
                let mut r = ByteReader::new(payload);
                snapshot.relations.push(decode_relation(&mut r)?);
            }
        }
        for (kind, payload) in &sections {
            match *kind {
                SECTION_RELATION => {}
                SECTION_INDEX => {
                    let mut r = ByteReader::new(payload);
                    let rel_name = r.get_str()?.to_string();
                    let relation = snapshot
                        .relations
                        .iter()
                        .find(|rel| rel.name() == rel_name)
                        .ok_or_else(|| {
                            SnapshotError::Corrupt(format!(
                                "index references unknown relation `{rel_name}`"
                            ))
                        })?;
                    let idx = decode_index(&mut r, relation)?;
                    snapshot.indexes.push((rel_name, idx));
                }
                SECTION_HISTOGRAM => {
                    let mut r = ByteReader::new(payload);
                    let rel_name = r.get_str()?.to_string();
                    let attr = r.get_str()?.to_string();
                    let hist = decode_histogram(&mut r)?;
                    snapshot.histograms.push((rel_name, attr, hist));
                }
                SECTION_SORTED_INDEX => {
                    let mut r = ByteReader::new(payload);
                    let rel_name = r.get_str()?.to_string();
                    let relation = snapshot
                        .relations
                        .iter()
                        .find(|rel| rel.name() == rel_name)
                        .ok_or_else(|| {
                            SnapshotError::Corrupt(format!(
                                "sorted index references unknown relation `{rel_name}`"
                            ))
                        })?;
                    let idx = decode_sorted_index(&mut r, relation)?;
                    snapshot.sorted.push((rel_name, idx));
                }
                other => {
                    return Err(SnapshotError::Corrupt(format!(
                        "unknown section kind {other}"
                    )));
                }
            }
        }
        Ok(snapshot)
    }

    /// Writes the snapshot to a file via the crash-safe
    /// [`atomic_replace`] protocol: the previous good file survives as
    /// [`snapshot_prev_path`] and a crash at any point leaves either
    /// the old or the new snapshot fully intact, never a torn one.
    pub fn write(&self, path: impl AsRef<std::path::Path>) -> Result<u64, SnapshotError> {
        atomic_replace(path, &self.write_bytes())
    }

    /// Reads a snapshot from a file, falling back to the previous good
    /// snapshot ([`snapshot_prev_path`]) when the newest one is
    /// missing, truncated, or corrupt (see [`fallback_eligible`]).
    pub fn read(path: impl AsRef<std::path::Path>) -> Result<Self, SnapshotError> {
        let path = path.as_ref();
        let primary = std::fs::read(path)
            .map_err(SnapshotError::from)
            .and_then(|b| Self::read_bytes(&b));
        match primary {
            Ok(snapshot) => Ok(snapshot),
            Err(e) if fallback_eligible(&e) => {
                match std::fs::read(snapshot_prev_path(path))
                    .ok()
                    .and_then(|b| Self::read_bytes(&b).ok())
                {
                    Some(snapshot) => Ok(snapshot),
                    None => Err(e),
                }
            }
            Err(e) => Err(e),
        }
    }
}

// ---------------------------------------------------------------------
// Crash-safe file replacement
// ---------------------------------------------------------------------

fn sibling(path: &std::path::Path, suffix: &str) -> std::path::PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(suffix);
    std::path::PathBuf::from(name)
}

/// The staging file [`atomic_replace`] writes before the final rename.
/// A crash mid-write leaves (at most) a torn file *here*, never at the
/// destination path.
pub fn snapshot_tmp_path(path: impl AsRef<std::path::Path>) -> std::path::PathBuf {
    sibling(path.as_ref(), ".tmp")
}

/// Where [`atomic_replace`] preserves the previous good file, and
/// where the readers ([`Snapshot::read`], `Engine::load_snapshot`)
/// look when the newest snapshot fails to decode.
pub fn snapshot_prev_path(path: impl AsRef<std::path::Path>) -> std::path::PathBuf {
    sibling(path.as_ref(), ".prev")
}

/// Whether a decode failure warrants falling back to the previous
/// snapshot: everything a crash or bit-rot can produce (i/o errors,
/// truncation, corruption, a garbage magic) — but *not*
/// [`SnapshotError::UnsupportedVersion`], which is a deployment
/// mismatch that silently serving stale data would only mask.
pub fn fallback_eligible(e: &SnapshotError) -> bool {
    !matches!(e, SnapshotError::UnsupportedVersion(_))
}

/// Crash-safe file replacement: stages `bytes` at
/// [`snapshot_tmp_path`], fsyncs, then atomically renames over `path`,
/// first preserving the existing file (if any) at
/// [`snapshot_prev_path`]. Returns the bytes written.
///
/// The invariant: whatever instant the process dies, `path` holds a
/// complete snapshot (old or new), and at least one of
/// `path`/`path.prev` decodes — a torn write can only ever land in the
/// staging file.
pub fn atomic_replace(
    path: impl AsRef<std::path::Path>,
    bytes: &[u8],
) -> Result<u64, SnapshotError> {
    use std::io::Write as _;
    let path = path.as_ref();
    let tmp = snapshot_tmp_path(path);
    if path.exists() {
        let prev = snapshot_prev_path(path);
        let _ = std::fs::remove_file(&prev);
        // Hard link keeps `path` valid at every instant; fall back to
        // a copy on filesystems without link support.
        std::fs::hard_link(path, &prev).or_else(|_| std::fs::copy(path, &prev).map(|_| ()))?;
    }
    {
        let mut staged = std::fs::File::create(&tmp)?;
        staged.write_all(bytes)?;
        staged.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    // Make the rename itself durable.
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Ok(dir) = std::fs::File::open(dir) {
            let _ = dir.sync_all();
        }
    }
    Ok(bytes.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn sample_relation() -> Relation {
        let schema = Schema::new(["k", "name", "score"]).unwrap();
        Relation::new(
            "users",
            schema,
            vec![
                tuple![1i64, "ada", 3.5f64],
                tuple![2i64, "grace", 4.0f64],
                Tuple::new(vec![Value::int(3), Value::Null, Value::Null]),
                tuple![1i64, "ada", 2.25f64],
            ],
        )
        .unwrap()
    }

    use crate::tuple::Tuple;

    fn assert_relations_equal(a: &Relation, b: &Relation) {
        assert_eq!(a.name(), b.name());
        assert_eq!(a.schema().attrs(), b.schema().attrs());
        assert_eq!(a.len(), b.len());
        assert_eq!(a.original_size(), b.original_size());
        for i in 0..a.len() {
            for p in 0..a.schema().arity() {
                assert_eq!(a.column(p).value(i), b.column(p).value(i), "cell ({i},{p})");
            }
        }
    }

    #[test]
    fn crc32_known_vector() {
        // The classic IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn relation_round_trip() {
        let rel = sample_relation().with_original_size(100);
        let mut w = ByteWriter::new();
        encode_relation(&rel, &mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = decode_relation(&mut r).unwrap();
        assert!(r.is_empty());
        assert_relations_equal(&rel, &back);
        assert_eq!(back.original_size(), 100);
    }

    #[test]
    fn mixed_column_round_trip() {
        let schema = Schema::new(["x"]).unwrap();
        let rel = Relation::new(
            "m",
            schema,
            vec![
                Tuple::new(vec![Value::int(1)]),
                Tuple::new(vec![Value::str("two")]),
                Tuple::new(vec![Value::float(3.0)]),
                Tuple::new(vec![Value::Null]),
            ],
        )
        .unwrap();
        assert_eq!(rel.column(0).kind(), "mixed");
        let mut w = ByteWriter::new();
        encode_relation(&rel, &mut w);
        let bytes = w.into_bytes();
        let back = decode_relation(&mut ByteReader::new(&bytes)).unwrap();
        assert_relations_equal(&rel, &back);
    }

    #[test]
    fn index_round_trip_behaves_identically() {
        let rel = sample_relation();
        for attrs in [vec!["k"], vec!["name"], vec!["score"], vec!["k", "name"]] {
            let attrs: Vec<Arc<str>> = attrs.into_iter().map(Arc::from).collect();
            let idx = HashIndex::build(&rel, &attrs);
            let mut w = ByteWriter::new();
            encode_index(&idx, &mut w);
            let bytes = w.into_bytes();
            let back = decode_index(&mut ByteReader::new(&bytes), &rel).unwrap();
            assert_eq!(idx.n_keys(), back.n_keys());
            assert_eq!(idx.max_degree(), back.max_degree());
            for kid in 0..idx.n_keys() as u32 {
                assert_eq!(idx.key_values(kid), back.key_values(kid));
                assert_eq!(idx.postings(kid), back.postings(kid));
                assert_eq!(back.key_id(idx.key_values(kid)), Some(kid));
            }
            for rid in 0..rel.len() as u32 {
                assert_eq!(idx.key_id_of_row(rid), back.key_id_of_row(rid));
            }
        }
    }

    #[test]
    fn histogram_round_trip() {
        let rel = sample_relation();
        let h = FrequencyHistogram::build(&rel, "k");
        let mut w = ByteWriter::new();
        encode_histogram(&h, &mut w);
        let bytes = w.into_bytes();
        let back = decode_histogram(&mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(h.total(), back.total());
        assert_eq!(h.max_degree(), back.max_degree());
        assert_eq!(h.distinct(), back.distinct());
        for (v, c) in h.entries() {
            assert_eq!(back.degree(v), c);
        }
    }

    #[test]
    fn predicate_round_trip() {
        let p = Predicate::And(vec![
            Predicate::cmp("a", CompareOp::Ge, Value::int(3)),
            Predicate::Or(vec![
                Predicate::eq("b", Value::str("x")),
                Predicate::Not(Box::new(Predicate::True)),
            ]),
        ]);
        let mut w = ByteWriter::new();
        encode_predicate(&p, &mut w);
        let bytes = w.into_bytes();
        let back = decode_predicate(&mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn snapshot_file_round_trip() {
        let rel = sample_relation();
        let idx = HashIndex::build_single(&rel, "k");
        let hist = FrequencyHistogram::build(&rel, "name");
        let sorted = SortedIndex::build_single(&rel, "k");
        let snap = Snapshot {
            relations: vec![rel.clone()],
            indexes: vec![("users".into(), idx)],
            histograms: vec![("users".into(), "name".into(), hist)],
            sorted: vec![("users".into(), sorted)],
        };
        let bytes = snap.write_bytes();
        let back = Snapshot::read_bytes(&bytes).unwrap();
        assert_eq!(back.relations.len(), 1);
        assert_relations_equal(&rel, &back.relations[0]);
        assert_eq!(back.indexes.len(), 1);
        assert_eq!(back.indexes[0].0, "users");
        assert_eq!(
            back.indexes[0].1.rows_matching(&[Value::int(1)]),
            &[0u32, 3]
        );
        assert_eq!(back.histograms.len(), 1);
        assert_eq!(back.histograms[0].2.degree(&Value::str("ada")), 2);
        assert_eq!(back.sorted.len(), 1);
        assert_eq!(back.sorted[0].0, "users");
        assert_eq!(
            back.sorted[0]
                .1
                .count_in_range(&Value::int(1), &Value::int(2)),
            3
        );
    }

    #[test]
    fn named_failures_bad_magic_version_checksum_truncation() {
        let snap = Snapshot {
            relations: vec![sample_relation()],
            ..Snapshot::default()
        };
        let bytes = snap.write_bytes();

        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            Snapshot::read_bytes(&bad).unwrap_err(),
            SnapshotError::BadMagic
        ));

        // Wrong version.
        let mut bad = bytes.clone();
        bad[8] = 99;
        assert!(matches!(
            Snapshot::read_bytes(&bad).unwrap_err(),
            SnapshotError::UnsupportedVersion(_)
        ));

        // Flipped payload byte → checksum mismatch.
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last - 8] ^= 0xFF;
        assert!(matches!(
            Snapshot::read_bytes(&bad).unwrap_err(),
            SnapshotError::ChecksumMismatch { .. } | SnapshotError::Truncated
        ));

        // Truncation at every prefix never panics.
        for cut in 0..bytes.len() {
            let _ = Snapshot::read_bytes(&bytes[..cut]);
        }
    }

    #[test]
    fn empty_relation_and_empty_snapshot() {
        let rel = Relation::new("empty", Schema::new(["a"]).unwrap(), vec![]).unwrap();
        let idx = HashIndex::build_single(&rel, "a");
        let snap = Snapshot {
            relations: vec![rel],
            indexes: vec![("empty".into(), idx)],
            ..Snapshot::default()
        };
        let back = Snapshot::read_bytes(&snap.write_bytes()).unwrap();
        assert_eq!(back.relations[0].len(), 0);
        assert_eq!(back.indexes[0].1.n_keys(), 0);

        let nothing = Snapshot::default();
        let back = Snapshot::read_bytes(&nothing.write_bytes()).unwrap();
        assert!(back.relations.is_empty());
    }

    #[test]
    fn dangling_index_relation_is_corrupt() {
        let rel = sample_relation();
        let idx = HashIndex::build_single(&rel, "k");
        let snap = Snapshot {
            relations: vec![],
            indexes: vec![("ghost".into(), idx)],
            ..Snapshot::default()
        };
        assert!(matches!(
            Snapshot::read_bytes(&snap.write_bytes()).unwrap_err(),
            SnapshotError::Corrupt(_)
        ));
    }

    #[test]
    fn slabs_are_eight_byte_aligned() {
        // The alignment invariant future mmap support depends on: after
        // align8, offsets are multiples of 8 from the payload start, and
        // the section container keeps payload starts 8-aligned in-file.
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_i64_slab(&[1, 2, 3]);
        assert_eq!(w.len() % 8, 0);
        let bytes = write_sections(&[(1, w.into_bytes())]);
        // Preamble (16) + header (16) → payload starts at 32.
        assert_eq!(32 % 8, 0);
        let sections = read_sections(&bytes).unwrap();
        assert_eq!(sections.len(), 1);
    }
}
