//! Named relations over typed columns.
//!
//! A [`Relation`] is an immutable bag of rows under a schema, stored
//! **column-major**: one typed [`Column`] per attribute behind a shared
//! `Arc<[Column]>`. Rows are views — [`RowRef`] addresses a row without
//! materializing it; [`Tuple`] survives only as the materialized
//! *output* representation (the paper's `t.val` identity is a property
//! of the value sequence, not of the storage layout). Splitting helpers
//! implement the UQ3 workload construction ("we split them vertically
//! and horizontally to get relations with different schemas", §9) and
//! the splitting method's bookkeeping: a relation derived from another
//! records the original's cardinality, which the histogram-based
//! estimator uses ("split relations keep a record of their original
//! sizes", §5.2).

use crate::column::{CellRef, Column, ColumnBuilder};
use crate::error::StorageError;
use crate::predicate::CompiledPredicate;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// An immutable named relation (bag semantics), stored column-major.
#[derive(Debug, Clone)]
pub struct Relation {
    name: Arc<str>,
    schema: Schema,
    columns: Arc<[Column]>,
    len: usize,
    original_size: Option<usize>,
}

impl Relation {
    /// Builds a relation from row-major tuples, validating every row's
    /// arity; the rows are transposed into typed columns.
    pub fn new(
        name: impl AsRef<str>,
        schema: Schema,
        rows: Vec<Tuple>,
    ) -> Result<Self, StorageError> {
        let mut builders: Vec<ColumnBuilder> =
            (0..schema.arity()).map(|_| ColumnBuilder::new()).collect();
        for row in &rows {
            if row.arity() != schema.arity() {
                return Err(StorageError::ArityMismatch {
                    expected: schema.arity(),
                    actual: row.arity(),
                });
            }
            for (b, v) in builders.iter_mut().zip(row.values()) {
                b.push_ref(v);
            }
        }
        let columns: Vec<Column> = builders.into_iter().map(ColumnBuilder::finish).collect();
        Self::from_columns(name, schema, columns)
    }

    /// Builds a relation directly from columns (the streaming import
    /// path — no intermediate tuples). All columns must have the same
    /// length and match the schema's arity.
    pub fn from_columns(
        name: impl AsRef<str>,
        schema: Schema,
        columns: Vec<Column>,
    ) -> Result<Self, StorageError> {
        if columns.len() != schema.arity() {
            return Err(StorageError::ArityMismatch {
                expected: schema.arity(),
                actual: columns.len(),
            });
        }
        let len = columns.first().map_or(0, Column::len);
        for c in &columns {
            if c.len() != len {
                return Err(StorageError::Invalid(format!(
                    "ragged columns: {} vs {len} rows",
                    c.len()
                )));
            }
        }
        Ok(Self {
            name: Arc::from(name.as_ref()),
            schema,
            columns: columns.into(),
            len,
            original_size: None,
        })
    }

    /// Starts a builder for incremental row insertion.
    pub fn builder(name: impl AsRef<str>, schema: Schema) -> RelationBuilder {
        let builders = (0..schema.arity()).map(|_| ColumnBuilder::new()).collect();
        RelationBuilder {
            name: Arc::from(name.as_ref()),
            schema,
            builders,
            len: 0,
        }
    }

    /// Relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Relation schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The typed columns, in schema order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// The shared column storage (an `Arc` bump — no data copy).
    /// Indexes hold this to answer probes against dictionary state
    /// without materializing values.
    pub fn shared_columns(&self) -> Arc<[Column]> {
        self.columns.clone()
    }

    /// Column of attribute position `p`.
    #[inline]
    pub fn column(&self, p: usize) -> &Column {
        &self.columns[p]
    }

    /// Zero-copy view of row `i`.
    #[inline]
    pub fn row_ref(&self, i: usize) -> RowRef<'_> {
        debug_assert!(i < self.len, "row {i} out of {}", self.len);
        RowRef {
            relation: self,
            row: i,
        }
    }

    /// Iterates zero-copy row views.
    pub fn iter_rows(&self) -> impl Iterator<Item = RowRef<'_>> {
        (0..self.len).map(|i| self.row_ref(i))
    }

    /// Materializes row `i` as an output tuple.
    pub fn tuple_at(&self, i: usize) -> Tuple {
        self.row_ref(i).to_tuple()
    }

    /// Materializes every row (test / ground-truth convenience — the
    /// hot paths read columns or [`RowRef`]s instead).
    pub fn tuples(&self) -> Vec<Tuple> {
        (0..self.len).map(|i| self.tuple_at(i)).collect()
    }

    /// Cardinality of the relation this one was derived from, if any —
    /// used by the splitting method's size bookkeeping (§5.2).
    pub fn original_size(&self) -> usize {
        self.original_size.unwrap_or(self.len)
    }

    /// Returns a copy carrying `original` as the recorded original size.
    pub fn with_original_size(mut self, original: usize) -> Self {
        self.original_size = Some(original);
        self
    }

    /// Value of attribute `name` in row `i` (materialized; strings are
    /// an `Arc` bump out of the column dictionary).
    pub fn value(&self, i: usize, name: &str) -> Result<Value, StorageError> {
        let pos = self.schema.require(name)?;
        Ok(self.columns[pos].value(i))
    }

    /// Approximate resident bytes of the relation's columns (payload
    /// vectors, string dictionaries, validity bitmaps) — the
    /// prepared-footprint accounting surfaced by run reports.
    pub fn memory_bytes(&self) -> usize {
        self.columns.iter().map(Column::memory_bytes).sum()
    }

    /// A new relation keeping only rows satisfying the predicate
    /// (selection push-down, §8.3). Runs the vectorized
    /// [`CompiledPredicate::select`] path, then gathers the surviving
    /// rows column by column.
    pub fn filter(&self, name: impl AsRef<str>, pred: &CompiledPredicate) -> Relation {
        let kept = pred.select(self).to_row_ids();
        self.gather(name, &kept, Some(self.original_size()))
    }

    /// The gathered `rows` (by id, in order) as a new relation.
    fn gather(&self, name: impl AsRef<str>, rows: &[u32], original: Option<usize>) -> Relation {
        let columns: Vec<Column> = self.columns.iter().map(|c| c.gather(rows)).collect();
        Relation {
            name: Arc::from(name.as_ref()),
            schema: self.schema.clone(),
            columns: columns.into(),
            len: rows.len(),
            original_size: original,
        }
    }

    /// Projects onto `attrs` (keeping duplicates — bag projection). The
    /// result records this relation's cardinality as its original size.
    pub fn project(&self, name: impl AsRef<str>, attrs: &[&str]) -> Result<Relation, StorageError> {
        let positions: Vec<usize> = attrs
            .iter()
            .map(|a| self.schema.require(a))
            .collect::<Result<_, _>>()?;
        let schema = Schema::new(attrs.iter().copied())?;
        let columns: Vec<Column> = positions.iter().map(|&p| self.columns[p].clone()).collect();
        Ok(Relation {
            name: Arc::from(name.as_ref()),
            schema,
            columns: columns.into(),
            len: self.len,
            original_size: Some(self.original_size()),
        })
    }

    /// Projects onto `attrs` and removes duplicate rows.
    pub fn project_distinct(
        &self,
        name: impl AsRef<str>,
        attrs: &[&str],
    ) -> Result<Relation, StorageError> {
        let projected = self.project(name, attrs)?;
        Ok(projected.distinct())
    }

    /// Removes duplicate rows (set semantics), preserving first-seen
    /// order. Row identity is hashed straight off the columns.
    pub fn distinct(&self) -> Relation {
        let mut buckets: crate::hash::FxHashMap<u64, Vec<u32>> = Default::default();
        let mut kept: Vec<u32> = Vec::new();
        for i in 0..self.len {
            let h = crate::column::hash_cells(self.columns.iter().map(|c| c.cell(i)));
            let ids = buckets.entry(h).or_default();
            let dup = ids
                .iter()
                .any(|&j| self.columns.iter().all(|c| c.cells_eq(j as usize, i)));
            if !dup {
                ids.push(i as u32);
                kept.push(i as u32);
            }
        }
        self.gather(self.name.as_ref(), &kept, self.original_size)
    }

    /// Renames attributes through `f` (used to build self-join variants,
    /// e.g. `orderkey` → `orderkey2`). The columns are shared, not
    /// copied.
    pub fn rename_attrs(
        &self,
        name: impl AsRef<str>,
        f: impl FnMut(&str) -> String,
    ) -> Result<Relation, StorageError> {
        let schema = self.schema.rename(f)?;
        Ok(Relation {
            name: Arc::from(name.as_ref()),
            schema,
            columns: self.columns.clone(),
            len: self.len,
            original_size: self.original_size,
        })
    }

    /// Vertical split: returns two relations covering `left_attrs` and
    /// `right_attrs` (each may repeat the linking attribute so the halves
    /// can be re-joined). Duplicates are removed from each half so the
    /// natural join of the halves is lossless when the shared attributes
    /// functionally determine each half.
    pub fn split_vertical(
        &self,
        left_name: impl AsRef<str>,
        left_attrs: &[&str],
        right_name: impl AsRef<str>,
        right_attrs: &[&str],
    ) -> Result<(Relation, Relation), StorageError> {
        let left = self.project_distinct(left_name, left_attrs)?;
        let right = self.project_distinct(right_name, right_attrs)?;
        Ok((
            left.with_original_size(self.len()),
            right.with_original_size(self.len()),
        ))
    }

    /// Horizontal split at `fraction` (0..=1): the first relation keeps
    /// the leading `fraction` of rows, the second keeps the rest.
    pub fn split_horizontal(
        &self,
        first_name: impl AsRef<str>,
        second_name: impl AsRef<str>,
        fraction: f64,
    ) -> (Relation, Relation) {
        let cut = ((self.len as f64) * fraction.clamp(0.0, 1.0)).round() as usize;
        let cut = cut.min(self.len);
        let slice_rel = |name: &str, lo: usize, hi: usize| Relation {
            name: Arc::from(name),
            schema: self.schema.clone(),
            columns: self
                .columns
                .iter()
                .map(|c| c.slice(lo, hi))
                .collect::<Vec<_>>()
                .into(),
            len: hi - lo,
            original_size: Some(self.len),
        };
        (
            slice_rel(first_name.as_ref(), 0, cut),
            slice_rel(second_name.as_ref(), cut, self.len),
        )
    }

    /// Concatenates rows of two same-schema relations (disjoint union of
    /// bags).
    pub fn concat(&self, other: &Relation) -> Result<Relation, StorageError> {
        if !self.schema.same_as(&other.schema) {
            return Err(StorageError::Invalid(format!(
                "cannot concat relations with different schemas: {} vs {}",
                self.schema, other.schema
            )));
        }
        let columns: Vec<Column> = (0..self.schema.arity())
            .map(|p| {
                let mut b = ColumnBuilder::new();
                for i in 0..self.len {
                    b.push(self.columns[p].value(i));
                }
                for i in 0..other.len {
                    b.push(other.columns[p].value(i));
                }
                b.finish()
            })
            .collect();
        Ok(Relation {
            name: self.name.clone(),
            schema: self.schema.clone(),
            columns: columns.into(),
            len: self.len + other.len,
            original_size: None,
        })
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{} [{} rows]", self.name, self.schema, self.len())
    }
}

/// Zero-copy view of one row of a [`Relation`]: a `(relation, row id)`
/// pair. Cell reads go straight to the columns; nothing is materialized
/// until [`RowRef::to_tuple`].
#[derive(Clone, Copy)]
pub struct RowRef<'a> {
    relation: &'a Relation,
    row: usize,
}

impl<'a> RowRef<'a> {
    /// The row id within the relation.
    pub fn row_id(&self) -> usize {
        self.row
    }

    /// The relation this row belongs to.
    pub fn relation(&self) -> &'a Relation {
        self.relation
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.relation.schema().arity()
    }

    /// Zero-copy view of the cell at attribute position `pos`.
    #[inline]
    pub fn get(&self, pos: usize) -> CellRef<'a> {
        self.relation.columns[pos].cell(self.row)
    }

    /// Materializes the cell at `pos` (strings are an `Arc` bump).
    #[inline]
    pub fn value(&self, pos: usize) -> Value {
        self.relation.columns[pos].value(self.row)
    }

    /// Appends every cell's value to `out` (the output fill used by
    /// join materialization).
    pub fn fill_into(&self, out: &mut Vec<Value>) {
        out.extend((0..self.arity()).map(|p| self.value(p)));
    }

    /// Materializes the row as an output [`Tuple`].
    pub fn to_tuple(&self) -> Tuple {
        (0..self.arity()).map(|p| self.value(p)).collect()
    }
}

impl PartialEq for RowRef<'_> {
    /// Structural equality of the denoted value sequences (the paper's
    /// `t.val` identity) — rows of different relations compare equal iff
    /// their cells do.
    fn eq(&self, other: &Self) -> bool {
        self.arity() == other.arity() && (0..self.arity()).all(|p| self.get(p) == other.get(p))
    }
}

impl Eq for RowRef<'_> {}

impl fmt::Display for RowRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for p in 0..self.arity() {
            if p > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", self.get(p))?;
        }
        write!(f, "]")
    }
}

impl fmt::Debug for RowRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RowRef({self})")
    }
}

/// Incremental relation builder: rows stream straight into
/// [`ColumnBuilder`]s — no intermediate tuple storage.
#[derive(Debug)]
pub struct RelationBuilder {
    name: Arc<str>,
    schema: Schema,
    builders: Vec<ColumnBuilder>,
    len: usize,
}

impl RelationBuilder {
    /// Appends a row, validating arity.
    pub fn push_row(&mut self, values: Vec<Value>) -> Result<&mut Self, StorageError> {
        if values.len() != self.schema.arity() {
            return Err(StorageError::ArityMismatch {
                expected: self.schema.arity(),
                actual: values.len(),
            });
        }
        for (b, v) in self.builders.iter_mut().zip(values) {
            b.push(v);
        }
        self.len += 1;
        Ok(self)
    }

    /// Appends a pre-built tuple, validating arity.
    pub fn push_tuple(&mut self, tuple: Tuple) -> Result<&mut Self, StorageError> {
        if tuple.arity() != self.schema.arity() {
            return Err(StorageError::ArityMismatch {
                expected: self.schema.arity(),
                actual: tuple.arity(),
            });
        }
        for (b, v) in self.builders.iter_mut().zip(tuple.values()) {
            b.push_ref(v);
        }
        self.len += 1;
        Ok(self)
    }

    /// Number of rows accumulated so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Finalizes the relation.
    pub fn build(self) -> Relation {
        let columns: Vec<Column> = self
            .builders
            .into_iter()
            .map(ColumnBuilder::finish)
            .collect();
        Relation {
            name: self.name,
            schema: self.schema,
            columns: columns.into(),
            len: self.len,
            original_size: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{CompareOp, Predicate};
    use crate::tuple;

    fn sample_relation() -> Relation {
        let schema = Schema::new(["k", "v"]).unwrap();
        Relation::new(
            "r",
            schema,
            vec![
                tuple![1i64, 10i64],
                tuple![2i64, 20i64],
                tuple![2i64, 20i64],
                tuple![3i64, 30i64],
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_arity() {
        let schema = Schema::new(["a", "b"]).unwrap();
        let err = Relation::new("bad", schema, vec![tuple![1i64]]);
        assert!(matches!(err, Err(StorageError::ArityMismatch { .. })));
    }

    #[test]
    fn from_columns_rejects_ragged_input() {
        let schema = Schema::new(["a", "b"]).unwrap();
        let mut a = ColumnBuilder::new();
        a.push_i64(1);
        a.push_i64(2);
        let mut b = ColumnBuilder::new();
        b.push_i64(1);
        assert!(Relation::from_columns("r", schema.clone(), vec![a.finish(), b.finish()]).is_err());
        assert!(matches!(
            Relation::from_columns("r", schema, vec![ColumnBuilder::new().finish()]),
            Err(StorageError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn rows_to_columns_to_rows_round_trip() {
        let r = sample_relation();
        assert_eq!(
            r.tuples(),
            vec![
                tuple![1i64, 10i64],
                tuple![2i64, 20i64],
                tuple![2i64, 20i64],
                tuple![3i64, 30i64],
            ]
        );
        assert_eq!(r.tuple_at(3), tuple![3i64, 30i64]);
    }

    #[test]
    fn builder_accumulates_rows() {
        let schema = Schema::new(["a"]).unwrap();
        let mut b = Relation::builder("r", schema);
        b.push_row(vec![Value::int(1)]).unwrap();
        b.push_row(vec![Value::int(2)]).unwrap();
        assert!(b.push_row(vec![]).is_err());
        let r = b.build();
        assert_eq!(r.len(), 2);
        assert_eq!(r.name(), "r");
        assert_eq!(r.column(0).kind(), "i64");
    }

    #[test]
    fn row_ref_reads_cells_without_materializing() {
        let r = sample_relation();
        let row = r.row_ref(1);
        assert_eq!(row.arity(), 2);
        assert!(row.get(0).eq_value(&Value::int(2)));
        assert_eq!(row.value(1), Value::int(20));
        assert_eq!(row.to_tuple(), tuple![2i64, 20i64]);
        assert_eq!(row.row_id(), 1);
        // Structural equality across row ids.
        assert_eq!(r.row_ref(1), r.row_ref(2));
        assert_ne!(r.row_ref(0), r.row_ref(1));
        assert_eq!(format!("{row}"), "[2, 20]");
    }

    #[test]
    fn filter_applies_predicate() {
        let r = sample_relation();
        let pred = Predicate::cmp("k", CompareOp::Ge, Value::int(2))
            .compile(r.schema())
            .unwrap();
        let filtered = r.filter("r_f", &pred);
        assert_eq!(filtered.len(), 3);
        assert!(filtered
            .iter_rows()
            .all(|t| t.get(0).cmp_value(&Value::int(2)) != std::cmp::Ordering::Less));
        // Filtered relation remembers its origin's size.
        assert_eq!(filtered.original_size(), 4);
    }

    #[test]
    fn project_and_distinct() {
        let r = sample_relation();
        let p = r.project("p", &["v"]).unwrap();
        assert_eq!(p.len(), 4);
        assert_eq!(p.schema().arity(), 1);
        let d = p.distinct();
        assert_eq!(d.len(), 3);
        let pd = r.project_distinct("pd", &["v"]).unwrap();
        assert_eq!(pd.len(), 3);
    }

    #[test]
    fn project_unknown_attr_fails() {
        let r = sample_relation();
        assert!(r.project("p", &["missing"]).is_err());
    }

    #[test]
    fn vertical_split_preserves_link_attribute() {
        let schema = Schema::new(["a", "b", "c"]).unwrap();
        let r = Relation::new(
            "r",
            schema,
            vec![tuple![1i64, 2i64, 3i64], tuple![4i64, 5i64, 6i64]],
        )
        .unwrap();
        let (l, rr) = r
            .split_vertical("l", &["a", "b"], "r2", &["b", "c"])
            .unwrap();
        assert!(l.schema().contains("b"));
        assert!(rr.schema().contains("b"));
        assert_eq!(l.original_size(), 2);
    }

    #[test]
    fn horizontal_split_partitions_rows() {
        let r = sample_relation();
        let (a, b) = r.split_horizontal("a", "b", 0.5);
        assert_eq!(a.len() + b.len(), r.len());
        assert_eq!(a.len(), 2);
        assert_eq!(a.original_size(), 4);

        let (all, none) = r.split_horizontal("x", "y", 1.0);
        assert_eq!(all.len(), 4);
        assert_eq!(none.len(), 0);
    }

    #[test]
    fn concat_requires_same_schema() {
        let r = sample_relation();
        let (a, b) = r.split_horizontal("a", "b", 0.25);
        let joined = a.concat(&b).unwrap();
        assert_eq!(joined.len(), r.len());
        assert_eq!(joined.tuples(), r.tuples());

        let other = Relation::new("o", Schema::new(["z"]).unwrap(), vec![]).unwrap();
        assert!(r.concat(&other).is_err());
    }

    #[test]
    fn rename_attrs_builds_self_join_variant() {
        let r = sample_relation();
        let r2 = r.rename_attrs("r2", |a| format!("{a}_2")).unwrap();
        assert!(r2.schema().contains("k_2"));
        assert_eq!(r2.len(), r.len());
        assert_eq!(r2.tuple_at(0), r.tuple_at(0));
        // Renaming shares the column storage.
        assert!(Arc::ptr_eq(&r.columns, &r2.columns));
    }

    #[test]
    fn value_accessor() {
        let r = sample_relation();
        assert_eq!(r.value(0, "v").unwrap(), Value::int(10));
        assert!(r.value(0, "nope").is_err());
    }

    #[test]
    fn memory_bytes_counts_columns() {
        let r = sample_relation();
        // Two i64 columns of 4 rows, no nulls: 2 · 4 · 8 bytes.
        assert_eq!(r.memory_bytes(), 64);
        let schema = Schema::new(["s"]).unwrap();
        let s = Relation::new("s", schema, vec![tuple!["abc"], tuple!["abc"]]).unwrap();
        // Dictionary-encoded: one pooled string, two u32 codes.
        assert!(s.memory_bytes() < 2 * (16 + 3) + 100);
        assert!(s.memory_bytes() >= 2 * 4 + 3);
    }

    #[test]
    fn display_mentions_name_and_size() {
        let r = sample_relation();
        let s = r.to_string();
        assert!(s.contains('r'));
        assert!(s.contains("4 rows"));
    }
}
