//! Named relations.
//!
//! A [`Relation`] is an immutable bag of rows under a schema. Splitting
//! helpers implement the UQ3 workload construction ("we split them
//! vertically and horizontally to get relations with different schemas",
//! §9) and the splitting method's bookkeeping: a relation derived from
//! another records the original's cardinality, which the histogram-based
//! estimator uses ("split relations keep a record of their original
//! sizes", §5.2).

use crate::error::StorageError;
use crate::predicate::CompiledPredicate;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// An immutable named relation (bag semantics).
#[derive(Debug, Clone)]
pub struct Relation {
    name: Arc<str>,
    schema: Schema,
    rows: Arc<[Tuple]>,
    original_size: Option<usize>,
}

impl Relation {
    /// Builds a relation, validating every row's arity.
    pub fn new(
        name: impl AsRef<str>,
        schema: Schema,
        rows: Vec<Tuple>,
    ) -> Result<Self, StorageError> {
        for row in &rows {
            if row.arity() != schema.arity() {
                return Err(StorageError::ArityMismatch {
                    expected: schema.arity(),
                    actual: row.arity(),
                });
            }
        }
        Ok(Self {
            name: Arc::from(name.as_ref()),
            schema,
            rows: rows.into(),
            original_size: None,
        })
    }

    /// Starts a builder for incremental row insertion.
    pub fn builder(name: impl AsRef<str>, schema: Schema) -> RelationBuilder {
        RelationBuilder {
            name: Arc::from(name.as_ref()),
            schema,
            rows: Vec::new(),
        }
    }

    /// Relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Relation schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// All rows.
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// Row at index `i`.
    pub fn row(&self, i: usize) -> &Tuple {
        &self.rows[i]
    }

    /// Cardinality of the relation this one was derived from, if any —
    /// used by the splitting method's size bookkeeping (§5.2).
    pub fn original_size(&self) -> usize {
        self.original_size.unwrap_or(self.rows.len())
    }

    /// Returns a copy carrying `original` as the recorded original size.
    pub fn with_original_size(mut self, original: usize) -> Self {
        self.original_size = Some(original);
        self
    }

    /// Value of attribute `name` in row `i`.
    pub fn value(&self, i: usize, name: &str) -> Result<&Value, StorageError> {
        let pos = self.schema.require(name)?;
        Ok(self.rows[i].get(pos))
    }

    /// A new relation keeping only rows satisfying the predicate
    /// (selection push-down, §8.3).
    pub fn filter(&self, name: impl AsRef<str>, pred: &CompiledPredicate) -> Relation {
        let rows: Vec<Tuple> = self.rows.iter().filter(|t| pred.eval(t)).cloned().collect();
        Relation {
            name: Arc::from(name.as_ref()),
            schema: self.schema.clone(),
            rows: rows.into(),
            original_size: Some(self.original_size()),
        }
    }

    /// Projects onto `attrs` (keeping duplicates — bag projection). The
    /// result records this relation's cardinality as its original size.
    pub fn project(&self, name: impl AsRef<str>, attrs: &[&str]) -> Result<Relation, StorageError> {
        let positions: Vec<usize> = attrs
            .iter()
            .map(|a| self.schema.require(a))
            .collect::<Result<_, _>>()?;
        let schema = Schema::new(attrs.iter().copied())?;
        let rows: Vec<Tuple> = self.rows.iter().map(|t| t.project(&positions)).collect();
        Ok(Relation {
            name: Arc::from(name.as_ref()),
            schema,
            rows: rows.into(),
            original_size: Some(self.original_size()),
        })
    }

    /// Projects onto `attrs` and removes duplicate rows.
    pub fn project_distinct(
        &self,
        name: impl AsRef<str>,
        attrs: &[&str],
    ) -> Result<Relation, StorageError> {
        let projected = self.project(name, attrs)?;
        Ok(projected.distinct())
    }

    /// Removes duplicate rows (set semantics), preserving first-seen order.
    pub fn distinct(&self) -> Relation {
        let mut seen = crate::hash::FxHashSet::default();
        let rows: Vec<Tuple> = self
            .rows
            .iter()
            .filter(|t| seen.insert((*t).clone()))
            .cloned()
            .collect();
        Relation {
            name: self.name.clone(),
            schema: self.schema.clone(),
            rows: rows.into(),
            original_size: self.original_size,
        }
    }

    /// Renames attributes through `f` (used to build self-join variants,
    /// e.g. `orderkey` → `orderkey2`).
    pub fn rename_attrs(
        &self,
        name: impl AsRef<str>,
        f: impl FnMut(&str) -> String,
    ) -> Result<Relation, StorageError> {
        let schema = self.schema.rename(f)?;
        Ok(Relation {
            name: Arc::from(name.as_ref()),
            schema,
            rows: self.rows.clone(),
            original_size: self.original_size,
        })
    }

    /// Vertical split: returns two relations covering `left_attrs` and
    /// `right_attrs` (each may repeat the linking attribute so the halves
    /// can be re-joined). Duplicates are removed from each half so the
    /// natural join of the halves is lossless when the shared attributes
    /// functionally determine each half.
    pub fn split_vertical(
        &self,
        left_name: impl AsRef<str>,
        left_attrs: &[&str],
        right_name: impl AsRef<str>,
        right_attrs: &[&str],
    ) -> Result<(Relation, Relation), StorageError> {
        let left = self.project_distinct(left_name, left_attrs)?;
        let right = self.project_distinct(right_name, right_attrs)?;
        Ok((
            left.with_original_size(self.len()),
            right.with_original_size(self.len()),
        ))
    }

    /// Horizontal split at `fraction` (0..=1): the first relation keeps
    /// the leading `fraction` of rows, the second keeps the rest.
    pub fn split_horizontal(
        &self,
        first_name: impl AsRef<str>,
        second_name: impl AsRef<str>,
        fraction: f64,
    ) -> (Relation, Relation) {
        let cut = ((self.rows.len() as f64) * fraction.clamp(0.0, 1.0)).round() as usize;
        let cut = cut.min(self.rows.len());
        let first = Relation {
            name: Arc::from(first_name.as_ref()),
            schema: self.schema.clone(),
            rows: self.rows[..cut].to_vec().into(),
            original_size: Some(self.len()),
        };
        let second = Relation {
            name: Arc::from(second_name.as_ref()),
            schema: self.schema.clone(),
            rows: self.rows[cut..].to_vec().into(),
            original_size: Some(self.len()),
        };
        (first, second)
    }

    /// Concatenates rows of two same-schema relations (disjoint union of
    /// bags).
    pub fn concat(&self, other: &Relation) -> Result<Relation, StorageError> {
        if !self.schema.same_as(&other.schema) {
            return Err(StorageError::Invalid(format!(
                "cannot concat relations with different schemas: {} vs {}",
                self.schema, other.schema
            )));
        }
        let mut rows = self.rows.to_vec();
        rows.extend(other.rows.iter().cloned());
        Ok(Relation {
            name: self.name.clone(),
            schema: self.schema.clone(),
            rows: rows.into(),
            original_size: None,
        })
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{} [{} rows]", self.name, self.schema, self.len())
    }
}

/// Incremental relation builder.
#[derive(Debug)]
pub struct RelationBuilder {
    name: Arc<str>,
    schema: Schema,
    rows: Vec<Tuple>,
}

impl RelationBuilder {
    /// Appends a row, validating arity.
    pub fn push_row(&mut self, values: Vec<Value>) -> Result<&mut Self, StorageError> {
        if values.len() != self.schema.arity() {
            return Err(StorageError::ArityMismatch {
                expected: self.schema.arity(),
                actual: values.len(),
            });
        }
        self.rows.push(Tuple::new(values));
        Ok(self)
    }

    /// Appends a pre-built tuple, validating arity.
    pub fn push_tuple(&mut self, tuple: Tuple) -> Result<&mut Self, StorageError> {
        if tuple.arity() != self.schema.arity() {
            return Err(StorageError::ArityMismatch {
                expected: self.schema.arity(),
                actual: tuple.arity(),
            });
        }
        self.rows.push(tuple);
        Ok(self)
    }

    /// Number of rows accumulated so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Finalizes the relation.
    pub fn build(self) -> Relation {
        Relation {
            name: self.name,
            schema: self.schema,
            rows: self.rows.into(),
            original_size: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{CompareOp, Predicate};
    use crate::tuple;

    fn sample_relation() -> Relation {
        let schema = Schema::new(["k", "v"]).unwrap();
        Relation::new(
            "r",
            schema,
            vec![
                tuple![1i64, 10i64],
                tuple![2i64, 20i64],
                tuple![2i64, 20i64],
                tuple![3i64, 30i64],
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_arity() {
        let schema = Schema::new(["a", "b"]).unwrap();
        let err = Relation::new("bad", schema, vec![tuple![1i64]]);
        assert!(matches!(err, Err(StorageError::ArityMismatch { .. })));
    }

    #[test]
    fn builder_accumulates_rows() {
        let schema = Schema::new(["a"]).unwrap();
        let mut b = Relation::builder("r", schema);
        b.push_row(vec![Value::int(1)]).unwrap();
        b.push_row(vec![Value::int(2)]).unwrap();
        assert!(b.push_row(vec![]).is_err());
        let r = b.build();
        assert_eq!(r.len(), 2);
        assert_eq!(r.name(), "r");
    }

    #[test]
    fn filter_applies_predicate() {
        let r = sample_relation();
        let pred = Predicate::cmp("k", CompareOp::Ge, Value::int(2))
            .compile(r.schema())
            .unwrap();
        let filtered = r.filter("r_f", &pred);
        assert_eq!(filtered.len(), 3);
        assert!(filtered
            .rows()
            .iter()
            .all(|t| t.get(0).as_int().unwrap() >= 2));
        // Filtered relation remembers its origin's size.
        assert_eq!(filtered.original_size(), 4);
    }

    #[test]
    fn project_and_distinct() {
        let r = sample_relation();
        let p = r.project("p", &["v"]).unwrap();
        assert_eq!(p.len(), 4);
        assert_eq!(p.schema().arity(), 1);
        let d = p.distinct();
        assert_eq!(d.len(), 3);
        let pd = r.project_distinct("pd", &["v"]).unwrap();
        assert_eq!(pd.len(), 3);
    }

    #[test]
    fn project_unknown_attr_fails() {
        let r = sample_relation();
        assert!(r.project("p", &["missing"]).is_err());
    }

    #[test]
    fn vertical_split_preserves_link_attribute() {
        let schema = Schema::new(["a", "b", "c"]).unwrap();
        let r = Relation::new(
            "r",
            schema,
            vec![tuple![1i64, 2i64, 3i64], tuple![4i64, 5i64, 6i64]],
        )
        .unwrap();
        let (l, rr) = r
            .split_vertical("l", &["a", "b"], "r2", &["b", "c"])
            .unwrap();
        assert!(l.schema().contains("b"));
        assert!(rr.schema().contains("b"));
        assert_eq!(l.original_size(), 2);
    }

    #[test]
    fn horizontal_split_partitions_rows() {
        let r = sample_relation();
        let (a, b) = r.split_horizontal("a", "b", 0.5);
        assert_eq!(a.len() + b.len(), r.len());
        assert_eq!(a.len(), 2);
        assert_eq!(a.original_size(), 4);

        let (all, none) = r.split_horizontal("x", "y", 1.0);
        assert_eq!(all.len(), 4);
        assert_eq!(none.len(), 0);
    }

    #[test]
    fn concat_requires_same_schema() {
        let r = sample_relation();
        let (a, b) = r.split_horizontal("a", "b", 0.25);
        let joined = a.concat(&b).unwrap();
        assert_eq!(joined.len(), r.len());

        let other = Relation::new("o", Schema::new(["z"]).unwrap(), vec![]).unwrap();
        assert!(r.concat(&other).is_err());
    }

    #[test]
    fn rename_attrs_builds_self_join_variant() {
        let r = sample_relation();
        let r2 = r.rename_attrs("r2", |a| format!("{a}_2")).unwrap();
        assert!(r2.schema().contains("k_2"));
        assert_eq!(r2.len(), r.len());
        assert_eq!(r2.rows()[0], r.rows()[0]);
    }

    #[test]
    fn value_accessor() {
        let r = sample_relation();
        assert_eq!(r.value(0, "v").unwrap(), &Value::int(10));
        assert!(r.value(0, "nope").is_err());
    }

    #[test]
    fn display_mentions_name_and_size() {
        let r = sample_relation();
        let s = r.to_string();
        assert!(s.contains('r'));
        assert!(s.contains("4 rows"));
    }
}
