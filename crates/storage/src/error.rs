//! Storage-layer errors.

use std::fmt;

/// Errors raised by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A schema was constructed with zero attributes.
    EmptySchema,
    /// A schema contained a duplicate attribute name.
    DuplicateAttribute(String),
    /// An attribute name was not found in a schema.
    UnknownAttribute(String),
    /// A row's arity did not match its relation's schema.
    ArityMismatch {
        /// Arity the schema expects.
        expected: usize,
        /// Arity the row had.
        actual: usize,
    },
    /// A named relation was not found in a catalog.
    UnknownRelation(String),
    /// A relation name was registered twice in a catalog.
    DuplicateRelation(String),
    /// Generic invariant violation with context.
    Invalid(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::EmptySchema => write!(f, "schema must have at least one attribute"),
            StorageError::DuplicateAttribute(a) => write!(f, "duplicate attribute `{a}`"),
            StorageError::UnknownAttribute(a) => write!(f, "unknown attribute `{a}`"),
            StorageError::ArityMismatch { expected, actual } => {
                write!(
                    f,
                    "row arity {actual} does not match schema arity {expected}"
                )
            }
            StorageError::UnknownRelation(r) => write!(f, "unknown relation `{r}`"),
            StorageError::DuplicateRelation(r) => write!(f, "relation `{r}` already registered"),
            StorageError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = StorageError::ArityMismatch {
            expected: 3,
            actual: 2,
        };
        assert!(e.to_string().contains('3'));
        assert!(e.to_string().contains('2'));
        assert!(StorageError::UnknownAttribute("x".into())
            .to_string()
            .contains("`x`"));
    }

    #[test]
    fn implements_std_error() {
        fn takes_error(_: &dyn std::error::Error) {}
        takes_error(&StorageError::EmptySchema);
    }
}
