//! In-memory relational storage for the sampling-over-union-of-joins
//! framework.
//!
//! The paper's implementation stores "relations in hash relations with a
//! linear search" (§9); this crate is the Rust equivalent substrate,
//! organized around a **typed columnar engine**:
//!
//! * [`value`] — dynamically typed attribute values with total ordering
//!   and hashing (so tuples can key hash tables).
//! * [`schema`] — attribute lists with O(1) name→position lookup.
//! * [`mod@column`] — typed columns (`Int64` / `Float64` /
//!   dictionary-encoded `Str` with null-validity bitmaps, plus a
//!   `Mixed` fallback), streaming [`ColumnBuilder`]s, and the zero-copy
//!   [`CellRef`] cell view whose hash/order match [`Value`]'s exactly.
//! * [`relation`] — named relations stored column-major
//!   (`Arc<[Column]>`) with zero-copy [`RowRef`] row views, builders,
//!   vectorized filtering, projection, and the vertical/horizontal
//!   splits used by the UQ3 workload. [`Tuple`] survives as the
//!   materialized *output* representation only.
//! * [`index`] — hash indexes on join attributes (value → row ids) and
//!   whole-row membership indexes, built straight off the columns; the
//!   backbone of the membership oracle.
//! * [`sorted`] — sorted row-id permutations with duplicate-block
//!   prefix sums: O(log n) range-count / median / run-narrowing
//!   oracles, the storage half of the cyclic-join box sampler.
//! * [`histogram`] — value-frequency and equi-depth histograms plus
//!   max/average degree statistics (§5's building blocks), counted from
//!   typed column scans.
//! * [`predicate`] — selection predicates with a tuple-at-a-time
//!   oracle and a column-at-a-time [`SelectionBitmap`] path for §8.3
//!   push-down.
//! * [`catalog`] — a named collection of relations.
//! * [`csv`] — CSV import/export for relations (header row, quoting,
//!   Int → Float → Str inference, streaming column build).
//! * [`hash`] — a fast non-cryptographic hasher (Fx) used by all hot
//!   hash maps, implemented locally.
//!
//! # Example
//!
//! ```
//! use suj_storage::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let schema = Schema::new(["k", "v"])?;
//! let rel = Relation::new("r", schema, vec![
//!     Tuple::new(vec![Value::int(1), Value::str("x")]),
//!     Tuple::new(vec![Value::int(1), Value::str("y")]),
//!     Tuple::new(vec![Value::int(2), Value::str("z")]),
//! ])?;
//!
//! // Hash index on the key attribute: degrees feed Olken bounds.
//! let idx = HashIndex::build_single(&rel, "k");
//! assert_eq!(idx.degree(&[Value::int(1)]), 2);
//! assert_eq!(idx.max_degree(), 2);
//!
//! // Histograms: the statistics tier of §5.
//! let hist = FrequencyHistogram::build(&rel, "k");
//! assert_eq!(hist.distinct(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod column;
pub mod csv;
pub mod error;
pub mod hash;
pub mod histogram;
pub mod index;
pub mod predicate;
pub mod relation;
pub mod schema;
pub mod snapshot;
pub mod sorted;
pub mod tuple;
pub mod value;

pub use catalog::Catalog;
pub use column::{hash_cells, CellRef, Column, ColumnBuilder, StrPool, Validity};
pub use csv::{read_csv, write_csv};
pub use error::StorageError;
pub use hash::{hash_values, FxHashMap, FxHashSet};
pub use histogram::{DegreeStats, EquiDepthHistogram, FrequencyHistogram};
pub use index::{HashIndex, RowMembership, NO_KEY};
pub use predicate::{CompareOp, CompiledPredicate, Predicate, SelectionBitmap};
pub use relation::{Relation, RelationBuilder, RowRef};
pub use schema::Schema;
pub use snapshot::{Snapshot, SnapshotError};
pub use sorted::SortedIndex;
pub use tuple::Tuple;
pub use value::Value;

/// Commonly used items.
pub mod prelude {
    pub use crate::catalog::Catalog;
    pub use crate::column::{hash_cells, CellRef, Column, ColumnBuilder, StrPool, Validity};
    pub use crate::csv::{read_csv, write_csv};
    pub use crate::error::StorageError;
    pub use crate::hash::{hash_values, FxHashMap, FxHashSet};
    pub use crate::histogram::{DegreeStats, EquiDepthHistogram, FrequencyHistogram};
    pub use crate::index::{HashIndex, RowMembership, NO_KEY};
    pub use crate::predicate::{CompareOp, CompiledPredicate, Predicate, SelectionBitmap};
    pub use crate::relation::{Relation, RelationBuilder, RowRef};
    pub use crate::schema::Schema;
    pub use crate::snapshot::{Snapshot, SnapshotError};
    pub use crate::sorted::SortedIndex;
    pub use crate::tuple::Tuple;
    pub use crate::value::Value;
}
