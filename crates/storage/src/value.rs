//! Dynamically typed attribute values.
//!
//! Values must be hashable and totally ordered so that (a) join attributes
//! can key hash indexes and (b) output tuples have a canonical identity —
//! the paper's `t.val`, "obtained by concatenating its attribute values
//! using a standard convention" (§3, Example 3). Floats are wrapped in a
//! total order (NaN sorts last) to keep `Eq`/`Hash` lawful.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A single attribute value.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL. Equal to itself for hashing purposes (set semantics),
    /// sorts before everything else.
    Null,
    /// 64-bit integer (keys, counts).
    Int(i64),
    /// Float with total ordering (prices, rates).
    Float(f64),
    /// Interned string (names, comments). `Arc` keeps clones cheap.
    Str(Arc<str>),
}

impl Value {
    /// Convenience constructor for strings.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Convenience constructor for integers.
    pub fn int(i: i64) -> Self {
        Value::Int(i)
    }

    /// Convenience constructor for floats.
    pub fn float(f: f64) -> Self {
        Value::Float(f)
    }

    /// The integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The float payload, if this is a `Float`.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Rank used to order across variants: Null < Int < Float < Str.
    #[inline]
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Int(_) => 1,
            Value::Float(_) => 2,
            Value::Str(_) => 3,
        }
    }
}

impl PartialEq for Value {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b) == Ordering::Equal,
            (Value::Str(a), Value::Str(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl Hash for Value {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u8(self.type_rank());
        match self {
            Value::Null => {}
            Value::Int(i) => state.write_u64(*i as u64),
            Value::Float(f) => state.write_u64(f.to_bits()),
            Value::Str(s) => s.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn equality_within_variants() {
        assert_eq!(Value::int(3), Value::int(3));
        assert_ne!(Value::int(3), Value::int(4));
        assert_eq!(Value::str("abc"), Value::str("abc"));
        assert_ne!(Value::str("abc"), Value::str("abd"));
        assert_eq!(Value::Null, Value::Null);
        assert_eq!(Value::float(1.5), Value::float(1.5));
    }

    #[test]
    fn cross_variant_never_equal() {
        assert_ne!(Value::int(1), Value::float(1.0));
        assert_ne!(Value::int(0), Value::Null);
        assert_ne!(Value::str("1"), Value::int(1));
    }

    #[test]
    fn nan_is_self_equal_for_set_semantics() {
        let nan = Value::float(f64::NAN);
        assert_eq!(nan, nan.clone());
        assert_eq!(hash_of(&nan), hash_of(&nan.clone()));
    }

    #[test]
    fn equal_values_hash_equal() {
        let pairs = [
            (Value::int(42), Value::int(42)),
            (Value::str("xyz"), Value::str("xyz")),
            (Value::float(2.25), Value::float(2.25)),
            (Value::Null, Value::Null),
        ];
        for (a, b) in pairs {
            assert_eq!(hash_of(&a), hash_of(&b));
        }
    }

    #[test]
    fn ordering_is_total() {
        let mut vs = vec![
            Value::str("b"),
            Value::int(10),
            Value::Null,
            Value::float(0.5),
            Value::int(-3),
            Value::str("a"),
        ];
        vs.sort();
        assert_eq!(
            vs,
            vec![
                Value::Null,
                Value::int(-3),
                Value::int(10),
                Value::float(0.5),
                Value::str("a"),
                Value::str("b"),
            ]
        );
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::int(7).as_int(), Some(7));
        assert_eq!(Value::str("q").as_str(), Some("q"));
        assert_eq!(Value::float(1.5).as_float(), Some(1.5));
        assert_eq!(Value::Null.as_int(), None);
        assert!(Value::Null.is_null());
        assert!(!Value::int(0).is_null());
    }

    #[test]
    fn display_round_trip_is_readable() {
        assert_eq!(Value::int(5).to_string(), "5");
        assert_eq!(Value::str("hi").to_string(), "hi");
        assert_eq!(Value::Null.to_string(), "NULL");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::int(3));
        assert_eq!(Value::from("s"), Value::str("s"));
        assert_eq!(Value::from(2.0f64), Value::float(2.0));
        assert_eq!(Value::from(String::from("t")), Value::str("t"));
    }
}
