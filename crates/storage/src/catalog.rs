//! Relation catalogs.
//!
//! A [`Catalog`] is the "database" handed to workload builders: a named
//! collection of relations. The union workloads (UQ1–UQ3) register one
//! catalog per regional database variant (Fig. 1's `_W`, `_E`, `_MW`
//! schemas) and build joins over them.

use crate::error::StorageError;
use crate::hash::FxHashMap;
use crate::relation::Relation;
use std::sync::Arc;

/// A named collection of relations.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    relations: FxHashMap<Arc<str>, Arc<Relation>>,
    order: Vec<Arc<str>>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a relation under its own name. Fails on duplicates.
    pub fn register(&mut self, relation: Relation) -> Result<Arc<Relation>, StorageError> {
        let name: Arc<str> = Arc::from(relation.name());
        if self.relations.contains_key(&name) {
            return Err(StorageError::DuplicateRelation(name.to_string()));
        }
        let arc = Arc::new(relation);
        self.relations.insert(name.clone(), arc.clone());
        self.order.push(name);
        Ok(arc)
    }

    /// Looks up a relation by name.
    pub fn get(&self, name: &str) -> Result<Arc<Relation>, StorageError> {
        self.relations
            .get(name)
            .cloned()
            .ok_or_else(|| StorageError::UnknownRelation(name.to_string()))
    }

    /// Whether a relation is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    /// Registered relation names in registration order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.order.iter().map(|n| n.as_ref())
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Total number of rows across all relations.
    pub fn total_rows(&self) -> usize {
        self.relations.values().map(|r| r.len()).sum()
    }

    /// Approximate resident bytes across all relations' columns.
    pub fn memory_bytes(&self) -> usize {
        self.relations.values().map(|r| r.memory_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::tuple;

    fn rel(name: &str, n: i64) -> Relation {
        let schema = Schema::new(["x"]).unwrap();
        let rows = (0..n).map(|i| tuple![i]).collect();
        Relation::new(name, schema, rows).unwrap()
    }

    #[test]
    fn register_and_get() {
        let mut cat = Catalog::new();
        cat.register(rel("a", 3)).unwrap();
        cat.register(rel("b", 5)).unwrap();
        assert_eq!(cat.get("a").unwrap().len(), 3);
        assert!(cat.contains("b"));
        assert!(!cat.contains("c"));
        assert_eq!(cat.len(), 2);
        assert_eq!(cat.total_rows(), 8);
    }

    #[test]
    fn duplicate_registration_fails() {
        let mut cat = Catalog::new();
        cat.register(rel("a", 1)).unwrap();
        assert!(matches!(
            cat.register(rel("a", 2)),
            Err(StorageError::DuplicateRelation(_))
        ));
    }

    #[test]
    fn unknown_lookup_fails() {
        let cat = Catalog::new();
        assert!(matches!(
            cat.get("zzz"),
            Err(StorageError::UnknownRelation(_))
        ));
    }

    #[test]
    fn names_preserve_registration_order() {
        let mut cat = Catalog::new();
        for n in ["z", "m", "a"] {
            cat.register(rel(n, 1)).unwrap();
        }
        let names: Vec<&str> = cat.names().collect();
        assert_eq!(names, vec!["z", "m", "a"]);
    }
}
