//! Rows.
//!
//! A [`Tuple`] is an immutable, cheaply clonable row (`Arc<[Value]>`).
//! Sampled tuples flow through rejection, revision, and reuse pools
//! (Algorithms 1 and 2), getting cloned and hashed constantly — the `Arc`
//! representation makes clones O(1) and keeps tuple identity (the paper's
//! `t.val`) structural: two tuples are equal iff their value sequences
//! are equal, regardless of which join produced them.

use crate::value::Value;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable row of values.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple {
    values: Arc<[Value]>,
}

impl Tuple {
    /// Builds a tuple from values.
    pub fn new(values: Vec<Value>) -> Self {
        Self {
            values: values.into(),
        }
    }

    /// Builds a tuple by cloning a slice of values (a single exact-size
    /// allocation, no intermediate `Vec`).
    pub fn from_slice(values: &[Value]) -> Self {
        Self {
            values: Arc::from(values),
        }
    }

    /// Number of values.
    #[inline]
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// The values as a slice.
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Value at position `pos`.
    #[inline]
    pub fn get(&self, pos: usize) -> &Value {
        &self.values[pos]
    }

    /// Projects onto the given positions (cloning the selected values
    /// into a single pre-sized allocation).
    pub fn project(&self, positions: &[usize]) -> Tuple {
        let mut vals = Vec::with_capacity(positions.len());
        vals.extend(positions.iter().map(|&p| self.values[p].clone()));
        Tuple::new(vals)
    }

    /// Projects onto the given positions through a reusable scratch
    /// buffer: `scratch`'s capacity is reused across calls, so repeated
    /// cold-path materializations pay only the tuple's own allocation.
    pub fn project_into(&self, positions: &[usize], scratch: &mut Vec<Value>) -> Tuple {
        scratch.clear();
        scratch.extend(positions.iter().map(|&p| self.values[p].clone()));
        Tuple::from_slice(scratch)
    }

    /// Concatenates two tuples (one pre-sized allocation).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut vals = Vec::with_capacity(self.arity() + other.arity());
        vals.extend_from_slice(&self.values);
        vals.extend_from_slice(&other.values);
        Tuple::new(vals)
    }

    /// Concatenates through a reusable scratch buffer (see
    /// [`Tuple::project_into`]).
    pub fn concat_into(&self, other: &Tuple, scratch: &mut Vec<Value>) -> Tuple {
        scratch.clear();
        scratch.reserve(self.arity() + other.arity());
        scratch.extend_from_slice(&self.values);
        scratch.extend_from_slice(&other.values);
        Tuple::from_slice(scratch)
    }
}

impl Deref for Tuple {
    type Target = [Value];

    fn deref(&self) -> &[Value] {
        &self.values
    }
}

impl std::borrow::Borrow<[Value]> for Tuple {
    fn borrow(&self) -> &[Value] {
        &self.values
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Tuple::new(iter.into_iter().collect())
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

/// Builds a tuple from integer literals — handy in tests.
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::tuple::Tuple::new(vec![$($crate::value::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use std::collections::HashSet;

    #[test]
    fn structural_identity() {
        let a = tuple![3i64, 6i64, 4i64];
        let b = tuple![3i64, 6i64, 4i64];
        let c = tuple![3i64, 6i64, 5i64];
        assert_eq!(a, b);
        assert_ne!(a, c);

        // Example 3 of the paper: equal value sequences from different
        // joins refer to the same element of the union universe.
        let mut set = HashSet::new();
        set.insert(a);
        set.insert(b);
        set.insert(c);
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn projection() {
        let t = tuple![1i64, 2i64, 3i64, 4i64];
        let p = t.project(&[3, 0]);
        assert_eq!(p, tuple![4i64, 1i64]);
        assert_eq!(t.arity(), 4);
    }

    #[test]
    fn project_into_reuses_scratch() {
        let t = tuple![1i64, 2i64, 3i64, 4i64];
        let mut scratch = Vec::new();
        let p = t.project_into(&[3, 0], &mut scratch);
        assert_eq!(p, t.project(&[3, 0]));
        let cap = scratch.capacity();
        let q = t.project_into(&[1, 2], &mut scratch);
        assert_eq!(q, tuple![2i64, 3i64]);
        assert_eq!(scratch.capacity(), cap, "scratch capacity is reused");
    }

    #[test]
    fn from_slice_equals_new() {
        let vals = vec![Value::int(1), Value::str("x")];
        assert_eq!(Tuple::from_slice(&vals), Tuple::new(vals));
    }

    #[test]
    fn concat_into_matches_concat() {
        let a = tuple![1i64, 2i64];
        let b = tuple!["x"];
        let mut scratch = Vec::new();
        assert_eq!(a.concat_into(&b, &mut scratch), a.concat(&b));
    }

    #[test]
    fn empty_projection_is_empty_tuple() {
        let t = tuple![1i64];
        assert_eq!(t.project(&[]).arity(), 0);
    }

    #[test]
    fn concat() {
        let a = tuple![1i64, 2i64];
        let b = tuple!["x", "y"];
        let c = a.concat(&b);
        assert_eq!(c.arity(), 4);
        assert_eq!(c.get(2), &Value::str("x"));
    }

    #[test]
    fn clone_is_cheap_and_shared() {
        let t = tuple![1i64, 2i64, 3i64];
        let u = t.clone();
        assert!(Arc::ptr_eq(&t.values, &u.values));
    }

    #[test]
    fn ordering_is_lexicographic() {
        let mut v = vec![tuple![2i64, 0i64], tuple![1i64, 9i64], tuple![1i64, 3i64]];
        v.sort();
        assert_eq!(
            v,
            vec![tuple![1i64, 3i64], tuple![1i64, 9i64], tuple![2i64, 0i64]]
        );
    }

    #[test]
    fn display_formats_values() {
        let t = tuple![1i64, "a"];
        assert_eq!(t.to_string(), "[1, a]");
    }

    #[test]
    fn deref_gives_slice_access() {
        let t = tuple![5i64, 6i64];
        assert_eq!(t.len(), 2);
        assert_eq!(t[1], Value::int(6));
        assert_eq!(t.iter().count(), 2);
    }
}
