//! Fast non-cryptographic hashing for hot hash maps.
//!
//! Join-attribute lookups and whole-row membership checks dominate the
//! framework's inner loops, so all internal maps use the Fx algorithm
//! (the multiply-xor hash popularized by rustc / Firefox) instead of the
//! standard library's SipHash. HashDoS resistance is irrelevant here —
//! keys come from our own data generator or the user's own relations.

use crate::value::Value;
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hash, Hasher};

/// A `HashMap` keyed by the Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` keyed by the Fx hasher.
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx hash state: `hash = (hash.rotate_left(5) ^ word) * SEED` per word.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf) ^ rem.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Fx-hashes a sequence of values in place — the shared key-encoding
/// hash of [`HashIndex`](crate::index::HashIndex) and
/// [`RowMembership`](crate::index::RowMembership). Equal value
/// sequences hash equal regardless of where the values are read from,
/// which is what lets index probes hash projections of rows and
/// buffers without materializing a key.
#[inline]
pub fn hash_values<'a>(values: impl IntoIterator<Item = &'a Value>) -> u64 {
    let mut hasher = FxHasher::default();
    for v in values {
        v.hash(&mut hasher);
    }
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_input() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write(b"hello world, this is a row");
        b.write(b"hello world, this is a row");
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn different_inputs_differ() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write(b"tuple-a");
        b.write(b"tuple-b");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn length_extension_distinguished() {
        // A trailing partial chunk must not collide with its zero-padded
        // sibling.
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write(&[1, 2, 3]);
        b.write(&[1, 2, 3, 0]);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<String, i32> = FxHashMap::default();
        m.insert("x".into(), 1);
        m.insert("y".into(), 2);
        assert_eq!(m.get("x"), Some(&1));

        let mut s: FxHashSet<u64> = FxHashSet::default();
        for i in 0..1000 {
            s.insert(i * 7919);
        }
        assert_eq!(s.len(), 1000);
        assert!(s.contains(&(13 * 7919)));
    }

    #[test]
    fn integer_keys_spread() {
        // Sanity check: sequential keys land in mostly distinct hashes.
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 10_000);
    }
}
