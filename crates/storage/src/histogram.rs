//! Column statistics.
//!
//! §5 instantiates the framework with "histograms of columns and even
//! more minimalistic statistics such as maximum degrees of tuples in
//! relations". Three tiers of statistic are modeled, from richest to
//! cheapest:
//!
//! 1. [`FrequencyHistogram`] — exact value→frequency map (what a DBMS
//!    keeps for low-cardinality columns). Supports the `K(1)` sum over
//!    the common value domain and per-value degrees `d_A(v, R)`.
//! 2. [`EquiDepthHistogram`] — bounded-size bucket histogram giving an
//!    upper bound on any value's degree via its bucket's max degree.
//! 3. [`DegreeStats`] — just `(max degree, avg degree, distinct, total)`,
//!    the minimum §5.1 needs for the `K(i)` multipliers.

use crate::column::Column;
use crate::hash::FxHashMap;
use crate::relation::Relation;
use crate::value::Value;

/// Summary degree statistics of one attribute of one relation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Maximum frequency of any value — `M_A(R)`.
    pub max_degree: usize,
    /// Average frequency over distinct values.
    pub avg_degree: f64,
    /// Number of distinct values.
    pub distinct: usize,
    /// Total number of rows.
    pub total: usize,
}

/// Exact value-frequency histogram of one attribute.
#[derive(Debug, Clone)]
pub struct FrequencyHistogram {
    counts: FxHashMap<Value, u64>,
    total: u64,
    max_degree: u64,
}

impl FrequencyHistogram {
    /// Builds the histogram for `attr` of `relation`, scanning the
    /// typed column directly: integer and float columns count through
    /// scalar-keyed maps, dictionary-encoded string columns count per
    /// code (one array slot per distinct string — no hashing at all).
    ///
    /// # Panics
    /// Panics if the attribute is absent (validated upstream by join
    /// specs).
    pub fn build(relation: &Relation, attr: &str) -> Self {
        let pos = relation
            .schema()
            .position(attr)
            .unwrap_or_else(|| panic!("attribute `{attr}` not in {}", relation.schema()));
        let mut counts: FxHashMap<Value, u64> = FxHashMap::default();
        let mut nulls = 0u64;
        match relation.column(pos) {
            Column::Int64 { values, validity } => {
                let mut by_int: FxHashMap<i64, u64> = FxHashMap::default();
                for (i, &v) in values.iter().enumerate() {
                    if validity.is_valid(i) {
                        *by_int.entry(v).or_insert(0) += 1;
                    } else {
                        nulls += 1;
                    }
                }
                counts.extend(by_int.into_iter().map(|(v, c)| (Value::Int(v), c)));
            }
            Column::Float64 { values, validity } => {
                // Keyed by bit pattern — exactly the total-order
                // equality `Value::Float` uses.
                let mut by_bits: FxHashMap<u64, u64> = FxHashMap::default();
                for (i, &v) in values.iter().enumerate() {
                    if validity.is_valid(i) {
                        *by_bits.entry(v.to_bits()).or_insert(0) += 1;
                    } else {
                        nulls += 1;
                    }
                }
                counts.extend(
                    by_bits
                        .into_iter()
                        .map(|(b, c)| (Value::Float(f64::from_bits(b)), c)),
                );
            }
            Column::Str {
                codes,
                pool,
                validity,
            } => {
                let mut by_code = vec![0u64; pool.len()];
                for (i, &code) in codes.iter().enumerate() {
                    if validity.is_valid(i) {
                        by_code[code as usize] += 1;
                    } else {
                        nulls += 1;
                    }
                }
                counts.extend(
                    by_code
                        .into_iter()
                        .enumerate()
                        .filter(|&(_, c)| c > 0)
                        .map(|(code, c)| (Value::Str(pool.get(code as u32).clone()), c)),
                );
            }
            Column::Mixed { values } => {
                for v in values {
                    *counts.entry(v.clone()).or_insert(0) += 1;
                }
            }
        }
        if nulls > 0 {
            *counts.entry(Value::Null).or_insert(0) += nulls;
        }
        let max_degree = counts.values().copied().max().unwrap_or(0);
        Self {
            counts,
            total: relation.len() as u64,
            max_degree,
        }
    }

    /// Frequency of `v` — the degree `d_A(v, R)`.
    pub fn degree(&self, v: &Value) -> u64 {
        self.counts.get(v).copied().unwrap_or(0)
    }

    /// Maximum degree `M_A(R)`.
    pub fn max_degree(&self) -> u64 {
        self.max_degree
    }

    /// Average degree over distinct values.
    pub fn avg_degree(&self) -> f64 {
        if self.counts.is_empty() {
            0.0
        } else {
            self.total as f64 / self.counts.len() as f64
        }
    }

    /// Number of distinct values.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Total row count.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Iterates `(value, frequency)` pairs (arbitrary order).
    pub fn entries(&self) -> impl Iterator<Item = (&Value, u64)> {
        self.counts.iter().map(|(v, &c)| (v, c))
    }

    /// Reassembles a histogram from `(value, frequency)` entries and a
    /// total row count (the snapshot decode path). `max_degree` is
    /// recomputed; duplicate values or zero frequencies are rejected so
    /// a corrupt snapshot cannot smuggle in an inconsistent histogram.
    pub(crate) fn from_entries(
        entries: Vec<(Value, u64)>,
        total: u64,
    ) -> Result<Self, &'static str> {
        let mut counts: FxHashMap<Value, u64> = FxHashMap::default();
        counts.reserve(entries.len());
        let mut sum = 0u64;
        for (v, c) in entries {
            if c == 0 {
                return Err("histogram entry with zero frequency");
            }
            sum = sum.checked_add(c).ok_or("histogram frequency overflow")?;
            if counts.insert(v, c).is_some() {
                return Err("duplicate value in histogram entries");
            }
        }
        if sum > total {
            return Err("histogram frequencies exceed total row count");
        }
        let max_degree = counts.values().copied().max().unwrap_or(0);
        Ok(Self {
            counts,
            total,
            max_degree,
        })
    }

    /// Summary statistics.
    pub fn stats(&self) -> DegreeStats {
        DegreeStats {
            max_degree: self.max_degree as usize,
            avg_degree: self.avg_degree(),
            distinct: self.distinct(),
            total: self.total as usize,
        }
    }
}

/// Equi-depth (equal row count) bucket histogram: stores per-bucket value
/// ranges, row counts, and max in-bucket degree. Gives upper bounds on
/// degrees when exact frequencies are unavailable (the paper's
/// decentralized / data-market setting).
#[derive(Debug, Clone)]
pub struct EquiDepthHistogram {
    /// Inclusive lower bound of each bucket.
    lows: Vec<Value>,
    /// Inclusive upper bound of each bucket.
    highs: Vec<Value>,
    /// Rows per bucket.
    counts: Vec<u64>,
    /// Max degree of any single value within the bucket.
    max_degrees: Vec<u64>,
    total: u64,
}

impl EquiDepthHistogram {
    /// Builds an equi-depth histogram with at most `buckets` buckets.
    ///
    /// # Panics
    /// Panics if the attribute is absent or `buckets == 0`.
    pub fn build(relation: &Relation, attr: &str, buckets: usize) -> Self {
        assert!(buckets > 0, "need at least one bucket");
        let freq = FrequencyHistogram::build(relation, attr);
        let mut values: Vec<(&Value, u64)> = freq.entries().collect();
        values.sort_by(|a, b| a.0.cmp(b.0));

        let total = freq.total();
        let target = (total as f64 / buckets as f64).ceil().max(1.0) as u64;

        let mut lows = Vec::new();
        let mut highs = Vec::new();
        let mut counts = Vec::new();
        let mut max_degrees = Vec::new();

        let mut bucket_count = 0u64;
        let mut bucket_max = 0u64;
        let mut bucket_low: Option<Value> = None;
        let mut bucket_high: Option<Value> = None;

        for (v, c) in values {
            if bucket_low.is_none() {
                bucket_low = Some(v.clone());
            }
            bucket_high = Some(v.clone());
            bucket_count += c;
            bucket_max = bucket_max.max(c);
            if bucket_count >= target {
                lows.push(bucket_low.take().unwrap());
                highs.push(bucket_high.take().unwrap());
                counts.push(bucket_count);
                max_degrees.push(bucket_max);
                bucket_count = 0;
                bucket_max = 0;
            }
        }
        if let (Some(lo), Some(hi)) = (bucket_low, bucket_high) {
            lows.push(lo);
            highs.push(hi);
            counts.push(bucket_count);
            max_degrees.push(bucket_max);
        }

        Self {
            lows,
            highs,
            counts,
            max_degrees,
            total,
        }
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.counts.len()
    }

    /// Total row count.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Index of the bucket whose range contains `v`, if any.
    fn bucket_of(&self, v: &Value) -> Option<usize> {
        // Binary search on bucket lower bounds.
        let idx = self.lows.partition_point(|lo| lo <= v);
        if idx == 0 {
            return None;
        }
        let i = idx - 1;
        if v <= &self.highs[i] {
            Some(i)
        } else {
            None
        }
    }

    /// Upper bound on the degree of `v`: the max degree of its bucket,
    /// or 0 when `v` lies outside every bucket range.
    pub fn degree_upper_bound(&self, v: &Value) -> u64 {
        self.bucket_of(v).map(|i| self.max_degrees[i]).unwrap_or(0)
    }

    /// Global max degree across buckets — an upper bound on `M_A(R)`
    /// that is in fact exact (the max over buckets of exact in-bucket
    /// maxima).
    pub fn max_degree(&self) -> u64 {
        self.max_degrees.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::tuple;

    fn rel_with_degrees() -> Relation {
        // value 1 appears 4x, 2 appears 2x, 3..8 appear once.
        let schema = Schema::new(["k"]).unwrap();
        let mut rows = vec![];
        for _ in 0..4 {
            rows.push(tuple![1i64]);
        }
        for _ in 0..2 {
            rows.push(tuple![2i64]);
        }
        for v in 3..=8i64 {
            rows.push(tuple![v]);
        }
        Relation::new("r", schema, rows).unwrap()
    }

    #[test]
    fn frequency_histogram_counts() {
        let h = FrequencyHistogram::build(&rel_with_degrees(), "k");
        assert_eq!(h.degree(&Value::int(1)), 4);
        assert_eq!(h.degree(&Value::int(2)), 2);
        assert_eq!(h.degree(&Value::int(5)), 1);
        assert_eq!(h.degree(&Value::int(99)), 0);
        assert_eq!(h.max_degree(), 4);
        assert_eq!(h.distinct(), 8);
        assert_eq!(h.total(), 12);
        assert!((h.avg_degree() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn frequency_histogram_stats_snapshot() {
        let h = FrequencyHistogram::build(&rel_with_degrees(), "k");
        let s = h.stats();
        assert_eq!(s.max_degree, 4);
        assert_eq!(s.distinct, 8);
        assert_eq!(s.total, 12);
    }

    #[test]
    fn empty_relation_histograms() {
        let r = Relation::new("e", Schema::new(["k"]).unwrap(), vec![]).unwrap();
        let h = FrequencyHistogram::build(&r, "k");
        assert_eq!(h.max_degree(), 0);
        assert_eq!(h.avg_degree(), 0.0);
        let ed = EquiDepthHistogram::build(&r, "k", 4);
        assert_eq!(ed.buckets(), 0);
        assert_eq!(ed.max_degree(), 0);
        assert_eq!(ed.degree_upper_bound(&Value::int(1)), 0);
    }

    #[test]
    fn equi_depth_buckets_cover_all_values() {
        let r = rel_with_degrees();
        let ed = EquiDepthHistogram::build(&r, "k", 3);
        assert!(ed.buckets() <= 4);
        assert_eq!(ed.total(), 12);
        // Every present value must get a nonzero upper bound ≥ its true
        // degree.
        let h = FrequencyHistogram::build(&r, "k");
        for v in 1..=8i64 {
            let v = Value::int(v);
            assert!(ed.degree_upper_bound(&v) >= h.degree(&v), "value {v}");
        }
    }

    #[test]
    fn equi_depth_out_of_range_values() {
        let ed = EquiDepthHistogram::build(&rel_with_degrees(), "k", 2);
        assert_eq!(ed.degree_upper_bound(&Value::int(-5)), 0);
        assert_eq!(ed.degree_upper_bound(&Value::int(1000)), 0);
    }

    #[test]
    fn equi_depth_single_bucket_degenerates_to_max() {
        let r = rel_with_degrees();
        let ed = EquiDepthHistogram::build(&r, "k", 1);
        assert_eq!(ed.buckets(), 1);
        assert_eq!(ed.degree_upper_bound(&Value::int(7)), 4);
        assert_eq!(ed.max_degree(), 4);
    }

    #[test]
    fn entries_sum_to_total() {
        let h = FrequencyHistogram::build(&rel_with_degrees(), "k");
        let sum: u64 = h.entries().map(|(_, c)| c).sum();
        assert_eq!(sum, h.total());
    }
}
