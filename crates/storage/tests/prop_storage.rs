//! Property-based tests for the storage substrate.

use proptest::prelude::*;
use std::collections::HashMap;
use suj_storage::prelude::*;
use suj_storage::{read_csv, write_csv};

/// Strategy: a relation over schema (a, b, s) with small integer keys
/// and short strings.
fn relation_strategy() -> impl Strategy<Value = Relation> {
    prop::collection::vec((0i64..20, -5i64..5, "[a-z]{0,6}"), 0..40).prop_map(|rows| {
        let schema = Schema::new(["a", "b", "s"]).unwrap();
        let tuples = rows
            .into_iter()
            .map(|(a, b, s)| Tuple::new(vec![Value::int(a), Value::int(b), Value::str(&s)]))
            .collect();
        Relation::new("r", schema, tuples).unwrap()
    })
}

/// Strategy: one arbitrary cell spanning every `Value` variant
/// (including NULL, negative zero / special floats, and multibyte
/// strings) — drives the columnar round-trip property.
fn any_value() -> impl Strategy<Value = Value> {
    (0u8..8, -100i64..100, "[a-zé→🦀]{0,4}").prop_map(|(kind, n, s)| match kind {
        0 => Value::Null,
        1 | 2 => Value::int(n),
        3 => Value::float(n as f64 / 4.0),
        4 => Value::float(if n == 0 { -0.0 } else { f64::NAN }),
        _ => Value::str(&s),
    })
}

/// Strategy: a ragged-free relation of arbitrary mixed-type cells.
fn mixed_relation_strategy() -> impl Strategy<Value = Relation> {
    prop::collection::vec((any_value(), any_value(), any_value()), 0..30).prop_map(|rows| {
        let schema = Schema::new(["x", "y", "z"]).unwrap();
        let tuples = rows
            .into_iter()
            .map(|(x, y, z)| Tuple::new(vec![x, y, z]))
            .collect();
        Relation::new("m", schema, tuples).unwrap()
    })
}

/// Strategy: a random predicate AST over the (a, b, s) schema, mixing
/// typed and cross-variant constants, conjunction, disjunction, and
/// negation.
fn predicate_strategy() -> impl Strategy<Value = Predicate> {
    (
        prop::collection::vec(
            (0u8..3, 0u8..6, -6i64..22, "[a-d]{0,3}", prop::bool::ANY),
            1..5,
        ),
        0u8..3,
    )
        .prop_map(|(leaves, combine)| {
            let ops = [
                CompareOp::Eq,
                CompareOp::Ne,
                CompareOp::Lt,
                CompareOp::Le,
                CompareOp::Gt,
                CompareOp::Ge,
            ];
            let mut built: Vec<Predicate> = leaves
                .into_iter()
                .map(|(attr, op, n, s, negate)| {
                    let attr = ["a", "b", "s"][attr as usize];
                    let constant = match n.rem_euclid(4) {
                        0 => Value::Null,
                        1 => Value::str(&s),
                        2 => Value::float(n as f64 / 2.0),
                        _ => Value::int(n),
                    };
                    let leaf = Predicate::cmp(attr, ops[op as usize], constant);
                    if negate {
                        Predicate::Not(Box::new(leaf))
                    } else {
                        leaf
                    }
                })
                .collect();
            match combine {
                0 => Predicate::And(built),
                1 => Predicate::Or(built),
                _ => built.pop().unwrap(),
            }
        })
}

proptest! {
    #[test]
    fn schema_union_laws(
        left in prop::collection::hash_set("[a-e]", 1..5),
        right in prop::collection::hash_set("[c-h]", 1..5),
    ) {
        let l = Schema::new(left.iter().map(String::as_str)).unwrap();
        let r = Schema::new(right.iter().map(String::as_str)).unwrap();
        let u = l.union(&r).unwrap();
        for a in l.attrs().iter().chain(r.attrs().iter()) {
            prop_assert!(u.contains(a));
        }
        // Idempotent and no duplicates.
        let uu = u.union(&u).unwrap();
        prop_assert!(uu.same_as(&u));
        prop_assert!(u.arity() <= l.arity() + r.arity());
    }

    #[test]
    fn tuple_projection_identity(vals in prop::collection::vec(-100i64..100, 1..10)) {
        let t: Tuple = vals.iter().map(|&v| Value::int(v)).collect();
        let identity: Vec<usize> = (0..t.arity()).collect();
        prop_assert_eq!(t.project(&identity), t.clone());
        let reversed: Vec<usize> = (0..t.arity()).rev().collect();
        let double_rev = t.project(&reversed).project(&reversed);
        prop_assert_eq!(double_rev, t);
    }

    #[test]
    fn tuple_concat_arity_and_order(
        xs in prop::collection::vec(-9i64..9, 0..6),
        ys in prop::collection::vec(-9i64..9, 0..6),
    ) {
        let a: Tuple = xs.iter().map(|&v| Value::int(v)).collect();
        let b: Tuple = ys.iter().map(|&v| Value::int(v)).collect();
        let c = a.concat(&b);
        prop_assert_eq!(c.arity(), a.arity() + b.arity());
        for (i, v) in xs.iter().enumerate() {
            prop_assert_eq!(c.get(i), &Value::int(*v));
        }
        for (i, v) in ys.iter().enumerate() {
            prop_assert_eq!(c.get(xs.len() + i), &Value::int(*v));
        }
    }

    /// ISSUE 5 satellite: rows → typed columns → rows is the identity on
    /// arbitrary mixed-type relations (all `Value` variants plus NULLs,
    /// heterogeneous columns landing in the `Mixed` layout included).
    #[test]
    fn columnar_round_trip_is_identity(rows in prop::collection::vec(
        (any_value(), any_value(), any_value()), 0..30)) {
        let schema = Schema::new(["x", "y", "z"]).unwrap();
        let tuples: Vec<Tuple> = rows
            .into_iter()
            .map(|(x, y, z)| Tuple::new(vec![x, y, z]))
            .collect();
        let r = Relation::new("m", schema, tuples.clone()).unwrap();
        prop_assert_eq!(r.len(), tuples.len());
        // Whole-relation materialization equals the input …
        prop_assert_eq!(r.tuples(), tuples.clone());
        // … and so do individual row views, cell by cell.
        for (i, t) in tuples.iter().enumerate() {
            prop_assert_eq!(r.tuple_at(i), t.clone());
            let row = r.row_ref(i);
            for p in 0..t.arity() {
                prop_assert!(row.get(p).eq_value(t.get(p)));
                prop_assert_eq!(&row.value(p), t.get(p));
            }
        }
    }

    /// ISSUE 5 satellite: the vectorized `CompiledPredicate::select`
    /// agrees with the tuple-at-a-time `eval` oracle on random
    /// relations and random predicates.
    #[test]
    fn select_matches_eval_oracle(r in relation_strategy(), p in predicate_strategy()) {
        let cp = p.compile(r.schema()).unwrap();
        let bm = cp.select(&r);
        prop_assert_eq!(bm.len(), r.len());
        let mut expected_ids = Vec::new();
        for (i, t) in r.tuples().iter().enumerate() {
            let want = cp.eval(t);
            prop_assert_eq!(bm.get(i), want, "row {} of {:?}", i, p);
            if want {
                expected_ids.push(i as u32);
            }
        }
        prop_assert_eq!(bm.count(), expected_ids.len());
        prop_assert_eq!(bm.to_row_ids(), expected_ids);
        // filter() materializes exactly the selected rows, in order.
        let filtered = r.filter("f", &cp);
        let kept: Vec<Tuple> = r
            .tuples()
            .into_iter()
            .filter(|t| cp.eval(t))
            .collect();
        prop_assert_eq!(filtered.tuples(), kept);
    }

    /// And the same oracle agreement on mixed-layout columns.
    #[test]
    fn select_matches_eval_on_mixed(r in mixed_relation_strategy(), n in -5i64..5) {
        let schema_attrs = ["x", "y", "z"];
        for attr in schema_attrs {
            for op in [CompareOp::Eq, CompareOp::Lt, CompareOp::Ge] {
                let p = Predicate::cmp(attr, op, Value::int(n));
                let cp = p.compile(r.schema()).unwrap();
                let bm = cp.select(&r);
                for (i, t) in r.tuples().iter().enumerate() {
                    prop_assert_eq!(bm.get(i), cp.eval(t), "attr {} row {}", attr, i);
                }
            }
        }
    }

    #[test]
    fn predicate_complement_laws(r in relation_strategy(), threshold in -5i64..5) {
        let p = Predicate::cmp("b", CompareOp::Lt, Value::int(threshold));
        let not_p = Predicate::Not(Box::new(p.clone()));
        let and = Predicate::And(vec![p.clone(), not_p.clone()])
            .compile(r.schema())
            .unwrap();
        let or = Predicate::Or(vec![p, not_p]).compile(r.schema()).unwrap();
        for row in r.tuples() {
            prop_assert!(!and.eval(&row), "p ∧ ¬p must be false");
            prop_assert!(or.eval(&row), "p ∨ ¬p must be true");
        }
    }

    #[test]
    fn filter_partitions_relation(r in relation_strategy(), threshold in -5i64..5) {
        let p = Predicate::cmp("b", CompareOp::Lt, Value::int(threshold));
        let cp = p.compile(r.schema()).unwrap();
        let yes = r.filter("yes", &cp);
        let no = r.filter(
            "no",
            &Predicate::Not(Box::new(p)).compile(r.schema()).unwrap(),
        );
        prop_assert_eq!(yes.len() + no.len(), r.len());
        // Selection never grows the footprint.
        prop_assert!(yes.memory_bytes() <= r.memory_bytes() + 64);
    }

    #[test]
    fn histogram_totals_and_bounds(r in relation_strategy()) {
        let h = FrequencyHistogram::build(&r, "b");
        let total: u64 = h.entries().map(|(_, c)| c).sum();
        prop_assert_eq!(total, r.len() as u64);
        prop_assert!(h.max_degree() as f64 >= h.avg_degree() - 1e-12);

        // Equi-depth upper bounds dominate exact degrees.
        for buckets in [1usize, 2, 4] {
            let ed = EquiDepthHistogram::build(&r, "b", buckets);
            for (v, c) in h.entries() {
                prop_assert!(
                    ed.degree_upper_bound(v) >= c,
                    "bucketed bound below exact degree for {v}"
                );
            }
        }
    }

    /// Columnar histogram counts must equal a naive tuple scan — on
    /// every column layout, NULLs included.
    #[test]
    fn histogram_matches_tuple_scan(r in mixed_relation_strategy()) {
        for attr in ["x", "y", "z"] {
            let h = FrequencyHistogram::build(&r, attr);
            let pos = r.schema().position(attr).unwrap();
            let mut naive: HashMap<Value, u64> = HashMap::new();
            for t in r.tuples() {
                *naive.entry(t.get(pos).clone()).or_insert(0) += 1;
            }
            prop_assert_eq!(h.distinct(), naive.len());
            for (v, c) in &naive {
                prop_assert_eq!(h.degree(v), *c, "value {} of {}", v, attr);
            }
        }
    }

    #[test]
    fn index_postings_cover_relation(r in relation_strategy()) {
        let idx = HashIndex::build_single(&r, "b");
        let total: usize = idx.entries().map(|(_, rows)| rows.len()).sum();
        prop_assert_eq!(total, r.len());
        // Every row is reachable through its own key.
        for (i, row) in r.tuples().iter().enumerate() {
            let key = [row.get(1).clone()];
            prop_assert!(idx.rows_matching(&key).contains(&(i as u32)));
        }
    }

    /// ISSUE 4 satellite: the dictionary-encoded CSR index must
    /// enumerate exactly the same key → row-id sets as a naive
    /// `HashMap<Vec<Value>, Vec<u32>>` oracle, on random relations
    /// (small domains force heavy key duplication), over single- and
    /// multi-attribute keys, including the empty-relation and
    /// max-degree edges. The build now reads typed columns; the oracle
    /// still scans materialized tuples.
    #[test]
    fn csr_postings_match_naive_oracle(r in relation_strategy(), attr_pick in 0usize..4) {
        let attr_sets: [&[&str]; 4] = [&["a"], &["b"], &["a", "s"], &["b", "a", "s"]];
        let attrs: Vec<std::sync::Arc<str>> = attr_sets[attr_pick]
            .iter()
            .map(|a| std::sync::Arc::from(*a))
            .collect();
        let positions: Vec<usize> = attr_sets[attr_pick]
            .iter()
            .map(|a| r.schema().position(a).unwrap())
            .collect();
        let idx = HashIndex::build(&r, &attrs);

        let tuples = r.tuples();
        let mut oracle: HashMap<Vec<Value>, Vec<u32>> = HashMap::new();
        for (i, row) in tuples.iter().enumerate() {
            let key: Vec<Value> = positions.iter().map(|&p| row.get(p).clone()).collect();
            oracle.entry(key).or_default().push(i as u32);
        }

        // Same key set, same posting lists (including order), same
        // degrees, and round-tripping key ids.
        prop_assert_eq!(idx.distinct_keys(), oracle.len());
        prop_assert_eq!(idx.n_keys(), oracle.len());
        for (key, rows) in &oracle {
            prop_assert_eq!(idx.rows_matching(key), rows.as_slice());
            let kid = idx.key_id(key).expect("present key encodes");
            prop_assert_eq!(idx.key_values(kid), key.as_slice());
            prop_assert_eq!(idx.postings(kid), rows.as_slice());
            prop_assert_eq!(idx.degree_of(kid), rows.len());
            // Projected probes agree with value probes.
            prop_assert_eq!(idx.key_id_projected(tuples[rows[0] as usize].values(), &positions), Some(kid));
            // Column-side probes agree too (probing the base relation
            // itself through its own columns).
            prop_assert_eq!(idx.key_id_at(&r, &positions, rows[0] as usize), Some(kid));
        }
        // entries() enumerates the oracle exactly once per key.
        let mut enumerated = 0usize;
        for (key, rows) in idx.entries() {
            prop_assert_eq!(oracle.get(key).map(Vec::as_slice), Some(rows));
            enumerated += 1;
        }
        prop_assert_eq!(enumerated, oracle.len());
        // Max-degree edge (0 for the empty relation).
        prop_assert_eq!(idx.max_degree(), oracle.values().map(Vec::len).max().unwrap_or(0));
        // Absent (empty-posting) key.
        let absent: Vec<Value> = positions.iter().map(|_| Value::int(777)).collect();
        prop_assert!(!oracle.contains_key(&absent));
        prop_assert!(idx.rows_matching(&absent).is_empty());
        prop_assert_eq!(idx.key_id(&absent), None);
    }

    #[test]
    fn membership_matches_linear_scan(r in relation_strategy()) {
        let m = RowMembership::build(&r);
        for row in r.tuples() {
            prop_assert!(m.contains(&row));
        }
        let absent = Tuple::new(vec![Value::int(999), Value::int(999), Value::str("zz")]);
        prop_assert!(!m.contains(&absent));
    }

    #[test]
    fn distinct_is_idempotent_and_set_sized(r in relation_strategy()) {
        let d1 = r.distinct();
        let d2 = d1.distinct();
        prop_assert_eq!(d1.len(), d2.len());
        let set: std::collections::HashSet<_> = r.tuples().into_iter().collect();
        prop_assert_eq!(d1.len(), set.len());
    }

    #[test]
    fn horizontal_split_partitions(r in relation_strategy(), frac in 0.0f64..1.0) {
        let (a, b) = r.split_horizontal("a", "b", frac);
        prop_assert_eq!(a.len() + b.len(), r.len());
        let mut rejoined: Vec<Tuple> = a.tuples();
        rejoined.extend(b.tuples());
        prop_assert_eq!(rejoined, r.tuples());
    }

    #[test]
    fn csv_round_trip(r in relation_strategy()) {
        let mut buf = Vec::new();
        write_csv(&r, &mut buf).unwrap();
        let back = read_csv("r", buf.as_slice()).unwrap();
        prop_assert_eq!(back.schema().arity(), r.schema().arity());
        prop_assert_eq!(back.len(), r.len());
        for (a, b) in back.tuples().iter().zip(r.tuples()) {
            // Empty strings become NULL through CSV; everything else
            // must round-trip exactly.
            for (x, y) in a.values().iter().zip(b.values()) {
                match y {
                    Value::Str(s) if s.is_empty() => prop_assert!(x.is_null()),
                    other => prop_assert_eq!(x, other),
                }
            }
        }
    }

    #[test]
    fn value_ordering_is_total_and_consistent(
        xs in prop::collection::vec(-50i64..50, 2..20),
    ) {
        let mut vals: Vec<Value> = xs.iter().map(|&x| Value::int(x)).collect();
        vals.push(Value::Null);
        vals.push(Value::str("zzz"));
        vals.sort();
        for w in vals.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        // Hash consistency with equality on a sample.
        let mut groups: HashMap<Value, Vec<&Value>> = HashMap::new();
        for v in &vals {
            groups.entry(v.clone()).or_default().push(v);
        }
        for (k, members) in groups {
            for m in members {
                prop_assert_eq!(&k, m);
            }
        }
    }
}
