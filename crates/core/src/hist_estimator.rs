//! The histogram-based overlap estimator (§5, §8, Theorem 4).
//!
//! Estimates `|O_Δ|` for any subset of joins using only column
//! statistics — no data access beyond histograms and degrees, matching
//! the paper's decentralized / data-market setting. The pipeline:
//!
//! 1. Cyclic joins are decomposed into skeleton + residual (§8.2), the
//!    residual acting as a single relation.
//! 2. A standard template is selected over all joins (§8.1.1) and each
//!    join is split into an equi-length chain of two-attribute
//!    relations (§5.2).
//! 3. Theorem 4's recurrence runs over the aligned chains:
//!    `K(1) = Σ_{v∈C} min_j d_{A_1}(v,R_{j,1})·d_{A_1}(v,R_{j,2})`, then
//!    `K(i) = K(i−1) · min_j M_{j,i}` with `M_{j,i} = 1` across fake
//!    joins.
//! 4. The final bound is capped by the trivial `min_j |J_j|`.
//!
//! The `K(i)` multiplier uses the maximum degree by default; §5.1's
//! refinement ("replace … with the minimum of the average degree") is
//! selected with [`DegreeMode::Avg`] — cheaper bounds that are no longer
//! strict upper bounds but much tighter on skewed data.

use crate::error::CoreError;
use crate::overlap::OverlapMap;
use crate::workload::UnionWorkload;
use suj_join::residual::decompose_cyclic;
use suj_join::template::{build_template, split_join, DegreeBound, SplitJoin, Template};
use suj_join::JoinSpec;

/// Which degree statistic drives the `K(i)` multipliers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegreeMode {
    /// Maximum degree (strict upper bound, §5.1 base form).
    Max,
    /// Average degree (§5.1 refinement — tighter, no longer a strict
    /// bound).
    Avg,
}

/// Histogram-based overlap estimator over a union workload.
#[derive(Debug)]
pub struct HistogramEstimator {
    n: usize,
    template: Template,
    splits: Vec<SplitJoin>,
    mode: DegreeMode,
    /// Per-join size hints (EW exact sizes or EO bounds) used for
    /// singleton entries and the trivial cap.
    join_size_hints: Vec<f64>,
}

impl HistogramEstimator {
    /// Builds the estimator. `join_size_hints` supplies `|J_j|`
    /// estimates (the paper instantiates these with EW ground truth or
    /// EO bounds). `zero_weight` is the §8.1.2 alternating-score
    /// hyper-parameter (0.0 = plain scores).
    pub fn new(
        workload: &UnionWorkload,
        mode: DegreeMode,
        join_size_hints: Vec<f64>,
        zero_weight: f64,
    ) -> Result<Self, CoreError> {
        let n = workload.n_joins();
        if join_size_hints.len() != n {
            return Err(CoreError::Invalid(format!(
                "expected {n} join size hints, got {}",
                join_size_hints.len()
            )));
        }
        // §8.2: treat each cyclic join as skeleton + residual before
        // splitting.
        let prepared_specs: Vec<JoinSpec> = workload
            .joins()
            .iter()
            .map(|j| decompose_cyclic(j).map(|d| d.spec))
            .collect::<Result<_, _>>()
            .map_err(CoreError::Join)?;

        let spec_refs: Vec<&JoinSpec> = prepared_specs.iter().collect();
        let template = build_template(&spec_refs, zero_weight).map_err(CoreError::Join)?;
        let splits: Vec<SplitJoin> = prepared_specs
            .iter()
            .map(|s| split_join(s, &template))
            .collect::<Result<_, _>>()
            .map_err(CoreError::Join)?;

        Ok(Self {
            n,
            template,
            splits,
            mode,
            join_size_hints,
        })
    }

    /// Convenience: estimator with extended-Olken join size hints (the
    /// pure-histogram configuration of §9).
    pub fn with_olken(workload: &UnionWorkload, mode: DegreeMode) -> Result<Self, CoreError> {
        let hints = workload
            .joins()
            .iter()
            .map(|j| suj_join::bounds::olken_bound(j))
            .collect::<Result<Vec<_>, _>>()
            .map_err(CoreError::Join)?;
        Self::new(workload, mode, hints, 0.0)
    }

    /// The selected template.
    pub fn template(&self) -> &Template {
        &self.template
    }

    /// The per-join split chains.
    pub fn splits(&self) -> &[SplitJoin] {
        &self.splits
    }

    /// The join size hints in use.
    pub fn join_size_hints(&self) -> &[f64] {
        &self.join_size_hints
    }

    fn mode_degree(&self, bound: &DegreeBound) -> f64 {
        match self.mode {
            DegreeMode::Max => bound.max_degree(),
            DegreeMode::Avg => bound.avg_degree(),
        }
    }

    /// Estimates `|O_Δ|` for a set of join indices (Theorem 4). A
    /// singleton returns its size hint.
    pub fn estimate_overlap(&self, joins: &[usize]) -> f64 {
        assert!(!joins.is_empty(), "overlap of the empty set is undefined");
        let cap = joins
            .iter()
            .map(|&j| self.join_size_hints[j])
            .fold(f64::INFINITY, f64::min);
        if joins.len() == 1 {
            return cap;
        }
        let chain_len = self.splits[joins[0]].relations.len();
        if chain_len == 0 {
            // Single-attribute output schema — only the trivial bound.
            return cap;
        }

        // K(1): exact per-value pass over the common domain of the first
        // join attribute (SR_1.y == SR_2.x; for length-1 chains, the
        // first attribute itself).
        let k1 = if chain_len == 1 {
            self.k1_single_relation(joins)
        } else {
            self.k1_pairwise(joins)
        };
        let mut k = k1;

        // K(i) = K(i−1) · min_j M_{j,i}, with fake joins contributing 1.
        // K(1) consumed link 0 (relations[0] ⋈ relations[1]); link `s`
        // connects relations[s] and relations[s+1].
        for s in 1..chain_len.saturating_sub(1) {
            let mult = joins
                .iter()
                .map(|&j| {
                    let split = &self.splits[j];
                    if split.fake_links[s] {
                        1.0
                    } else {
                        self.mode_degree(&split.relations[s + 1].deg_x)
                    }
                })
                .fold(f64::INFINITY, f64::min);
            k *= mult;
            if k == 0.0 {
                break;
            }
        }

        k.min(cap).max(0.0)
    }

    /// `K(1)` when each split chain is a single two-attribute relation:
    /// `Σ_v min_j d_{X_1}(v, SR_1^j)`.
    fn k1_single_relation(&self, joins: &[usize]) -> f64 {
        let domain_join = self.smallest_domain_join(joins, |sj| &sj.relations[0].deg_x);
        let domain = &self.splits[domain_join].relations[0].deg_x;
        let mut total = 0.0;
        for v in domain.values() {
            let m = joins
                .iter()
                .map(|&j| self.splits[j].relations[0].deg_x.degree(v))
                .fold(f64::INFINITY, f64::min);
            if m > 0.0 {
                total += m;
            }
        }
        total
    }

    /// `K(1) = Σ_{v∈C} min_j d_{A1}(v, R_{j,1}) · d_{A1}(v, R_{j,2})`
    /// over the first join attribute `A_1 = SR_1.y = SR_2.x`.
    fn k1_pairwise(&self, joins: &[usize]) -> f64 {
        let domain_join = self.smallest_domain_join(joins, |sj| &sj.relations[0].deg_y);
        let domain = &self.splits[domain_join].relations[0].deg_y;
        let mut total = 0.0;
        for v in domain.values() {
            let m = joins
                .iter()
                .map(|&j| {
                    let split = &self.splits[j];
                    let d1 = split.relations[0].deg_y.degree(v);
                    let d2 = split.relations[1].deg_x.degree(v);
                    d1 * d2
                })
                .fold(f64::INFINITY, f64::min);
            if m > 0.0 {
                total += m;
            }
        }
        total
    }

    /// The member join whose degree-bound domain is smallest (cheapest
    /// to iterate; the min over joins makes any choice correct).
    fn smallest_domain_join<'a>(
        &'a self,
        joins: &[usize],
        f: impl Fn(&'a SplitJoin) -> &'a DegreeBound,
    ) -> usize {
        *joins
            .iter()
            .min_by_key(|&&j| f(&self.splits[j]).distinct())
            .expect("nonempty join set")
    }

    /// The full overlap map (singletons = hints, larger sets =
    /// Theorem 4 estimates).
    pub fn overlap_map(&self) -> Result<OverlapMap, CoreError> {
        OverlapMap::from_fn(self.n, |indices| self.estimate_overlap(indices))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::full_join_union;
    use std::sync::Arc;
    use suj_storage::{Relation, Schema, Value};

    fn rel(name: &str, attrs: &[&str], rows: Vec<Vec<i64>>) -> Arc<Relation> {
        let schema = Schema::new(attrs.iter().copied()).unwrap();
        let tuples = rows
            .into_iter()
            .map(|vals| vals.into_iter().map(Value::int).collect())
            .collect();
        Arc::new(Relation::new(name, schema, tuples).unwrap())
    }

    /// Two equi-length chains with controlled overlap: shared rows in
    /// both base relations.
    fn overlapping_chains() -> UnionWorkload {
        let shared_r: Vec<Vec<i64>> = (0..6).map(|i| vec![i, i % 3]).collect();
        let shared_s: Vec<Vec<i64>> = (0..3).map(|b| vec![b, 100 + b]).collect();

        let mut r1_rows = shared_r.clone();
        r1_rows.push(vec![100, 0]);
        let mut r2_rows = shared_r;
        r2_rows.push(vec![200, 1]);
        let mut s1_rows = shared_s.clone();
        s1_rows.push(vec![7, 700]);
        let s2_rows = shared_s;

        let j1 = suj_join::JoinSpec::chain(
            "j1",
            vec![
                rel("r1", &["a", "b"], r1_rows),
                rel("s1", &["b", "c"], s1_rows),
            ],
        )
        .unwrap();
        let j2 = suj_join::JoinSpec::chain(
            "j2",
            vec![
                rel("r2", &["a", "b"], r2_rows),
                rel("s2", &["b", "c"], s2_rows),
            ],
        )
        .unwrap();
        UnionWorkload::new(vec![Arc::new(j1), Arc::new(j2)]).unwrap()
    }

    #[test]
    fn max_mode_bound_dominates_exact_overlap() {
        let w = overlapping_chains();
        let exact = full_join_union(&w).unwrap();
        let sizes = w.exact_join_sizes().unwrap();
        let est = HistogramEstimator::new(&w, DegreeMode::Max, sizes, 0.0).unwrap();
        let bound = est.estimate_overlap(&[0, 1]);
        let truth = exact.overlap.overlap(&[0, 1]);
        assert!(
            bound >= truth - 1e-9,
            "histogram bound {bound} must dominate exact overlap {truth}"
        );
    }

    #[test]
    fn avg_mode_is_tighter_than_max_mode() {
        let w = overlapping_chains();
        let sizes = w.exact_join_sizes().unwrap();
        let max_est = HistogramEstimator::new(&w, DegreeMode::Max, sizes.clone(), 0.0).unwrap();
        let avg_est = HistogramEstimator::new(&w, DegreeMode::Avg, sizes, 0.0).unwrap();
        assert!(avg_est.estimate_overlap(&[0, 1]) <= max_est.estimate_overlap(&[0, 1]) + 1e-9);
    }

    #[test]
    fn singleton_returns_hint() {
        let w = overlapping_chains();
        let est = HistogramEstimator::new(&w, DegreeMode::Max, vec![42.0, 7.0], 0.0).unwrap();
        assert_eq!(est.estimate_overlap(&[0]), 42.0);
        assert_eq!(est.estimate_overlap(&[1]), 7.0);
    }

    #[test]
    fn cap_by_min_join_size() {
        let w = overlapping_chains();
        // Tiny hints force the cap.
        let est = HistogramEstimator::new(&w, DegreeMode::Max, vec![1.0, 1000.0], 0.0).unwrap();
        assert!(est.estimate_overlap(&[0, 1]) <= 1.0);
    }

    #[test]
    fn identical_joins_overlap_estimate_is_large() {
        // Two copies of the same join: the overlap is the whole join.
        let mk = || {
            suj_join::JoinSpec::chain(
                "jx",
                vec![
                    rel("r", &["a", "b"], (0..5).map(|i| vec![i, i % 2]).collect()),
                    rel("s", &["b", "c"], vec![vec![0, 10], vec![1, 11]]),
                ],
            )
            .unwrap()
        };
        let w = UnionWorkload::new(vec![Arc::new(mk()), Arc::new(mk())]).unwrap();
        let exact = full_join_union(&w).unwrap();
        let sizes = w.exact_join_sizes().unwrap();
        let est = HistogramEstimator::new(&w, DegreeMode::Max, sizes.clone(), 0.0).unwrap();
        let bound = est.estimate_overlap(&[0, 1]);
        let truth = exact.overlap.overlap(&[0, 1]);
        assert!(bound >= truth - 1e-9);
        assert!(bound <= sizes[0] + 1e-9, "cap at |J|");
    }

    #[test]
    fn overlap_map_feeds_union_size() {
        let w = overlapping_chains();
        let exact = full_join_union(&w).unwrap();
        let sizes = w.exact_join_sizes().unwrap();
        let est = HistogramEstimator::new(&w, DegreeMode::Max, sizes, 0.0).unwrap();
        let map = est.overlap_map().unwrap();
        // Estimated |U| via Eq. 1: k-overlap clamping keeps it ≥ the
        // exact union's lower pieces; sanity: strictly positive and not
        // absurdly far off.
        let est_u = map.union_size();
        let true_u = exact.union_size() as f64;
        assert!(est_u > 0.0);
        assert!(est_u >= true_u * 0.2, "est {est_u} truth {true_u}");
    }

    #[test]
    fn olken_hint_constructor() {
        let w = overlapping_chains();
        let est = HistogramEstimator::with_olken(&w, DegreeMode::Max).unwrap();
        let exact_sizes = w.exact_join_sizes().unwrap();
        for (hint, exact) in est.join_size_hints().iter().zip(&exact_sizes) {
            assert!(hint >= exact);
        }
    }

    #[test]
    fn cyclic_join_estimation_via_residual() {
        let tri = |suffix: &str, extra: i64| {
            suj_join::JoinSpec::natural(
                format!("tri{suffix}"),
                vec![
                    rel("x", &["a", "b"], vec![vec![1, 2], vec![extra, 2]]),
                    rel("y", &["b", "c"], vec![vec![2, 3]]),
                    rel("z", &["c", "a"], vec![vec![3, 1], vec![3, extra]]),
                ],
            )
            .unwrap()
        };
        let w = UnionWorkload::new(vec![Arc::new(tri("1", 5)), Arc::new(tri("2", 7))]).unwrap();
        let exact = full_join_union(&w).unwrap();
        let sizes = w.exact_join_sizes().unwrap();
        let est = HistogramEstimator::new(&w, DegreeMode::Max, sizes, 0.0).unwrap();
        let bound = est.estimate_overlap(&[0, 1]);
        let truth = exact.overlap.overlap(&[0, 1]);
        assert!(bound >= truth - 1e-9, "bound {bound} truth {truth}");
    }

    #[test]
    fn rejects_wrong_hint_count() {
        let w = overlapping_chains();
        assert!(HistogramEstimator::new(&w, DegreeMode::Max, vec![1.0], 0.0).is_err());
    }
}
