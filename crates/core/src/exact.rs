//! The `FullJoinUnion` ground-truth baseline (§9).
//!
//! Materializes every join, canonicalizes, takes the set union, and
//! derives the exact [`OverlapMap`]: for each distinct union tuple we
//! compute its membership bitmask once, then
//! `|O_Δ| = Σ_{mask ⊇ Δ} count(mask)`. This is the expensive baseline
//! the estimators are judged against ("FullJoinUnion is extremely
//! expensive on large datasets", §9) and the oracle for every uniformity
//! test in the suite.

use crate::error::CoreError;
use crate::overlap::OverlapMap;
use crate::workload::UnionWorkload;
use suj_join::exec::execute;
use suj_storage::{FxHashMap, FxHashSet, Tuple};

/// Ground truth: materialized joins, union, and exact overlaps.
#[derive(Debug, Clone)]
pub struct ExactUnion {
    /// Distinct result tuples per join (canonical order).
    pub join_results: Vec<FxHashSet<Tuple>>,
    /// The set union of all joins.
    pub union_set: FxHashSet<Tuple>,
    /// Exact overlap sizes for every subset.
    pub overlap: OverlapMap,
}

impl ExactUnion {
    /// `|U|`.
    pub fn union_size(&self) -> usize {
        self.union_set.len()
    }

    /// `|J_j|`.
    pub fn join_size(&self, j: usize) -> usize {
        self.join_results[j].len()
    }
}

/// Runs the full-join-union baseline.
pub fn full_join_union(workload: &UnionWorkload) -> Result<ExactUnion, CoreError> {
    let n = workload.n_joins();
    let mut join_results: Vec<FxHashSet<Tuple>> = Vec::with_capacity(n);
    for j in 0..n {
        let result = execute(workload.join(j));
        let set: FxHashSet<Tuple> = result
            .tuples()
            .iter()
            .map(|t| workload.to_canonical(j, t))
            .collect();
        join_results.push(set);
    }

    let mut union_set: FxHashSet<Tuple> = FxHashSet::default();
    for set in &join_results {
        union_set.extend(set.iter().cloned());
    }

    // Membership mask histogram over distinct union tuples.
    let mut mask_counts: FxHashMap<u32, u64> = FxHashMap::default();
    for t in &union_set {
        let mut mask = 0u32;
        for (j, set) in join_results.iter().enumerate() {
            if set.contains(t) {
                mask |= 1 << j;
            }
        }
        *mask_counts.entry(mask).or_insert(0) += 1;
    }

    let overlap = OverlapMap::from_fn(n, |indices| {
        let mut delta = 0u32;
        for &j in indices {
            delta |= 1 << j;
        }
        mask_counts
            .iter()
            .filter(|(m, _)| (*m & delta) == delta)
            .map(|(_, &c)| c as f64)
            .sum()
    })?;

    Ok(ExactUnion {
        join_results,
        union_set,
        overlap,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use suj_join::JoinSpec;
    use suj_storage::{Relation, Schema, Value};

    fn rel(name: &str, attrs: &[&str], rows: Vec<Vec<i64>>) -> Arc<Relation> {
        let schema = Schema::new(attrs.iter().copied()).unwrap();
        let tuples = rows
            .into_iter()
            .map(|vals| vals.into_iter().map(Value::int).collect())
            .collect();
        Arc::new(Relation::new(name, schema, tuples).unwrap())
    }

    /// Builds two overlapping joins: results share tuples with b = 10.
    fn workload() -> UnionWorkload {
        let j1 = JoinSpec::chain(
            "j1",
            vec![
                rel(
                    "r1",
                    &["a", "b"],
                    vec![vec![1, 10], vec![2, 20], vec![3, 10]],
                ),
                rel("s1", &["b", "c"], vec![vec![10, 100], vec![20, 200]]),
            ],
        )
        .unwrap();
        let j2 = JoinSpec::chain(
            "j2",
            vec![
                rel("r2", &["a", "b"], vec![vec![1, 10], vec![5, 50]]),
                rel("s2", &["b", "c"], vec![vec![10, 100], vec![50, 500]]),
            ],
        )
        .unwrap();
        UnionWorkload::new(vec![Arc::new(j1), Arc::new(j2)]).unwrap()
    }

    #[test]
    fn exact_sizes_and_overlaps() {
        let w = workload();
        let exact = full_join_union(&w).unwrap();
        // J1 = {(1,10,100),(3,10,100),(2,20,200)}; J2 = {(1,10,100),(5,50,500)}.
        assert_eq!(exact.join_size(0), 3);
        assert_eq!(exact.join_size(1), 2);
        assert_eq!(exact.union_size(), 4);
        assert_eq!(exact.overlap.overlap(&[0, 1]), 1.0);
        assert_eq!(exact.overlap.join_size(0), 3.0);
    }

    #[test]
    fn eq1_union_size_matches_set_union() {
        let w = workload();
        let exact = full_join_union(&w).unwrap();
        assert!((exact.overlap.union_size() - exact.union_size() as f64).abs() < 1e-9);
        assert!(
            (exact.overlap.union_size_inclusion_exclusion() - exact.union_size() as f64).abs()
                < 1e-9
        );
    }

    #[test]
    fn cover_sizes_sum_to_union() {
        let w = workload();
        let exact = full_join_union(&w).unwrap();
        for order in [[0usize, 1], [1, 0]] {
            let sizes = exact.overlap.cover_sizes(&order);
            let sum: f64 = sizes.iter().sum();
            assert!((sum - exact.union_size() as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn membership_masks_agree_with_oracles() {
        let w = workload();
        let exact = full_join_union(&w).unwrap();
        for t in &exact.union_set {
            let mut expected = 0u32;
            for (j, set) in exact.join_results.iter().enumerate() {
                if set.contains(t) {
                    expected |= 1 << j;
                }
            }
            assert_eq!(w.membership_mask(t), expected, "tuple {t}");
        }
    }
}
