//! The Bernoulli "union trick" sampler (§3).
//!
//! Each round iterates all joins, selecting join `J_j` with Bernoulli
//! probability `|J_j|/|U|` (several joins can fire in one round). A
//! selected join contributes one uniform tuple, which is *kept only if
//! `J_j` is the tuple's designated join* — the first join containing it.
//! Every value `u` is then returned with probability
//! `(|J_{f(u)}|/|U|) · (1/|J_{f(u)}|) = 1/|U|`.
//!
//! Two designation mechanisms are provided: the membership oracle
//! computes `f(u)` exactly (first join in workload order containing
//! `u`); the paper's record variant designates the first join `u` was
//! *sampled from*, which converges to the oracle assignment as the
//! record fills in (see Algorithm 1). This sampler exists as the
//! simple baseline the non-Bernoulli cover selection improves upon —
//! "this algorithm has a high rejection ratio for highly overlapping
//! joins".
//!
//! The sampler implements [`UnionSampler`]; designation rejections are
//! plain rejections (no sample is ever withdrawn), so both policies
//! stream without retractions.

use crate::error::CoreError;
use crate::report::RunReport;
use crate::sampler::{Draw, UnionSampler};
use crate::workload::UnionWorkload;
use std::sync::Arc;
use std::time::Instant;
use suj_join::membership::first_containing;
use suj_join::weights::build_sampler;
use suj_join::{JoinSampler, WeightKind};
use suj_stats::SujRng;
use suj_storage::Tuple;

/// How the Bernoulli sampler designates each value's owning join.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DesignationPolicy {
    /// Exact: `f(u)` = first join (workload order) containing `u`,
    /// decided by the membership oracle.
    Oracle,
    /// The paper's §3 description: `u` is owned by the first join it
    /// was *sampled from*; converges to the oracle assignment as the
    /// record fills in.
    Record,
}

/// Bernoulli union-trick sampler.
pub struct BernoulliUnionSampler {
    workload: Arc<UnionWorkload>,
    /// Shared per-join samplers (see
    /// [`SetUnionSampler::with_shared`](crate::algorithm1::SetUnionSampler::with_shared)).
    samplers: Vec<Arc<dyn JoinSampler>>,
    /// Selection probability per join: `|J_j| / |U|`.
    probabilities: Vec<f64>,
    policy: DesignationPolicy,
    max_join_tries: u64,
    /// First join each value was SAMPLED from (Record policy).
    record: suj_storage::FxHashMap<Tuple, usize>,
    /// Round-robin cursor into the joins of the current round.
    cursor: usize,
    fired_this_round: bool,
    stall_rounds: u64,
    report: RunReport,
    emitted: u64,
    /// Reusable canonicalization scratch (one accepted draw each).
    canon_scratch: Vec<suj_storage::Value>,
}

impl BernoulliUnionSampler {
    /// Builds the sampler with the exact membership-oracle designation.
    /// `join_sizes` and `union_size` typically come from an estimator's
    /// `OverlapMap`.
    pub fn new(
        workload: Arc<UnionWorkload>,
        join_sizes: &[f64],
        union_size: f64,
        weights: WeightKind,
    ) -> Result<Self, CoreError> {
        Self::with_policy(
            workload,
            join_sizes,
            union_size,
            weights,
            DesignationPolicy::Oracle,
        )
    }

    /// Builds the sampler with an explicit designation policy.
    pub fn with_policy(
        workload: Arc<UnionWorkload>,
        join_sizes: &[f64],
        union_size: f64,
        weights: WeightKind,
        policy: DesignationPolicy,
    ) -> Result<Self, CoreError> {
        let samplers = workload
            .joins()
            .iter()
            .map(|j| build_sampler(j.clone(), weights).map(Arc::from))
            .collect::<Result<Vec<_>, _>>()
            .map_err(CoreError::Join)?;
        Self::with_shared(workload, join_sizes, union_size, samplers, policy)
    }

    /// Builds the sampler over pre-built per-join samplers (shared with
    /// other handles of the same prepared query); record state starts
    /// fresh per handle.
    pub fn with_shared(
        workload: Arc<UnionWorkload>,
        join_sizes: &[f64],
        union_size: f64,
        samplers: Vec<Arc<dyn JoinSampler>>,
        policy: DesignationPolicy,
    ) -> Result<Self, CoreError> {
        let n = workload.n_joins();
        if join_sizes.len() != n {
            return Err(CoreError::Invalid(format!(
                "expected {n} join sizes, got {}",
                join_sizes.len()
            )));
        }
        if union_size <= 0.0 {
            return Err(CoreError::Invalid("union size must be positive".into()));
        }
        if samplers.len() != n {
            return Err(CoreError::Invalid(format!(
                "{} join samplers for {n} joins",
                samplers.len()
            )));
        }
        let probabilities = join_sizes
            .iter()
            .map(|&s| (s / union_size).clamp(0.0, 1.0))
            .collect();
        Ok(Self {
            workload,
            samplers,
            probabilities,
            policy,
            max_join_tries: 1_000_000,
            record: Default::default(),
            cursor: 0,
            fired_this_round: false,
            stall_rounds: 0,
            report: RunReport::new(n),
            emitted: 0,
            canon_scratch: Vec::new(),
        })
    }

    /// The designation policy in use.
    pub fn policy(&self) -> DesignationPolicy {
        self.policy
    }

    /// Overrides the per-draw attempt budget of the join-sampling
    /// subroutine.
    pub fn set_max_join_tries(&mut self, tries: u64) {
        self.max_join_tries = tries;
    }
}

impl UnionSampler for BernoulliUnionSampler {
    fn draw(&mut self, rng: &mut SujRng) -> Result<Draw, CoreError> {
        let n_joins = self.workload.n_joins();
        loop {
            if self.cursor >= n_joins {
                self.stall_rounds = if self.fired_this_round {
                    0
                } else {
                    self.stall_rounds + 1
                };
                if self.stall_rounds > 1_000_000 {
                    return Err(CoreError::Invalid(
                        "Bernoulli sampler stalled: all selection probabilities ~ 0".into(),
                    ));
                }
                self.cursor = 0;
                self.fired_this_round = false;
            }
            let j = self.cursor;
            self.cursor += 1;
            if !rng.bernoulli(self.probabilities[j]) {
                continue;
            }
            self.fired_this_round = true;
            self.report.join_draws[j] += 1;
            let start = Instant::now();
            let (t_local, tries) = self.samplers[j].sample_until_accepted(rng, self.max_join_tries);
            self.report.rejected_join += tries.saturating_sub(1);
            let Some(t_local) = t_local else {
                self.report.rejected_time += start.elapsed();
                continue; // join empty or pathological
            };
            let t = self
                .workload
                .to_canonical_into(j, &t_local, &mut self.canon_scratch);
            let accept = match self.policy {
                DesignationPolicy::Oracle => {
                    // Designated join: first (workload order)
                    // containing t.
                    first_containing(self.workload.oracles(), &t)
                        .expect("sampled tuple must belong somewhere")
                        == j
                }
                DesignationPolicy::Record => {
                    // "retained only if it is sampled from the
                    // first join where u was observed" (§3).
                    *self.record.entry(t.clone()).or_insert(j) == j
                }
            };
            if accept {
                let idx = self.emitted;
                self.emitted += 1;
                self.report.accepted += 1;
                self.report.accepted_time += start.elapsed();
                return Ok(Draw::Tuple(idx, t));
            } else {
                self.report.rejected_cover += 1;
                self.report.rejected_time += start.elapsed();
            }
        }
    }

    fn report(&self) -> &RunReport {
        &self.report
    }

    fn report_mut(&mut self) -> &mut RunReport {
        &mut self.report
    }

    fn emitted(&self) -> u64 {
        self.emitted
    }

    fn workload(&self) -> &Arc<UnionWorkload> {
        &self.workload
    }

    fn may_retract(&self) -> bool {
        false // designation rejects new draws, never withdraws old ones
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::full_join_union;
    use suj_storage::{FxHashMap, Relation, Schema, Value};

    fn rel(name: &str, attrs: &[&str], rows: Vec<Vec<i64>>) -> Arc<Relation> {
        let schema = Schema::new(attrs.iter().copied()).unwrap();
        let tuples = rows
            .into_iter()
            .map(|vals| vals.into_iter().map(Value::int).collect())
            .collect();
        Arc::new(Relation::new(name, schema, tuples).unwrap())
    }

    fn workload() -> Arc<UnionWorkload> {
        let j1 = suj_join::JoinSpec::chain(
            "j1",
            vec![
                rel(
                    "r1",
                    &["a", "b"],
                    vec![vec![1, 10], vec![2, 10], vec![3, 20], vec![4, 20]],
                ),
                rel("s1", &["b", "c"], vec![vec![10, 100], vec![20, 200]]),
            ],
        )
        .unwrap();
        let j2 = suj_join::JoinSpec::chain(
            "j2",
            vec![
                rel(
                    "r2",
                    &["a", "b"],
                    vec![vec![1, 10], vec![9, 90], vec![8, 90]],
                ),
                rel("s2", &["b", "c"], vec![vec![10, 100], vec![90, 900]]),
            ],
        )
        .unwrap();
        Arc::new(UnionWorkload::new(vec![Arc::new(j1), Arc::new(j2)]).unwrap())
    }

    #[test]
    fn uniform_over_set_union() {
        let w = workload();
        let exact = full_join_union(&w).unwrap();
        let sizes: Vec<f64> = (0..2).map(|j| exact.join_size(j) as f64).collect();
        let mut sampler = BernoulliUnionSampler::new(
            w.clone(),
            &sizes,
            exact.union_size() as f64,
            WeightKind::Exact,
        )
        .unwrap();
        let mut rng = SujRng::seed_from_u64(55);
        let universe: Vec<Tuple> = exact.union_set.iter().cloned().collect();
        let n = 3_000 * universe.len();
        let (samples, report) = sampler.sample(n, &mut rng).unwrap();
        assert_eq!(samples.len(), n);
        assert!(report.rejected_cover > 0, "overlap must cause rejections");

        let mut counts: FxHashMap<Tuple, u64> = FxHashMap::default();
        for t in &samples {
            assert!(exact.union_set.contains(t));
            *counts.entry(t.clone()).or_insert(0) += 1;
        }
        let observed: Vec<u64> = universe
            .iter()
            .map(|t| counts.get(t).copied().unwrap_or(0))
            .collect();
        let outcome = suj_stats::chi_square_test(&observed).unwrap();
        assert!(outcome.p_value > 0.001, "p = {}", outcome.p_value);
    }

    #[test]
    fn rejection_rate_grows_with_overlap() {
        // Compare a disjoint workload with a fully-overlapping one.
        let w_overlap = {
            let mk = |n: &str| {
                suj_join::JoinSpec::chain(
                    n,
                    vec![
                        rel(
                            &format!("{n}_r"),
                            &["a", "b"],
                            vec![vec![1, 10], vec![2, 10]],
                        ),
                        rel(&format!("{n}_s"), &["b", "c"], vec![vec![10, 100]]),
                    ],
                )
                .unwrap()
            };
            Arc::new(UnionWorkload::new(vec![Arc::new(mk("x")), Arc::new(mk("y"))]).unwrap())
        };
        let exact = full_join_union(&w_overlap).unwrap();
        let sizes: Vec<f64> = (0..2).map(|j| exact.join_size(j) as f64).collect();
        let mut sampler = BernoulliUnionSampler::new(
            w_overlap,
            &sizes,
            exact.union_size() as f64,
            WeightKind::Exact,
        )
        .unwrap();
        let mut rng = SujRng::seed_from_u64(66);
        let (_, report) = sampler.sample(2_000, &mut rng).unwrap();
        // Fully-overlapping joins: half of all selections hit the
        // non-designated join.
        let ratio = report.rejected_cover as f64 / (report.rejected_cover + report.accepted) as f64;
        assert!(ratio > 0.3, "expected heavy rejection, got {ratio}");
    }

    #[test]
    fn record_policy_samples_members_and_rejects_duplicates() {
        let w = workload();
        let exact = full_join_union(&w).unwrap();
        let sizes: Vec<f64> = (0..2).map(|j| exact.join_size(j) as f64).collect();
        let mut sampler = BernoulliUnionSampler::with_policy(
            w,
            &sizes,
            exact.union_size() as f64,
            WeightKind::Exact,
            DesignationPolicy::Record,
        )
        .unwrap();
        let mut rng = SujRng::seed_from_u64(77);
        let (samples, report) = sampler.sample(5_000, &mut rng).unwrap();
        assert_eq!(samples.len(), 5_000);
        for t in &samples {
            assert!(exact.union_set.contains(t));
        }
        // The shared tuple must trigger record-based rejections from the
        // non-owning join.
        assert!(report.rejected_cover > 0);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let w = workload();
        assert!(BernoulliUnionSampler::new(w.clone(), &[1.0], 2.0, WeightKind::Exact).is_err());
        assert!(BernoulliUnionSampler::new(w, &[1.0, 1.0], 0.0, WeightKind::Exact).is_err());
    }

    #[test]
    fn per_call_reports_are_deltas() {
        let w = workload();
        let exact = full_join_union(&w).unwrap();
        let sizes: Vec<f64> = (0..2).map(|j| exact.join_size(j) as f64).collect();
        let mut sampler =
            BernoulliUnionSampler::new(w, &sizes, exact.union_size() as f64, WeightKind::Exact)
                .unwrap();
        let mut rng = SujRng::seed_from_u64(88);
        let (_, first) = sampler.sample(100, &mut rng).unwrap();
        let (_, second) = sampler.sample(100, &mut rng).unwrap();
        assert_eq!(first.accepted, 100);
        assert_eq!(second.accepted, 100);
        assert_eq!(sampler.report().accepted, 200);
    }
}
