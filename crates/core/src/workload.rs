//! Union workloads.
//!
//! A [`UnionWorkload`] validates the paper's §2 contract — every join
//! produces "the same output schema … in terms of the number and name of
//! attributes" — and canonicalizes tuple identity across joins: all
//! sampled tuples are re-ordered to the first join's attribute order so
//! that `t.val` comparisons (set-union semantics, Example 3) are
//! positional.

use crate::error::CoreError;
use std::sync::Arc;
use suj_join::{JoinSpec, MembershipOracle};
use suj_storage::{Schema, Tuple, Value};

/// Maximum number of joins in one workload.
///
/// [`UnionWorkload::membership_mask`] packs membership into a `u32`
/// and [`OverlapMap`](crate::overlap::OverlapMap) allocates `2^n`
/// subset entries; beyond this cap masks would silently truncate and
/// the allocation would overflow, so construction rejects larger
/// workloads with [`CoreError::TooManyJoins`].
pub const MAX_JOINS: usize = 29;

/// A set of joins with a common output schema, canonicalized.
#[derive(Debug, Clone)]
pub struct UnionWorkload {
    joins: Vec<Arc<JoinSpec>>,
    canonical: Schema,
    /// Per join: `projections[j][k]` = local output position of canonical
    /// attribute `k`.
    projections: Vec<Vec<usize>>,
    oracles: Vec<Arc<MembershipOracle>>,
}

impl UnionWorkload {
    /// Builds a workload; all joins must cover the same attribute set.
    /// The canonical order is the first join's output order.
    pub fn new(joins: Vec<Arc<JoinSpec>>) -> Result<Self, CoreError> {
        if joins.is_empty() {
            return Err(CoreError::NoJoins);
        }
        if joins.len() > MAX_JOINS {
            return Err(CoreError::TooManyJoins {
                got: joins.len(),
                max: MAX_JOINS,
            });
        }
        let canonical = joins[0].output_schema().clone();
        let mut projections = Vec::with_capacity(joins.len());
        let mut oracles = Vec::with_capacity(joins.len());
        for j in &joins {
            let proj = j
                .projection_from(&canonical)
                .map_err(|_| CoreError::SchemaMismatch {
                    join: j.name().to_string(),
                })?;
            projections.push(proj);
            oracles.push(Arc::new(
                MembershipOracle::new(j, &canonical).map_err(CoreError::Join)?,
            ));
        }
        Ok(Self {
            joins,
            canonical,
            projections,
            oracles,
        })
    }

    /// Number of joins.
    pub fn n_joins(&self) -> usize {
        self.joins.len()
    }

    /// All joins.
    pub fn joins(&self) -> &[Arc<JoinSpec>] {
        &self.joins
    }

    /// Join `j`.
    pub fn join(&self, j: usize) -> &Arc<JoinSpec> {
        &self.joins[j]
    }

    /// The canonical output schema (the first join's order).
    pub fn canonical_schema(&self) -> &Schema {
        &self.canonical
    }

    /// Re-orders a tuple produced by join `j` (in that join's local
    /// output order) into canonical order. Join 0's tuples pass through
    /// a copy with identical order.
    pub fn to_canonical(&self, j: usize, local: &Tuple) -> Tuple {
        local.project(&self.projections[j])
    }

    /// [`UnionWorkload::to_canonical`] through a reusable scratch
    /// buffer: repeated canonicalizations (one per accepted draw) pay
    /// only the tuple's own allocation.
    pub fn to_canonical_into(&self, j: usize, local: &Tuple, scratch: &mut Vec<Value>) -> Tuple {
        local.project_into(&self.projections[j], scratch)
    }

    /// Membership oracle of join `j` over canonical tuples.
    pub fn oracle(&self, j: usize) -> &Arc<MembershipOracle> {
        &self.oracles[j]
    }

    /// All membership oracles.
    pub fn oracles(&self) -> &[Arc<MembershipOracle>] {
        &self.oracles
    }

    /// Whether canonical tuple `t` belongs to join `j`.
    pub fn contains(&self, j: usize, t: &Tuple) -> bool {
        self.oracles[j].contains(t)
    }

    /// Membership bitmask of a canonical tuple over all joins. Sound
    /// for every constructible workload: `new` caps join counts at
    /// [`MAX_JOINS`], so bit `j` never leaves the `u32`.
    pub fn membership_mask(&self, t: &Tuple) -> u32 {
        let mut mask = 0u32;
        for (j, oracle) in self.oracles.iter().enumerate() {
            if oracle.contains(t) {
                mask |= 1 << j;
            }
        }
        mask
    }

    /// Approximate resident bytes of the workload's base relations
    /// (columns, dictionaries, validity bitmaps). Relations shared by
    /// several joins count once (`Arc` identity deduplicates) — the
    /// prepared-footprint number stamped into
    /// [`RunReport`](crate::report::RunReport)s.
    pub fn memory_bytes(&self) -> usize {
        let mut seen = suj_storage::FxHashSet::default();
        self.joins
            .iter()
            .flat_map(|j| j.relations())
            .filter(|r| seen.insert(Arc::as_ptr(r) as usize))
            .map(|r| r.memory_bytes())
            .sum()
    }

    /// Exact sizes of every join (EW dynamic program; cyclic joins fall
    /// back to full execution). Ground-truth path used by tests and the
    /// EW-instantiated configurations of §9.
    pub fn exact_join_sizes(&self) -> Result<Vec<f64>, CoreError> {
        self.joins
            .iter()
            .map(|j| suj_join::weights::exact_join_size(j).map_err(CoreError::Join))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use suj_storage::{tuple, Relation, Value};

    fn rel(name: &str, attrs: &[&str], rows: Vec<Vec<i64>>) -> Arc<Relation> {
        let schema = Schema::new(attrs.iter().copied()).unwrap();
        let tuples = rows
            .into_iter()
            .map(|vals| vals.into_iter().map(Value::int).collect())
            .collect();
        Arc::new(Relation::new(name, schema, tuples).unwrap())
    }

    /// Two 2-relation joins over (a,b,c) with overlapping data.
    fn two_joins() -> Vec<Arc<JoinSpec>> {
        let j1 = JoinSpec::chain(
            "j1",
            vec![
                rel("r1", &["a", "b"], vec![vec![1, 10], vec![2, 20]]),
                rel("s1", &["b", "c"], vec![vec![10, 100], vec![20, 200]]),
            ],
        )
        .unwrap();
        // Same attribute set, different relation split order.
        let j2 = JoinSpec::chain(
            "j2",
            vec![
                rel("s2", &["c", "b"], vec![vec![100, 10], vec![300, 30]]),
                rel("r2", &["b", "a"], vec![vec![10, 1], vec![30, 3]]),
            ],
        )
        .unwrap();
        vec![Arc::new(j1), Arc::new(j2)]
    }

    #[test]
    fn builds_and_canonicalizes() {
        let w = UnionWorkload::new(two_joins()).unwrap();
        assert_eq!(w.n_joins(), 2);
        // Canonical = j1's order: (a, b, c).
        assert_eq!(
            w.canonical_schema()
                .attrs()
                .iter()
                .map(|a| a.as_ref())
                .collect::<Vec<_>>(),
            vec!["a", "b", "c"]
        );
        // j2's local order is (c, b, a); reprojection must flip it.
        let local = tuple![100i64, 10i64, 1i64];
        let canonical = w.to_canonical(1, &local);
        assert_eq!(canonical, tuple![1i64, 10i64, 100i64]);
    }

    #[test]
    fn membership_and_masks() {
        let w = UnionWorkload::new(two_joins()).unwrap();
        // (1,10,100) is in both joins.
        let both = tuple![1i64, 10i64, 100i64];
        assert!(w.contains(0, &both));
        assert!(w.contains(1, &both));
        assert_eq!(w.membership_mask(&both), 0b11);
        // (2,20,200) only in j1.
        let only1 = tuple![2i64, 20i64, 200i64];
        assert_eq!(w.membership_mask(&only1), 0b01);
        // (3,30,300) only in j2.
        let only2 = tuple![3i64, 30i64, 300i64];
        assert_eq!(w.membership_mask(&only2), 0b10);
        // Absent tuple.
        assert_eq!(w.membership_mask(&tuple![9i64, 9i64, 9i64]), 0);
    }

    #[test]
    fn exact_join_sizes() {
        let w = UnionWorkload::new(two_joins()).unwrap();
        assert_eq!(w.exact_join_sizes().unwrap(), vec![2.0, 2.0]);
    }

    #[test]
    fn rejects_schema_mismatch() {
        let j1 = JoinSpec::natural("a", vec![rel("r", &["x", "y"], vec![])]).unwrap();
        let j2 = JoinSpec::natural("b", vec![rel("s", &["x", "z"], vec![])]).unwrap();
        let err = UnionWorkload::new(vec![Arc::new(j1), Arc::new(j2)]);
        assert!(matches!(err, Err(CoreError::SchemaMismatch { .. })));
    }

    #[test]
    fn rejects_more_than_max_joins() {
        // One shared relation, MAX_JOINS + 1 single-relation joins:
        // legal schemas, illegal cardinality.
        let r = rel("r", &["a"], vec![vec![1]]);
        let joins: Vec<Arc<JoinSpec>> = (0..=MAX_JOINS)
            .map(|i| Arc::new(JoinSpec::natural(format!("j{i}"), vec![r.clone()]).unwrap()))
            .collect();
        assert!(matches!(
            UnionWorkload::new(joins.clone()),
            Err(CoreError::TooManyJoins {
                got,
                max: MAX_JOINS,
            }) if got == MAX_JOINS + 1
        ));
        // Exactly MAX_JOINS still builds, and masks stay sound.
        let w = UnionWorkload::new(joins[..MAX_JOINS].to_vec()).unwrap();
        assert_eq!(w.membership_mask(&tuple![1i64]), (1u32 << MAX_JOINS) - 1);
    }

    #[test]
    fn rejects_empty() {
        assert!(matches!(
            UnionWorkload::new(vec![]),
            Err(CoreError::NoJoins)
        ));
    }
}
