//! The serving entry point: a relation [`Catalog`], the planning
//! [`Engine`], and shareable [`PreparedQuery`] plans.
//!
//! This is the declarative counterpart to
//! [`SamplerBuilder`]: register
//! relations once (in memory, from CSV, or imported from a generated
//! [`suj_storage::Catalog`]), describe a
//! [`UnionQuery`] by relation *name*, and
//! let the engine's [`Planner`] pick the
//! estimator × strategy × cover × predicate-mode configuration.
//!
//! # Concurrency model
//!
//! `Engine` and `PreparedQuery` are `Send + Sync` and designed for
//! serving:
//!
//! * [`Engine::prepare`] returns an `Arc<PreparedQuery>` from a
//!   fingerprint-keyed cache — concurrent `prepare` calls for the same
//!   query against the same catalog snapshot pay planning + parameter
//!   estimation exactly once and share the result.
//! * A `PreparedQuery` is an immutable plan: frozen estimator state and
//!   shared per-join samplers. It mints any number of independent
//!   `Send` sampler handles via [`PreparedQuery::sampler`]; each handle
//!   is its own i.i.d. sampling process, so threads never contend.
//! * Determinism: a handle's output depends only on the frozen state
//!   and the RNG stream it is driven with. [`PreparedQuery::sample`]
//!   derives that stream from `(root seed, request seed)` via
//!   [`SujRng::derive`], so the same request seed reproduces the same
//!   sample on any thread, under any interleaving.
//!
//! ```
//! use suj_core::catalog::{Catalog, Engine};
//! use suj_core::query::UnionQuery;
//! use suj_stats::SujRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut catalog = Catalog::new();
//! catalog.register_csv("items", "sku,cat\n1,7\n2,9\n".as_bytes())?;
//! catalog.register_csv("sales", "sale,sku\n100,1\n101,2\n".as_bytes())?;
//!
//! let query = UnionQuery::set_union().chain("shop", ["items", "sales"])?;
//! let engine = Engine::new(catalog);
//! let prepared = engine.prepare(&query)?;   // plans + estimates once
//! println!("{}", prepared.plan().explain());
//!
//! // Seed-addressed serving: same seed, same sample, any thread.
//! let (samples, _report) = prepared.sample(2, 7)?;
//! assert_eq!(samples, prepared.sample(2, 7)?.0);
//!
//! // Or drive a minted handle with your own RNG.
//! let mut handle = prepared.sampler(7)?;
//! let mut rng = SujRng::seed_from_u64(7);
//! let (samples, _report) = handle.sample(2, &mut rng)?;
//! assert_eq!(samples.len(), 2);
//! # Ok(())
//! # }
//! ```

use crate::error::CoreError;
use crate::planner::{Plan, Planner};
use crate::query::UnionQuery;
use crate::report::RunReport;
use crate::sampler::UnionSampler;
use crate::session::{PreparedSampler, SamplerBuilder};
use crate::workload::UnionWorkload;
use std::io::Read;
use std::sync::{Arc, Mutex, MutexGuard};
use suj_stats::SujRng;
use suj_storage::{read_csv, FxHashMap, Relation, StorageError, Tuple};

/// Locks a mutex, recovering from poisoning (a panicked sampling
/// request must not wedge the whole engine).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A named collection of relations — the "database" union queries are
/// resolved against. Relations are shared (`Arc`), so registering a
/// relation in several catalogs or joins copies nothing.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    relations: FxHashMap<Arc<str>, Arc<Relation>>,
    order: Vec<Arc<str>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a relation under its own name. Fails on duplicates.
    pub fn register(&mut self, relation: Relation) -> Result<Arc<Relation>, CoreError> {
        self.register_arc(Arc::new(relation))
    }

    /// Registers an already-shared relation under its own name.
    pub fn register_arc(&mut self, relation: Arc<Relation>) -> Result<Arc<Relation>, CoreError> {
        let name: Arc<str> = Arc::from(relation.name());
        if self.relations.contains_key(&name) {
            return Err(CoreError::Storage(StorageError::DuplicateRelation(
                name.to_string(),
            )));
        }
        self.relations.insert(name.clone(), relation.clone());
        self.order.push(name);
        Ok(relation)
    }

    /// Loads a relation from CSV (header row = schema; §4's
    /// decentralized data-market setting usually means delimited files)
    /// and registers it under `name`.
    ///
    /// Records stream straight into typed
    /// [`ColumnBuilder`](suj_storage::ColumnBuilder)s — the file is
    /// never buffered as tuples. Each field is inferred in the fixed
    /// order **Int → Float → Str**, with the **empty field as NULL**;
    /// a column whose fields infer to different variants falls back to
    /// the mixed layout, so any input loads losslessly.
    pub fn register_csv(
        &mut self,
        name: impl AsRef<str>,
        reader: impl Read,
    ) -> Result<Arc<Relation>, CoreError> {
        let relation = read_csv(name, reader).map_err(CoreError::Storage)?;
        self.register(relation)
    }

    /// Imports every relation of a storage-layer catalog (e.g. the
    /// TPC-H generator's output); names must not collide with existing
    /// registrations. Returns how many relations were added.
    pub fn import(&mut self, source: &suj_storage::Catalog) -> Result<usize, CoreError> {
        let names: Vec<String> = source.names().map(String::from).collect();
        for name in &names {
            if self.contains(name) {
                return Err(CoreError::Storage(StorageError::DuplicateRelation(
                    name.clone(),
                )));
            }
        }
        for name in &names {
            let rel = source.get(name).map_err(CoreError::Storage)?;
            self.register_arc(rel)?;
        }
        Ok(names.len())
    }

    /// Looks up a relation by name.
    pub fn get(&self, name: &str) -> Result<Arc<Relation>, CoreError> {
        self.relations
            .get(name)
            .cloned()
            .ok_or_else(|| CoreError::Storage(StorageError::UnknownRelation(name.to_string())))
    }

    /// Whether a relation is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.order.iter().map(|n| n.as_ref())
    }

    /// Number of registered relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Total rows across all relations.
    pub fn total_rows(&self) -> usize {
        self.relations.values().map(|r| r.len()).sum()
    }
}

/// One cache slot: filled by the first successful prepare of its
/// fingerprint, then shared.
type CacheSlot = Arc<Mutex<Option<Arc<PreparedQuery>>>>;

/// The fingerprint-keyed prepared-query cache. The key is the full
/// canonical fingerprint string (not its hash), so distinct queries can
/// never collide into one slot. Slots are two-level so concurrent
/// `prepare` calls for the *same* query serialize on their slot (the
/// second caller waits and receives the first caller's result —
/// estimation is paid once) while different queries prepare in
/// parallel. Cloned engines share the cache.
#[derive(Debug, Clone, Default)]
struct PreparedCache {
    slots: Arc<Mutex<FxHashMap<String, CacheSlot>>>,
}

impl PreparedCache {
    fn slot(&self, fingerprint: &str) -> CacheSlot {
        lock(&self.slots)
            .entry(fingerprint.to_string())
            .or_default()
            .clone()
    }

    /// Drops a slot that was created for a prepare that failed, so an
    /// ongoing stream of invalid queries cannot grow the map. Only
    /// removes the entry while it is still empty (a concurrent
    /// successful fill of the same query keeps its slot).
    fn discard_if_empty(&self, fingerprint: &str) {
        let mut slots = lock(&self.slots);
        if let Some(slot) = slots.get(fingerprint) {
            if lock(slot).is_none() {
                slots.remove(fingerprint);
            }
        }
    }

    fn len(&self) -> usize {
        lock(&self.slots)
            .values()
            .filter(|slot| lock(slot).is_some())
            .count()
    }

    /// Every filled slot, sorted by fingerprint so callers iterating
    /// the cache (snapshot serialization) see a deterministic order.
    fn entries(&self) -> Vec<(String, Arc<PreparedQuery>)> {
        let mut out: Vec<(String, Arc<PreparedQuery>)> = lock(&self.slots)
            .iter()
            .filter_map(|(fp, slot)| lock(slot).as_ref().map(|p| (fp.clone(), p.clone())))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

/// Catalog + planner: resolves declarative queries, plans their
/// configuration, and builds ready-to-serve samplers.
///
/// `Engine` is `Send + Sync`: all serving entry points take `&self`, so
/// one engine (or clones of it, which share the prepared-query cache)
/// can serve every worker thread. The catalog behaves as a snapshot:
/// relations are append-only and shared by `Arc`, so a prepared query
/// stays valid for the data it was planned against even while new
/// relations are registered.
#[derive(Debug, Clone, Default)]
pub struct Engine {
    catalog: Catalog,
    planner: Planner,
    cache: PreparedCache,
}

impl Engine {
    /// An engine over a catalog, with default planner thresholds.
    pub fn new(catalog: Catalog) -> Self {
        Self {
            catalog,
            planner: Planner::default(),
            cache: PreparedCache::default(),
        }
    }

    /// An engine with explicit planner thresholds.
    pub fn with_planner(catalog: Catalog, planner: Planner) -> Self {
        Self {
            catalog,
            planner,
            cache: PreparedCache::default(),
        }
    }

    /// The catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable catalog access (register more relations). Requires
    /// exclusive access; already-prepared queries keep serving their
    /// snapshot of the data.
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// The planner.
    pub fn planner(&self) -> &Planner {
        &self.planner
    }

    /// Resolves and plans a query without building a sampler — the
    /// `EXPLAIN` path: cheap statistics only, no parameter estimation.
    pub fn plan(&self, query: &UnionQuery) -> Result<Plan, CoreError> {
        Ok(self.planner.plan_query(&query.resolve(&self.catalog)?))
    }

    /// Identity of a query against this engine: the declarative shape
    /// plus the *data* it resolves to (relation `Arc` pointers — two
    /// queries naming the same relations of the same catalog snapshot
    /// coincide; re-registered data does not) plus the planner
    /// thresholds. The full string is the cache key, so distinct
    /// queries can never alias.
    fn fingerprint(&self, query: &UnionQuery) -> String {
        use std::fmt::Write;
        let mut key = format!("{query:?}|{:?}|", self.planner);
        for def in query.joins() {
            for name in def.relations() {
                match self.catalog.get(name) {
                    Ok(rel) => {
                        let _ = write!(key, "{:p},", Arc::as_ptr(&rel));
                    }
                    // Unknown relation: mark it; the actual prepare
                    // reports the real error (and errors are never
                    // cached).
                    Err(_) => key.push_str("?,"),
                }
            }
        }
        key
    }

    /// Resolves, plans, and estimates a query, returning a shareable
    /// [`PreparedQuery`] from the engine's fingerprint-keyed cache.
    ///
    /// Concurrent calls for the same query serialize on the query's
    /// cache slot: the first pays planning + estimation, the rest
    /// receive the same `Arc`. Errors are not cached — a failed prepare
    /// is retried by the next caller, and its slot is reclaimed.
    pub fn prepare(&self, query: &UnionQuery) -> Result<Arc<PreparedQuery>, CoreError> {
        let fingerprint = self.fingerprint(query);
        let slot = self.cache.slot(&fingerprint);
        let result = {
            let mut guard = lock(&slot);
            if let Some(prepared) = guard.as_ref() {
                return Ok(prepared.clone());
            }
            self.prepare_uncached(query).map(|prepared| {
                let prepared = Arc::new(prepared);
                *guard = Some(prepared.clone());
                prepared
            })
        };
        if result.is_err() {
            // Reclaim the empty slot so streams of invalid queries
            // cannot grow the cache (the guard is released above).
            self.cache.discard_if_empty(&fingerprint);
        }
        result
    }

    /// [`prepare`](Self::prepare) without consulting or filling the
    /// cache — pays planning and estimation unconditionally.
    pub fn prepare_uncached(&self, query: &UnionQuery) -> Result<PreparedQuery, CoreError> {
        let resolved = query.resolve(&self.catalog)?;
        let plan = self.planner.plan_query(&resolved);
        let mut builder = plan.apply(SamplerBuilder::for_workload(resolved.workload));
        if let (Some(p), Some(mode)) = (resolved.predicate, plan.predicate_mode) {
            builder = builder.predicate(p, mode);
        }
        let prepared = builder.freeze()?.with_summary(plan.summary());
        Ok(PreparedQuery::from_query_parts(
            query.clone(),
            plan,
            prepared,
        ))
    }

    /// Prepared queries currently cached.
    pub fn cached_queries(&self) -> usize {
        self.cache.len()
    }

    /// Every cached prepared query with its fingerprint, sorted by
    /// fingerprint (deterministic snapshot serialization order).
    pub(crate) fn cached_entries(&self) -> Vec<(String, Arc<PreparedQuery>)> {
        self.cache.entries()
    }

    /// Installs an externally restored prepared query into the cache
    /// under its query's fingerprint against *this* engine's catalog
    /// (relation `Arc` pointers are recomputed, so a restored replica
    /// fingerprints consistently with its own `prepare` calls). An
    /// already-filled slot is left as is.
    pub(crate) fn install_prepared(&self, query: &UnionQuery, prepared: Arc<PreparedQuery>) {
        let fingerprint = self.fingerprint(query);
        let slot = self.cache.slot(&fingerprint);
        let mut guard = lock(&slot);
        if guard.is_none() {
            *guard = Some(prepared);
        }
    }

    /// One-shot convenience: prepare (cached), then draw `n` samples.
    pub fn run(
        &self,
        query: &UnionQuery,
        n: usize,
        rng: &mut SujRng,
    ) -> Result<(Vec<Tuple>, RunReport), CoreError> {
        self.prepare(query)?.run(n, rng)
    }
}

/// A planned, estimated, ready-to-serve query.
///
/// Overlap maps, covers, estimator state, and the per-join weight
/// precomputation were paid once at [`Engine::prepare`] time and are
/// frozen — `PreparedQuery` is `Send + Sync` and meant to be shared as
/// `Arc<PreparedQuery>` across every serving thread. Threads draw by
/// minting independent handles ([`sampler`](Self::sampler)) or through
/// the seed-addressed conveniences ([`sample`](Self::sample),
/// [`run`](Self::run)); per-handle reports fold into a cumulative
/// aggregate readable via [`report`](Self::report).
pub struct PreparedQuery {
    plan: Plan,
    prepared: PreparedSampler,
    /// The declarative query this plan was prepared from, when it came
    /// through the engine — retained so snapshots can persist and
    /// re-fingerprint it ([`auto`](Self::auto) plans have none).
    source: Option<UnionQuery>,
    aggregate: Mutex<RunReport>,
}

impl std::fmt::Debug for PreparedQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedQuery")
            .field("plan", &self.plan.summary())
            .field("estimations", &self.estimations())
            .field("handles", &self.handles())
            .finish_non_exhaustive()
    }
}

impl PreparedQuery {
    /// Assembles a prepared query from a plan and a frozen pipeline
    /// (the engine's path; [`auto`](Self::auto) is the catalog-free
    /// one).
    pub fn from_parts(plan: Plan, prepared: PreparedSampler) -> Self {
        let mut aggregate = RunReport::new(prepared.workload().n_joins());
        aggregate.config = Some(prepared.summary().clone());
        Self {
            plan,
            prepared,
            source: None,
            aggregate: Mutex::new(aggregate),
        }
    }

    /// [`from_parts`](Self::from_parts), additionally retaining the
    /// declarative query the plan came from (snapshot persistence).
    pub(crate) fn from_query_parts(
        query: UnionQuery,
        plan: Plan,
        prepared: PreparedSampler,
    ) -> Self {
        let mut out = Self::from_parts(plan, prepared);
        out.source = Some(query);
        out
    }

    /// The declarative query this plan was prepared from, when known.
    pub(crate) fn source_query(&self) -> Option<&UnionQuery> {
        self.source.as_ref()
    }

    /// The frozen pipeline (snapshot serialization).
    pub(crate) fn prepared(&self) -> &PreparedSampler {
        &self.prepared
    }

    /// Plans and freezes a set-union workload with the default planner
    /// — the catalog-free entry point benches and embedded callers use
    /// to get a shareable `PreparedQuery` straight from a
    /// [`UnionWorkload`].
    pub fn auto(workload: Arc<UnionWorkload>) -> Result<Self, CoreError> {
        let plan = Planner::default().plan(&workload, crate::query::UnionSemantics::Set);
        let prepared = plan
            .apply(SamplerBuilder::for_workload(workload))
            .freeze()?
            .with_summary(plan.summary());
        Ok(Self::from_parts(plan, prepared))
    }

    /// The configuration the planner selected.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// [`Plan::explain`] for this query.
    pub fn explain(&self) -> String {
        self.plan.explain()
    }

    /// The resolved configuration summary stamped at freeze time —
    /// including provenance (rule, size provenance) that a summary
    /// recomputed from [`Self::plan`] cannot always re-derive after a
    /// snapshot restore (frozen stats carry no histogram map). This is
    /// the same summary every [`RunReport`] from this query carries in
    /// its `config`.
    pub fn summary(&self) -> &crate::report::PlanSummary {
        self.prepared.summary()
    }

    /// The workload being sampled (after any predicate push-down).
    pub fn workload(&self) -> &Arc<UnionWorkload> {
        self.prepared.workload()
    }

    /// Mints an independent `Send` sampler handle over the frozen
    /// state; `seed` names the handle's RNG stream. Minting is cheap
    /// and re-estimates nothing (exception: an online plan estimates
    /// per handle *by design* — see [`estimations`](Self::estimations));
    /// every handle is a fresh i.i.d. sampling process, safe to use
    /// concurrently with any number of sibling handles.
    ///
    /// The handle itself carries no mint-time randomness: two handles
    /// minted with different seeds are identical until driven. The seed
    /// realizes its stream through the paired [`rng(seed)`](Self::rng)
    /// — drive the handle with that RNG (as [`sample`](Self::sample)
    /// and the [`SamplingService`](crate::serve::SamplingService)
    /// workers do) to get the deterministic per-seed output; driving it
    /// with any other RNG is equally valid but keyed by that RNG
    /// instead.
    pub fn sampler(&self, seed: u64) -> Result<Box<dyn UnionSampler + Send>, CoreError> {
        let _ = seed; // stream identity lives in `rng(seed)`; eager strategies carry no mint-time randomness
        self.prepared.instantiate()
    }

    /// The deterministic RNG stream for handle/request `seed`, derived
    /// from the prepared root seed by
    /// [`SujRng::derive`] — independent of
    /// threads, interleaving, and mint order.
    pub fn rng(&self, seed: u64) -> SujRng {
        SujRng::derive(self.prepared.root_seed(), seed)
    }

    /// Seed-addressed sampling: mints a handle, drives it with
    /// [`rng(seed)`](Self::rng), and folds the per-request report into
    /// the cumulative aggregate. Same `(prepared state, n, seed)` →
    /// bit-identical samples, on any thread — the serving determinism
    /// contract.
    pub fn sample(&self, n: usize, seed: u64) -> Result<(Vec<Tuple>, RunReport), CoreError> {
        let mut handle = self.sampler(seed)?;
        let mut rng = self.rng(seed);
        let (tuples, report) = handle.sample(n, &mut rng)?;
        lock(&self.aggregate).merge(&report);
        Ok((tuples, report))
    }

    /// Draws `n` i.i.d. samples with a caller-supplied RNG — the thin
    /// convenience over one minted handle. Reuses the frozen estimator
    /// state (no re-estimation); the returned report covers this call
    /// only.
    pub fn run(&self, n: usize, rng: &mut SujRng) -> Result<(Vec<Tuple>, RunReport), CoreError> {
        let mut handle = self.prepared.instantiate()?;
        let (tuples, report) = handle.sample(n, rng)?;
        lock(&self.aggregate).merge(&report);
        Ok((tuples, report))
    }

    /// Cumulative counters across every [`sample`](Self::sample) /
    /// [`run`](Self::run) on this prepared query (reports of handles
    /// minted via [`sampler`](Self::sampler) are the caller's to
    /// aggregate), including the stamped configuration.
    pub fn report(&self) -> RunReport {
        lock(&self.aggregate).clone()
    }

    /// Parameter-estimation passes paid when this query was prepared
    /// (1, or 0 when the planner's probe already paid it). Constant
    /// afterwards: minting handles and sampling never repeat
    /// prepare-time estimation — the "estimate once, serve many"
    /// assertion for served workloads.
    ///
    /// Exception: plans using [`Strategy::Online`](crate::session::Strategy)
    /// (the no-statistics rule) estimate *while sampling* by design —
    /// Algorithm 2's warm-up and refinement consume each handle's own
    /// RNG stream, so that work is inherently per-handle, is not
    /// counted here, and shows up as `warmup_time` in per-request
    /// reports instead.
    pub fn estimations(&self) -> u64 {
        self.prepared.estimation_passes()
    }

    /// Sampler handles minted so far (via [`sampler`](Self::sampler),
    /// [`sample`](Self::sample), or [`run`](Self::run)).
    pub fn handles(&self) -> u64 {
        self.prepared.minted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::PlanRule;
    use crate::predicate_mode::PredicateMode;
    use suj_storage::{CompareOp, Predicate, Schema, Value};

    fn rel(name: &str, attrs: &[&str], rows: Vec<Vec<i64>>) -> Relation {
        let schema = Schema::new(attrs.iter().copied()).unwrap();
        let tuples = rows
            .into_iter()
            .map(|vals| vals.into_iter().map(Value::int).collect())
            .collect();
        Relation::new(name, schema, tuples).unwrap()
    }

    fn shop_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(rel(
            "a_items",
            &["sku", "cat"],
            vec![vec![1, 7], vec![2, 7], vec![3, 9]],
        ))
        .unwrap();
        c.register(rel(
            "a_sales",
            &["sale", "sku"],
            vec![vec![100, 1], vec![101, 1], vec![102, 2]],
        ))
        .unwrap();
        c.register(rel(
            "b_items",
            &["sku", "cat"],
            vec![vec![1, 7], vec![5, 9]],
        ))
        .unwrap();
        c.register(rel(
            "b_sales",
            &["sale", "sku"],
            vec![vec![100, 1], vec![200, 5]],
        ))
        .unwrap();
        c
    }

    fn shop_query() -> UnionQuery {
        UnionQuery::set_union()
            .chain("shop_a", ["a_items", "a_sales"])
            .unwrap()
            .chain("shop_b", ["b_items", "b_sales"])
            .unwrap()
    }

    #[test]
    fn catalog_registration_and_lookup() {
        let mut c = Catalog::new();
        assert!(c.is_empty());
        c.register(rel("r", &["x"], vec![vec![1]])).unwrap();
        assert!(c.contains("r"));
        assert_eq!(c.len(), 1);
        assert_eq!(c.total_rows(), 1);
        assert_eq!(c.get("r").unwrap().name(), "r");
        assert!(c.get("missing").is_err());
        // Duplicate name rejected.
        assert!(c.register(rel("r", &["x"], vec![])).is_err());
    }

    #[test]
    fn catalog_loads_csv() {
        let mut c = Catalog::new();
        let r = c
            .register_csv("items", "sku,cat\n1,coffee\n2,tea\n".as_bytes())
            .unwrap();
        assert_eq!(r.len(), 2);
        assert!(c.contains("items"));
    }

    #[test]
    fn catalog_imports_storage_catalogs() {
        let mut source = suj_storage::Catalog::new();
        source.register(rel("x", &["a"], vec![vec![1]])).unwrap();
        source.register(rel("y", &["a"], vec![vec![2]])).unwrap();
        let mut c = Catalog::new();
        assert_eq!(c.import(&source).unwrap(), 2);
        assert!(c.contains("x") && c.contains("y"));
        // A second import collides and changes nothing.
        assert!(c.import(&source).is_err());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn engine_plans_without_building() {
        let engine = Engine::new(shop_catalog());
        let plan = engine.plan(&shop_query()).unwrap();
        // Tiny data: exact estimation; overlapping shops: some
        // set-union strategy. The point: planning succeeds and
        // explains itself.
        assert!(plan.explain().contains("rule:"));
    }

    #[test]
    fn prepared_query_runs_and_reuses_state() {
        let engine = Engine::new(shop_catalog());
        let prepared = engine.prepare(&shop_query()).unwrap();
        let exact = crate::exact::full_join_union(prepared.workload()).unwrap();
        let mut rng = SujRng::seed_from_u64(3);
        let (first, report) = prepared.run(10, &mut rng).unwrap();
        assert_eq!(first.len(), 10);
        assert!(report.config.is_some(), "plan summary must be stamped");
        for t in &first {
            assert!(exact.union_set.contains(t));
        }
        // Second run reuses the frozen estimator state (no
        // re-estimation): cumulative report keeps growing, per-run
        // report stays per-run.
        let (second, report2) = prepared.run(5, &mut rng).unwrap();
        assert_eq!(second.len(), 5);
        assert_eq!(report2.accepted, 5);
        assert!(prepared.report().accepted >= 15);
        assert_eq!(report2.config, report.config);
        // Estimation was paid at prepare time, once; runs only minted
        // handles.
        assert!(prepared.estimations() <= 1);
        assert_eq!(prepared.handles(), 2);
        assert_eq!(report2.warmup_time, std::time::Duration::ZERO);
    }

    #[test]
    fn prepare_is_cached_by_fingerprint() {
        let engine = Engine::new(shop_catalog());
        assert_eq!(engine.cached_queries(), 0);
        let a = engine.prepare(&shop_query()).unwrap();
        let b = engine.prepare(&shop_query()).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same query must share one plan");
        assert_eq!(engine.cached_queries(), 1);
        // A different query gets its own slot…
        let other = UnionQuery::set_union()
            .chain("only_a", ["a_items", "a_sales"])
            .unwrap();
        let c = engine.prepare(&other).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(engine.cached_queries(), 2);
        // …and clones share the cache.
        let clone = engine.clone();
        let d = clone.prepare(&shop_query()).unwrap();
        assert!(Arc::ptr_eq(&a, &d));
        // prepare_uncached always pays again.
        let fresh = engine.prepare_uncached(&shop_query()).unwrap();
        assert_eq!(fresh.handles(), 0);
    }

    #[test]
    fn prepare_errors_are_not_cached() {
        let mut engine = Engine::new(shop_catalog());
        let query = UnionQuery::set_union()
            .chain("j", ["a_items", "missing"])
            .unwrap();
        assert!(engine.prepare(&query).is_err());
        assert_eq!(engine.cached_queries(), 0);
        // Registering the missing relation afterwards lets the same
        // query prepare (the failed attempt left nothing poisoned).
        engine
            .catalog_mut()
            .register(rel("missing", &["sale", "sku"], vec![vec![5, 1]]))
            .unwrap();
        assert!(engine.prepare(&query).is_ok());
    }

    #[test]
    fn minted_handles_are_independent_and_deterministic() {
        let engine = Engine::new(shop_catalog());
        let prepared = engine.prepare(&shop_query()).unwrap();
        // Same seed → bit-identical samples; the aggregate keeps
        // growing.
        let (a, _) = prepared.sample(12, 9).unwrap();
        let (b, _) = prepared.sample(12, 9).unwrap();
        assert_eq!(a, b);
        let (c, _) = prepared.sample(12, 10).unwrap();
        assert_ne!(a, c, "different request seeds must differ");
        // A manually minted handle driven with rng(seed) replays
        // sample(n, seed).
        let mut handle = prepared.sampler(9).unwrap();
        let mut rng = prepared.rng(9);
        let (d, _) = handle.sample(12, &mut rng).unwrap();
        assert_eq!(a, d);
        assert!(prepared.report().accepted >= 36);
    }

    #[test]
    fn prepared_query_is_shareable_across_threads() {
        let engine = Engine::new(shop_catalog());
        let prepared = engine.prepare(&shop_query()).unwrap();
        let estimations = prepared.estimations();
        let mut expected: Vec<Vec<Tuple>> = Vec::new();
        for seed in 0..4u64 {
            expected.push(prepared.sample(8, seed).unwrap().0);
        }
        let results: Vec<Vec<Tuple>> = std::thread::scope(|scope| {
            (0..4u64)
                .map(|seed| {
                    let prepared = prepared.clone();
                    scope.spawn(move || prepared.sample(8, seed).unwrap().0)
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert_eq!(results, expected, "thread interleaving must not matter");
        assert_eq!(
            prepared.estimations(),
            estimations,
            "sampling must never re-estimate"
        );
    }

    #[test]
    fn engine_one_shot_run() {
        let engine = Engine::new(shop_catalog());
        let mut rng = SujRng::seed_from_u64(4);
        let (samples, report) = engine.run(&shop_query(), 6, &mut rng).unwrap();
        assert_eq!(samples.len(), 6);
        assert!(report.config.is_some());
    }

    #[test]
    fn disjoint_query_plans_disjoint_sampling() {
        let query = UnionQuery::disjoint_union()
            .chain("shop_a", ["a_items", "a_sales"])
            .unwrap()
            .chain("shop_b", ["b_items", "b_sales"])
            .unwrap();
        let engine = Engine::new(shop_catalog());
        let plan = engine.plan(&query).unwrap();
        assert_eq!(plan.rule, PlanRule::DisjointSemantics);
        let mut rng = SujRng::seed_from_u64(5);
        let (samples, _) = engine.run(&query, 8, &mut rng).unwrap();
        assert_eq!(samples.len(), 8);
    }

    #[test]
    fn predicate_mode_planned_and_applied() {
        // Conjunctive comparison → push-down.
        let q = shop_query().predicate(Predicate::cmp("cat", CompareOp::Le, Value::int(7)));
        let engine = Engine::new(shop_catalog());
        let plan = engine.plan(&q).unwrap();
        assert_eq!(plan.predicate_mode, Some(PredicateMode::PushDown));
        let mut rng = SujRng::seed_from_u64(6);
        let (samples, _) = engine.run(&q, 12, &mut rng).unwrap();
        let prepared = engine.prepare(&q).unwrap();
        let compiled = Predicate::cmp("cat", CompareOp::Le, Value::int(7))
            .compile(prepared.workload().canonical_schema())
            .unwrap();
        for t in &samples {
            assert!(compiled.eval(t));
        }

        // Non-decomposable predicate → reject-during-sampling.
        let q = shop_query().predicate(Predicate::Not(Box::new(Predicate::cmp(
            "cat",
            CompareOp::Gt,
            Value::int(7),
        ))));
        let plan = engine.plan(&q).unwrap();
        assert_eq!(plan.predicate_mode, Some(PredicateMode::Reject));

        // A pinned mode wins over the planner.
        let q = shop_query()
            .predicate(Predicate::cmp("cat", CompareOp::Le, Value::int(7)))
            .predicate_mode(PredicateMode::Reject);
        let plan = engine.plan(&q).unwrap();
        assert_eq!(plan.predicate_mode, Some(PredicateMode::Reject));
    }
}
