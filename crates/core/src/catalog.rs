//! The serving entry point: a relation [`Catalog`], the planning
//! [`Engine`], and reusable [`PreparedQuery`] handles.
//!
//! This is the declarative counterpart to
//! [`SamplerBuilder`]: register
//! relations once (in memory, from CSV, or imported from a generated
//! [`suj_storage::Catalog`]), describe a
//! [`UnionQuery`] by relation *name*, and
//! let the engine's [`Planner`] pick the
//! estimator × strategy × cover × predicate-mode configuration.
//! Preparing a query pays parameter estimation once; every subsequent
//! [`PreparedQuery::run`] reuses the cached overlap/estimator state,
//! which is what a served workload wants.
//!
//! ```
//! use suj_core::catalog::{Catalog, Engine};
//! use suj_core::query::UnionQuery;
//! use suj_stats::SujRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut catalog = Catalog::new();
//! catalog.register_csv("items", "sku,cat\n1,7\n2,9\n".as_bytes())?;
//! catalog.register_csv("sales", "sale,sku\n100,1\n101,2\n".as_bytes())?;
//!
//! let query = UnionQuery::set_union().chain("shop", ["items", "sales"])?;
//! let engine = Engine::new(catalog);
//! let mut prepared = engine.prepare(&query)?;   // plans + estimates once
//! println!("{}", prepared.plan().explain());
//!
//! let mut rng = SujRng::seed_from_u64(7);
//! let (samples, _report) = prepared.run(2, &mut rng)?; // reuses state
//! assert_eq!(samples.len(), 2);
//! # Ok(())
//! # }
//! ```

use crate::error::CoreError;
use crate::planner::{Plan, Planner};
use crate::query::UnionQuery;
use crate::report::RunReport;
use crate::sampler::UnionSampler;
use crate::session::SamplerBuilder;
use crate::workload::UnionWorkload;
use std::io::Read;
use std::sync::Arc;
use suj_stats::SujRng;
use suj_storage::{read_csv, FxHashMap, Relation, StorageError, Tuple};

/// A named collection of relations — the "database" union queries are
/// resolved against. Relations are shared (`Arc`), so registering a
/// relation in several catalogs or joins copies nothing.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    relations: FxHashMap<Arc<str>, Arc<Relation>>,
    order: Vec<Arc<str>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a relation under its own name. Fails on duplicates.
    pub fn register(&mut self, relation: Relation) -> Result<Arc<Relation>, CoreError> {
        self.register_arc(Arc::new(relation))
    }

    /// Registers an already-shared relation under its own name.
    pub fn register_arc(&mut self, relation: Arc<Relation>) -> Result<Arc<Relation>, CoreError> {
        let name: Arc<str> = Arc::from(relation.name());
        if self.relations.contains_key(&name) {
            return Err(CoreError::Storage(StorageError::DuplicateRelation(
                name.to_string(),
            )));
        }
        self.relations.insert(name.clone(), relation.clone());
        self.order.push(name);
        Ok(relation)
    }

    /// Loads a relation from CSV (header row = schema; §4's
    /// decentralized data-market setting usually means delimited files)
    /// and registers it under `name`.
    pub fn register_csv(
        &mut self,
        name: impl AsRef<str>,
        reader: impl Read,
    ) -> Result<Arc<Relation>, CoreError> {
        let relation = read_csv(name, reader).map_err(CoreError::Storage)?;
        self.register(relation)
    }

    /// Imports every relation of a storage-layer catalog (e.g. the
    /// TPC-H generator's output); names must not collide with existing
    /// registrations. Returns how many relations were added.
    pub fn import(&mut self, source: &suj_storage::Catalog) -> Result<usize, CoreError> {
        let names: Vec<String> = source.names().map(String::from).collect();
        for name in &names {
            if self.contains(name) {
                return Err(CoreError::Storage(StorageError::DuplicateRelation(
                    name.clone(),
                )));
            }
        }
        for name in &names {
            let rel = source.get(name).map_err(CoreError::Storage)?;
            self.register_arc(rel)?;
        }
        Ok(names.len())
    }

    /// Looks up a relation by name.
    pub fn get(&self, name: &str) -> Result<Arc<Relation>, CoreError> {
        self.relations
            .get(name)
            .cloned()
            .ok_or_else(|| CoreError::Storage(StorageError::UnknownRelation(name.to_string())))
    }

    /// Whether a relation is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.order.iter().map(|n| n.as_ref())
    }

    /// Number of registered relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Total rows across all relations.
    pub fn total_rows(&self) -> usize {
        self.relations.values().map(|r| r.len()).sum()
    }
}

/// Catalog + planner: resolves declarative queries, plans their
/// configuration, and builds ready-to-serve samplers.
#[derive(Debug, Clone, Default)]
pub struct Engine {
    catalog: Catalog,
    planner: Planner,
}

impl Engine {
    /// An engine over a catalog, with default planner thresholds.
    pub fn new(catalog: Catalog) -> Self {
        Self {
            catalog,
            planner: Planner::default(),
        }
    }

    /// An engine with explicit planner thresholds.
    pub fn with_planner(catalog: Catalog, planner: Planner) -> Self {
        Self { catalog, planner }
    }

    /// The catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable catalog access (register more relations).
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// The planner.
    pub fn planner(&self) -> &Planner {
        &self.planner
    }

    /// Resolves and plans a query without building a sampler — the
    /// `EXPLAIN` path: cheap statistics only, no parameter estimation.
    pub fn plan(&self, query: &UnionQuery) -> Result<Plan, CoreError> {
        Ok(self.planner.plan_query(&query.resolve(&self.catalog)?))
    }

    /// Resolves, plans, estimates, and assembles a sampler; the
    /// returned [`PreparedQuery`] serves repeated
    /// [`run`](PreparedQuery::run) calls from the estimator state paid
    /// for here.
    pub fn prepare(&self, query: &UnionQuery) -> Result<PreparedQuery, CoreError> {
        let resolved = query.resolve(&self.catalog)?;
        let plan = self.planner.plan_query(&resolved);
        let mut builder = plan.apply(SamplerBuilder::for_workload(resolved.workload));
        if let (Some(p), Some(mode)) = (resolved.predicate, plan.predicate_mode) {
            builder = builder.predicate(p, mode);
        }
        let mut sampler = builder.build()?;
        sampler.report_mut().config = Some(plan.summary());
        Ok(PreparedQuery { plan, sampler })
    }

    /// One-shot convenience: prepare, then draw `n` samples.
    pub fn run(
        &self,
        query: &UnionQuery,
        n: usize,
        rng: &mut SujRng,
    ) -> Result<(Vec<Tuple>, RunReport), CoreError> {
        self.prepare(query)?.run(n, rng)
    }
}

/// A planned, estimated, ready-to-serve query: overlap maps, covers,
/// and estimator state were computed once at
/// [`Engine::prepare`] time and are reused by every `run`.
pub struct PreparedQuery {
    plan: Plan,
    sampler: Box<dyn UnionSampler>,
}

impl PreparedQuery {
    /// The configuration the planner selected.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// [`Plan::explain`] for this query.
    pub fn explain(&self) -> String {
        self.plan.explain()
    }

    /// The workload being sampled.
    pub fn workload(&self) -> &Arc<UnionWorkload> {
        self.sampler.workload()
    }

    /// Cumulative counters across all runs (including the stamped
    /// configuration).
    pub fn report(&self) -> &RunReport {
        self.sampler.report()
    }

    /// Draws `n` i.i.d. samples, reusing the cached estimator state;
    /// the returned report covers this call only.
    pub fn run(
        &mut self,
        n: usize,
        rng: &mut SujRng,
    ) -> Result<(Vec<Tuple>, RunReport), CoreError> {
        self.sampler.sample(n, rng)
    }

    /// The underlying sampler, for incremental consumption via
    /// [`SampleStream`](crate::stream::SampleStream) or raw
    /// [`draw`](UnionSampler::draw) events.
    pub fn sampler_mut(&mut self) -> &mut dyn UnionSampler {
        &mut *self.sampler
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::PlanRule;
    use crate::predicate_mode::PredicateMode;
    use suj_storage::{CompareOp, Predicate, Schema, Value};

    fn rel(name: &str, attrs: &[&str], rows: Vec<Vec<i64>>) -> Relation {
        let schema = Schema::new(attrs.iter().copied()).unwrap();
        let tuples = rows
            .into_iter()
            .map(|vals| vals.into_iter().map(Value::int).collect())
            .collect();
        Relation::new(name, schema, tuples).unwrap()
    }

    fn shop_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(rel(
            "a_items",
            &["sku", "cat"],
            vec![vec![1, 7], vec![2, 7], vec![3, 9]],
        ))
        .unwrap();
        c.register(rel(
            "a_sales",
            &["sale", "sku"],
            vec![vec![100, 1], vec![101, 1], vec![102, 2]],
        ))
        .unwrap();
        c.register(rel(
            "b_items",
            &["sku", "cat"],
            vec![vec![1, 7], vec![5, 9]],
        ))
        .unwrap();
        c.register(rel(
            "b_sales",
            &["sale", "sku"],
            vec![vec![100, 1], vec![200, 5]],
        ))
        .unwrap();
        c
    }

    fn shop_query() -> UnionQuery {
        UnionQuery::set_union()
            .chain("shop_a", ["a_items", "a_sales"])
            .unwrap()
            .chain("shop_b", ["b_items", "b_sales"])
            .unwrap()
    }

    #[test]
    fn catalog_registration_and_lookup() {
        let mut c = Catalog::new();
        assert!(c.is_empty());
        c.register(rel("r", &["x"], vec![vec![1]])).unwrap();
        assert!(c.contains("r"));
        assert_eq!(c.len(), 1);
        assert_eq!(c.total_rows(), 1);
        assert_eq!(c.get("r").unwrap().name(), "r");
        assert!(c.get("missing").is_err());
        // Duplicate name rejected.
        assert!(c.register(rel("r", &["x"], vec![])).is_err());
    }

    #[test]
    fn catalog_loads_csv() {
        let mut c = Catalog::new();
        let r = c
            .register_csv("items", "sku,cat\n1,coffee\n2,tea\n".as_bytes())
            .unwrap();
        assert_eq!(r.len(), 2);
        assert!(c.contains("items"));
    }

    #[test]
    fn catalog_imports_storage_catalogs() {
        let mut source = suj_storage::Catalog::new();
        source.register(rel("x", &["a"], vec![vec![1]])).unwrap();
        source.register(rel("y", &["a"], vec![vec![2]])).unwrap();
        let mut c = Catalog::new();
        assert_eq!(c.import(&source).unwrap(), 2);
        assert!(c.contains("x") && c.contains("y"));
        // A second import collides and changes nothing.
        assert!(c.import(&source).is_err());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn engine_plans_without_building() {
        let engine = Engine::new(shop_catalog());
        let plan = engine.plan(&shop_query()).unwrap();
        // Tiny data: exact estimation; overlapping shops: some
        // set-union strategy. The point: planning succeeds and
        // explains itself.
        assert!(plan.explain().contains("rule:"));
    }

    #[test]
    fn prepared_query_runs_and_reuses_state() {
        let engine = Engine::new(shop_catalog());
        let mut prepared = engine.prepare(&shop_query()).unwrap();
        let exact = crate::exact::full_join_union(prepared.workload()).unwrap();
        let mut rng = SujRng::seed_from_u64(3);
        let (first, report) = prepared.run(10, &mut rng).unwrap();
        assert_eq!(first.len(), 10);
        assert!(report.config.is_some(), "plan summary must be stamped");
        for t in &first {
            assert!(exact.union_set.contains(t));
        }
        // Second run reuses the sampler (no re-estimation): cumulative
        // report keeps growing, per-run report stays per-run.
        let (second, report2) = prepared.run(5, &mut rng).unwrap();
        assert_eq!(second.len(), 5);
        assert_eq!(report2.accepted, 5);
        assert!(prepared.report().accepted >= 15);
        assert_eq!(report2.config, report.config);
    }

    #[test]
    fn engine_one_shot_run() {
        let engine = Engine::new(shop_catalog());
        let mut rng = SujRng::seed_from_u64(4);
        let (samples, report) = engine.run(&shop_query(), 6, &mut rng).unwrap();
        assert_eq!(samples.len(), 6);
        assert!(report.config.is_some());
    }

    #[test]
    fn disjoint_query_plans_disjoint_sampling() {
        let query = UnionQuery::disjoint_union()
            .chain("shop_a", ["a_items", "a_sales"])
            .unwrap()
            .chain("shop_b", ["b_items", "b_sales"])
            .unwrap();
        let engine = Engine::new(shop_catalog());
        let plan = engine.plan(&query).unwrap();
        assert_eq!(plan.rule, PlanRule::DisjointSemantics);
        let mut rng = SujRng::seed_from_u64(5);
        let (samples, _) = engine.run(&query, 8, &mut rng).unwrap();
        assert_eq!(samples.len(), 8);
    }

    #[test]
    fn predicate_mode_planned_and_applied() {
        // Conjunctive comparison → push-down.
        let q = shop_query().predicate(Predicate::cmp("cat", CompareOp::Le, Value::int(7)));
        let engine = Engine::new(shop_catalog());
        let plan = engine.plan(&q).unwrap();
        assert_eq!(plan.predicate_mode, Some(PredicateMode::PushDown));
        let mut rng = SujRng::seed_from_u64(6);
        let (samples, _) = engine.run(&q, 12, &mut rng).unwrap();
        let prepared = engine.prepare(&q).unwrap();
        let compiled = Predicate::cmp("cat", CompareOp::Le, Value::int(7))
            .compile(prepared.workload().canonical_schema())
            .unwrap();
        for t in &samples {
            assert!(compiled.eval(t));
        }

        // Non-decomposable predicate → reject-during-sampling.
        let q = shop_query().predicate(Predicate::Not(Box::new(Predicate::cmp(
            "cat",
            CompareOp::Gt,
            Value::int(7),
        ))));
        let plan = engine.plan(&q).unwrap();
        assert_eq!(plan.predicate_mode, Some(PredicateMode::Reject));

        // A pinned mode wins over the planner.
        let q = shop_query()
            .predicate(Predicate::cmp("cat", CompareOp::Le, Value::int(7)))
            .predicate_mode(PredicateMode::Reject);
        let plan = engine.plan(&q).unwrap();
        assert_eq!(plan.predicate_mode, Some(PredicateMode::Reject));
    }
}
