//! Core-layer errors.

use std::fmt;
use suj_join::JoinError;
use suj_storage::{SnapshotError, StorageError};

/// Errors raised by the union sampling framework.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A workload needs at least one join.
    NoJoins,
    /// Joins in a workload disagree on the output attribute set.
    SchemaMismatch {
        /// Name of the offending join.
        join: String,
    },
    /// A workload exceeds the supported join count (membership masks
    /// pack into `u32` and overlap tables allocate `2^n` entries).
    TooManyJoins {
        /// Number of joins requested.
        got: usize,
        /// Maximum supported ([`crate::workload::MAX_JOINS`]).
        max: usize,
    },
    /// A join-layer error.
    Join(JoinError),
    /// A storage-layer error.
    Storage(StorageError),
    /// A snapshot encode/decode error (persisting or restoring
    /// prepared artifacts).
    Snapshot(SnapshotError),
    /// A request's deadline expired before it finished: the sampler
    /// stopped between draws instead of running unbounded. The work
    /// done so far is discarded (a partial batch would not be an
    /// i.i.d. sample of the requested size).
    DeadlineExceeded,
    /// Generic invariant violation with context.
    Invalid(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NoJoins => write!(f, "union workload must contain at least one join"),
            CoreError::SchemaMismatch { join } => write!(
                f,
                "join `{join}` does not produce the workload's common output schema"
            ),
            CoreError::TooManyJoins { got, max } => {
                write!(f, "union workload supports at most {max} joins, got {got}")
            }
            CoreError::Join(e) => write!(f, "join error: {e}"),
            CoreError::Storage(e) => write!(f, "storage error: {e}"),
            CoreError::Snapshot(e) => write!(f, "snapshot error: {e}"),
            CoreError::DeadlineExceeded => {
                write!(f, "deadline exceeded before the request finished")
            }
            CoreError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Join(e) => Some(e),
            CoreError::Storage(e) => Some(e),
            CoreError::Snapshot(e) => Some(e),
            _ => None,
        }
    }
}

impl From<JoinError> for CoreError {
    fn from(e: JoinError) -> Self {
        CoreError::Join(e)
    }
}

impl From<StorageError> for CoreError {
    fn from(e: StorageError) -> Self {
        CoreError::Storage(e)
    }
}

impl From<SnapshotError> for CoreError {
    fn from(e: SnapshotError) -> Self {
        CoreError::Snapshot(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = JoinError::NoRelations.into();
        assert!(matches!(e, CoreError::Join(_)));
        assert!(e.to_string().contains("join error"));
        let s: CoreError = StorageError::EmptySchema.into();
        assert!(s.to_string().contains("storage error"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
