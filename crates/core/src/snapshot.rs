//! Engine snapshot persistence: save and restore prepared artifacts.
//!
//! A cold replica should serve the first request without re-running
//! parameter estimation. [`Engine::save_snapshot`] persists the
//! catalog plus every cached prepared query — its declarative query,
//! plan tags, root seed, and the *frozen estimated parameters* the
//! freeze committed to — into the storage layer's sectioned,
//! checksummed container ([`suj_storage::snapshot`]).
//! [`Engine::load_snapshot`] rebuilds the catalog, re-resolves each
//! query, and re-freezes each pipeline **consuming the restored
//! parameters instead of estimating**: after a restore,
//! [`PreparedQuery::estimations`] is 0 and samples are bit-identical
//! to the donor engine's for the same root seed and request seed.
//!
//! # File format
//!
//! The container is the storage layer's: magic `SUJSNAP\0`, version,
//! section count, then per section a 16-byte header (`kind: u32`,
//! `len: u64`, `crc: u32`) and an 8-aligned payload. This module adds
//! two section kinds on top of [`SECTION_RELATION`]:
//!
//! | kind | payload |
//! |------|---------|
//! | 16 ([`SECTION_ENGINE_META`]) | engine format version `u32`, planner config (`f64`, `u64`, `f64`, `u8`) |
//! | 1 ([`SECTION_RELATION`]) | one relation, in catalog registration order |
//! | 17 ([`SECTION_PREPARED`]) | one prepared entry: query, root seed `u64`, plan tags, frozen parameters |
//! | 18 ([`SECTION_EW_ARENAS`]) | per-join Exact-Weight artifacts (count tables + alias arenas) for the prepared entry immediately before it |
//!
//! Plans are stored as *tags* (strategy / estimator / weights / cover
//! / predicate mode / rule discriminants), not full configurations:
//! the engine's planner only ever emits default-configured variants,
//! so the tags reconstruct the plan exactly. Prepared entries that did
//! not come through the engine (no source query, e.g.
//! [`PreparedQuery::auto`]) are not persisted.
//!
//! Frozen parameters are the overlap map (or exact per-join sizes)
//! the freeze committed to — the restore path's substitute for
//! estimation. They were captured *after* any predicate push-down
//! rewrite, so restoring replays the rewrite deterministically and
//! then installs the map over the rewritten workload.
//!
//! When every member sampler of a prepared entry is exact-weight, its
//! factorized count tables and alias arenas follow in a
//! [`SECTION_EW_ARENAS`] section (paired with the preceding prepared
//! entry by order). The restore revives the samplers from those
//! artifacts — validated slab-by-slab — so a restored replica performs
//! **zero** alias builds ([`suj_join::alias_builds`] is flat across a
//! restore) and serves draw streams bit-identical to the donor's.

use crate::bernoulli::DesignationPolicy;
use crate::catalog::{Catalog, Engine, PreparedQuery};
use crate::error::CoreError;
use crate::overlap::OverlapMap;
use crate::planner::{Plan, PlanRule, Planner, PlannerConfig, WorkloadStats};
use crate::predicate_mode::PredicateMode;
use crate::query::{JoinDef, Topology, UnionQuery, UnionSemantics};
use crate::session::{Estimator, FrozenParams, HistogramOptions, SamplerBuilder, Strategy};
use crate::walk_estimator::WalkEstimatorConfig;
use crate::workload::UnionWorkload;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;
use suj_join::JoinEdge;
use suj_storage::snapshot::{
    decode_predicate, decode_relation, encode_predicate, encode_relation, read_sections,
    write_sections, ByteReader, ByteWriter, SECTION_RELATION,
};
use suj_storage::SnapshotError;

/// Section kind: engine metadata (format version + planner config).
pub const SECTION_ENGINE_META: u32 = 16;
/// Section kind: one serialized prepared-query entry.
pub const SECTION_PREPARED: u32 = 17;
/// Section kind: the Exact-Weight artifacts (count tables + alias
/// arenas) of the prepared entry immediately before this section.
pub const SECTION_EW_ARENAS: u32 = 18;
/// Version of the engine sections' encoding (independent of the
/// container version).
pub const ENGINE_FORMAT_VERSION: u32 = 1;

fn corrupt(what: &str, got: impl std::fmt::Display) -> SnapshotError {
    SnapshotError::Corrupt(format!("{what}: unexpected value {got}"))
}

// ---------------------------------------------------------------------
// Query codec
// ---------------------------------------------------------------------

/// Serializes a declarative [`UnionQuery`] — semantics, joins
/// (name, relation names, topology), optional predicate, optional
/// pinned predicate mode. Shared by the snapshot format and the wire
/// protocol's `Prepare` payload.
pub fn encode_query(q: &UnionQuery, w: &mut ByteWriter) {
    w.put_u8(match q.semantics() {
        UnionSemantics::Set => 0,
        UnionSemantics::Disjoint => 1,
    });
    w.put_u32(q.joins().len() as u32);
    for def in q.joins() {
        w.put_str(def.name());
        w.put_u32(def.relations().len() as u32);
        for rel in def.relations() {
            w.put_str(rel);
        }
        match def.topology() {
            Topology::Chain => w.put_u8(0),
            Topology::Natural => w.put_u8(1),
            Topology::Edges(edges) => {
                w.put_u8(2);
                w.put_u32(edges.len() as u32);
                for e in edges {
                    w.put_u64(e.left as u64);
                    w.put_u64(e.right as u64);
                    w.put_u32(e.attrs.len() as u32);
                    for a in &e.attrs {
                        w.put_str(a);
                    }
                }
            }
        }
    }
    match q.predicate_ref() {
        None => w.put_u8(0),
        Some(p) => {
            w.put_u8(1);
            encode_predicate(p, w);
        }
    }
    w.put_u8(match q.predicate_mode_ref() {
        None => 0,
        Some(PredicateMode::PushDown) => 1,
        Some(PredicateMode::Reject) => 2,
    });
}

/// Inverse of [`encode_query`]. The restored query is
/// `Debug`-identical to the original, so engine fingerprints (and
/// therefore prepared-query cache hits) coincide across a round trip.
pub fn decode_query(r: &mut ByteReader<'_>) -> Result<UnionQuery, SnapshotError> {
    let semantics = match r.get_u8()? {
        0 => UnionSemantics::Set,
        1 => UnionSemantics::Disjoint,
        other => return Err(corrupt("union semantics tag", other)),
    };
    let n_joins = r.get_u32()? as usize;
    let mut joins = Vec::with_capacity(n_joins.min(1024));
    for _ in 0..n_joins {
        let name = r.get_str()?.to_string();
        let n_rels = r.get_u32()? as usize;
        let mut relations = Vec::with_capacity(n_rels.min(1024));
        for _ in 0..n_rels {
            relations.push(r.get_str()?.to_string());
        }
        let topology = match r.get_u8()? {
            0 => Topology::Chain,
            1 => Topology::Natural,
            2 => {
                let n_edges = r.get_u32()? as usize;
                let mut edges = Vec::with_capacity(n_edges.min(1024));
                for _ in 0..n_edges {
                    let left = r.get_u64()? as usize;
                    let right = r.get_u64()? as usize;
                    let n_attrs = r.get_u32()? as usize;
                    let mut attrs = Vec::with_capacity(n_attrs.min(1024));
                    for _ in 0..n_attrs {
                        attrs.push(Arc::<str>::from(r.get_str()?));
                    }
                    edges.push(JoinEdge { left, right, attrs });
                }
                Topology::Edges(edges)
            }
            other => return Err(corrupt("topology tag", other)),
        };
        joins.push(JoinDef::from_restored(name, relations, topology));
    }
    let predicate = match r.get_u8()? {
        0 => None,
        1 => Some(decode_predicate(r)?),
        other => return Err(corrupt("predicate option tag", other)),
    };
    let predicate_mode = match r.get_u8()? {
        0 => None,
        1 => Some(PredicateMode::PushDown),
        2 => Some(PredicateMode::Reject),
        other => return Err(corrupt("predicate mode tag", other)),
    };
    Ok(UnionQuery::from_restored(
        semantics,
        joins,
        predicate,
        predicate_mode,
    ))
}

// ---------------------------------------------------------------------
// Plan codec (tags only — the planner emits default configurations)
// ---------------------------------------------------------------------

struct PlanTags {
    strategy: u8,
    policy: u8,
    estimator: u8,
    weights: u8,
    cover: u8,
    predicate_mode: u8,
    /// Join-size provenance: 0 none, 1 exact (EW count tables),
    /// 2 histogram.
    sizing: u8,
    rule: u8,
}

fn encode_plan(plan: &Plan, w: &mut ByteWriter) -> Result<(), SnapshotError> {
    let (strategy, policy) = match plan.strategy {
        Strategy::Rejection => (0u8, 0u8),
        Strategy::Online(_) => (1, 0),
        Strategy::Bernoulli(DesignationPolicy::Oracle) => (2, 0),
        Strategy::Bernoulli(DesignationPolicy::Record) => (2, 1),
        Strategy::Disjoint => (3, 0),
        Strategy::Auto => {
            return Err(SnapshotError::Corrupt(
                "cannot snapshot an unresolved Auto plan".into(),
            ))
        }
    };
    w.put_u8(strategy);
    w.put_u8(policy);
    w.put_u8(match plan.estimator {
        None => 0,
        Some(Estimator::Exact) => 1,
        Some(Estimator::Histogram(_)) => 2,
        Some(Estimator::Walk(_)) => 3,
    });
    w.put_u8(match plan.weights {
        None => 0,
        Some(suj_join::WeightKind::Exact) => 1,
        Some(suj_join::WeightKind::ExtendedOlken) => 2,
        Some(suj_join::WeightKind::WanderJoin) => 3,
        Some(suj_join::WeightKind::AgmBox) => 4,
    });
    w.put_u8(match plan.cover_strategy {
        None => 0,
        Some(crate::cover::CoverStrategy::AsGiven) => 1,
        Some(crate::cover::CoverStrategy::DescendingSize) => 2,
        Some(crate::cover::CoverStrategy::AscendingSize) => 3,
    });
    w.put_u8(match plan.predicate_mode {
        None => 0,
        Some(PredicateMode::PushDown) => 1,
        Some(PredicateMode::Reject) => 2,
    });
    w.put_u8(if plan.stats.exact_sizes {
        1
    } else if plan.stats.available() {
        2
    } else {
        0
    });
    w.put_u8(match plan.rule {
        PlanRule::DisjointSemantics => 0,
        PlanRule::SingleJoin => 1,
        PlanRule::NoStatistics => 2,
        PlanRule::LowOverlap => 3,
        PlanRule::HighOverlap => 4,
        PlanRule::CyclicJoin => 5,
    });
    Ok(())
}

fn decode_plan_tags(r: &mut ByteReader<'_>) -> Result<PlanTags, SnapshotError> {
    Ok(PlanTags {
        strategy: r.get_u8()?,
        policy: r.get_u8()?,
        estimator: r.get_u8()?,
        weights: r.get_u8()?,
        cover: r.get_u8()?,
        predicate_mode: r.get_u8()?,
        sizing: r.get_u8()?,
        rule: r.get_u8()?,
    })
}

impl PlanTags {
    /// Reconstructs the plan against a freshly resolved workload. The
    /// statistics are rebuilt from the frozen overlap map (or marked
    /// unavailable), which is exactly what the restored freeze
    /// consumes.
    fn into_plan(
        self,
        workload: &Arc<UnionWorkload>,
        frozen: &FrozenParams,
    ) -> Result<Plan, SnapshotError> {
        let strategy = match (self.strategy, self.policy) {
            (0, _) => Strategy::Rejection,
            (1, _) => Strategy::Online(crate::algorithm2::OnlineConfig::default()),
            (2, 0) => Strategy::Bernoulli(DesignationPolicy::Oracle),
            (2, 1) => Strategy::Bernoulli(DesignationPolicy::Record),
            (3, _) => Strategy::Disjoint,
            (other, _) => return Err(corrupt("strategy tag", other)),
        };
        let estimator = match self.estimator {
            0 => None,
            1 => Some(Estimator::Exact),
            2 => Some(Estimator::Histogram(HistogramOptions::default())),
            3 => Some(Estimator::Walk(WalkEstimatorConfig::default())),
            other => return Err(corrupt("estimator tag", other)),
        };
        let weights = match self.weights {
            0 => None,
            1 => Some(suj_join::WeightKind::Exact),
            2 => Some(suj_join::WeightKind::ExtendedOlken),
            3 => Some(suj_join::WeightKind::WanderJoin),
            4 => Some(suj_join::WeightKind::AgmBox),
            other => return Err(corrupt("weights tag", other)),
        };
        let cover_strategy = match self.cover {
            0 => None,
            1 => Some(crate::cover::CoverStrategy::AsGiven),
            2 => Some(crate::cover::CoverStrategy::DescendingSize),
            3 => Some(crate::cover::CoverStrategy::AscendingSize),
            other => return Err(corrupt("cover tag", other)),
        };
        let predicate_mode = match self.predicate_mode {
            0 => None,
            1 => Some(PredicateMode::PushDown),
            2 => Some(PredicateMode::Reject),
            other => return Err(corrupt("plan predicate mode tag", other)),
        };
        let rule = match self.rule {
            0 => PlanRule::DisjointSemantics,
            1 => PlanRule::SingleJoin,
            2 => PlanRule::NoStatistics,
            3 => PlanRule::LowOverlap,
            4 => PlanRule::HighOverlap,
            5 => PlanRule::CyclicJoin,
            other => return Err(corrupt("rule tag", other)),
        };
        let mut stats = match frozen {
            FrozenParams::Map(map) => WorkloadStats::from_probed(workload, map.clone()),
            _ => WorkloadStats::unavailable(workload),
        };
        match self.sizing {
            0 | 2 => {}
            1 => stats.exact_sizes = true,
            other => return Err(corrupt("sizing tag", other)),
        }
        Ok(Plan {
            strategy,
            estimator,
            weights,
            cover_strategy,
            predicate_mode,
            rule,
            stats,
        })
    }
}

// ---------------------------------------------------------------------
// Frozen-parameter codec
// ---------------------------------------------------------------------

fn encode_frozen(params: &FrozenParams, w: &mut ByteWriter) {
    match params {
        FrozenParams::None => w.put_u8(0),
        FrozenParams::Map(map) => {
            w.put_u8(1);
            let n = map.n();
            w.put_u32(n as u32);
            // Entry 0 (the empty overlap) is identically 0; write the
            // full 2^n slab anyway so the decode is one validated call.
            let sizes: Vec<f64> = (0..(1usize << n))
                .map(|mask| {
                    if mask == 0 {
                        0.0
                    } else {
                        map.overlap_mask(mask as u32)
                    }
                })
                .collect();
            w.put_f64_slab(&sizes);
        }
        FrozenParams::Sizes(sizes) => {
            w.put_u8(2);
            w.put_f64_slab(sizes);
        }
    }
}

fn decode_frozen(r: &mut ByteReader<'_>) -> Result<FrozenParams, SnapshotError> {
    match r.get_u8()? {
        0 => Ok(FrozenParams::None),
        1 => {
            let n = r.get_u32()? as usize;
            let sizes = r.get_f64_slab()?;
            let map = OverlapMap::new(n, sizes)
                .map_err(|e| SnapshotError::Corrupt(format!("invalid overlap map: {e}")))?;
            Ok(FrozenParams::Map(map))
        }
        2 => {
            let sizes = r.get_f64_slab()?;
            if sizes.iter().any(|s| !s.is_finite() || *s < 0.0) {
                return Err(SnapshotError::Corrupt(
                    "frozen join sizes must be finite and non-negative".into(),
                ));
            }
            Ok(FrozenParams::Sizes(sizes))
        }
        other => Err(corrupt("frozen-params tag", other)),
    }
}

// ---------------------------------------------------------------------
// Exact-Weight artifact codec (count tables + alias arenas)
// ---------------------------------------------------------------------

fn encode_arena(a: &suj_stats::AliasArena, w: &mut ByteWriter) {
    w.put_u32_slab(a.offsets());
    w.put_f64_slab(a.prob());
    w.put_u32_slab(a.alias_slab());
}

fn decode_arena(r: &mut ByteReader<'_>) -> Result<suj_stats::AliasArena, SnapshotError> {
    let offsets = r.get_u32_slab()?;
    let prob = r.get_f64_slab()?;
    let alias = r.get_u32_slab()?;
    suj_stats::AliasArena::from_parts(offsets, prob, alias).ok_or_else(|| {
        SnapshotError::Corrupt("alias arena slabs violate a structural invariant".into())
    })
}

fn encode_ew_artifacts(artifacts: &[suj_join::EwArtifacts], w: &mut ByteWriter) {
    w.put_u32(artifacts.len() as u32);
    for a in artifacts {
        w.put_u64(a.total);
        w.put_u8(u8::from(a.exact));
        w.put_u32(a.counts.len() as u32);
        for counts in &a.counts {
            w.put_u64_slab(counts);
        }
        for key_counts in &a.key_counts {
            w.put_u64_slab(key_counts);
        }
        for arena in &a.arenas {
            match arena {
                None => w.put_u8(0),
                Some(arena) => {
                    w.put_u8(1);
                    encode_arena(arena, w);
                }
            }
        }
        encode_arena(&a.root_arena, w);
    }
}

/// Inverse of [`encode_ew_artifacts`]. Arena slabs are validated
/// structurally here ([`suj_stats::AliasArena::from_parts`]); the
/// cross-checks against the join spec (column lengths, key-table
/// shapes, total consistency) happen in
/// [`suj_join::ExactWeightSampler::from_artifacts`] at freeze time.
fn decode_ew_artifacts(
    r: &mut ByteReader<'_>,
) -> Result<Vec<suj_join::EwArtifacts>, SnapshotError> {
    let n_joins = r.get_u32()? as usize;
    let mut artifacts = Vec::with_capacity(n_joins.min(1024));
    for _ in 0..n_joins {
        let total = r.get_u64()?;
        let exact = match r.get_u8()? {
            0 => false,
            1 => true,
            other => return Err(corrupt("EW exact flag", other)),
        };
        let n_rels = r.get_u32()? as usize;
        let mut counts = Vec::with_capacity(n_rels.min(1024));
        for _ in 0..n_rels {
            counts.push(r.get_u64_slab()?);
        }
        let mut key_counts = Vec::with_capacity(n_rels.min(1024));
        for _ in 0..n_rels {
            key_counts.push(r.get_u64_slab()?);
        }
        let mut arenas = Vec::with_capacity(n_rels.min(1024));
        for _ in 0..n_rels {
            arenas.push(match r.get_u8()? {
                0 => None,
                1 => Some(decode_arena(r)?),
                other => return Err(corrupt("EW arena presence tag", other)),
            });
        }
        let root_arena = decode_arena(r)?;
        artifacts.push(suj_join::EwArtifacts {
            counts,
            key_counts,
            arenas,
            root_arena,
            total,
            exact,
        });
    }
    Ok(artifacts)
}

// ---------------------------------------------------------------------
// Engine save / load
// ---------------------------------------------------------------------

/// Whether a failed load should try the `.prev` fallback: exactly the
/// storage layer's crash modes
/// ([`fallback_eligible`](suj_storage::snapshot::fallback_eligible)).
/// Non-snapshot errors (e.g. a query that no longer resolves) mean the
/// file decoded fine and the problem is semantic — fallback would only
/// mask it.
fn snapshot_fallback_eligible(e: &CoreError) -> bool {
    matches!(e, CoreError::Snapshot(s) if suj_storage::snapshot::fallback_eligible(s))
}

impl Engine {
    /// Serializes this engine — catalog relations plus every cached
    /// prepared query with its frozen estimated parameters — into the
    /// sectioned snapshot container.
    ///
    /// Prepared entries that did not come through the engine (no
    /// source query) are skipped; everything else restores via
    /// [`load_snapshot_bytes`](Self::load_snapshot_bytes) without
    /// re-estimating. Cache entries are written in fingerprint order,
    /// so the same engine state always produces the same bytes.
    pub fn snapshot_to_bytes(&self) -> Result<Vec<u8>, CoreError> {
        let mut sections: Vec<(u32, Vec<u8>)> = Vec::new();

        let mut meta = ByteWriter::new();
        meta.put_u32(ENGINE_FORMAT_VERSION);
        let config = self.planner().config();
        meta.put_f64(config.bernoulli_max_overlap_ratio);
        meta.put_u64(config.exact_max_base_rows as u64);
        meta.put_f64(config.skewed_cover_ratio);
        meta.put_u8(u8::from(config.use_statistics));
        sections.push((SECTION_ENGINE_META, meta.into_bytes()));

        for name in self.catalog().names() {
            let rel = self.catalog().get(name)?;
            let mut w = ByteWriter::new();
            encode_relation(&rel, &mut w);
            sections.push((SECTION_RELATION, w.into_bytes()));
        }

        for (_fingerprint, prepared) in self.cached_entries() {
            let Some(query) = prepared.source_query() else {
                continue;
            };
            let mut w = ByteWriter::new();
            encode_query(query, &mut w);
            w.put_u64(prepared.prepared().root_seed());
            encode_plan(prepared.plan(), &mut w)?;
            encode_frozen(prepared.prepared().frozen_params(), &mut w);
            sections.push((SECTION_PREPARED, w.into_bytes()));
            // Exact-weight pipelines also persist their count tables
            // and alias arenas, paired with the entry by order, so a
            // restore revives the samplers without rebuilding either.
            if let Some(artifacts) = prepared.prepared().ew_artifacts() {
                let mut w = ByteWriter::new();
                encode_ew_artifacts(&artifacts, &mut w);
                sections.push((SECTION_EW_ARENAS, w.into_bytes()));
            }
        }

        Ok(write_sections(&sections))
    }

    /// [`snapshot_to_bytes`](Self::snapshot_to_bytes) written to a
    /// file; returns the bytes written.
    ///
    /// The write is crash-safe
    /// ([`atomic_replace`](suj_storage::snapshot::atomic_replace)):
    /// the bytes are staged at a temp path, fsynced, and atomically
    /// renamed into place, with the previous good snapshot preserved
    /// at `<path>.prev` — a kill at any instant leaves a loadable
    /// snapshot behind ([`load_snapshot`](Self::load_snapshot) falls
    /// back to `.prev` when the newest file is torn).
    pub fn save_snapshot(&self, path: impl AsRef<Path>) -> Result<u64, CoreError> {
        let bytes = self.snapshot_to_bytes()?;
        suj_storage::snapshot::atomic_replace(path, &bytes).map_err(CoreError::Snapshot)
    }

    /// Restores an engine from a snapshot file: catalog, planner
    /// config, and every persisted prepared query — **without
    /// re-running parameter estimation** (each restored query reports
    /// [`PreparedQuery::estimations`]` == 0`). The measured restore
    /// cost (snapshot size + wall time) is stamped into every report
    /// the restored queries mint.
    /// When the newest snapshot is missing, truncated, or corrupt, the
    /// load falls back to the previous good snapshot that
    /// [`save_snapshot`](Self::save_snapshot) preserved at
    /// `<path>.prev` (an unsupported format version does *not* fall
    /// back — serving stale data would mask a deployment mismatch).
    /// Only if both fail is the original error returned.
    pub fn load_snapshot(path: impl AsRef<Path>) -> Result<Engine, CoreError> {
        let start = Instant::now();
        let path = path.as_ref();
        let primary = std::fs::read(path)
            .map_err(|e| CoreError::Snapshot(SnapshotError::Io(e.to_string())))
            .and_then(|bytes| Self::load_snapshot_bytes_from(&bytes, start));
        match primary {
            Ok(engine) => Ok(engine),
            Err(e) if snapshot_fallback_eligible(&e) => {
                let prev = suj_storage::snapshot::snapshot_prev_path(path);
                match std::fs::read(prev)
                    .ok()
                    .and_then(|bytes| Self::load_snapshot_bytes_from(&bytes, start).ok())
                {
                    Some(engine) => Ok(engine),
                    None => Err(e),
                }
            }
            Err(e) => Err(e),
        }
    }

    /// [`load_snapshot`](Self::load_snapshot) over an in-memory buffer.
    pub fn load_snapshot_bytes(bytes: &[u8]) -> Result<Engine, CoreError> {
        Self::load_snapshot_bytes_from(bytes, Instant::now())
    }

    /// [`load_snapshot`](Self::load_snapshot) over an in-memory
    /// buffer, with the restore clock started at `start`.
    fn load_snapshot_bytes_from(bytes: &[u8], start: Instant) -> Result<Engine, CoreError> {
        let sections = read_sections(bytes)?;
        let mut iter = sections.into_iter();

        let Some((SECTION_ENGINE_META, meta)) = iter.next() else {
            return Err(CoreError::Snapshot(SnapshotError::Corrupt(
                "engine snapshot must start with a meta section".into(),
            )));
        };
        let mut r = ByteReader::new(meta);
        let format = r.get_u32()?;
        if format != ENGINE_FORMAT_VERSION {
            return Err(CoreError::Snapshot(SnapshotError::UnsupportedVersion(
                format,
            )));
        }
        let planner_config = PlannerConfig {
            bernoulli_max_overlap_ratio: r.get_f64()?,
            exact_max_base_rows: usize::try_from(r.get_u64()?)
                .map_err(|_| SnapshotError::Corrupt("exact_max_base_rows overflow".into()))?,
            skewed_cover_ratio: r.get_f64()?,
            use_statistics: r.get_u8()? != 0,
        };

        let mut catalog = Catalog::new();
        let mut prepared_payloads: Vec<(&[u8], Option<&[u8]>)> = Vec::new();
        for (kind, payload) in iter {
            match kind {
                SECTION_RELATION => {
                    let mut r = ByteReader::new(payload);
                    catalog.register_arc(Arc::new(decode_relation(&mut r)?))?;
                }
                SECTION_PREPARED => prepared_payloads.push((payload, None)),
                SECTION_EW_ARENAS => match prepared_payloads.last_mut() {
                    Some((_, slot @ None)) => *slot = Some(payload),
                    _ => {
                        return Err(CoreError::Snapshot(SnapshotError::Corrupt(
                            "EW arenas section must directly follow its prepared entry".into(),
                        )))
                    }
                },
                other => {
                    return Err(CoreError::Snapshot(SnapshotError::Corrupt(format!(
                        "unknown engine section kind {other}"
                    ))))
                }
            }
        }

        let engine = Engine::with_planner(catalog, Planner::new(planner_config));
        let snapshot_bytes = bytes.len() as u64;
        for (payload, arena_payload) in prepared_payloads {
            let mut r = ByteReader::new(payload);
            let query = decode_query(&mut r)?;
            let root_seed = r.get_u64()?;
            let tags = decode_plan_tags(&mut r)?;
            let sizing_tag = tags.sizing;
            let frozen = decode_frozen(&mut r)?;
            let artifacts = match arena_payload {
                Some(bytes) => {
                    let mut r = ByteReader::new(bytes);
                    Some(decode_ew_artifacts(&mut r)?)
                }
                None => None,
            };

            let resolved = query.resolve(engine.catalog())?;
            let plan = tags.into_plan(&resolved.workload, &frozen)?;
            let mut builder = plan
                .apply(SamplerBuilder::for_workload(resolved.workload.clone()))
                .estimation_seed(root_seed)
                .with_restored(frozen);
            if let Some(artifacts) = artifacts {
                builder = builder.with_restored_artifacts(artifacts);
            }
            if let (Some(p), Some(mode)) = (resolved.predicate, plan.predicate_mode) {
                builder = builder.predicate(p, mode);
            }
            // The sizing provenance the donor's summary carried is
            // restored from its tag verbatim (restored stats cannot
            // always re-derive it — e.g. frozen sizes carry no map).
            let mut summary = plan.summary();
            summary.sizing = match sizing_tag {
                0 => None,
                1 => Some("exact".to_string()),
                _ => Some("histogram".to_string()),
            };
            let mut prepared = builder.freeze()?.with_summary(summary);
            prepared.set_restore_cost(snapshot_bytes, start.elapsed());
            let restored = Arc::new(PreparedQuery::from_query_parts(
                query.clone(),
                plan,
                prepared,
            ));
            engine.install_prepared(&query, restored);
        }
        Ok(engine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use suj_storage::{CompareOp, Predicate, Relation, Schema, Value};

    fn rel(name: &str, attrs: &[&str], rows: Vec<Vec<i64>>) -> Relation {
        let schema = Schema::new(attrs.iter().copied()).unwrap();
        let tuples = rows
            .into_iter()
            .map(|vals| vals.into_iter().map(Value::int).collect())
            .collect();
        Relation::new(name, schema, tuples).unwrap()
    }

    fn shop_engine() -> Engine {
        let mut c = Catalog::new();
        c.register(rel(
            "a_items",
            &["sku", "cat"],
            vec![vec![1, 7], vec![2, 7], vec![3, 9]],
        ))
        .unwrap();
        c.register(rel(
            "a_sales",
            &["sale", "sku"],
            vec![vec![100, 1], vec![101, 1], vec![102, 2]],
        ))
        .unwrap();
        c.register(rel(
            "b_items",
            &["sku", "cat"],
            vec![vec![1, 7], vec![5, 9]],
        ))
        .unwrap();
        c.register(rel(
            "b_sales",
            &["sale", "sku"],
            vec![vec![100, 1], vec![200, 5]],
        ))
        .unwrap();
        Engine::new(c)
    }

    fn shop_query() -> UnionQuery {
        UnionQuery::set_union()
            .chain("shop_a", ["a_items", "a_sales"])
            .unwrap()
            .chain("shop_b", ["b_items", "b_sales"])
            .unwrap()
    }

    #[test]
    fn query_codec_round_trip_preserves_debug_identity() {
        let queries = vec![
            shop_query(),
            UnionQuery::disjoint_union()
                .chain("only_a", ["a_items", "a_sales"])
                .unwrap(),
            shop_query().predicate(Predicate::cmp("cat", CompareOp::Le, Value::int(7))),
            shop_query()
                .predicate(Predicate::cmp("cat", CompareOp::Gt, Value::int(1)))
                .predicate_mode(PredicateMode::Reject),
        ];
        for q in queries {
            let mut w = ByteWriter::new();
            encode_query(&q, &mut w);
            let bytes = w.into_bytes();
            let mut r = ByteReader::new(&bytes);
            let restored = decode_query(&mut r).unwrap();
            assert!(r.is_empty());
            // Fingerprint stability: Debug formatting must coincide.
            assert_eq!(format!("{q:?}"), format!("{restored:?}"));
        }
    }

    #[test]
    fn engine_round_trip_restores_catalog_and_planner() {
        let engine = shop_engine();
        engine.prepare(&shop_query()).unwrap();
        let bytes = engine.snapshot_to_bytes().unwrap();
        let restored = Engine::load_snapshot_bytes(&bytes).unwrap();
        assert_eq!(restored.catalog().len(), engine.catalog().len());
        let names: Vec<&str> = restored.catalog().names().collect();
        assert_eq!(names, vec!["a_items", "a_sales", "b_items", "b_sales"]);
        assert_eq!(
            restored.catalog().total_rows(),
            engine.catalog().total_rows()
        );
        assert_eq!(restored.cached_queries(), 1);
    }

    #[test]
    fn restored_queries_skip_estimation_and_replay_samples() {
        let engine = shop_engine();
        let original = engine.prepare(&shop_query()).unwrap();
        let bytes = engine.snapshot_to_bytes().unwrap();
        let restored_engine = Engine::load_snapshot_bytes(&bytes).unwrap();
        let restored = restored_engine.prepare(&shop_query()).unwrap();
        // The restore installed the entry in the cache: prepare() was a
        // cache hit and paid no estimation.
        assert_eq!(
            restored.estimations(),
            0,
            "restore must not re-run estimation"
        );
        for seed in [0u64, 7, 41] {
            let (a, _) = original.sample(10, seed).unwrap();
            let (b, _) = restored.sample(10, seed).unwrap();
            assert_eq!(a, b, "seed {seed} diverged after restore");
        }
        // Restore cost is stamped into reports.
        let report = restored.report();
        assert_eq!(report.snapshot_bytes, bytes.len() as u64);
        assert!(report.restore_time > std::time::Duration::ZERO);
        assert!(report.summary().contains("snapshot_bytes="));
        // The donor never carried a restore cost.
        assert_eq!(original.report().snapshot_bytes, 0);
    }

    #[test]
    fn pushed_down_predicate_survives_restore() {
        let engine = shop_engine();
        let q = shop_query().predicate(Predicate::cmp("cat", CompareOp::Le, Value::int(7)));
        let original = engine.prepare(&q).unwrap();
        let bytes = engine.snapshot_to_bytes().unwrap();
        let restored_engine = Engine::load_snapshot_bytes(&bytes).unwrap();
        let restored = restored_engine.prepare(&q).unwrap();
        assert_eq!(restored.estimations(), 0);
        let (a, _) = original.sample(12, 3).unwrap();
        let (b, _) = restored.sample(12, 3).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn disjoint_semantics_survive_restore() {
        let engine = shop_engine();
        let q = UnionQuery::disjoint_union()
            .chain("shop_a", ["a_items", "a_sales"])
            .unwrap()
            .chain("shop_b", ["b_items", "b_sales"])
            .unwrap();
        let original = engine.prepare(&q).unwrap();
        let bytes = engine.snapshot_to_bytes().unwrap();
        let restored_engine = Engine::load_snapshot_bytes(&bytes).unwrap();
        let restored = restored_engine.prepare(&q).unwrap();
        assert_eq!(restored.estimations(), 0);
        let (a, _) = original.sample(9, 5).unwrap();
        let (b, _) = restored.sample(9, 5).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn save_and_load_via_file() {
        let engine = shop_engine();
        engine.prepare(&shop_query()).unwrap();
        let dir = std::env::temp_dir().join("suj_core_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("engine.snap");
        let written = engine.save_snapshot(&path).unwrap();
        assert_eq!(written, std::fs::metadata(&path).unwrap().len());
        let restored = Engine::load_snapshot(&path).unwrap();
        assert_eq!(restored.cached_queries(), 1);
        let prepared = restored.prepare(&shop_query()).unwrap();
        assert_eq!(prepared.estimations(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_newest_snapshot_falls_back_to_previous_good_one() {
        let dir = std::env::temp_dir().join("suj_core_snapshot_fallback_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("engine.snap");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(suj_storage::snapshot::snapshot_prev_path(&path)).ok();

        // Snapshot v1: one prepared query.
        let engine = shop_engine();
        engine.prepare(&shop_query()).unwrap();
        engine.save_snapshot(&path).unwrap();
        // Snapshot v2: two prepared queries; v1 survives as `.prev`.
        engine
            .prepare(
                &UnionQuery::set_union()
                    .chain("only_a", ["a_items", "a_sales"])
                    .unwrap(),
            )
            .unwrap();
        engine.save_snapshot(&path).unwrap();
        assert!(suj_storage::snapshot::snapshot_prev_path(&path).exists());
        assert_eq!(Engine::load_snapshot(&path).unwrap().cached_queries(), 2);

        // Kill-mid-write simulation: the newest file is torn.
        let v2 = std::fs::read(&path).unwrap();
        std::fs::write(&path, &v2[..v2.len() / 2]).unwrap();
        let fallback = Engine::load_snapshot(&path).unwrap();
        assert_eq!(
            fallback.cached_queries(),
            1,
            "torn newest snapshot must fall back to the previous good one"
        );
        // A torn staging file never affects the load.
        std::fs::write(suj_storage::snapshot::snapshot_tmp_path(&path), b"junk").unwrap();
        assert_eq!(Engine::load_snapshot(&path).unwrap().cached_queries(), 1);

        // Both generations bad: the original (primary) error surfaces.
        std::fs::write(suj_storage::snapshot::snapshot_prev_path(&path), b"junk").unwrap();
        assert!(matches!(
            Engine::load_snapshot(&path),
            Err(CoreError::Snapshot(_))
        ));
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(suj_storage::snapshot::snapshot_prev_path(&path)).ok();
        std::fs::remove_file(suj_storage::snapshot::snapshot_tmp_path(&path)).ok();
    }

    #[test]
    fn snapshot_bytes_are_deterministic() {
        let make = || {
            let engine = shop_engine();
            engine.prepare(&shop_query()).unwrap();
            engine
                .prepare(
                    &UnionQuery::set_union()
                        .chain("only_a", ["a_items", "a_sales"])
                        .unwrap(),
                )
                .unwrap();
            engine.snapshot_to_bytes().unwrap()
        };
        assert_eq!(make(), make(), "same state must serialize identically");
    }

    #[test]
    fn corrupted_engine_snapshots_fail_with_named_errors() {
        let engine = shop_engine();
        engine.prepare(&shop_query()).unwrap();
        let bytes = engine.snapshot_to_bytes().unwrap();
        // Truncation at every prefix must error, never panic.
        for cut in [0, 4, 16, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                Engine::load_snapshot_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
        // A flipped payload byte breaks a checksum.
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xff;
        match Engine::load_snapshot_bytes(&bad) {
            Err(CoreError::Snapshot(
                SnapshotError::ChecksumMismatch { .. } | SnapshotError::Truncated,
            )) => {}
            other => panic!("expected checksum/truncated error, got {other:?}"),
        }
        // A wrong magic is named.
        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert!(matches!(
            Engine::load_snapshot_bytes(&bad),
            Err(CoreError::Snapshot(SnapshotError::BadMagic))
        ));
    }

    #[test]
    fn empty_cache_snapshot_restores_catalog_only() {
        let engine = shop_engine();
        let bytes = engine.snapshot_to_bytes().unwrap();
        let restored = Engine::load_snapshot_bytes(&bytes).unwrap();
        assert_eq!(restored.cached_queries(), 0);
        assert_eq!(restored.catalog().len(), 4);
        // The restored replica can still prepare from scratch.
        assert!(restored.prepare(&shop_query()).is_ok());
    }
}
