//! Sampling the disjoint union (Definition 1).
//!
//! `V = J_1 ⊎ … ⊎ J_n` keeps duplicates, so sampling is a two-level
//! categorical draw: pick join `J_j` with probability `|J_j| / Σ|J_i|`,
//! then a uniform tuple from `J_j`. Every sample lands with probability
//! `1/|V|`; independence is immediate since draws never interact — the
//! paper evaluates no baseline here because "it has no extra delays".

use crate::error::CoreError;
use crate::report::RunReport;
use crate::workload::UnionWorkload;
use std::sync::Arc;
use std::time::Instant;
use suj_join::weights::build_sampler;
use suj_join::{JoinSampler, SampleOutcome, WeightKind};
use suj_stats::{Categorical, SujRng};
use suj_storage::Tuple;

/// Sampler over the disjoint union of a workload's joins.
pub struct DisjointUnionSampler {
    workload: Arc<UnionWorkload>,
    samplers: Vec<Box<dyn JoinSampler>>,
    selection: Option<Categorical>,
    join_sizes: Vec<f64>,
}

impl DisjointUnionSampler {
    /// Builds the sampler. `join_sizes` drive join selection — exact
    /// EW sizes give exactly `1/|V|` per tuple.
    pub fn new(
        workload: Arc<UnionWorkload>,
        join_sizes: Vec<f64>,
        weights: WeightKind,
    ) -> Result<Self, CoreError> {
        if join_sizes.len() != workload.n_joins() {
            return Err(CoreError::Invalid(format!(
                "expected {} join sizes, got {}",
                workload.n_joins(),
                join_sizes.len()
            )));
        }
        let samplers = workload
            .joins()
            .iter()
            .map(|j| build_sampler(j.clone(), weights))
            .collect::<Result<Vec<_>, _>>()
            .map_err(CoreError::Join)?;
        let selection = Categorical::new(&join_sizes);
        Ok(Self {
            workload,
            samplers,
            selection,
            join_sizes,
        })
    }

    /// Convenience: exact (EW) sizes and the given weight kind.
    pub fn with_exact_sizes(
        workload: Arc<UnionWorkload>,
        weights: WeightKind,
    ) -> Result<Self, CoreError> {
        let sizes = workload.exact_join_sizes()?;
        Self::new(workload, sizes, weights)
    }

    /// `Σ |J_j|` — the disjoint union size implied by the selection
    /// weights.
    pub fn disjoint_size(&self) -> f64 {
        self.join_sizes.iter().sum()
    }

    /// Draws `n` independent samples.
    pub fn sample(&self, n: usize, rng: &mut SujRng) -> (Vec<Tuple>, RunReport) {
        let mut report = RunReport::new(self.workload.n_joins());
        let mut out = Vec::with_capacity(n);
        let Some(selection) = &self.selection else {
            return (out, report); // empty union
        };
        let start = Instant::now();
        while out.len() < n {
            let j = selection.draw(rng);
            report.join_draws[j] += 1;
            match self.samplers[j].sample(rng) {
                SampleOutcome::Accepted(local) => {
                    out.push(self.workload.to_canonical(j, &local));
                    report.accepted += 1;
                }
                SampleOutcome::Rejected => {
                    report.rejected_join += 1;
                }
            }
        }
        report.accepted_time = start.elapsed();
        (out, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::full_join_union;
    use suj_storage::{FxHashMap, Relation, Schema, Value};

    fn rel(name: &str, attrs: &[&str], rows: Vec<Vec<i64>>) -> Arc<Relation> {
        let schema = Schema::new(attrs.iter().copied()).unwrap();
        let tuples = rows
            .into_iter()
            .map(|vals| vals.into_iter().map(Value::int).collect())
            .collect();
        Arc::new(Relation::new(name, schema, tuples).unwrap())
    }

    fn workload() -> Arc<UnionWorkload> {
        let j1 = suj_join::JoinSpec::chain(
            "j1",
            vec![
                rel("r1", &["a", "b"], vec![vec![1, 10], vec![2, 10], vec![3, 20]]),
                rel("s1", &["b", "c"], vec![vec![10, 100], vec![20, 200]]),
            ],
        )
        .unwrap();
        let j2 = suj_join::JoinSpec::chain(
            "j2",
            vec![
                rel("r2", &["a", "b"], vec![vec![1, 10], vec![9, 90]]),
                rel("s2", &["b", "c"], vec![vec![10, 100], vec![90, 900]]),
            ],
        )
        .unwrap();
        Arc::new(UnionWorkload::new(vec![Arc::new(j1), Arc::new(j2)]).unwrap())
    }

    #[test]
    fn disjoint_distribution_counts_duplicates_twice() {
        let w = workload();
        let exact = full_join_union(&w).unwrap();
        let sampler = DisjointUnionSampler::with_exact_sizes(w.clone(), WeightKind::Exact).unwrap();
        assert_eq!(
            sampler.disjoint_size(),
            (exact.join_size(0) + exact.join_size(1)) as f64
        );

        let mut rng = SujRng::seed_from_u64(7);
        let (samples, report) = sampler.sample(25_000, &mut rng);
        assert_eq!(samples.len(), 25_000);
        assert_eq!(report.accepted, 25_000);

        // (1,10,100) lives in BOTH joins → expected frequency 2/|V|;
        // single-join tuples get 1/|V|.
        let mut counts: FxHashMap<Tuple, u64> = FxHashMap::default();
        for t in &samples {
            *counts.entry(t.clone()).or_insert(0) += 1;
        }
        let v = sampler.disjoint_size();
        let shared = suj_storage::tuple![1i64, 10i64, 100i64];
        let single = suj_storage::tuple![3i64, 20i64, 200i64];
        let f_shared = counts[&shared] as f64 / 25_000.0;
        let f_single = counts[&single] as f64 / 25_000.0;
        assert!((f_shared - 2.0 / v).abs() < 0.02, "shared freq {f_shared}");
        assert!((f_single - 1.0 / v).abs() < 0.02, "single freq {f_single}");
    }

    #[test]
    fn all_samples_are_members() {
        let w = workload();
        let sampler = DisjointUnionSampler::with_exact_sizes(w.clone(), WeightKind::Exact).unwrap();
        let mut rng = SujRng::seed_from_u64(9);
        let (samples, _) = sampler.sample(500, &mut rng);
        for t in samples {
            assert!(w.contains(0, &t) || w.contains(1, &t));
        }
    }

    #[test]
    fn works_with_olken_weights() {
        let w = workload();
        let sampler =
            DisjointUnionSampler::with_exact_sizes(w, WeightKind::ExtendedOlken).unwrap();
        let mut rng = SujRng::seed_from_u64(10);
        let (samples, report) = sampler.sample(200, &mut rng);
        assert_eq!(samples.len(), 200);
        // EO must have rejected at least occasionally on this skew.
        assert!(report.attempts() >= 200);
    }

    #[test]
    fn wrong_size_vector_rejected() {
        let w = workload();
        assert!(DisjointUnionSampler::new(w, vec![1.0], WeightKind::Exact).is_err());
    }
}
