//! Sampling the disjoint union (Definition 1).
//!
//! `V = J_1 ⊎ … ⊎ J_n` keeps duplicates, so sampling is a two-level
//! categorical draw: pick join `J_j` with probability `|J_j| / Σ|J_i|`,
//! then a uniform tuple from `J_j`. Every sample lands with probability
//! `1/|V|`; independence is immediate since draws never interact — the
//! paper evaluates no baseline here because "it has no extra delays".
//!
//! The sampler implements [`UnionSampler`] and never emits
//! [`Draw::Retract`](crate::sampler::Draw), so its
//! [`SampleStream`](crate::stream::SampleStream) is exactly i.i.d.

use crate::error::CoreError;
use crate::report::RunReport;
use crate::sampler::{Draw, UnionSampler};
use crate::workload::UnionWorkload;
use std::sync::Arc;
use std::time::Instant;
use suj_join::weights::build_sampler;
use suj_join::{JoinSampler, WeightKind};
use suj_stats::{Categorical, SujRng};

/// Sampler over the disjoint union of a workload's joins.
pub struct DisjointUnionSampler {
    workload: Arc<UnionWorkload>,
    /// Shared per-join samplers (see
    /// [`SetUnionSampler::with_shared`](crate::algorithm1::SetUnionSampler::with_shared)).
    samplers: Vec<Arc<dyn JoinSampler>>,
    selection: Option<Categorical>,
    join_sizes: Vec<f64>,
    report: RunReport,
    emitted: u64,
    /// Reusable row-id draw scratch: rejected attempts allocate
    /// nothing.
    draw: suj_join::RowDraw,
    /// Reusable canonicalization scratch (one accepted draw each).
    canon_scratch: Vec<suj_storage::Value>,
}

impl DisjointUnionSampler {
    /// Builds the sampler. `join_sizes` drive join selection — exact
    /// EW sizes give exactly `1/|V|` per tuple.
    pub fn new(
        workload: Arc<UnionWorkload>,
        join_sizes: Vec<f64>,
        weights: WeightKind,
    ) -> Result<Self, CoreError> {
        let samplers = workload
            .joins()
            .iter()
            .map(|j| build_sampler(j.clone(), weights).map(Arc::from))
            .collect::<Result<Vec<_>, _>>()
            .map_err(CoreError::Join)?;
        Self::with_shared(workload, join_sizes, samplers)
    }

    /// Builds the sampler over pre-built per-join samplers (shared with
    /// other handles of the same prepared query).
    pub fn with_shared(
        workload: Arc<UnionWorkload>,
        join_sizes: Vec<f64>,
        samplers: Vec<Arc<dyn JoinSampler>>,
    ) -> Result<Self, CoreError> {
        if join_sizes.len() != workload.n_joins() {
            return Err(CoreError::Invalid(format!(
                "expected {} join sizes, got {}",
                workload.n_joins(),
                join_sizes.len()
            )));
        }
        if samplers.len() != workload.n_joins() {
            return Err(CoreError::Invalid(format!(
                "{} join samplers for {} joins",
                samplers.len(),
                workload.n_joins()
            )));
        }
        let selection = Categorical::new(&join_sizes);
        let n_joins = workload.n_joins();
        Ok(Self {
            workload,
            samplers,
            selection,
            join_sizes,
            report: RunReport::new(n_joins),
            emitted: 0,
            draw: suj_join::RowDraw::new(),
            canon_scratch: Vec::new(),
        })
    }

    /// Convenience: exact (EW) sizes and the given weight kind.
    pub fn with_exact_sizes(
        workload: Arc<UnionWorkload>,
        weights: WeightKind,
    ) -> Result<Self, CoreError> {
        let sizes = workload.exact_join_sizes()?;
        Self::new(workload, sizes, weights)
    }

    /// `Σ |J_j|` — the disjoint union size implied by the selection
    /// weights.
    pub fn disjoint_size(&self) -> f64 {
        self.join_sizes.iter().sum()
    }
}

impl UnionSampler for DisjointUnionSampler {
    fn draw(&mut self, rng: &mut SujRng) -> Result<Draw, CoreError> {
        if self.selection.is_none() {
            return Err(CoreError::Invalid(
                "cannot sample from an empty disjoint union".into(),
            ));
        }
        loop {
            let j = self.selection.as_ref().expect("checked above").draw(rng);
            self.report.join_draws[j] += 1;
            let start = Instant::now();
            if self.samplers[j].sample_rows(rng, &mut self.draw) {
                let local = self.samplers[j].materialize(&self.draw);
                let t = self
                    .workload
                    .to_canonical_into(j, &local, &mut self.canon_scratch);
                let idx = self.emitted;
                self.emitted += 1;
                self.report.accepted += 1;
                self.report.accepted_time += start.elapsed();
                return Ok(Draw::Tuple(idx, t));
            } else {
                self.report.rejected_join += 1;
                self.report.rejected_time += start.elapsed();
            }
        }
    }

    fn report(&self) -> &RunReport {
        &self.report
    }

    fn report_mut(&mut self) -> &mut RunReport {
        &mut self.report
    }

    fn emitted(&self) -> u64 {
        self.emitted
    }

    fn workload(&self) -> &Arc<UnionWorkload> {
        &self.workload
    }

    fn may_retract(&self) -> bool {
        false // draws never interact (Definition 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::full_join_union;
    use suj_storage::{FxHashMap, Relation, Schema, Tuple, Value};

    fn rel(name: &str, attrs: &[&str], rows: Vec<Vec<i64>>) -> Arc<Relation> {
        let schema = Schema::new(attrs.iter().copied()).unwrap();
        let tuples = rows
            .into_iter()
            .map(|vals| vals.into_iter().map(Value::int).collect())
            .collect();
        Arc::new(Relation::new(name, schema, tuples).unwrap())
    }

    fn workload() -> Arc<UnionWorkload> {
        let j1 = suj_join::JoinSpec::chain(
            "j1",
            vec![
                rel(
                    "r1",
                    &["a", "b"],
                    vec![vec![1, 10], vec![2, 10], vec![3, 20]],
                ),
                rel("s1", &["b", "c"], vec![vec![10, 100], vec![20, 200]]),
            ],
        )
        .unwrap();
        let j2 = suj_join::JoinSpec::chain(
            "j2",
            vec![
                rel("r2", &["a", "b"], vec![vec![1, 10], vec![9, 90]]),
                rel("s2", &["b", "c"], vec![vec![10, 100], vec![90, 900]]),
            ],
        )
        .unwrap();
        Arc::new(UnionWorkload::new(vec![Arc::new(j1), Arc::new(j2)]).unwrap())
    }

    #[test]
    fn disjoint_distribution_counts_duplicates_twice() {
        let w = workload();
        let exact = full_join_union(&w).unwrap();
        let mut sampler =
            DisjointUnionSampler::with_exact_sizes(w.clone(), WeightKind::Exact).unwrap();
        assert_eq!(
            sampler.disjoint_size(),
            (exact.join_size(0) + exact.join_size(1)) as f64
        );

        let mut rng = SujRng::seed_from_u64(7);
        let (samples, report) = sampler.sample(25_000, &mut rng).unwrap();
        assert_eq!(samples.len(), 25_000);
        assert_eq!(report.accepted, 25_000);

        // (1,10,100) lives in BOTH joins → expected frequency 2/|V|;
        // single-join tuples get 1/|V|.
        let mut counts: FxHashMap<Tuple, u64> = FxHashMap::default();
        for t in &samples {
            *counts.entry(t.clone()).or_insert(0) += 1;
        }
        let v = sampler.disjoint_size();
        let shared = suj_storage::tuple![1i64, 10i64, 100i64];
        let single = suj_storage::tuple![3i64, 20i64, 200i64];
        let f_shared = counts[&shared] as f64 / 25_000.0;
        let f_single = counts[&single] as f64 / 25_000.0;
        assert!((f_shared - 2.0 / v).abs() < 0.02, "shared freq {f_shared}");
        assert!((f_single - 1.0 / v).abs() < 0.02, "single freq {f_single}");
    }

    #[test]
    fn all_samples_are_members() {
        let w = workload();
        let mut sampler =
            DisjointUnionSampler::with_exact_sizes(w.clone(), WeightKind::Exact).unwrap();
        let mut rng = SujRng::seed_from_u64(9);
        let (samples, _) = sampler.sample(500, &mut rng).unwrap();
        for t in samples {
            assert!(w.contains(0, &t) || w.contains(1, &t));
        }
    }

    #[test]
    fn works_with_olken_weights() {
        let w = workload();
        let mut sampler =
            DisjointUnionSampler::with_exact_sizes(w, WeightKind::ExtendedOlken).unwrap();
        let mut rng = SujRng::seed_from_u64(10);
        let (samples, report) = sampler.sample(200, &mut rng).unwrap();
        assert_eq!(samples.len(), 200);
        // EO must have rejected at least occasionally on this skew.
        assert!(report.attempts() >= 200);
    }

    #[test]
    fn wrong_size_vector_rejected() {
        let w = workload();
        assert!(DisjointUnionSampler::new(w, vec![1.0], WeightKind::Exact).is_err());
    }

    #[test]
    fn draw_never_retracts() {
        let w = workload();
        let mut sampler = DisjointUnionSampler::with_exact_sizes(w, WeightKind::Exact).unwrap();
        let mut rng = SujRng::seed_from_u64(11);
        for _ in 0..500 {
            assert!(matches!(sampler.draw(&mut rng).unwrap(), Draw::Tuple(..)));
        }
        assert_eq!(sampler.emitted(), 500);
    }
}
