//! The unified sampler abstraction every union sampler implements.
//!
//! The paper presents one problem — i.i.d. sampling from a union of
//! joins — realized by four algorithms (Algorithm 1 rejection sampling,
//! Algorithm 2 online sampling, the Bernoulli union trick, and disjoint
//! union sampling) plus predicate wrappers. [`UnionSampler`] is the
//! object-safe common surface: an incremental [`draw`](UnionSampler::draw)
//! producing one [`Draw`] event at a time, a cumulative
//! [`report`](UnionSampler::report), and a provided batch
//! [`sample`](UnionSampler::sample) built on top of `draw`.
//!
//! # The event model
//!
//! Uniformity devices in Algorithms 1 and 2 occasionally *remove*
//! previously produced samples: Algorithm 1's revision purges every
//! copy of a tuple whose cover ownership moves (lines 10–12), and
//! Algorithm 2's backtracking thins returned samples as parameter
//! estimates shift (§7). An incremental API must surface those
//! removals, so `draw` yields either
//!
//! * [`Draw::Tuple`] — the next accepted sample, or
//! * [`Draw::Retract`] — the *emission index* of an earlier
//!   `Draw::Tuple` that the algorithm has withdrawn.
//!
//! Batch consumers (the provided [`sample`](UnionSampler::sample))
//! honor retractions exactly, preserving the batch semantics of the
//! paper's algorithms (the equivalence suite pins the builder, trait,
//! and stream paths to one another seed-for-seed). Streaming consumers
//! ([`SampleStream`](crate::stream::SampleStream)) cannot unconsume an
//! already-yielded tuple; they count retractions instead, which leaves
//! the stream asymptotically uniform (the same guarantee the paper
//! proves for the record policy). Samplers that never retract —
//! disjoint union, Bernoulli designation, Algorithm 1 under
//! [`CoverPolicy::MembershipOracle`](crate::algorithm1::CoverPolicy) —
//! stream exactly i.i.d.

use crate::error::CoreError;
use crate::report::RunReport;
use crate::workload::UnionWorkload;
use std::sync::Arc;
use suj_stats::SujRng;
use suj_storage::{FxHashMap, Tuple};

/// One step of an incremental sampling run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Draw {
    /// The next accepted sample, tagged with its emission index
    /// (indices are assigned in order of acceptance; burst copies
    /// queued inside the sampler keep the indices they were assigned
    /// at acceptance time, so a consumer can resolve any later
    /// [`Draw::Retract`] unambiguously).
    Tuple(u64, Tuple),
    /// Withdraws the sample with the given emission index (revision /
    /// backtracking). Consumers maintaining a sample set should drop
    /// that element; consumers that already released it may count the
    /// retraction instead.
    Retract(u64),
}

/// An incremental i.i.d. sampler over a union of joins.
///
/// Object safe: every built sampler is usable as
/// `Box<dyn UnionSampler>`, which is what
/// [`SamplerBuilder`](crate::session::SamplerBuilder) returns.
///
/// # Concurrency
///
/// `Send` is a supertrait: every sampler can move to a worker thread,
/// so `Box<dyn UnionSampler + Send>` handles minted by
/// [`PreparedQuery::sampler`](crate::catalog::PreparedQuery::sampler)
/// can be served from a [`SamplingService`](crate::serve::SamplingService)
/// pool. A sampler handle itself stays single-threaded (`draw` takes
/// `&mut self`); concurrency comes from minting one independent handle
/// per thread over shared frozen state, never from sharing a handle.
pub trait UnionSampler: Send {
    /// Advances the sampler until the next event.
    ///
    /// Returns [`Draw::Tuple`] for each accepted sample and
    /// [`Draw::Retract`] for each withdrawn one. Errors are
    /// non-recoverable for the current run (e.g. the union is
    /// estimated positive but every join is empty).
    fn draw(&mut self, rng: &mut SujRng) -> Result<Draw, CoreError>;

    /// Cumulative counters and timings since construction.
    fn report(&self) -> &RunReport;

    /// Mutable access to the cumulative report. Exists so the builder
    /// and engine can stamp the resolved configuration
    /// ([`RunReport::config`]) into the sampler they assembled; not
    /// intended for mutating counters.
    fn report_mut(&mut self) -> &mut RunReport;

    /// Total `Draw::Tuple` events emitted so far (the next tuple's
    /// emission index).
    fn emitted(&self) -> u64;

    /// The workload being sampled.
    fn workload(&self) -> &Arc<UnionWorkload>;

    /// Whether this sampler can ever emit [`Draw::Retract`]. Samplers
    /// returning `false` (disjoint union, Bernoulli designation,
    /// Algorithm 1 under the membership-oracle policy) stream exactly
    /// i.i.d. and let wrappers skip retraction bookkeeping.
    fn may_retract(&self) -> bool {
        true
    }

    /// Draws until `n` samples are *live* (emitted and not retracted),
    /// returning them with the report delta for this call.
    ///
    /// This reproduces the batch semantics of the paper's algorithms:
    /// retractions arriving during the batch remove their tuples from
    /// the batch (matched by emission index, so surplus copies queued
    /// across batch boundaries resolve correctly), and the loop
    /// continues until `n` live samples remain. Retractions of tuples
    /// returned by earlier calls are already out of reach; they are
    /// counted in the report only.
    fn sample(&mut self, n: usize, rng: &mut SujRng) -> Result<(Vec<Tuple>, RunReport), CoreError> {
        self.sample_within(n, rng, None)
    }

    /// [`sample`](UnionSampler::sample) with an optional deadline,
    /// checked before every draw: once `deadline` passes the run
    /// aborts with [`CoreError::DeadlineExceeded`] instead of running
    /// unbounded.
    ///
    /// The check piggybacks on the per-draw latency timestamp, so it
    /// costs nothing extra, and it never alters the draw sequence —
    /// a run that finishes before the deadline is bit-identical to
    /// [`sample`](UnionSampler::sample) with no deadline at all (the
    /// serving tier's determinism contract depends on this).
    fn sample_within(
        &mut self,
        n: usize,
        rng: &mut SujRng,
        deadline: Option<std::time::Instant>,
    ) -> Result<(Vec<Tuple>, RunReport), CoreError> {
        let baseline = self.report().clone();
        let mut out: Vec<Tuple> = Vec::with_capacity(n);
        let mut removed: Vec<bool> = Vec::with_capacity(n);
        // Emission index → position in `out` for this batch.
        let mut position: FxHashMap<u64, usize> = FxHashMap::default();
        let mut live = 0usize;
        while live < n {
            let draw_start = std::time::Instant::now();
            if deadline.is_some_and(|d| draw_start >= d) {
                return Err(CoreError::DeadlineExceeded);
            }
            let event = self.draw(rng);
            self.report_mut().draw_latency.record(draw_start.elapsed());
            match event? {
                Draw::Tuple(idx, t) => {
                    position.insert(idx, out.len());
                    out.push(t);
                    removed.push(false);
                    live += 1;
                }
                Draw::Retract(idx) => {
                    // Indices absent from the map belong to earlier
                    // batches the caller already consumed.
                    if let Some(&i) = position.get(&idx) {
                        if !removed[i] {
                            removed[i] = true;
                            live -= 1;
                        }
                    }
                }
            }
        }
        let result = out
            .into_iter()
            .zip(removed)
            .filter(|(_, dead)| !dead)
            .map(|(t, _)| t)
            .collect();
        Ok((result, self.report().delta_since(&baseline)))
    }
}

impl<S: UnionSampler + ?Sized> UnionSampler for Box<S> {
    fn draw(&mut self, rng: &mut SujRng) -> Result<Draw, CoreError> {
        (**self).draw(rng)
    }

    fn report(&self) -> &RunReport {
        (**self).report()
    }

    fn report_mut(&mut self) -> &mut RunReport {
        (**self).report_mut()
    }

    fn emitted(&self) -> u64 {
        (**self).emitted()
    }

    fn workload(&self) -> &Arc<UnionWorkload> {
        (**self).workload()
    }

    fn may_retract(&self) -> bool {
        (**self).may_retract()
    }

    fn sample(&mut self, n: usize, rng: &mut SujRng) -> Result<(Vec<Tuple>, RunReport), CoreError> {
        (**self).sample(n, rng)
    }

    fn sample_within(
        &mut self,
        n: usize,
        rng: &mut SujRng,
        deadline: Option<std::time::Instant>,
    ) -> Result<(Vec<Tuple>, RunReport), CoreError> {
        (**self).sample_within(n, rng, deadline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::UnionWorkload;
    use std::collections::VecDeque;
    use suj_storage::{Relation, Schema, Value};

    /// Scripted sampler: replays a fixed event sequence, mimicking a
    /// sampler whose queued burst copies straddle batch boundaries.
    struct Scripted {
        events: VecDeque<Draw>,
        emitted: u64,
        report: RunReport,
        workload: Arc<UnionWorkload>,
    }

    impl Scripted {
        fn new(events: Vec<Draw>) -> Self {
            let rel = Arc::new(
                Relation::new(
                    "r",
                    Schema::new(["a"]).unwrap(),
                    vec![Tuple::new(vec![Value::int(1)])],
                )
                .unwrap(),
            );
            let spec = suj_join::JoinSpec::chain("j", vec![rel]).unwrap();
            let workload = Arc::new(UnionWorkload::new(vec![Arc::new(spec)]).unwrap());
            Self {
                events: events.into(),
                emitted: 0,
                report: RunReport::new(1),
                workload,
            }
        }
    }

    impl UnionSampler for Scripted {
        fn draw(&mut self, _rng: &mut SujRng) -> Result<Draw, CoreError> {
            let event = self.events.pop_front().expect("script exhausted");
            if let Draw::Tuple(..) = &event {
                self.emitted += 1;
                self.report.accepted += 1;
            }
            self.events
                .push_back(Draw::Tuple(u64::MAX, Tuple::new(vec![Value::int(-1)]))); // padding so scripts never run dry mid-test
            Ok(event)
        }

        fn report(&self) -> &RunReport {
            &self.report
        }

        fn report_mut(&mut self) -> &mut RunReport {
            &mut self.report
        }

        fn emitted(&self) -> u64 {
            self.emitted
        }

        fn workload(&self) -> &Arc<UnionWorkload> {
            &self.workload
        }
    }

    fn t(v: i64) -> Tuple {
        Tuple::new(vec![Value::int(v)])
    }

    /// `Send` is a supertrait, so boxed trait objects cross threads —
    /// the contract the serving layer builds on (compile-time check).
    #[test]
    fn union_sampler_trait_objects_are_send() {
        fn assert_send<T: Send + ?Sized>() {}
        assert_send::<dyn UnionSampler>();
        assert_send::<Box<dyn UnionSampler>>();
        assert_send::<Box<dyn UnionSampler + Send>>();
    }

    /// A retraction arriving in batch 2 that targets an emission queued
    /// during batch 1 (a surplus burst copy) must remove that exact
    /// tuple from batch 2 — not a mis-mapped neighbor, and not be
    /// dropped.
    #[test]
    fn batch_retractions_resolve_across_queue_boundaries() {
        let mut sampler = Scripted::new(vec![
            // Batch 1 consumes one tuple; emission 1 was queued at the
            // same time (burst) and spills into batch 2.
            Draw::Tuple(0, t(10)),
            Draw::Tuple(1, t(11)),
            // Batch 2: retract the spilled emission #1 mid-batch, then
            // continue.
            Draw::Retract(1),
            Draw::Tuple(2, t(12)),
            Draw::Tuple(3, t(13)),
        ]);
        let mut rng = SujRng::seed_from_u64(0);
        let (batch1, _) = sampler.sample(1, &mut rng).unwrap();
        assert_eq!(batch1, vec![t(10)]);
        let (batch2, _) = sampler.sample(2, &mut rng).unwrap();
        // Emission #1 (tuple 11) was retracted mid-batch; #2 and #3
        // survive.
        assert_eq!(batch2, vec![t(12), t(13)]);
    }

    /// Retractions of emissions returned by *earlier* batches are out
    /// of reach and must be ignored without disturbing the current
    /// batch.
    #[test]
    fn batch_ignores_retractions_of_prior_batches() {
        let mut sampler = Scripted::new(vec![
            Draw::Tuple(0, t(20)),
            Draw::Retract(0), // targets batch 1's tuple
            Draw::Tuple(1, t(21)),
            Draw::Tuple(2, t(22)),
        ]);
        let mut rng = SujRng::seed_from_u64(0);
        let (batch1, _) = sampler.sample(1, &mut rng).unwrap();
        assert_eq!(batch1, vec![t(20)]);
        let (batch2, _) = sampler.sample(2, &mut rng).unwrap();
        assert_eq!(batch2, vec![t(21), t(22)]);
    }
}
